#!/bin/sh
# Launch a fleet of worker agents against a running driver.
#
# The driver side is any fleet-aware harness started with --fleet=PORT, e.g.:
#
#   ./build/bench/cdma_drive --trials=200 --axes=n:100:200:300 --fleet=5001 --units=24
#
# Then, on each worker machine (or in a second terminal for loopback):
#
#   scripts/launch_fleet.sh HOST:PORT [AGENTS] [CAPACITY] [BINARY]
#
#   HOST:PORT  the driver's address (e.g. 127.0.0.1:5001)
#   AGENTS     how many agent processes to start here (default 1)
#   CAPACITY   per-agent concurrent units (default: agent decides = cores)
#   BINARY     the harness binary (default ./build/bench/cdma_drive); must be
#              the same build as the driver — agents re-invoke it per unit
#
# Agents exit on the driver's SHUTDOWN, so this script waits for all of them.

set -eu

if [ $# -lt 1 ]; then
  echo "usage: $0 HOST:PORT [AGENTS] [CAPACITY] [BINARY]" >&2
  exit 2
fi

TARGET="$1"
AGENTS="${2:-1}"
CAPACITY="${3:-0}"
BINARY="${4:-./build/bench/cdma_drive}"

if [ ! -x "$BINARY" ]; then
  echo "launch_fleet: '$BINARY' is not an executable (build the bench harnesses first)" >&2
  exit 2
fi

i=0
while [ "$i" -lt "$AGENTS" ]; do
  SCRATCH="fleet-agent-$i-scratch"
  if [ "$CAPACITY" -gt 0 ]; then
    "$BINARY" --worker-agent="$TARGET" --capacity="$CAPACITY" \
      --agent-scratch="$SCRATCH" &
  else
    "$BINARY" --worker-agent="$TARGET" --agent-scratch="$SCRATCH" &
  fi
  i=$((i + 1))
done

wait
