#pragma once

// Shared fixtures for strategy tests: random geometric worlds with a valid
// initial assignment, plus an exhaustive adversary that enumerates *every*
// correct recoding of a recode set — the oracle behind the minimality
// (Thm 4.1.8) and optimality-among-minimal (Thm 4.1.9) tests.

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "core/minim.hpp"
#include "net/assignment.hpp"
#include "net/constraints.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace minim::test {

/// Materializes a neighbor range (the pooled-storage spans returned by
/// Digraph/AdhocNetwork/ConflictGraph accessors) for gtest comparisons.
template <typename Range>
std::vector<net::NodeId> ids(const Range& range) {
  return std::vector<net::NodeId>(range.begin(), range.end());
}

/// A network populated by sequential Minim joins (assignment always valid).
struct World {
  net::AdhocNetwork network{100.0, 100.0};
  net::CodeAssignment assignment;
  std::vector<net::NodeId> ids;
};

inline World build_world(std::size_t n, double min_range, double max_range,
                         util::Rng& rng) {
  World world;
  core::MinimStrategy minim;
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId id = world.network.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)},
         rng.uniform(min_range, max_range)});
    minim.on_join(world.network, world.assignment, id);
    world.ids.push_back(id);
  }
  return world;
}

/// Result of exhaustively enumerating correct recodings of `v1`.
struct AdversaryResult {
  std::size_t min_recodings = std::numeric_limits<std::size_t>::max();
  /// Smallest network-wide max color among recodings that achieve
  /// `min_recodings`.
  net::Color best_max_color = std::numeric_limits<net::Color>::max();
  std::size_t explored = 0;
};

/// Enumerates every assignment of pairwise-distinct colors to `v1` that is
/// feasible against the (fixed) colors outside `v1`.  Pairwise distinctness
/// is exactly the intra-V1 constraint for join/move recode sets (V1 is a
/// conflict clique through the event node).  Pool: 1..(pool_max).
class ExhaustiveAdversary {
 public:
  ExhaustiveAdversary(const net::AdhocNetwork& network,
                      const net::CodeAssignment& assignment,
                      std::vector<net::NodeId> v1)
      : network_(network), assignment_(assignment), v1_(std::move(v1)) {
    std::sort(v1_.begin(), v1_.end());
    auto in_v1 = [this](net::NodeId v) {
      return std::binary_search(v1_.begin(), v1_.end(), v);
    };
    net::Color max_seen = net::kNoColor;
    for (net::NodeId u : v1_) {
      forbidden_.push_back(net::forbidden_colors(network_, assignment_, u, in_v1));
      if (!forbidden_.back().empty())
        max_seen = std::max(max_seen, forbidden_.back().back());
      max_seen = std::max(max_seen, assignment_.color(u));
    }
    pool_max_ = max_seen + static_cast<net::Color>(v1_.size());
    for (net::NodeId v : network_.nodes()) {
      if (in_v1(v)) continue;
      outside_max_ = std::max(outside_max_, assignment_.color(v));
    }
  }

  AdversaryResult run() {
    current_.assign(v1_.size(), net::kNoColor);
    used_.assign(pool_max_ + 1, 0);
    recurse(0, 0, net::kNoColor);
    return result_;
  }

 private:
  void recurse(std::size_t index, std::size_t changes, net::Color v1_max) {
    if (index == v1_.size()) {
      ++result_.explored;
      const net::Color total_max = std::max(v1_max, outside_max_);
      if (changes < result_.min_recodings) {
        result_.min_recodings = changes;
        result_.best_max_color = total_max;
      } else if (changes == result_.min_recodings) {
        result_.best_max_color = std::min(result_.best_max_color, total_max);
      }
      return;
    }
    const net::Color old = assignment_.color(v1_[index]);
    const auto& forb = forbidden_[index];
    for (net::Color c = 1; c <= pool_max_; ++c) {
      if (used_[c]) continue;
      if (std::binary_search(forb.begin(), forb.end(), c)) continue;
      used_[c] = 1;
      recurse(index + 1, changes + (c != old ? 1 : 0), std::max(v1_max, c));
      used_[c] = 0;
    }
  }

  const net::AdhocNetwork& network_;
  const net::CodeAssignment& assignment_;
  std::vector<net::NodeId> v1_;
  std::vector<std::vector<net::Color>> forbidden_;
  net::Color pool_max_ = 0;
  net::Color outside_max_ = 0;
  std::vector<net::Color> current_;
  std::vector<char> used_;
  AdversaryResult result_;
};

}  // namespace minim::test
