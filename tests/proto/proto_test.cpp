// Distributed execution: message-level runs must match the centralized
// algorithms exactly, message costs must stay local, and concurrent joins
// must commute at >= 5 hops (Theorem 4.1.10).

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/minim.hpp"
#include "graph/algorithms.hpp"
#include "net/constraints.hpp"
#include "proto/distributed_minim.hpp"
#include "proto/parallel_join.hpp"
#include "util/rng.hpp"

namespace {

using minim::core::MinimStrategy;
using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::NodeConfig;
using minim::net::NodeId;
using minim::proto::apply_parallel_joins;
using minim::proto::DistributedMinim;
using minim::proto::MessageType;
using minim::test::build_world;
using minim::test::World;
using minim::util::Rng;

class DistributedEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedEquivalenceTest, JoinMatchesCentralized) {
  Rng rng(GetParam());
  World world = build_world(30, 20.5, 30.5, rng);
  const NodeConfig config{{rng.uniform(0, 100), rng.uniform(0, 100)},
                          rng.uniform(20.5, 30.5)};

  // Centralized path.
  AdhocNetwork net_c = world.network;
  CodeAssignment asg_c = world.assignment;
  const NodeId id_c = net_c.add_node(config);
  MinimStrategy minim;
  const auto report_c = minim.on_join(net_c, asg_c, id_c);

  // Distributed path.
  AdhocNetwork net_d = world.network;
  CodeAssignment asg_d = world.assignment;
  const NodeId id_d = net_d.add_node(config);
  ASSERT_EQ(id_c, id_d);
  DistributedMinim protocol;
  const auto result = protocol.join(net_d, asg_d, id_d);

  for (NodeId v : net_c.nodes()) ASSERT_EQ(asg_c.color(v), asg_d.color(v));
  EXPECT_EQ(result.report.recodings(), report_c.recodings());
  EXPECT_TRUE(minim::net::is_valid(net_d, asg_d));
}

TEST_P(DistributedEquivalenceTest, MoveMatchesCentralized) {
  Rng rng(GetParam() + 100);
  World world = build_world(30, 20.5, 30.5, rng);
  const NodeId mover = world.ids[rng.below(world.ids.size())];
  const minim::util::Vec2 target{rng.uniform(0, 100), rng.uniform(0, 100)};

  AdhocNetwork net_c = world.network;
  CodeAssignment asg_c = world.assignment;
  net_c.set_position(mover, target);
  MinimStrategy minim;
  minim.on_move(net_c, asg_c, mover);

  AdhocNetwork net_d = world.network;
  CodeAssignment asg_d = world.assignment;
  net_d.set_position(mover, target);
  DistributedMinim protocol;
  protocol.move(net_d, asg_d, mover);

  for (NodeId v : net_c.nodes()) ASSERT_EQ(asg_c.color(v), asg_d.color(v));
}

TEST_P(DistributedEquivalenceTest, PowerIncreaseMatchesCentralized) {
  Rng rng(GetParam() + 200);
  World world = build_world(30, 20.5, 30.5, rng);
  const NodeId riser = world.ids[rng.below(world.ids.size())];
  const double old_range = world.network.config(riser).range;
  const double new_range = old_range * rng.uniform(1.5, 3.0);

  AdhocNetwork net_c = world.network;
  CodeAssignment asg_c = world.assignment;
  net_c.set_range(riser, new_range);
  MinimStrategy minim;
  minim.on_power_change(net_c, asg_c, riser, old_range);

  AdhocNetwork net_d = world.network;
  CodeAssignment asg_d = world.assignment;
  net_d.set_range(riser, new_range);
  DistributedMinim protocol;
  protocol.power_increase(net_d, asg_d, riser, old_range);

  for (NodeId v : net_c.nodes()) ASSERT_EQ(asg_c.color(v), asg_d.color(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// -------------------------------------------------------------- cost model

TEST(DistributedCost, MessageCountIsLocal) {
  // Messages scale with the in-neighborhood, not the network size: an
  // isolated joiner in a huge network exchanges zero messages.
  Rng rng(300);
  World world = build_world(60, 10.0, 15.0, rng);
  AdhocNetwork net = world.network;
  CodeAssignment asg = world.assignment;
  const NodeId loner = net.add_node({{0.0, 0.0}, 0.5});
  // Place far from everyone?  With 60 nodes that is not guaranteed, so just
  // bound by neighborhood size instead.
  DistributedMinim protocol;
  const auto result = protocol.join(net, asg, loner);
  const std::size_t k = net.heard_by(loner).size();
  // beacons + queries + replies <= 3k; commits+acks <= 2 * recodings.
  EXPECT_LE(result.cost.messages, 3 * k + 2 * result.report.recodings());
  EXPECT_TRUE(minim::net::is_valid(net, asg));
}

TEST(DistributedCost, RoundStructure) {
  Rng rng(301);
  World world = build_world(20, 25.0, 35.0, rng);
  AdhocNetwork net = world.network;
  CodeAssignment asg = world.assignment;
  const NodeId joiner = net.add_node({{50, 50}, 30.0});
  DistributedMinim protocol;
  const auto result = protocol.join(net, asg, joiner);
  // 3 gather rounds always; 2 commit rounds iff some other node recoded.
  const bool remote_changes = result.report.recodings() > 1;
  EXPECT_EQ(result.cost.rounds, remote_changes ? 5u : 3u);
  // Every message type in the log is one of the protocol's.
  for (const auto& message : result.log) {
    EXPECT_FALSE(message.to_string().empty());
  }
}

TEST(DistributedCost, ReplyPayloadCarriesConstraints) {
  Rng rng(302);
  World world = build_world(25, 25.0, 35.0, rng);
  AdhocNetwork net = world.network;
  CodeAssignment asg = world.assignment;
  const NodeId joiner = net.add_node({{50, 50}, 30.0});
  DistributedMinim protocol;
  const auto result = protocol.join(net, asg, joiner);
  bool saw_reply = false;
  for (const auto& message : result.log)
    if (message.type == MessageType::kConstraintReply) {
      saw_reply = true;
      EXPECT_GE(message.payload_items, 1u);  // at least the old color
    }
  EXPECT_EQ(saw_reply, !net.heard_by(joiner).empty());
}

// ------------------------------------------------------- parallel joins

TEST(ParallelJoin, FarApartJoinsCommute) {
  // A long chain with two joiners at the far ends: > 5 hops apart, so the
  // concurrent execution must produce a valid assignment (Thm 4.1.10).
  AdhocNetwork net(200.0, 50.0, 12.5);
  CodeAssignment asg;
  MinimStrategy minim;
  for (int i = 0; i < 14; ++i) {
    const NodeId v = net.add_node({{static_cast<double>(i) * 14.0, 25.0}, 15.0});
    minim.on_join(net, asg, v);
  }
  ASSERT_TRUE(minim::net::is_valid(net, asg));

  const std::vector<NodeConfig> joiners{{{0.0, 35.0}, 15.0},
                                        {{182.0, 35.0}, 15.0}};
  const auto outcome = apply_parallel_joins(net, asg, joiners);
  EXPECT_GE(outcome.min_pairwise_hop_distance, 5u);
  EXPECT_FALSE(outcome.overlapping_writes);
  EXPECT_TRUE(minim::net::is_valid(net, asg));
}

TEST(ParallelJoin, CloseJoinsCanConflict) {
  // Two joiners landing on the same neighborhood compute against the same
  // snapshot; their commits can collide.  We assert the *mechanism* (distance
  // below 5 and either overlapping writes or a post-commit violation) rather
  // than force a specific collision.
  AdhocNetwork net;
  CodeAssignment asg;
  MinimStrategy minim;
  // A tight cluster where any joiner hears several same-colored... build a
  // line of nodes with duplicate colors across clusters.
  for (int i = 0; i < 8; ++i) {
    const NodeId v = net.add_node({{10.0 + 10.0 * static_cast<double>(i), 50.0}, 12.0});
    minim.on_join(net, asg, v);
  }
  ASSERT_TRUE(minim::net::is_valid(net, asg));

  const std::vector<NodeConfig> joiners{{{35.0, 55.0}, 12.0}, {{45.0, 55.0}, 12.0}};
  const auto outcome = apply_parallel_joins(net, asg, joiners);
  EXPECT_LT(outcome.min_pairwise_hop_distance, 5u);
  // The two joiners are mutual neighbors computing with the same snapshot:
  // both pick colors independently; a conflict between them is possible and
  // expected here because both see identical constraint sets.
  const bool violated = !minim::net::is_valid(net, asg);
  EXPECT_TRUE(violated || outcome.overlapping_writes);
}

TEST(ParallelJoin, SingleJoinDegeneratesToSequential) {
  Rng rng(400);
  World world = build_world(15, 20.5, 30.5, rng);
  AdhocNetwork net_seq = world.network;
  CodeAssignment asg_seq = world.assignment;
  const NodeConfig config{{50, 50}, 25.0};

  MinimStrategy minim;
  const NodeId seq_id = net_seq.add_node(config);
  minim.on_join(net_seq, asg_seq, seq_id);

  const auto outcome = apply_parallel_joins(world.network, world.assignment, {config});
  EXPECT_EQ(outcome.joined.size(), 1u);
  for (NodeId v : net_seq.nodes())
    EXPECT_EQ(world.assignment.color(v), asg_seq.color(v));
}

}  // namespace
