// Distributed CP executor: exact equivalence with the centralized baseline,
// sane cost accounting, and stats-sink plumbing.

#include "proto/distributed_cp.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "net/constraints.hpp"
#include "proto/distributed_minim.hpp"
#include "strategies/cp.hpp"
#include "util/rng.hpp"

namespace {

using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::NodeConfig;
using minim::net::NodeId;
using minim::proto::DistributedCp;
using minim::strategies::CpStrategy;
using minim::test::build_world;
using minim::test::World;
using minim::util::Rng;

class DistributedCpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedCpTest, JoinMatchesCentralizedCp) {
  Rng rng(GetParam());
  World world = build_world(30, 20.5, 30.5, rng);
  const NodeConfig config{{rng.uniform(0, 100), rng.uniform(0, 100)},
                          rng.uniform(20.5, 30.5)};

  AdhocNetwork net_c = world.network;
  CodeAssignment asg_c = world.assignment;
  CpStrategy cp;
  const NodeId id_c = net_c.add_node(config);
  const auto report_c = cp.on_join(net_c, asg_c, id_c);

  AdhocNetwork net_d = world.network;
  CodeAssignment asg_d = world.assignment;
  DistributedCp protocol;
  const NodeId id_d = net_d.add_node(config);
  const auto result = protocol.join(net_d, asg_d, id_d);

  for (NodeId v : net_c.nodes()) ASSERT_EQ(asg_c.color(v), asg_d.color(v));
  EXPECT_EQ(result.report.recodings(), report_c.recodings());
  EXPECT_TRUE(minim::net::is_valid(net_d, asg_d));
}

TEST_P(DistributedCpTest, MoveAndPowerMatchCentralized) {
  Rng rng(GetParam() + 777);
  World world = build_world(25, 20.5, 30.5, rng);
  const NodeId mover = world.ids[rng.below(world.ids.size())];

  AdhocNetwork net_c = world.network;
  CodeAssignment asg_c = world.assignment;
  AdhocNetwork net_d = world.network;
  CodeAssignment asg_d = world.assignment;

  const minim::util::Vec2 target{rng.uniform(0, 100), rng.uniform(0, 100)};
  CpStrategy cp;
  DistributedCp protocol;
  net_c.set_position(mover, target);
  cp.on_move(net_c, asg_c, mover);
  net_d.set_position(mover, target);
  protocol.move(net_d, asg_d, mover);
  for (NodeId v : net_c.nodes()) ASSERT_EQ(asg_c.color(v), asg_d.color(v));

  const NodeId riser = world.ids[rng.below(world.ids.size())];
  const double old_range = net_c.config(riser).range;
  net_c.set_range(riser, old_range * 2.0);
  cp.on_power_change(net_c, asg_c, riser, old_range);
  net_d.set_range(riser, old_range * 2.0);
  protocol.power_increase(net_d, asg_d, riser, old_range);
  for (NodeId v : net_c.nodes()) ASSERT_EQ(asg_c.color(v), asg_d.color(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedCpTest,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

TEST(DistributedCpCost, ScalesWithCandidatesNotNetwork) {
  // An isolated joiner exchanges only beacons + its own snapshot/commit.
  Rng rng(900);
  World world = build_world(50, 10.0, 14.0, rng);
  AdhocNetwork net = world.network;
  CodeAssignment asg = world.assignment;
  const NodeId loner = net.add_node({{0.0, 0.0}, 0.5});
  DistributedCp protocol;
  const auto result = protocol.join(net, asg, loner);
  const std::size_t k = net.heard_by(loner).size();
  // beacons (k) + per-candidate: snapshot pair + <=rounds announcements +
  // commit; the candidate set here is {loner} plus duplicate-colored
  // neighbors, all <= k + 1.
  EXPECT_LE(result.cost.messages,
            k + (k + 1) * (3 + result.cost.rounds));
}

TEST(DistributedCpCost, MoreCoordinationThanMinim) {
  // With several duplicate-colored in-neighbors, CP's peer coordination
  // costs more radio transmissions than Minim's centralized exchange.
  Rng rng(901);
  World world = build_world(40, 25.0, 35.0, rng);
  const NodeConfig config{{50, 50}, 30.0};

  AdhocNetwork net_m = world.network;
  CodeAssignment asg_m = world.assignment;
  minim::proto::DistributedMinim minim_protocol;
  const auto rm = minim_protocol.join(net_m, asg_m, net_m.add_node(config));

  AdhocNetwork net_c = world.network;
  CodeAssignment asg_c = world.assignment;
  DistributedCp cp_protocol;
  const auto rc = cp_protocol.join(net_c, asg_c, net_c.add_node(config));

  EXPECT_GE(rc.cost.hop_count, rm.cost.hop_count / 2)
      << "sanity: both in the same order of magnitude";
  EXPECT_GT(rc.cost.rounds, 0u);
}

TEST(CpRunStats, SinkFilledAndDetached) {
  Rng rng(902);
  World world = build_world(20, 25.0, 35.0, rng);
  CpStrategy cp;
  CpStrategy::RunStats stats;
  cp.set_stats_sink(&stats);
  const NodeId joiner = world.network.add_node({{50, 50}, 30.0});
  cp.on_join(world.network, world.assignment, joiner);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_FALSE(stats.candidates.empty());
  EXPECT_EQ(stats.candidates.size(), stats.vicinity_sizes.size());
  EXPECT_EQ(stats.pending_per_round.size(), stats.rounds);
  EXPECT_EQ(stats.pending_per_round.front(), stats.candidates.size());

  // Detach: further operations must not touch the old sink.
  cp.set_stats_sink(nullptr);
  const auto snapshot_rounds = stats.rounds;
  const NodeId joiner2 = world.network.add_node({{25, 25}, 30.0});
  cp.on_join(world.network, world.assignment, joiner2);
  EXPECT_EQ(stats.rounds, snapshot_rounds);
}

}  // namespace
