#pragma once

/// \file event_fuzz.hpp
/// \brief Differential event-sequence fuzzing for incremental recoloring.
///
/// Three pieces, shared by the bounded-BBB fuzz soak (and reusable by any
/// strategy-equivalence test):
///
///   * `generate_events` — a seeded random event-sequence generator
///     (join/leave/move/power) over uniform, clustered, or Poisson-disk
///     placements, with optional adversarial "recolor storm" bursts that
///     hammer one node's range up and down to maximize witness churn;
///   * `replay_events` — a deterministic replayer that applies a sequence to
///     a fresh network and hands each applied event to a caller-supplied
///     property check;
///   * `shrink_events` — a delta-debugging (ddmin-style) chunk-removal
///     shrinker that reduces a failing sequence to a 1-minimal repro, plus
///     `format_repro`/`parse_repro` so the minimal sequence round-trips
///     through the test log as replayable text.
///
/// Events are self-contained values (no pointers into the generator), so a
/// subsequence of a valid sequence is always itself replayable: victims are
/// selected as `live[pick % live.size()]`, which stays well-defined no
/// matter which events the shrinker removed.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iomanip>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace minim::test {

enum class FuzzKind : std::uint8_t { kJoin, kLeave, kMove, kPower };

/// One self-contained network event.  `pick` is a raw 64-bit selector; the
/// victim of leave/move/power is `live[pick % live.size()]` at replay time.
struct FuzzEvent {
  FuzzKind kind = FuzzKind::kJoin;
  double x = 0.0;            ///< join/move position
  double y = 0.0;
  double range = 0.0;        ///< join/power transmission range
  std::uint64_t pick = 0;    ///< leave/move/power victim selector
};

enum class FuzzPlacement : std::uint8_t { kUniform, kClustered, kPoissonDisk };

inline const char* to_string(FuzzPlacement p) {
  switch (p) {
    case FuzzPlacement::kUniform: return "uniform";
    case FuzzPlacement::kClustered: return "clustered";
    case FuzzPlacement::kPoissonDisk: return "poisson-disk";
  }
  return "?";
}

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t events = 10000;
  FuzzPlacement placement = FuzzPlacement::kUniform;
  double world = 100.0;          ///< square side; positions in [0, world)
  double min_range = 8.0;
  double max_range = 30.0;
  std::size_t target_live = 120; ///< population the join/leave mix steers toward
  double storm_chance = 0.002;   ///< per-event chance to start a recolor storm
};

/// Generates `cfg.events` events.  The generator mirrors the replay's live
/// list (same pick-selection and erase semantics) so placements can react to
/// the population — Poisson-disk rejection against current positions, storm
/// moves jittering around the victim's actual location.
inline std::vector<FuzzEvent> generate_events(const FuzzConfig& cfg) {
  util::Rng rng(cfg.seed);
  std::vector<FuzzEvent> out;
  out.reserve(cfg.events);
  std::vector<std::pair<double, double>> live;  // mirror of replay positions

  std::vector<std::pair<double, double>> centers;
  for (int i = 0; i < 5; ++i)
    centers.emplace_back(rng.uniform(0, cfg.world), rng.uniform(0, cfg.world));

  const auto clamp = [&cfg](double t) {
    return std::clamp(t, 0.0, std::nextafter(cfg.world, 0.0));
  };
  const auto place = [&]() -> std::pair<double, double> {
    switch (cfg.placement) {
      case FuzzPlacement::kUniform:
        break;
      case FuzzPlacement::kClustered: {
        const auto& [cx, cy] = centers[rng.below(centers.size())];
        return {clamp(cx + rng.normal() * cfg.world * 0.06),
                clamp(cy + rng.normal() * cfg.world * 0.06)};
      }
      case FuzzPlacement::kPoissonDisk: {
        // Dart throwing against the current population; falls back to a
        // uniform dart when the domain is saturated.
        const double r =
            0.7 * cfg.world /
            std::sqrt(static_cast<double>(cfg.target_live) + 1.0);
        for (int attempt = 0; attempt < 30; ++attempt) {
          const double px = rng.uniform(0, cfg.world);
          const double py = rng.uniform(0, cfg.world);
          bool clear = true;
          for (const auto& [qx, qy] : live) {
            const double dx = px - qx;
            const double dy = py - qy;
            if (dx * dx + dy * dy < r * r) {
              clear = false;
              break;
            }
          }
          if (clear) return {px, py};
        }
        break;
      }
    }
    return {rng.uniform(0, cfg.world), rng.uniform(0, cfg.world)};
  };

  std::size_t storm_left = 0;
  std::uint64_t storm_pick = 0;
  bool storm_high = false;

  while (out.size() < cfg.events) {
    FuzzEvent e;
    if (storm_left > 0 && !live.empty()) {
      // Storm: hammer one victim's range between extremes, with occasional
      // small moves — maximal witness add/retract churn around one node.
      --storm_left;
      e.pick = storm_pick;
      const std::size_t index = e.pick % live.size();
      if (rng.chance(0.25)) {
        e.kind = FuzzKind::kMove;
        e.x = clamp(live[index].first + rng.normal() * cfg.world * 0.01);
        e.y = clamp(live[index].second + rng.normal() * cfg.world * 0.01);
        live[index] = {e.x, e.y};
      } else {
        e.kind = FuzzKind::kPower;
        storm_high = !storm_high;
        e.range = storm_high ? cfg.max_range : cfg.min_range;
      }
      out.push_back(e);
      continue;
    }
    if (!live.empty() && rng.chance(cfg.storm_chance)) {
      storm_left = 8 + rng.below(17);
      storm_pick = rng();
      storm_high = false;
      continue;
    }

    const double roll = rng.uniform01();
    const bool under = live.size() < cfg.target_live;
    const double p_join = live.size() < 5 ? 1.0 : (under ? 0.40 : 0.20);
    const double p_leave = p_join + (under ? 0.12 : 0.32);
    if (roll < p_join) {
      e.kind = FuzzKind::kJoin;
      std::tie(e.x, e.y) = place();
      e.range = rng.uniform(cfg.min_range, cfg.max_range);
      live.emplace_back(e.x, e.y);
    } else if (roll < p_leave) {
      e.kind = FuzzKind::kLeave;
      e.pick = rng();
      live.erase(live.begin() +
                 static_cast<std::ptrdiff_t>(e.pick % live.size()));
    } else if (roll < p_leave + 0.18) {
      e.kind = FuzzKind::kMove;
      e.pick = rng();
      std::tie(e.x, e.y) = place();
      live[e.pick % live.size()] = {e.x, e.y};
    } else {
      e.kind = FuzzKind::kPower;
      e.pick = rng();
      e.range = rng.uniform(cfg.min_range, cfg.max_range);
    }
    out.push_back(e);
  }
  return out;
}

/// What `replay_events` just applied to the network.
struct AppliedEvent {
  FuzzKind kind = FuzzKind::kJoin;
  net::NodeId subject = net::kInvalidNode;
  double old_range = 0.0;  ///< power events: the pre-event range
};

inline constexpr std::size_t kFuzzPassed = static_cast<std::size_t>(-1);

/// Replays `events` against a fresh network.  After each network mutation,
/// `on_event(net, applied, index)` runs the caller's property; returning
/// false aborts the replay.  A leave removes the node from the network
/// before the callback (the engine's event order); the callback clears any
/// per-assignment state itself.  Returns the index of the first event whose
/// callback returned false, or `kFuzzPassed`.
template <typename OnEvent>
std::size_t replay_events(const FuzzConfig& cfg,
                          std::span<const FuzzEvent> events,
                          OnEvent&& on_event) {
  net::AdhocNetwork net{cfg.world, cfg.world};
  std::vector<net::NodeId> live;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FuzzEvent& e = events[i];
    AppliedEvent applied;
    applied.kind = e.kind;
    if (e.kind == FuzzKind::kJoin) {
      applied.subject = net.add_node({{e.x, e.y}, e.range});
      live.push_back(applied.subject);
    } else {
      if (live.empty()) continue;  // shrunk-away joins: victim events no-op
      const std::size_t index =
          static_cast<std::size_t>(e.pick % live.size());
      applied.subject = live[index];
      switch (e.kind) {
        case FuzzKind::kLeave:
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
          net.remove_node(applied.subject);
          break;
        case FuzzKind::kMove:
          net.set_position(applied.subject, {e.x, e.y});
          break;
        case FuzzKind::kPower:
          applied.old_range = net.config(applied.subject).range;
          net.set_range(applied.subject, e.range);
          break;
        case FuzzKind::kJoin:
          break;  // unreachable
      }
    }
    if (!on_event(net, applied, i)) return i;
  }
  return kFuzzPassed;
}

struct ShrinkResult {
  std::vector<FuzzEvent> events;
  std::size_t replays = 0;
  /// True when the result is 1-minimal: removing any single remaining event
  /// makes the sequence pass.  False only when `max_replays` ran out first.
  bool minimal = false;
};

/// Delta-debugging shrink: repeatedly removes chunks (halving the chunk size
/// down to single events) while `fails` keeps returning true, capped at
/// `max_replays` replays.  `fails(events)` must be deterministic.
inline ShrinkResult shrink_events(
    std::vector<FuzzEvent> events,
    const std::function<bool(std::span<const FuzzEvent>)>& fails,
    std::size_t max_replays = 400) {
  ShrinkResult result;
  bool clean_final_sweep = false;
  for (std::size_t chunk = std::max<std::size_t>(1, events.size() / 2);
       chunk >= 1; chunk /= 2) {
    bool progress = true;
    while (progress && result.replays < max_replays) {
      progress = false;
      for (std::size_t start = 0;
           start < events.size() && result.replays < max_replays;) {
        const std::size_t end = std::min(events.size(), start + chunk);
        std::vector<FuzzEvent> candidate;
        candidate.reserve(events.size() - (end - start));
        candidate.insert(candidate.end(), events.begin(),
                         events.begin() + static_cast<std::ptrdiff_t>(start));
        candidate.insert(candidate.end(),
                         events.begin() + static_cast<std::ptrdiff_t>(end),
                         events.end());
        ++result.replays;
        if (fails(candidate)) {
          events = std::move(candidate);
          progress = true;  // keep start: the next chunk slid into place
        } else {
          start = end;
        }
      }
      if (chunk == 1 && !progress) clean_final_sweep = true;
    }
    if (chunk == 1) break;
  }
  result.minimal = clean_final_sweep && result.replays < max_replays;
  result.events = std::move(events);
  return result;
}

/// Renders a failing sequence as replayable text: a header line with the
/// generating config, then one line per event.  `parse_repro` inverts it.
inline std::string format_repro(const FuzzConfig& cfg,
                                std::span<const FuzzEvent> events) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "# fuzz-repro seed=" << cfg.seed
      << " placement=" << to_string(cfg.placement)
      << " world=" << cfg.world << " events=" << events.size() << "\n";
  for (const FuzzEvent& e : events) {
    switch (e.kind) {
      case FuzzKind::kJoin:
        out << "J " << e.x << ' ' << e.y << ' ' << e.range << "\n";
        break;
      case FuzzKind::kLeave:
        out << "L " << e.pick << "\n";
        break;
      case FuzzKind::kMove:
        out << "M " << e.pick << ' ' << e.x << ' ' << e.y << "\n";
        break;
      case FuzzKind::kPower:
        out << "P " << e.pick << ' ' << e.range << "\n";
        break;
    }
  }
  return out.str();
}

/// Parses `format_repro` output (header and blank lines ignored) back into
/// an event sequence, so a logged minimal repro can be pasted into a test.
inline std::vector<FuzzEvent> parse_repro(const std::string& text) {
  std::vector<FuzzEvent> events;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    FuzzEvent e;
    switch (tag) {
      case 'J':
        e.kind = FuzzKind::kJoin;
        fields >> e.x >> e.y >> e.range;
        break;
      case 'L':
        e.kind = FuzzKind::kLeave;
        fields >> e.pick;
        break;
      case 'M':
        e.kind = FuzzKind::kMove;
        fields >> e.pick >> e.x >> e.y;
        break;
      case 'P':
        e.kind = FuzzKind::kPower;
        fields >> e.pick >> e.range;
        break;
      default:
        continue;  // unknown tag: skip
    }
    if (fields.fail()) continue;
    events.push_back(e);
  }
  return events;
}

}  // namespace minim::test
