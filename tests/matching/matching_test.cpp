// Exactness of the maximum-weight matcher is what the paper's minimality and
// optimality theorems stand on; these tests pin it against an exhaustive
// oracle across thousands of random instances.

#include <gtest/gtest.h>

#include <stdexcept>

#include "matching/bipartite_graph.hpp"
#include "matching/brute_force.hpp"
#include "matching/heuristics.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/hungarian.hpp"
#include "util/rng.hpp"

namespace {

using minim::matching::BipartiteGraph;
using minim::matching::brute_force_max_weight_matching;
using minim::matching::greedy_matching;
using minim::matching::is_valid_matching;
using minim::matching::MatchingResult;
using minim::matching::max_cardinality_matching;
using minim::matching::max_weight_matching;
using minim::util::Rng;

// -------------------------------------------------------- BipartiteGraph

TEST(BipartiteGraph, BasicAccessors) {
  BipartiteGraph g(2, 3);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 1);
  EXPECT_EQ(g.left_size(), 2u);
  EXPECT_EQ(g.right_size(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.weight(0, 1), 3);
  EXPECT_EQ(g.weight(0, 0), 0);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(BipartiteGraph, RejectsBadEdges) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0, 1), std::invalid_argument);  // left OOR
  EXPECT_THROW(g.add_edge(0, 2, 1), std::invalid_argument);  // right OOR
  EXPECT_THROW(g.add_edge(0, 0, 0), std::invalid_argument);  // non-positive
  g.add_edge(0, 0, 1);
  EXPECT_THROW(g.add_edge(0, 0, 2), std::invalid_argument);  // duplicate
}

TEST(BipartiteGraph, ValidMatchingChecker) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 3);
  g.add_edge(1, 1, 1);
  MatchingResult ok;
  ok.left_to_right = {0, 1};
  ok.total_weight = 4;
  EXPECT_TRUE(is_valid_matching(g, ok));

  MatchingResult non_edge = ok;
  non_edge.left_to_right = {1, 0};  // neither (0,1) nor (1,0) exists
  EXPECT_FALSE(is_valid_matching(g, non_edge));

  MatchingResult wrong_weight = ok;
  wrong_weight.total_weight = 5;
  EXPECT_FALSE(is_valid_matching(g, wrong_weight));
}

TEST(BipartiteGraph, DuplicateRightRejectedByChecker) {
  BipartiteGraph g(2, 1);
  g.add_edge(0, 0, 1);
  g.add_edge(1, 0, 1);
  MatchingResult m;
  m.left_to_right = {0, 0};
  m.total_weight = 2;
  EXPECT_FALSE(is_valid_matching(g, m));
}

// -------------------------------------------------------- Hungarian, basics

TEST(Hungarian, EmptyGraph) {
  BipartiteGraph g(0, 0);
  const auto m = max_weight_matching(g);
  EXPECT_TRUE(m.left_to_right.empty());
  EXPECT_EQ(m.total_weight, 0);
}

TEST(Hungarian, NoEdgesLeavesAllUnmatched) {
  BipartiteGraph g(3, 2);
  const auto m = max_weight_matching(g);
  for (auto r : m.left_to_right) EXPECT_EQ(r, MatchingResult::kUnmatched);
  EXPECT_EQ(m.total_weight, 0);
}

TEST(Hungarian, SingleEdge) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 3);
  const auto m = max_weight_matching(g);
  EXPECT_EQ(m.left_to_right[0], 0u);
  EXPECT_EQ(m.total_weight, 3);
}

TEST(Hungarian, PrefersHeavyEdgeOverTwoLight) {
  // Wait — 3 > 1 + 1 is the paper's weight inequality.  Left 0 can take the
  // weight-3 edge to right 0, or leave it for left 1; taking it plus left
  // 1's weight-1 edge to right 1 is optimal.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 3);
  g.add_edge(1, 0, 1);
  g.add_edge(1, 1, 1);
  const auto m = max_weight_matching(g);
  EXPECT_EQ(m.total_weight, 4);
  EXPECT_EQ(m.left_to_right[0], 0u);
  EXPECT_EQ(m.left_to_right[1], 1u);
}

TEST(Hungarian, WeightBeatsCardinality) {
  // One heavy edge (10) on the only right vertex vs two light edges that
  // cannot coexist: max weight picks the single heavy edge.
  BipartiteGraph g(2, 1);
  g.add_edge(0, 0, 10);
  g.add_edge(1, 0, 1);
  const auto m = max_weight_matching(g);
  EXPECT_EQ(m.total_weight, 10);
  EXPECT_EQ(m.left_to_right[0], 0u);
  EXPECT_EQ(m.left_to_right[1], MatchingResult::kUnmatched);
}

TEST(Hungarian, AugmentingPathDisplacement) {
  // Classic alternating-path case: greedy would match (0,0) and strand 1;
  // the exact solver must re-route 0 to right 1.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 1);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  const auto m = max_weight_matching(g);
  EXPECT_EQ(m.cardinality(), 2u);
  EXPECT_EQ(m.total_weight, 2);
}

TEST(Hungarian, ResultIsAlwaysValidMatching) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const auto l = static_cast<std::uint32_t>(1 + rng.below(8));
    const auto r = static_cast<std::uint32_t>(1 + rng.below(10));
    BipartiteGraph g(l, r);
    for (std::uint32_t i = 0; i < l; ++i)
      for (std::uint32_t j = 0; j < r; ++j)
        if (rng.chance(0.4))
          g.add_edge(i, j, rng.chance(0.3) ? 3 : 1);
    const auto m = max_weight_matching(g);
    ASSERT_TRUE(is_valid_matching(g, m)) << "trial " << trial;
  }
}

// ------------------------------------------- Hungarian vs exhaustive oracle

struct RandomInstanceParams {
  std::uint32_t max_left;
  std::uint32_t max_right;
  double density;
  bool paper_weights;  // 3/1 scheme vs arbitrary weights in [1, 9]
};

class HungarianOracleTest : public ::testing::TestWithParam<RandomInstanceParams> {};

TEST_P(HungarianOracleTest, MatchesBruteForceWeight) {
  const auto param = GetParam();
  Rng rng(1000 + param.max_left * 31 + param.max_right * 7 +
          static_cast<std::uint64_t>(param.density * 100));
  for (int trial = 0; trial < 150; ++trial) {
    const auto l = static_cast<std::uint32_t>(1 + rng.below(param.max_left));
    const auto r = static_cast<std::uint32_t>(1 + rng.below(param.max_right));
    BipartiteGraph g(l, r);
    for (std::uint32_t i = 0; i < l; ++i)
      for (std::uint32_t j = 0; j < r; ++j)
        if (rng.chance(param.density)) {
          const auto w = param.paper_weights
                             ? (rng.chance(0.3) ? 3 : 1)
                             : static_cast<minim::matching::Weight>(1 + rng.below(9));
          g.add_edge(i, j, w);
        }
    const auto exact = max_weight_matching(g);
    const auto oracle = brute_force_max_weight_matching(g);
    ASSERT_TRUE(is_valid_matching(g, exact));
    ASSERT_EQ(exact.total_weight, oracle.total_weight)
        << "trial " << trial << " l=" << l << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, HungarianOracleTest,
    ::testing::Values(RandomInstanceParams{4, 4, 0.5, true},
                      RandomInstanceParams{6, 4, 0.4, true},
                      RandomInstanceParams{4, 8, 0.6, true},
                      RandomInstanceParams{7, 7, 0.3, true},
                      RandomInstanceParams{5, 5, 0.8, true},
                      RandomInstanceParams{4, 4, 0.5, false},
                      RandomInstanceParams{6, 5, 0.4, false},
                      RandomInstanceParams{5, 9, 0.7, false}));

// -------------------------------------------------------- Hopcroft-Karp

TEST(HopcroftKarp, PerfectMatchingOnCompleteGraph) {
  BipartiteGraph g(4, 4);
  for (std::uint32_t i = 0; i < 4; ++i)
    for (std::uint32_t j = 0; j < 4; ++j) g.add_edge(i, j, 1);
  const auto m = max_cardinality_matching(g);
  EXPECT_EQ(m.cardinality(), 4u);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(HopcroftKarp, CardinalityMatchesHungarianUnderUniformWeights) {
  Rng rng(33);
  for (int trial = 0; trial < 100; ++trial) {
    const auto l = static_cast<std::uint32_t>(1 + rng.below(9));
    const auto r = static_cast<std::uint32_t>(1 + rng.below(9));
    BipartiteGraph g(l, r);
    for (std::uint32_t i = 0; i < l; ++i)
      for (std::uint32_t j = 0; j < r; ++j)
        if (rng.chance(0.35)) g.add_edge(i, j, 1);
    const auto hk = max_cardinality_matching(g);
    const auto hung = max_weight_matching(g);
    // With unit weights, max weight == max cardinality.
    ASSERT_EQ(hk.cardinality(), hung.cardinality()) << "trial " << trial;
    ASSERT_TRUE(is_valid_matching(g, hk));
  }
}

TEST(HopcroftKarp, IgnoresWeights) {
  // Cardinality 2 with light edges beats cardinality 1 with the heavy edge.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 100);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  const auto m = max_cardinality_matching(g);
  EXPECT_EQ(m.cardinality(), 2u);
}

// -------------------------------------------------------- Greedy heuristic

TEST(Greedy, ProducesValidMatching) {
  Rng rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    const auto l = static_cast<std::uint32_t>(1 + rng.below(10));
    const auto r = static_cast<std::uint32_t>(1 + rng.below(10));
    BipartiteGraph g(l, r);
    for (std::uint32_t i = 0; i < l; ++i)
      for (std::uint32_t j = 0; j < r; ++j)
        if (rng.chance(0.4)) g.add_edge(i, j, rng.chance(0.3) ? 3 : 1);
    ASSERT_TRUE(is_valid_matching(g, greedy_matching(g)));
  }
}

TEST(Greedy, AtLeastHalfOfOptimalWeight) {
  Rng rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    const auto l = static_cast<std::uint32_t>(1 + rng.below(8));
    const auto r = static_cast<std::uint32_t>(1 + rng.below(8));
    BipartiteGraph g(l, r);
    for (std::uint32_t i = 0; i < l; ++i)
      for (std::uint32_t j = 0; j < r; ++j)
        if (rng.chance(0.5))
          g.add_edge(i, j, static_cast<minim::matching::Weight>(1 + rng.below(9)));
    const auto greedy = greedy_matching(g);
    const auto exact = max_weight_matching(g);
    ASSERT_GE(2 * greedy.total_weight, exact.total_weight);
  }
}

TEST(Greedy, CanBeSuboptimal) {
  // Greedy takes the 5 edge and strands left 1; optimal takes 4 + 3 = 7.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 5);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 0, 3);
  EXPECT_EQ(greedy_matching(g).total_weight, 5);
  EXPECT_EQ(max_weight_matching(g).total_weight, 7);
}

// -------------------------------------------------------- Brute force

TEST(BruteForce, RefusesLargeInstances) {
  BipartiteGraph g(13, 2);
  EXPECT_THROW(brute_force_max_weight_matching(g), std::invalid_argument);
}

TEST(BruteForce, HandlesIsolatedLeftVertices) {
  BipartiteGraph g(3, 1);
  g.add_edge(1, 0, 2);
  const auto m = brute_force_max_weight_matching(g);
  EXPECT_EQ(m.total_weight, 2);
  EXPECT_EQ(m.left_to_right[0], MatchingResult::kUnmatched);
  EXPECT_EQ(m.left_to_right[1], 0u);
}

}  // namespace
