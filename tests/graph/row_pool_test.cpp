// Pooled CSR row storage: sortedness, growth/relocation, compaction, arena
// reuse, and the replace_row bulk path — randomized against a
// vector-of-vectors reference.

#include "graph/row_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/rng.hpp"

namespace {

using minim::graph::CountedRowPool;
using minim::graph::NodeId;
using minim::graph::RowPool;

std::vector<NodeId> to_vec(std::span<const NodeId> s) {
  return std::vector<NodeId>(s.begin(), s.end());
}

TEST(RowPool, InsertEraseKeepsRowsSortedUnique) {
  RowPool pool;
  EXPECT_TRUE(pool.insert_sorted(3, 7));
  EXPECT_TRUE(pool.insert_sorted(3, 2));
  EXPECT_TRUE(pool.insert_sorted(3, 5));
  EXPECT_FALSE(pool.insert_sorted(3, 5));  // duplicate
  EXPECT_EQ(to_vec(pool.row(3)), (std::vector<NodeId>{2, 5, 7}));
  EXPECT_TRUE(pool.contains(3, 5));
  EXPECT_FALSE(pool.contains(3, 4));
  EXPECT_TRUE(pool.erase_sorted(3, 5));
  EXPECT_FALSE(pool.erase_sorted(3, 5));  // already gone
  EXPECT_EQ(to_vec(pool.row(3)), (std::vector<NodeId>{2, 7}));
  EXPECT_TRUE(pool.row(99).empty());  // unknown rows read as empty
}

TEST(RowPool, RandomizedSoakMatchesReference) {
  minim::util::Rng rng(4242);
  RowPool pool;
  std::vector<std::vector<NodeId>> reference(40);
  for (int step = 0; step < 20000; ++step) {
    const auto r = static_cast<std::uint32_t>(rng.below(reference.size()));
    const auto v = static_cast<NodeId>(rng.below(200));
    std::vector<NodeId>& ref = reference[r];
    if (rng.chance(0.6)) {
      const bool inserted = pool.insert_sorted(r, v);
      const auto it = std::lower_bound(ref.begin(), ref.end(), v);
      const bool expect = it == ref.end() || *it != v;
      ASSERT_EQ(inserted, expect);
      if (expect) ref.insert(it, v);
    } else if (rng.chance(0.8)) {
      const bool erased = pool.erase_sorted(r, v);
      const auto it = std::lower_bound(ref.begin(), ref.end(), v);
      const bool expect = it != ref.end() && *it == v;
      ASSERT_EQ(erased, expect);
      if (expect) ref.erase(it);
    } else {
      pool.clear_row(r);
      ref.clear();
    }
    if (step % 500 == 0) {
      for (std::uint32_t row = 0; row < reference.size(); ++row)
        ASSERT_EQ(to_vec(pool.row(row)), reference[row]) << "row " << row;
    }
  }
  for (std::uint32_t row = 0; row < reference.size(); ++row)
    ASSERT_EQ(to_vec(pool.row(row)), reference[row]);
  EXPECT_GT(pool.memory_bytes(), 0u);
}

TEST(RowPool, ClearResetsContentButKeepsRows) {
  RowPool pool;
  for (NodeId v = 0; v < 100; ++v) pool.insert_sorted(1, v);
  pool.clear();
  EXPECT_TRUE(pool.row(1).empty());
  EXPECT_EQ(pool.row_count(), 2u);  // refs survive for arena reuse
  EXPECT_TRUE(pool.insert_sorted(1, 42));
  EXPECT_EQ(to_vec(pool.row(1)), (std::vector<NodeId>{42}));
}

TEST(CountedRowPool, CountsFollowIdsThroughGrowthAndCompaction) {
  minim::util::Rng rng(99);
  CountedRowPool pool;
  std::vector<std::map<NodeId, std::uint32_t>> reference(16);
  for (int step = 0; step < 20000; ++step) {
    const auto r = static_cast<std::uint32_t>(rng.below(reference.size()));
    const auto v = static_cast<NodeId>(rng.below(150));
    auto& ref = reference[r];
    const auto it = ref.find(v);
    if (rng.chance(0.65)) {
      if (std::uint32_t* count = pool.find(r, v)) {
        ASSERT_TRUE(it != ref.end());
        ++*count;
        ++it->second;
      } else {
        ASSERT_TRUE(it == ref.end());
        pool.insert(r, v, 1);
        ref[v] = 1;
      }
    } else if (it != ref.end()) {
      std::uint32_t* count = pool.find(r, v);
      ASSERT_NE(count, nullptr);
      if (--*count == 0) pool.erase(r, v);
      if (--it->second == 0) ref.erase(it);
    }
    if (step % 1000 == 0) {
      for (std::uint32_t row = 0; row < reference.size(); ++row) {
        const auto ids = pool.ids(row);
        const auto counts = pool.counts(row);
        ASSERT_EQ(ids.size(), reference[row].size());
        std::size_t i = 0;
        for (const auto& [id, count] : reference[row]) {
          ASSERT_EQ(ids[i], id);
          ASSERT_EQ(counts[i], count);
          ++i;
        }
      }
    }
  }
}

TEST(CountedRowPool, ReplaceRowOverwritesAndGrows) {
  CountedRowPool pool;
  pool.insert(0, 5, 2);
  pool.insert(0, 9, 1);
  pool.insert(1, 1, 7);  // neighbor row must be untouched by the replace

  std::vector<NodeId> ids;
  std::vector<std::uint32_t> counts;
  for (NodeId v = 0; v < 50; ++v) {
    ids.push_back(v * 2);
    counts.push_back(v + 1);
  }
  pool.replace_row(0, ids, counts);
  ASSERT_EQ(pool.size(0), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(pool.ids(0)[i], ids[i]);
    EXPECT_EQ(pool.counts(0)[i], counts[i]);
  }
  EXPECT_EQ(to_vec(pool.ids(1)), (std::vector<NodeId>{1}));
  EXPECT_EQ(pool.counts(1)[0], 7u);

  // Shrinking replace reuses the slot in place.
  const std::vector<NodeId> small_ids{3};
  const std::vector<std::uint32_t> small_counts{4};
  pool.replace_row(0, small_ids, small_counts);
  ASSERT_EQ(pool.size(0), 1u);
  EXPECT_EQ(pool.ids(0)[0], 3u);
  EXPECT_EQ(pool.counts(0)[0], 4u);
}

}  // namespace
