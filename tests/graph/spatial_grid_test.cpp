#include "graph/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace {

using minim::graph::NodeId;
using minim::graph::SpatialGrid;
using minim::util::Rng;
using minim::util::Vec2;

bool contains(const std::vector<NodeId>& xs, NodeId v) {
  return std::find(xs.begin(), xs.end(), v) != xs.end();
}

TEST(SpatialGrid, InsertAndQuery) {
  SpatialGrid grid(100, 100, 10);
  grid.insert(1, {50, 50});
  grid.insert(2, {90, 90});
  std::vector<NodeId> out;
  grid.query_disc({50, 50}, 5, out);
  EXPECT_TRUE(contains(out, 1));
  EXPECT_FALSE(contains(out, 2));
  EXPECT_EQ(grid.size(), 2u);
}

TEST(SpatialGrid, QueryIsSupersetWithinRadius) {
  // The grid may over-return (cell granularity) but must never miss a point
  // inside the disc.
  Rng rng(17);
  SpatialGrid grid(100, 100, 12.5);
  std::vector<Vec2> pos(200);
  for (NodeId i = 0; i < 200; ++i) {
    pos[i] = {rng.uniform(0, 100), rng.uniform(0, 100)};
    grid.insert(i, pos[i]);
  }
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 center{rng.uniform(0, 100), rng.uniform(0, 100)};
    const double radius = rng.uniform(1, 40);
    std::vector<NodeId> out;
    grid.query_disc(center, radius, out);
    for (NodeId i = 0; i < 200; ++i) {
      if (minim::util::distance(center, pos[i]) <= radius) {
        ASSERT_TRUE(contains(out, i)) << "missed point " << i;
      }
    }
  }
}

TEST(SpatialGrid, RemoveDropsPoint) {
  SpatialGrid grid(100, 100, 10);
  grid.insert(7, {10, 10});
  grid.remove(7, {10, 10});
  std::vector<NodeId> out;
  grid.query_disc({10, 10}, 50, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(grid.size(), 0u);
}

TEST(SpatialGrid, RemoveWrongCellThrows) {
  SpatialGrid grid(100, 100, 10);
  grid.insert(7, {10, 10});
  EXPECT_THROW(grid.remove(7, {90, 90}), std::invalid_argument);
}

TEST(SpatialGrid, MoveAcrossCells) {
  SpatialGrid grid(100, 100, 10);
  grid.insert(3, {5, 5});
  grid.move(3, {5, 5}, {95, 95});
  std::vector<NodeId> out;
  grid.query_disc({95, 95}, 2, out);
  EXPECT_TRUE(contains(out, 3));
  out.clear();
  grid.query_disc({5, 5}, 2, out);
  EXPECT_FALSE(contains(out, 3));
}

TEST(SpatialGrid, MoveWithinCellKeepsPoint) {
  SpatialGrid grid(100, 100, 50);
  grid.insert(4, {10, 10});
  grid.move(4, {10, 10}, {12, 12});  // same cell
  std::vector<NodeId> out;
  grid.query_disc({12, 12}, 1, out);
  EXPECT_TRUE(contains(out, 4));
}

TEST(SpatialGrid, ClampsOutOfFieldPositions) {
  SpatialGrid grid(100, 100, 10);
  grid.insert(9, {150, -20});  // clamped into the boundary cell
  std::vector<NodeId> out;
  grid.query_disc({100, 0}, 1, out);
  EXPECT_TRUE(contains(out, 9));
}

TEST(SpatialGrid, QueryDiscCoveringWholeFieldReturnsEverything) {
  SpatialGrid grid(100, 100, 10);
  for (NodeId i = 0; i < 20; ++i)
    grid.insert(i, {static_cast<double>(i * 5), static_cast<double>(i * 5)});
  std::vector<NodeId> out;
  grid.query_disc({50, 50}, 1000, out);
  EXPECT_EQ(out.size(), 20u);
}

TEST(SpatialGrid, RejectsBadConstruction) {
  EXPECT_THROW(SpatialGrid(0, 100, 10), std::invalid_argument);
  EXPECT_THROW(SpatialGrid(100, 100, 0), std::invalid_argument);
}

TEST(SpatialGrid, TinyFieldSingleCell) {
  SpatialGrid grid(1, 1, 10);  // cell bigger than field -> 1x1 grid
  grid.insert(0, {0.5, 0.5});
  std::vector<NodeId> out;
  grid.query_disc({0, 0}, 0.1, out);
  EXPECT_TRUE(contains(out, 0));  // superset semantics: same cell
}

}  // namespace
