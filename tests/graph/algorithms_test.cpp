#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "graph/digraph.hpp"

namespace {

using minim::graph::connected_components;
using minim::graph::Digraph;
using minim::graph::hop_distance;
using minim::graph::k_hop_ball;
using minim::graph::max_degree;
using minim::graph::NodeId;
using minim::graph::smallest_last_order;
using minim::graph::undirected_adjacency;

/// Directed path 0 -> 1 -> 2 -> ... -> n-1.
Digraph directed_path(int n) {
  Digraph g;
  for (int i = 0; i < n; ++i) g.add_node();
  for (int i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  return g;
}

TEST(KHopBall, HopsIgnoreEdgeDirection) {
  // Even though edges point one way, hop neighborhoods are undirected:
  // node 3 in a directed path sees both sides.
  Digraph g = directed_path(7);
  EXPECT_EQ(k_hop_ball(g, 3, 1), (std::vector<NodeId>{2, 4}));
  EXPECT_EQ(k_hop_ball(g, 3, 2), (std::vector<NodeId>{1, 2, 4, 5}));
  EXPECT_EQ(k_hop_ball(g, 3, 3), (std::vector<NodeId>{0, 1, 2, 4, 5, 6}));
}

TEST(KHopBall, ZeroHopsIsEmpty) {
  Digraph g = directed_path(3);
  EXPECT_TRUE(k_hop_ball(g, 1, 0).empty());
}

TEST(KHopBall, LargeKCoversComponentOnly) {
  Digraph g = directed_path(4);
  const NodeId isolated = g.add_node();
  const auto ball = k_hop_ball(g, 0, 100);
  EXPECT_EQ(ball, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_TRUE(std::find(ball.begin(), ball.end(), isolated) == ball.end());
}

TEST(KHopBall, DuplicatePathsCountedOnce) {
  // Diamond: 0->1, 0->2, 1->3, 2->3.
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(k_hop_ball(g, 0, 2), (std::vector<NodeId>{1, 2, 3}));
}

TEST(HopDistance, PathDistances) {
  Digraph g = directed_path(6);
  EXPECT_EQ(hop_distance(g, 0, 0), 0u);
  EXPECT_EQ(hop_distance(g, 0, 1), 1u);
  EXPECT_EQ(hop_distance(g, 0, 5), 5u);
  EXPECT_EQ(hop_distance(g, 5, 0), 5u);  // undirected view
}

TEST(HopDistance, UnreachableIsMax) {
  Digraph g;
  g.add_node();
  g.add_node();
  EXPECT_EQ(hop_distance(g, 0, 1), std::numeric_limits<std::size_t>::max());
}

TEST(ConnectedComponents, CountsAndLabels) {
  Digraph g = directed_path(3);  // component 0
  g.add_node();                  // 3: isolated, component 1
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b);  // component 2
  std::vector<std::size_t> component;
  EXPECT_EQ(connected_components(g, component), 3u);
  EXPECT_EQ(component[0], component[1]);
  EXPECT_EQ(component[1], component[2]);
  EXPECT_NE(component[0], component[3]);
  EXPECT_EQ(component[a], component[b]);
  EXPECT_NE(component[a], component[3]);
}

TEST(ConnectedComponents, EmptyGraph) {
  Digraph g;
  std::vector<std::size_t> component;
  EXPECT_EQ(connected_components(g, component), 0u);
}

TEST(MaxDegree, TakesMaxOfInAndOut) {
  Digraph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  // Node 0 has out-degree 4 (in-degree 0).
  for (NodeId v = 1; v < 5; ++v) g.add_edge(0, v);
  EXPECT_EQ(max_degree(g), 4u);
}

TEST(UndirectedAdjacency, MergesBothDirectionsNoDuplicates) {
  Digraph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // mutual edge must appear once
  g.add_edge(2, 0);
  const auto adj = undirected_adjacency(g);
  EXPECT_EQ(adj[0], (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(adj[1], (std::vector<NodeId>{0}));
  EXPECT_EQ(adj[2], (std::vector<NodeId>{0}));
}

TEST(SmallestLast, OrdersEveryVertexOnce) {
  Digraph g = directed_path(8);
  const auto adj = undirected_adjacency(g);
  auto order = smallest_last_order(adj, g.nodes());
  EXPECT_EQ(order.size(), 8u);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, g.nodes());
}

TEST(SmallestLast, CliqueAnyOrderIsFine) {
  Digraph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  for (NodeId u = 0; u < 5; ++u)
    for (NodeId v = 0; v < 5; ++v)
      if (u != v) g.add_edge(u, v);
  const auto adj = undirected_adjacency(g);
  const auto order = smallest_last_order(adj, g.nodes());
  EXPECT_EQ(order.size(), 5u);
}

TEST(SmallestLast, StarColoringOrderPutsHubEarly) {
  // Star: hub adjacent to all leaves.  Smallest-last eliminates leaves
  // first (the hub ties with the final leaf at degree 1), so the *coloring*
  // order has the hub in the first two positions — which is what bounds the
  // greedy coloring at 2 colors.
  Digraph g;
  const NodeId hub = g.add_node();
  for (int i = 0; i < 6; ++i) {
    const NodeId leaf = g.add_node();
    g.add_edge(hub, leaf);
  }
  const auto adj = undirected_adjacency(g);
  const auto order = smallest_last_order(adj, g.nodes());
  EXPECT_TRUE(order[0] == hub || order[1] == hub);
}

TEST(SmallestLast, SubsetRestrictsDegrees) {
  // Path 0-1-2-3; restricted to {0, 2, 3}, vertex 2-3 form an edge and 0 is
  // isolated.  All three must appear exactly once.
  Digraph g = directed_path(4);
  const auto adj = undirected_adjacency(g);
  auto order = smallest_last_order(adj, {0, 2, 3});
  EXPECT_EQ(order.size(), 3u);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<NodeId>{0, 2, 3}));
}

TEST(SmallestLast, EmptyVertexSet) {
  Digraph g = directed_path(3);
  const auto adj = undirected_adjacency(g);
  EXPECT_TRUE(smallest_last_order(adj, {}).empty());
}

}  // namespace
