#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using minim::graph::Digraph;
using minim::graph::NodeId;

TEST(Digraph, StartsEmpty) {
  Digraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.nodes().empty());
}

TEST(Digraph, AddNodesSequentialIds) {
  Digraph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.add_node(), 2u);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_TRUE(g.contains(1));
  EXPECT_FALSE(g.contains(3));
}

TEST(Digraph, RemovedIdsAreReusedLowestFirst) {
  Digraph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  g.remove_node(1);
  g.remove_node(3);
  EXPECT_EQ(g.add_node(), 1u);  // lowest free slot first
  EXPECT_EQ(g.add_node(), 3u);
  EXPECT_EQ(g.add_node(), 5u);  // then fresh
}

TEST(Digraph, EdgesAreDirected) {
  Digraph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, DuplicateEdgeIsNoop) {
  Digraph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.out_degree(0), 1u);
}

TEST(Digraph, SelfLoopRejected) {
  Digraph g;
  g.add_node();
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
}

TEST(Digraph, EdgeToUnknownNodeRejected) {
  Digraph g;
  g.add_node();
  EXPECT_THROW(g.add_edge(0, 9), std::invalid_argument);
}

TEST(Digraph, NeighborsSortedAscending) {
  Digraph g;
  for (int i = 0; i < 6; ++i) g.add_node();
  g.add_edge(0, 5);
  g.add_edge(0, 2);
  g.add_edge(0, 4);
  const auto outs = g.out_neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(outs.begin(), outs.end()),
            (std::vector<NodeId>{2, 4, 5}));
}

TEST(Digraph, InNeighborsMirrorOutEdges) {
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto ins = g.in_neighbors(3);
  EXPECT_EQ(std::vector<NodeId>(ins.begin(), ins.end()), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
}

TEST(Digraph, RemoveEdge) {
  Digraph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
  g.remove_edge(0, 1);  // idempotent
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, RemoveNodeDropsAllIncidentEdges) {
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(3, 1);
  g.remove_node(1);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.contains(1));
  EXPECT_TRUE(g.out_neighbors(0).empty());
  EXPECT_TRUE(g.in_neighbors(2).empty());
}

TEST(Digraph, ClearEdgesKeepsNode) {
  Digraph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(2, 0);
  g.clear_edges_of(0);
  EXPECT_TRUE(g.contains(0));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, ReusedSlotStartsClean) {
  Digraph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  g.remove_node(0);
  const NodeId reused = g.add_node();
  EXPECT_EQ(reused, 0u);
  EXPECT_TRUE(g.out_neighbors(reused).empty());
  EXPECT_TRUE(g.in_neighbors(reused).empty());
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Digraph, NodesListsOnlyAlive) {
  Digraph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  g.remove_node(2);
  EXPECT_EQ(g.nodes(), (std::vector<NodeId>{0, 1, 3, 4}));
  EXPECT_EQ(g.id_bound(), 5u);
}

TEST(Digraph, AccessorsOnDeadNodeThrow) {
  Digraph g;
  g.add_node();
  g.remove_node(0);
  EXPECT_THROW(g.out_neighbors(0), std::invalid_argument);
  EXPECT_THROW(g.remove_node(0), std::invalid_argument);
}

TEST(Digraph, LargeStarGraphDegrees) {
  Digraph g;
  const NodeId hub = g.add_node();
  for (int i = 0; i < 100; ++i) {
    const NodeId leaf = g.add_node();
    g.add_edge(hub, leaf);
    g.add_edge(leaf, hub);
  }
  EXPECT_EQ(g.out_degree(hub), 100u);
  EXPECT_EQ(g.in_degree(hub), 100u);
  EXPECT_EQ(g.edge_count(), 200u);
}

}  // namespace
