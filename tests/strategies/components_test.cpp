// DirtyComponents: the rank-bounded closure decomposer behind BbbStrategy's
// component-parallel recoloring.  Crafted topologies pin the independence
// contract — one giant component, all singletons, two regions sharing a
// boundary-rank node (earlier rank: stays split; later rank: must merge),
// departed/reborn ids — plus the budget-cap refusal and scratch reuse, and
// an integration case over a real clustered network with orderer-maintained
// ranks.

#include "strategies/components.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "net/conflict_graph.hpp"
#include "net/network.hpp"
#include "strategies/coloring.hpp"
#include "strategies/ordering.hpp"

namespace {

using minim::graph::Digraph;
using minim::net::AdhocNetwork;
using minim::net::ConflictGraph;
using minim::net::NodeId;
using minim::strategies::DirtyComponents;

constexpr std::uint32_t kUnranked = DirtyComponents::kUnranked;

/// A directed chain 0 -> 1 -> ... -> n-1; its conflict graph is the
/// undirected path over the same ids (every CA1 pair, no CA2 pairs).
ConflictGraph chain(std::size_t n) {
  Digraph g;
  for (std::size_t i = 0; i < n; ++i) g.add_node();
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  return ConflictGraph::build_from(g);
}

/// Identity ranks over ids [0, n): rank(v) == v.
std::vector<std::uint32_t> identity_ranks(std::size_t n) {
  std::vector<std::uint32_t> ranks(n);
  for (std::size_t i = 0; i < n; ++i) ranks[i] = static_cast<std::uint32_t>(i);
  return ranks;
}

std::vector<NodeId> sorted_members(const DirtyComponents& dc, std::size_t c) {
  const auto span = dc.members(c);
  std::vector<NodeId> out(span.begin(), span.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// The component index owning `v`, or count() when no component does.
std::size_t component_of(const DirtyComponents& dc, NodeId v) {
  for (std::size_t c = 0; c < dc.count(); ++c) {
    const auto span = dc.members(c);
    if (std::find(span.begin(), span.end(), v) != span.end()) return c;
  }
  return dc.count();
}

TEST(DirtyComponents, OneGiantComponentFromSingleSeed) {
  const ConflictGraph cg = chain(10);
  const auto ranks = identity_ranks(10);
  const std::vector<NodeId> seeds = {0};

  DirtyComponents dc;
  ASSERT_TRUE(dc.decompose(cg, ranks, seeds, 10));
  EXPECT_EQ(dc.count(), 1u);
  EXPECT_EQ(dc.closure_size(), 10u);
  const auto members = sorted_members(dc, 0);
  EXPECT_EQ(members.size(), 10u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(members[v], v);
  ASSERT_EQ(dc.seeds(0).size(), 1u);
  EXPECT_EQ(dc.seeds(0)[0], 0u);
}

TEST(DirtyComponents, AllSingletonsWhenNoEdges) {
  // Ten isolated ids: every seed is its own closure and its own component.
  Digraph g;
  for (int i = 0; i < 10; ++i) g.add_node();
  const ConflictGraph cg = ConflictGraph::build_from(g);
  const auto ranks = identity_ranks(10);
  std::vector<NodeId> seeds;
  for (NodeId v = 0; v < 10; ++v) seeds.push_back(v);

  DirtyComponents dc;
  ASSERT_TRUE(dc.decompose(cg, ranks, seeds, 10));
  EXPECT_EQ(dc.count(), 10u);
  EXPECT_EQ(dc.closure_size(), 10u);
  for (std::size_t c = 0; c < dc.count(); ++c) {
    ASSERT_EQ(dc.members(c).size(), 1u);
    ASSERT_EQ(dc.seeds(c).size(), 1u);
    EXPECT_EQ(dc.members(c)[0], dc.seeds(c)[0]);
  }
}

TEST(DirtyComponents, SharedEarlierRankBoundaryNodeStaysTwoComponents) {
  // b(rank 0) touches both regions, but propagation only ever *reads* an
  // earlier-ranked neighbor's color — b is not entered, and the regions
  // x={1,2} and y={3,4} remain independent.
  Digraph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  g.add_edge(0, 1);  // b - x1
  g.add_edge(0, 3);  // b - y1
  g.add_edge(1, 2);  // x1 - x2
  g.add_edge(3, 4);  // y1 - y2
  const ConflictGraph cg = ConflictGraph::build_from(g);
  const auto ranks = identity_ranks(5);
  const std::vector<NodeId> seeds = {1, 3};

  DirtyComponents dc;
  ASSERT_TRUE(dc.decompose(cg, ranks, seeds, 5));
  ASSERT_EQ(dc.count(), 2u);
  EXPECT_EQ(dc.closure_size(), 4u);
  EXPECT_EQ(component_of(dc, 0), dc.count()) << "boundary node must stay out";
  const std::size_t cx = component_of(dc, 1);
  const std::size_t cy = component_of(dc, 3);
  ASSERT_NE(cx, dc.count());
  ASSERT_NE(cy, dc.count());
  EXPECT_NE(cx, cy);
  EXPECT_EQ(sorted_members(dc, cx), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(sorted_members(dc, cy), (std::vector<NodeId>{3, 4}));
}

TEST(DirtyComponents, SharedLaterRankBoundaryNodeMergesComponents) {
  // The shared node ranks *after* both seeds, so both frontiers can write
  // it — the decomposition must fuse the regions into one component.
  Digraph g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const ConflictGraph cg = ConflictGraph::build_from(g);
  const auto ranks = identity_ranks(3);
  const std::vector<NodeId> seeds = {0, 1};

  DirtyComponents dc;
  ASSERT_TRUE(dc.decompose(cg, ranks, seeds, 3));
  ASSERT_EQ(dc.count(), 1u);
  EXPECT_EQ(sorted_members(dc, 0), (std::vector<NodeId>{0, 1, 2}));
  const auto s = dc.seeds(0);
  ASSERT_EQ(s.size(), 2u);  // caller's seed order preserved
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 1u);
}

TEST(DirtyComponents, DepartedIdsBlockAndAreSkipped) {
  // Mid-chain id 1 is tombstoned (departed): as a seed it is skipped, as a
  // neighbor it is never entered — the closure stops at the tombstone.
  const ConflictGraph cg = chain(3);
  std::vector<std::uint32_t> ranks = identity_ranks(3);
  ranks[1] = kUnranked;
  const std::vector<NodeId> seeds = {0, 1};

  DirtyComponents dc;
  ASSERT_TRUE(dc.decompose(cg, ranks, seeds, 3));
  ASSERT_EQ(dc.count(), 1u);
  EXPECT_EQ(sorted_members(dc, 0), (std::vector<NodeId>{0}));
  ASSERT_EQ(dc.seeds(0).size(), 1u);
  EXPECT_EQ(dc.seeds(0)[0], 0u);
}

TEST(DirtyComponents, RebornIdRanksAtTheTail) {
  // A reborn id re-enters the order appended at the tail (the orderer's
  // contract), so it is reachable from every neighbor but propagates to
  // none of its earlier-ranked ones.
  const ConflictGraph cg = chain(3);
  std::vector<std::uint32_t> ranks = identity_ranks(3);
  ranks[1] = 7;  // reborn: later than everything else
  const std::vector<NodeId> seeds = {0};

  DirtyComponents dc;
  ASSERT_TRUE(dc.decompose(cg, ranks, seeds, 3));
  ASSERT_EQ(dc.count(), 1u);
  // 2 stays out: its only path in runs through rank-decreasing edge 1 -> 2.
  EXPECT_EQ(sorted_members(dc, 0), (std::vector<NodeId>{0, 1}));
}

TEST(DirtyComponents, RefusesWhenClosureExceedsCap) {
  const ConflictGraph cg = chain(10);
  const auto ranks = identity_ranks(10);
  const std::vector<NodeId> seeds = {0};

  DirtyComponents dc;
  EXPECT_FALSE(dc.decompose(cg, ranks, seeds, 9));
  EXPECT_FALSE(dc.decompose(cg, ranks, seeds, 5));
  EXPECT_TRUE(dc.decompose(cg, ranks, seeds, 10));
  EXPECT_EQ(dc.closure_size(), 10u);
}

TEST(DirtyComponents, SeedPastGraphBoundIsItsOwnSingleton) {
  // A live, ranked id with no conflict row (beyond the graph's id bound)
  // must decompose as an isolated singleton, not crash the row walk.
  const ConflictGraph cg = chain(2);
  const auto ranks = identity_ranks(20);
  const std::vector<NodeId> seeds = {15, 0};

  DirtyComponents dc;
  ASSERT_TRUE(dc.decompose(cg, ranks, seeds, 20));
  ASSERT_EQ(dc.count(), 2u);
  EXPECT_EQ(sorted_members(dc, component_of(dc, 15)),
            (std::vector<NodeId>{15}));
  EXPECT_EQ(sorted_members(dc, component_of(dc, 0)),
            (std::vector<NodeId>{0, 1}));
}

TEST(DirtyComponents, ScratchReusesCleanlyAcrossGraphs) {
  DirtyComponents dc;
  const ConflictGraph a = chain(6);
  ASSERT_TRUE(dc.decompose(a, identity_ranks(6), std::vector<NodeId>{0}, 6));
  EXPECT_EQ(dc.count(), 1u);

  Digraph g;  // two disjoint edges: 0-1, 2-3
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const ConflictGraph b = ConflictGraph::build_from(g);
  ASSERT_TRUE(
      dc.decompose(b, identity_ranks(4), std::vector<NodeId>{0, 2}, 4));
  EXPECT_EQ(dc.count(), 2u);
  EXPECT_EQ(dc.closure_size(), 4u);

  // And a refusal in between must not poison the next decompose.
  EXPECT_FALSE(dc.decompose(a, identity_ranks(6), std::vector<NodeId>{0}, 2));
  ASSERT_TRUE(dc.decompose(a, identity_ranks(6), std::vector<NodeId>{0}, 6));
  EXPECT_EQ(dc.count(), 1u);
  EXPECT_EQ(dc.closure_size(), 6u);
}

TEST(DirtyComponents, ClusteredNetworkWithMaintainedRanksSplitsByCluster) {
  // Integration: two spatially distant clusters of a real AdhocNetwork,
  // ranks maintained by the orderer exactly as bounded BBB maintains them.
  AdhocNetwork net;
  std::vector<NodeId> cluster_a, cluster_b;
  for (int i = 0; i < 3; ++i)
    cluster_a.push_back(net.add_node({{static_cast<double>(i), 0.0}, 2.0}));
  for (int i = 0; i < 3; ++i)
    cluster_b.push_back(
        net.add_node({{50.0 + static_cast<double>(i), 50.0}, 2.0}));

  minim::strategies::DegeneracyOrderer orderer;
  const std::vector<NodeId> sequence = minim::strategies::coloring_sequence(
      net, net.nodes(), minim::strategies::ColoringOrder::kSmallestLast);
  orderer.rebuild_ranks(net, sequence);

  std::vector<NodeId> seeds = net.nodes();
  DirtyComponents dc;
  ASSERT_TRUE(
      dc.decompose(net.conflict_graph(), orderer.rank_index(), seeds, 6));
  ASSERT_EQ(dc.count(), 2u);
  EXPECT_EQ(dc.closure_size(), 6u);
  for (NodeId a : cluster_a)
    EXPECT_EQ(component_of(dc, a), component_of(dc, cluster_a[0]));
  for (NodeId b : cluster_b)
    EXPECT_EQ(component_of(dc, b), component_of(dc, cluster_b[0]));
  EXPECT_NE(component_of(dc, cluster_a[0]), component_of(dc, cluster_b[0]));
}

}  // namespace
