// Differential fuzz soak for rank-bounded BBB (see strategies/bbb.hpp,
// "Rank-bounded propagation").  Three properties, checked after every event
// of every generated sequence:
//
//   1. Oracle bit-identity: bounded BBB's assignment equals a from-scratch
//      greedy over the orderer's *maintained* sequence — the equivalence the
//      heap propagation claims by construction.
//   2. Validity: the assignment satisfies CA1/CA2.
//   3. Quality: the maintained order's drift costs at most kMaxColorGap
//      colors over canonical (always-reordered) BBB on the same network —
//      the committed gap metric for the locality/quality trade.
//
// A failing sequence is delta-debugged to a 1-minimal repro and logged as
// replayable text (tests/helpers/event_fuzz.hpp).

#include <gtest/gtest.h>

#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "../helpers/event_fuzz.hpp"
#include "net/constraints.hpp"
#include "net/network.hpp"
#include "strategies/bbb.hpp"
#include "strategies/coloring.hpp"

namespace {

using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::NodeId;
using minim::strategies::BbbStrategy;
using minim::strategies::ColoringOrder;
using minim::test::AppliedEvent;
using minim::test::FuzzConfig;
using minim::test::FuzzEvent;
using minim::test::FuzzKind;
using minim::test::FuzzPlacement;
using minim::test::kFuzzPassed;

/// The committed quality threshold: per event, bounded BBB may use at most
/// this many colors more than canonical BBB (whose smallest-last order is
/// recomputed from scratch every event).  The gap is the price of the
/// maintained order going stale between rebuilds — tombstones and appended
/// joiners drift it away from true smallest-last until the
/// `rank_rebuild_fraction` threshold forces a reseed.  Measured peak across
/// the soaks below (all seeds and placements, guards loosened so ~98% of
/// events take the bounded path): 5 colors, at ~120-node populations where
/// canonical BBB uses ~12-26 colors.  The soaks are deterministic, so 6
/// holds exactly; a real quality regression shows up as a jump past it.
constexpr minim::net::Color kMaxColorGap = 6;

/// Soak knobs: the fuzz populations are tiny (~120 nodes) compared to the
/// large-N regime the production defaults target, so a clustered placement
/// can dirty half the population in one event.  Loosen the fallback guards
/// here so the soaks spend their events in the bounded path — the code under
/// test — instead of falling back; `StrictParamFallbackInterleaving` below
/// keeps the production defaults to fuzz the fallback interleavings too.
BbbStrategy::Params bounded_params() {
  BbbStrategy::Params p;
  p.bounded_propagation = true;
  p.full_recolor_fraction = 0.9;
  p.propagation_slack = 1.0;
  return p;
}

BbbStrategy::Params strict_params() {
  BbbStrategy::Params p;
  p.bounded_propagation = true;
  return p;
}

struct SoakOutcome {
  std::size_t failed_event = kFuzzPassed;
  std::string message;
  minim::net::Color max_gap = 0;
  BbbStrategy::Counters counters;
  minim::strategies::DegeneracyOrderer::Counters order_counters;
};

/// Replays `events`, driving bounded BBB and canonical BBB over the shared
/// network with separate assignments, checking the three properties after
/// every event.  Deterministic: same events → same outcome.
SoakOutcome run_soak(const FuzzConfig& cfg, std::span<const FuzzEvent> events,
                     const BbbStrategy::Params& params = bounded_params()) {
  SoakOutcome outcome;
  CodeAssignment bounded_asg;
  CodeAssignment reference_asg;
  BbbStrategy bounded(ColoringOrder::kSmallestLast, params);
  BbbStrategy reference(ColoringOrder::kSmallestLast, BbbStrategy::Params{});
  CodeAssignment oracle_asg;
  std::vector<NodeId> oracle_seq;

  outcome.failed_event = minim::test::replay_events(
      cfg, events,
      [&](const AdhocNetwork& net, const AppliedEvent& applied,
          std::size_t index) {
        minim::core::RecodeReport bounded_report;
        minim::core::RecodeReport reference_report;
        switch (applied.kind) {
          case FuzzKind::kJoin:
            bounded_report = bounded.on_join(net, bounded_asg, applied.subject);
            reference_report =
                reference.on_join(net, reference_asg, applied.subject);
            break;
          case FuzzKind::kLeave:
            bounded_asg.clear(applied.subject);
            reference_asg.clear(applied.subject);
            bounded_report =
                bounded.on_leave(net, bounded_asg, applied.subject);
            reference_report =
                reference.on_leave(net, reference_asg, applied.subject);
            break;
          case FuzzKind::kMove:
            bounded_report = bounded.on_move(net, bounded_asg, applied.subject);
            reference_report =
                reference.on_move(net, reference_asg, applied.subject);
            break;
          case FuzzKind::kPower:
            bounded_report = bounded.on_power_change(
                net, bounded_asg, applied.subject, applied.old_range);
            reference_report = reference.on_power_change(
                net, reference_asg, applied.subject, applied.old_range);
            break;
        }

        // 1. Oracle: from-scratch greedy over the maintained sequence.
        oracle_seq.clear();
        for (NodeId v : bounded.orderer().ranked_sequence())
          if (v != minim::net::kInvalidNode) oracle_seq.push_back(v);
        if (oracle_seq.size() != net.node_count()) {
          outcome.message = "maintained sequence does not cover the live set";
          return false;
        }
        oracle_asg = CodeAssignment{};
        minim::strategies::greedy_color_in_sequence(net, oracle_seq,
                                                    oracle_asg);
        for (NodeId v : oracle_seq) {
          if (bounded_asg.color(v) != oracle_asg.color(v)) {
            outcome.message =
                "event " + std::to_string(index) + ": node " +
                std::to_string(v) + " color " +
                std::to_string(bounded_asg.color(v)) + " != oracle " +
                std::to_string(oracle_asg.color(v));
            return false;
          }
        }

        // 2. Validity.
        if (!minim::net::is_valid(net, bounded_asg)) {
          outcome.message =
              "event " + std::to_string(index) + ": invalid assignment";
          return false;
        }

        // 3. Quality gap vs canonical BBB.
        if (bounded_report.max_color_after >
            reference_report.max_color_after + kMaxColorGap) {
          outcome.message =
              "event " + std::to_string(index) + ": max color " +
              std::to_string(bounded_report.max_color_after) +
              " exceeds reference " +
              std::to_string(reference_report.max_color_after) + " by > " +
              std::to_string(kMaxColorGap);
          return false;
        }
        if (bounded_report.max_color_after > reference_report.max_color_after)
          outcome.max_gap = std::max(
              outcome.max_gap, static_cast<minim::net::Color>(
                                   bounded_report.max_color_after -
                                   reference_report.max_color_after));
        return true;
      });
  outcome.counters = bounded.counters();
  outcome.order_counters = bounded.orderer().counters();
  return outcome;
}

/// Full soak entry point: generate, run, and on failure shrink + log the
/// minimal repro before failing the test.
void soak(const FuzzConfig& cfg,
          const BbbStrategy::Params& params = bounded_params(),
          bool require_bounded_majority = true) {
  const std::vector<FuzzEvent> events = minim::test::generate_events(cfg);
  ASSERT_EQ(events.size(), cfg.events);
  const SoakOutcome outcome = run_soak(cfg, events, params);
  if (outcome.failed_event == kFuzzPassed) {
    std::cout << "[ soak     ] bounded=" << outcome.counters.bounded_events
              << " full=" << outcome.counters.full_events
              << " bailouts=" << outcome.counters.slack_bailouts
              << " max_gap=" << outcome.max_gap << "\n";
    // The soak must actually exercise the bounded path, not just fall back.
    if (require_bounded_majority) {
      EXPECT_GT(outcome.counters.bounded_events, outcome.counters.full_events)
          << "bounded path starved: " << outcome.counters.bounded_events
          << " bounded vs " << outcome.counters.full_events << " full events";
    }
    EXPECT_GT(outcome.order_counters.rank_updates, 0u);
    return;
  }

  const auto fails = [&cfg, &params](std::span<const FuzzEvent> candidate) {
    return run_soak(cfg, candidate, params).failed_event != kFuzzPassed;
  };
  const minim::test::ShrinkResult shrunk =
      minim::test::shrink_events(events, fails);
  const SoakOutcome minimal = run_soak(cfg, shrunk.events, params);
  FAIL() << outcome.message << "\nshrunk to " << shrunk.events.size()
         << " events (" << shrunk.replays << " replays, "
         << (shrunk.minimal ? "1-minimal" : "replay budget hit")
         << "), failing with: " << minimal.message << "\n"
         << minim::test::format_repro(cfg, shrunk.events);
}

FuzzConfig config(FuzzPlacement placement, std::uint64_t seed) {
  FuzzConfig cfg;
  cfg.placement = placement;
  cfg.seed = seed;
  cfg.events = 10000;
  return cfg;
}

TEST(BbbBoundedFuzz, UniformPlacement) {
  soak(config(FuzzPlacement::kUniform, 9101));
}

TEST(BbbBoundedFuzz, ClusteredPlacement) {
  soak(config(FuzzPlacement::kClustered, 9102));
}

TEST(BbbBoundedFuzz, PoissonDiskPlacement) {
  soak(config(FuzzPlacement::kPoissonDisk, 9103));
}

TEST(BbbBoundedFuzz, RecolorStormSchedule) {
  FuzzConfig cfg = config(FuzzPlacement::kClustered, 9104);
  cfg.storm_chance = 0.02;  // ~every 50th event starts an 8-24 event storm
  soak(cfg);
}

TEST(BbbBoundedFuzz, SecondSeedSweep) {
  for (const FuzzPlacement placement :
       {FuzzPlacement::kUniform, FuzzPlacement::kClustered,
        FuzzPlacement::kPoissonDisk}) {
    FuzzConfig cfg = config(placement, 9205);
    cfg.events = 4000;
    soak(cfg);
  }
}

TEST(BbbBoundedFuzz, StrictParamFallbackInterleaving) {
  // Production-default guards on the nastiest placement: most events fall
  // back (dirty regions span half the tiny population), which fuzzes the
  // bounded/full interleaving — clean bailouts, rank rebuilds mid-stream —
  // rather than bounded-path dominance.
  FuzzConfig cfg = config(FuzzPlacement::kClustered, 9105);
  cfg.events = 4000;
  soak(cfg, strict_params(), /*require_bounded_majority=*/false);
}

TEST(BbbBoundedFuzz, TinyPopulations) {
  // Populations near zero stress joiner-append and empty-window edges.
  FuzzConfig cfg = config(FuzzPlacement::kUniform, 9106);
  cfg.target_live = 8;
  cfg.events = 4000;
  soak(cfg);
}

// --------------------------------------------------------------- harness

TEST(EventFuzzHarness, ShrinkerFindsOneMinimalCore) {
  // Artificial property: fails iff the sequence holds >= 3 joins and >= 1
  // power event.  The 1-minimal core is exactly 3 joins + 1 power.
  FuzzConfig cfg = config(FuzzPlacement::kUniform, 42);
  cfg.events = 400;
  const std::vector<FuzzEvent> events = minim::test::generate_events(cfg);
  const auto fails = [](std::span<const FuzzEvent> seq) {
    std::size_t joins = 0;
    std::size_t powers = 0;
    for (const FuzzEvent& e : seq) {
      joins += e.kind == FuzzKind::kJoin;
      powers += e.kind == FuzzKind::kPower;
    }
    return joins >= 3 && powers >= 1;
  };
  ASSERT_TRUE(fails(events));
  const minim::test::ShrinkResult shrunk =
      minim::test::shrink_events(events, fails, 2000);
  EXPECT_TRUE(shrunk.minimal);
  EXPECT_EQ(shrunk.events.size(), 4u);
  EXPECT_TRUE(fails(shrunk.events));
}

TEST(EventFuzzHarness, ReproRoundTrips) {
  FuzzConfig cfg = config(FuzzPlacement::kClustered, 7);
  cfg.events = 50;
  const std::vector<FuzzEvent> events = minim::test::generate_events(cfg);
  const std::string text = minim::test::format_repro(cfg, events);
  const std::vector<FuzzEvent> parsed = minim::test::parse_repro(text);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, events[i].kind) << i;
    EXPECT_EQ(parsed[i].pick, events[i].pick) << i;
    EXPECT_EQ(parsed[i].x, events[i].x) << i;
    EXPECT_EQ(parsed[i].y, events[i].y) << i;
    EXPECT_EQ(parsed[i].range, events[i].range) << i;
  }
}

TEST(EventFuzzHarness, GeneratorIsDeterministic) {
  const FuzzConfig cfg = config(FuzzPlacement::kPoissonDisk, 123);
  const auto a = minim::test::generate_events(cfg);
  const auto b = minim::test::generate_events(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].pick, b[i].pick) << i;
    EXPECT_EQ(a[i].x, b[i].x) << i;
  }
}

}  // namespace
