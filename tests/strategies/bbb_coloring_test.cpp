// Global coloring heuristics (the BBB substrate) and the BBB baseline
// strategy: validity of every ordering, quality relations, recode counting.

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "net/constraints.hpp"
#include "strategies/bbb.hpp"
#include "strategies/coloring.hpp"
#include "util/rng.hpp"

namespace {

using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::Color;
using minim::net::NodeId;
using minim::strategies::BbbStrategy;
using minim::strategies::color_network;
using minim::strategies::ColoringOrder;
using minim::strategies::conflict_adjacency;
using minim::test::build_world;
using minim::test::World;
using minim::util::Rng;

AdhocNetwork random_network(Rng& rng, std::size_t n) {
  AdhocNetwork net;
  for (std::size_t i = 0; i < n; ++i)
    net.add_node({{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 35)});
  return net;
}

// ------------------------------------------------------------ colorings

class ColoringOrderTest : public ::testing::TestWithParam<ColoringOrder> {};

TEST_P(ColoringOrderTest, ProducesValidAssignment) {
  Rng rng(81);
  for (int trial = 0; trial < 5; ++trial) {
    const AdhocNetwork net = random_network(rng, 40);
    CodeAssignment asg;
    const Color used = color_network(net, GetParam(), asg);
    ASSERT_TRUE(minim::net::is_valid(net, asg));
    ASSERT_EQ(used, asg.max_color(net.nodes()));
  }
}

TEST_P(ColoringOrderTest, UsesAtMostMaxConflictDegreePlusOne) {
  Rng rng(82);
  const AdhocNetwork net = random_network(rng, 50);
  const auto adj = conflict_adjacency(net);
  std::size_t max_conflict_degree = 0;
  for (NodeId v : net.nodes())
    max_conflict_degree = std::max(max_conflict_degree, adj[v].size());
  CodeAssignment asg;
  const Color used = color_network(net, GetParam(), asg);
  EXPECT_LE(used, max_conflict_degree + 1);
}

INSTANTIATE_TEST_SUITE_P(Orders, ColoringOrderTest,
                         ::testing::Values(ColoringOrder::kSmallestLast,
                                           ColoringOrder::kDSatur,
                                           ColoringOrder::kLargestFirst,
                                           ColoringOrder::kIdentity));

TEST(Coloring, EmptyNetworkUsesZeroColors) {
  AdhocNetwork net;
  CodeAssignment asg;
  EXPECT_EQ(color_network(net, ColoringOrder::kSmallestLast, asg), 0u);
}

TEST(Coloring, CliqueNeedsExactlyNColors) {
  // All nodes mutually in range: the conflict graph is a clique.
  AdhocNetwork net;
  for (int i = 0; i < 6; ++i)
    net.add_node({{static_cast<double>(i), 0}, 50.0});
  for (const auto order :
       {ColoringOrder::kSmallestLast, ColoringOrder::kDSatur,
        ColoringOrder::kLargestFirst, ColoringOrder::kIdentity}) {
    CodeAssignment asg;
    EXPECT_EQ(color_network(net, order, asg), 6u) << to_string(order);
  }
}

TEST(Coloring, IndependentNodesAllGetColor1) {
  AdhocNetwork net;
  net.add_node({{0, 0}, 1.0});
  net.add_node({{50, 50}, 1.0});
  net.add_node({{99, 99}, 1.0});
  CodeAssignment asg;
  EXPECT_EQ(color_network(net, ColoringOrder::kSmallestLast, asg), 1u);
}

TEST(Coloring, HiddenTerminalsGetDistinctColors) {
  // Two transmitters out of mutual range sharing one receiver must differ.
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 12.0});
  net.add_node({{10, 0}, 1.0});
  const NodeId c = net.add_node({{20, 0}, 12.0});
  CodeAssignment asg;
  color_network(net, ColoringOrder::kDSatur, asg);
  EXPECT_NE(asg.color(a), asg.color(c));
}

TEST(Coloring, SmallestLastNotWorseThanIdentityOnAverage) {
  // Not a theorem, but a strong statistical expectation over many trials;
  // guards against order plumbing regressions (e.g. ignoring the order).
  Rng rng(83);
  double sl_total = 0;
  double id_total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const AdhocNetwork net = random_network(rng, 40);
    CodeAssignment a1;
    CodeAssignment a2;
    sl_total += color_network(net, ColoringOrder::kSmallestLast, a1);
    id_total += color_network(net, ColoringOrder::kIdentity, a2);
  }
  EXPECT_LE(sl_total, id_total + 2);
}

// ------------------------------------------------------------ BBB strategy

TEST(BbbStrategy, JoinRecolorsFromScratchAndStaysValid) {
  Rng rng(84);
  AdhocNetwork net;
  CodeAssignment asg;
  BbbStrategy bbb;
  for (int i = 0; i < 30; ++i) {
    const NodeId id = net.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 35)});
    const auto report = bbb.on_join(net, asg, id);
    ASSERT_TRUE(minim::net::is_valid(net, asg)) << "join " << i;
    ASSERT_GE(report.recodings(), 1u);  // the joiner itself always counts
  }
}

TEST(BbbStrategy, RecodeCountIsColorDiff) {
  // Deterministic scenario: recoloring an unchanged network is a no-op, so
  // the second event reports zero recodings.
  AdhocNetwork net;
  CodeAssignment asg;
  BbbStrategy bbb;
  for (int i = 0; i < 10; ++i)
    net.add_node({{static_cast<double>(10 * i), 0}, 12.0});
  bbb.on_join(net, asg, 9);
  // A power *decrease* that changes no edges: BBB recolors from scratch and
  // lands on the identical assignment.
  const double old_range = net.config(0).range;
  net.set_range(0, old_range - 0.1);
  const auto report = bbb.on_power_change(net, asg, 0, old_range);
  EXPECT_EQ(report.recodings(), 0u);
  EXPECT_EQ(report.event, minim::core::EventType::kPowerDecrease);
}

TEST(BbbStrategy, HandlesLeaveMovePower) {
  Rng rng(85);
  World world = build_world(25, 20.5, 30.5, rng);
  BbbStrategy bbb;

  const NodeId mover = world.ids[3];
  world.network.set_position(mover, {rng.uniform(0, 100), rng.uniform(0, 100)});
  bbb.on_move(world.network, world.assignment, mover);
  ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));

  const NodeId riser = world.ids[4];
  const double old_range = world.network.config(riser).range;
  world.network.set_range(riser, old_range * 2);
  const auto report =
      bbb.on_power_change(world.network, world.assignment, riser, old_range);
  EXPECT_EQ(report.event, minim::core::EventType::kPowerIncrease);
  ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));

  const NodeId gone = world.ids[5];
  world.network.remove_node(gone);
  world.assignment.clear(gone);
  bbb.on_leave(world.network, world.assignment, gone);
  ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));
}

TEST(BbbStrategy, NearOptimalColorCountVsDistributed) {
  // The Fig 10(a) relation: BBB's from-scratch color count is no worse than
  // what incremental Minim accumulated.
  Rng rng(86);
  World world = build_world(60, 20.5, 30.5, rng);
  const Color minim_colors = world.assignment.max_color(world.network.nodes());
  CodeAssignment fresh;
  const Color bbb_colors =
      color_network(world.network, ColoringOrder::kSmallestLast, fresh);
  EXPECT_LE(bbb_colors, minim_colors);
}

TEST(BbbStrategy, Names) {
  EXPECT_EQ(BbbStrategy().name(), "BBB");
  EXPECT_EQ(BbbStrategy(ColoringOrder::kDSatur).name(), "BBB/dsatur");
  EXPECT_EQ(BbbStrategy(ColoringOrder::kLargestFirst).name(), "BBB/largest-first");
}

}  // namespace
