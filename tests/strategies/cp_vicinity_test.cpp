// CP's cache-served vicinity: the epoch-stamped two-hop walk must visit
// exactly the set `graph::k_hop_ball(g, v, 2)` returns — RunStats exposes
// the per-candidate vicinity sizes, and the recoloring outcome itself pins
// the visited-set equality (a wrong ball changes blocking or forbidden
// colors).  Also covers the O(1) assignment max-color histogram the
// finalize path now rides on.

#include <gtest/gtest.h>

#include <vector>

#include "graph/algorithms.hpp"
#include "net/assignment.hpp"
#include "sim/simulation.hpp"
#include "strategies/cp.hpp"
#include "util/rng.hpp"

namespace {

using namespace minim;

TEST(CpVicinity, StatsMatchKHopBallSizesAcrossEventSoak) {
  util::Rng rng(2718);
  for (int round = 0; round < 3; ++round) {
    strategies::CpStrategy cp;
    strategies::CpStrategy::RunStats stats;
    cp.set_stats_sink(&stats);
    sim::Simulation simulation(cp);
    std::vector<net::NodeId> live;
    for (int event = 0; event < 80; ++event) {
      // The sink is only written by events that actually recolor (e.g. a
      // conflict-free power raise recodes nothing); reset it so stale stats
      // from the previous event are never checked against the new graph.
      stats = strategies::CpStrategy::RunStats{};
      const double dice = rng.uniform01();
      if (live.size() < 8 || dice < 0.5) {
        live.push_back(simulation.join({{rng.uniform(0, 100), rng.uniform(0, 100)},
                                        rng.uniform(18.0, 40.0)}));
      } else {
        const auto pick = static_cast<std::size_t>(rng.below(live.size()));
        if (dice < 0.7)
          simulation.move(live[pick], {rng.uniform(0, 100), rng.uniform(0, 100)});
        else
          simulation.change_power(live[pick], rng.uniform(15.0, 55.0));
      }
      ASSERT_EQ(stats.candidates.size(), stats.vicinity_sizes.size());
      for (std::size_t i = 0; i < stats.candidates.size(); ++i) {
        const auto ball = graph::k_hop_ball(simulation.network().graph(),
                                            stats.candidates[i], 2);
        ASSERT_EQ(stats.vicinity_sizes[i], ball.size())
            << "round " << round << " event " << event << " candidate "
            << stats.candidates[i];
      }
    }
  }
}

TEST(CodeAssignment, HistogramMaxTracksSetAndClear) {
  net::CodeAssignment assignment;
  EXPECT_EQ(assignment.max_color(), net::kNoColor);
  assignment.set_color(0, 3);
  assignment.set_color(1, 7);
  assignment.set_color(2, 7);
  EXPECT_EQ(assignment.max_color(), 7u);
  assignment.clear(1);
  EXPECT_EQ(assignment.max_color(), 7u);  // one 7 left
  assignment.clear(2);
  EXPECT_EQ(assignment.max_color(), 3u);  // lazily lowered past empty 4..7
  assignment.set_color(0, 5);             // recolor in place
  EXPECT_EQ(assignment.max_color(), 5u);
  assignment.clear(0);
  EXPECT_EQ(assignment.max_color(), net::kNoColor);
  assignment.set_color(9, 2);
  assignment.clear_all();
  EXPECT_EQ(assignment.max_color(), net::kNoColor);
}

TEST(CodeAssignment, HistogramMaxMatchesScanUnderRandomChurn) {
  util::Rng rng(1618);
  net::CodeAssignment assignment;
  std::vector<net::NodeId> nodes;
  for (net::NodeId v = 0; v < 64; ++v) nodes.push_back(v);
  for (int step = 0; step < 5000; ++step) {
    const auto v = static_cast<net::NodeId>(rng.below(64));
    if (rng.chance(0.7))
      assignment.set_color(v, static_cast<net::Color>(1 + rng.below(20)));
    else
      assignment.clear(v);
    ASSERT_EQ(assignment.max_color(), assignment.max_color(nodes));
  }
}

}  // namespace
