// Gossip color compaction (the paper's future-work extension) and the
// strategy factory.

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "net/constraints.hpp"
#include "strategies/factory.hpp"
#include "strategies/gossip.hpp"
#include "util/rng.hpp"

namespace {

using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::Color;
using minim::net::NodeId;
using minim::strategies::gossip_compact;
using minim::strategies::GossipParams;
using minim::strategies::GossipResult;
using minim::test::build_world;
using minim::test::World;
using minim::util::Rng;

TEST(Gossip, PreservesValidity) {
  Rng rng(91);
  World world = build_world(50, 20.5, 30.5, rng);
  ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));
  gossip_compact(world.network, world.assignment);
  EXPECT_TRUE(minim::net::is_valid(world.network, world.assignment));
}

TEST(Gossip, NeverIncreasesMaxColor) {
  Rng rng(92);
  World world = build_world(50, 20.5, 30.5, rng);
  const GossipResult result = gossip_compact(world.network, world.assignment);
  EXPECT_LE(result.max_color_after, result.max_color_before);
  EXPECT_EQ(result.max_color_after,
            world.assignment.max_color(world.network.nodes()));
}

TEST(Gossip, ReachesGreedyStableFixedPoint) {
  // After convergence no node can lower its color unilaterally.
  Rng rng(93);
  World world = build_world(40, 20.5, 30.5, rng);
  gossip_compact(world.network, world.assignment);
  for (NodeId v : world.network.nodes()) {
    const auto forbidden =
        minim::net::forbidden_colors(world.network, world.assignment, v);
    EXPECT_GE(minim::net::lowest_free_color(forbidden),
              world.assignment.color(v))
        << "node " << v << " could still compact";
  }
}

TEST(Gossip, CompactsArtificiallyInflatedColors) {
  // Isolated nodes painted with huge colors must all drop to 1.
  AdhocNetwork net;
  CodeAssignment asg;
  for (int i = 0; i < 5; ++i) {
    const NodeId v = net.add_node({{static_cast<double>(20 * i), 90}, 1.0});
    asg.set_color(v, static_cast<Color>(50 + i));
  }
  const GossipResult result = gossip_compact(net, asg);
  EXPECT_EQ(result.max_color_after, 1u);
  EXPECT_EQ(result.recodings, 5u);
  for (NodeId v : net.nodes()) EXPECT_EQ(asg.color(v), 1u);
}

TEST(Gossip, QuietNetworkConvergesInOneRound) {
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId a = net.add_node({{0, 0}, 10.0});
  const NodeId b = net.add_node({{5, 0}, 10.0});
  asg.set_color(a, 1);
  asg.set_color(b, 2);
  const GossipResult result = gossip_compact(net, asg);
  EXPECT_EQ(result.recodings, 0u);
  EXPECT_EQ(result.rounds, 1u);  // the single quiet pass
}

TEST(Gossip, RandomOrderStillConvergesAndStaysValid) {
  Rng rng(94);
  World world = build_world(40, 20.5, 30.5, rng);
  Rng order_rng(4242);
  GossipParams params;
  params.rng = &order_rng;
  const GossipResult result = gossip_compact(world.network, world.assignment, params);
  EXPECT_TRUE(minim::net::is_valid(world.network, world.assignment));
  EXPECT_LE(result.max_color_after, result.max_color_before);
}

TEST(Gossip, RoundLimitRespected) {
  Rng rng(95);
  World world = build_world(40, 20.5, 30.5, rng);
  GossipParams params;
  params.max_rounds = 1;
  const GossipResult result = gossip_compact(world.network, world.assignment, params);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_TRUE(minim::net::is_valid(world.network, world.assignment));
}

// ------------------------------------------------------------------ factory

TEST(Factory, BuildsEveryKnownStrategy) {
  for (const char* name :
       {"minim", "minim-greedy", "minim-cardinality", "cp", "cp-lowest",
        "cp-exact", "bbb", "bbb-dsatur", "bbb-largest", "bbb-identity"}) {
    const auto strategy = minim::strategies::make_strategy(name);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_FALSE(strategy->name().empty());
  }
}

TEST(Factory, UnknownNameThrowsWithHelp) {
  try {
    minim::strategies::make_strategy("nope");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("minim"), std::string::npos);
  }
}

TEST(Factory, EveryKnownStrategySurvivesASmallWorkload) {
  for (const char* name :
       {"minim", "minim-greedy", "minim-cardinality", "cp", "cp-lowest",
        "cp-exact", "bbb", "bbb-dsatur", "bbb-largest", "bbb-identity"}) {
    Rng rng(96);
    AdhocNetwork net;
    CodeAssignment asg;
    const auto strategy = minim::strategies::make_strategy(name);
    for (int i = 0; i < 15; ++i) {
      const NodeId id = net.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 35)});
      strategy->on_join(net, asg, id);
      ASSERT_TRUE(minim::net::is_valid(net, asg)) << name << " join " << i;
    }
  }
}

}  // namespace
