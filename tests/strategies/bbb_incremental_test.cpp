// Dirty-region BBB must be bit-identical to the from-scratch recolor: same
// RecodeReports (change lists), same assignments, same max colors, across
// every static coloring order and randomized event soaks.

#include <gtest/gtest.h>

#include <vector>

#include "net/constraints.hpp"
#include "net/network.hpp"
#include "strategies/bbb.hpp"
#include "util/rng.hpp"

namespace {

using minim::core::RecodeReport;
using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::NodeConfig;
using minim::net::NodeId;
using minim::strategies::BbbStrategy;
using minim::strategies::ColoringOrder;
using minim::util::Rng;

BbbStrategy::Params full_only() {
  BbbStrategy::Params params;
  params.incremental = false;
  return params;
}

void expect_reports_equal(const RecodeReport& a, const RecodeReport& b,
                          int event_index) {
  ASSERT_EQ(a.event, b.event) << "event " << event_index;
  ASSERT_EQ(a.subject, b.subject) << "event " << event_index;
  ASSERT_EQ(a.max_color_after, b.max_color_after) << "event " << event_index;
  ASSERT_EQ(a.changes.size(), b.changes.size()) << "event " << event_index;
  for (std::size_t i = 0; i < a.changes.size(); ++i) {
    EXPECT_EQ(a.changes[i].node, b.changes[i].node) << "event " << event_index;
    EXPECT_EQ(a.changes[i].old_color, b.changes[i].old_color)
        << "event " << event_index;
    EXPECT_EQ(a.changes[i].new_color, b.changes[i].new_color)
        << "event " << event_index;
  }
}

/// Drives one randomized join/move/power/leave history through two BBB
/// instances — dirty-region vs forced-full — sharing the network but owning
/// separate assignments, asserting identical behavior after every event.
void soak(ColoringOrder order, BbbStrategy::Params incremental_params,
          std::uint64_t seed, int events) {
  Rng rng(seed);
  AdhocNetwork net;
  CodeAssignment incremental_asg;
  CodeAssignment full_asg;
  BbbStrategy incremental(order, incremental_params);
  BbbStrategy full(order, full_only());
  std::vector<NodeId> live;

  for (int event = 0; event < events; ++event) {
    const double roll = rng.uniform(0, 1);
    RecodeReport a;
    RecodeReport b;
    if (live.size() < 5 || roll < 0.4) {
      const NodeId id = net.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(10, 35)});
      live.push_back(id);
      a = incremental.on_join(net, incremental_asg, id);
      b = full.on_join(net, full_asg, id);
    } else if (roll < 0.6) {
      const NodeId v = live[rng.below(live.size())];
      net.set_position(v, {rng.uniform(0, 100), rng.uniform(0, 100)});
      a = incremental.on_move(net, incremental_asg, v);
      b = full.on_move(net, full_asg, v);
    } else if (roll < 0.85) {
      const NodeId v = live[rng.below(live.size())];
      const double old_range = net.config(v).range;
      net.set_range(v, rng.uniform(0, 40));
      a = incremental.on_power_change(net, incremental_asg, v, old_range);
      b = full.on_power_change(net, full_asg, v, old_range);
    } else {
      const std::size_t index = rng.below(live.size());
      const NodeId v = live[index];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
      net.remove_node(v);
      incremental_asg.clear(v);
      full_asg.clear(v);
      a = incremental.on_leave(net, incremental_asg, v);
      b = full.on_leave(net, full_asg, v);
    }

    ASSERT_NO_FATAL_FAILURE(expect_reports_equal(a, b, event));
    for (NodeId v : net.nodes())
      ASSERT_EQ(incremental_asg.color(v), full_asg.color(v))
          << "node " << v << " after event " << event;
    ASSERT_TRUE(minim::net::is_valid(net, incremental_asg)) << "event " << event;
  }
}

class BbbIncrementalOrder : public ::testing::TestWithParam<ColoringOrder> {};

TEST_P(BbbIncrementalOrder, MatchesFullRecolorOverRandomizedEvents) {
  soak(GetParam(), BbbStrategy::Params{}, 9001, 90);
  soak(GetParam(), BbbStrategy::Params{}, 9002, 90);
}

TEST_P(BbbIncrementalOrder, MatchesWithAggressiveDirtyThreshold) {
  // Never fall back on size: stresses the change-propagation path alone.
  BbbStrategy::Params params;
  params.full_recolor_fraction = 1.0;
  soak(GetParam(), params, 9003, 90);
}

TEST_P(BbbIncrementalOrder, MatchesWithZeroThresholdAlwaysFullPath) {
  // Threshold 0 forces the fallback whenever anything changed: the two
  // instances literally run the same code, pinning the fallback wiring.
  BbbStrategy::Params params;
  params.full_recolor_fraction = 0.0;
  soak(GetParam(), params, 9004, 50);
}

INSTANTIATE_TEST_SUITE_P(StaticOrders, BbbIncrementalOrder,
                         ::testing::Values(ColoringOrder::kSmallestLast,
                                           ColoringOrder::kLargestFirst,
                                           ColoringOrder::kIdentity));

TEST(BbbIncremental, DSaturAlwaysUsesFullPathAndStaysValid) {
  soak(ColoringOrder::kDSatur, BbbStrategy::Params{}, 9005, 60);
}

TEST(BbbIncremental, SurvivesForeignAssignmentMutation) {
  // An out-of-band color change invalidates the snapshot; the strategy must
  // detect it and still produce the from-scratch result.
  Rng rng(77);
  AdhocNetwork net;
  CodeAssignment asg;
  BbbStrategy bbb(ColoringOrder::kSmallestLast);
  std::vector<NodeId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(net.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 30)}));
    bbb.on_join(net, asg, ids.back());
  }
  // Clobber a color behind the strategy's back.
  asg.set_color(ids[4], asg.color(ids[4]) + 17);

  CodeAssignment reference_asg;
  BbbStrategy reference(ColoringOrder::kSmallestLast, full_only());
  for (NodeId v : net.nodes()) reference_asg.set_color(v, asg.color(v));

  const double old_range = net.config(ids[2]).range;
  net.set_range(ids[2], old_range * 1.5);
  const auto a = bbb.on_power_change(net, asg, ids[2], old_range);
  const auto b = reference.on_power_change(net, reference_asg, ids[2], old_range);
  expect_reports_equal(a, b, 0);
  for (NodeId v : net.nodes()) EXPECT_EQ(asg.color(v), reference_asg.color(v));
}

}  // namespace
