// Differential fuzz soak for component-parallel bounded recoloring (the
// parallel-recolor tentpole): a batched engine running BbbStrategy with
// `recolor_threads` ∈ {2, 4} must stay BIT-IDENTICAL — colors, max color,
// and maintained rank sequence — to a twin engine at `recolor_threads` = 1
// fed the exact same batches.
//
// The claim is unconditional, not just for the no-fallback regime: every
// decision point is thread-count-independent by construction.  The closure
// walk caps at the propagation budget, so any batch the parallel pass
// absorbs the serial pass would have absorbed (it can pop at most
// |closure| ≤ budget nodes); a capped closure or single component demotes
// to the *same* serial heap; and budget/drift/journal refusals fire on
// state the thread count never touches.  So production params — fallbacks,
// bailouts, drift rebuilds and all — must soak bit-identical too.
//
// Streams are ≥ 10^4 events (the ISSUE's soak floor) in random-size
// batches.  Clustered placement is the parallelism-friendly regime (the
// related power-control literature's Poisson-clustered networks): distant
// clusters make a batch's dirty regions naturally disjoint, which the soak
// asserts via the strategy's parallel_events counter.  Failures shrink to a
// 1-minimal event sequence via the shared event_fuzz ddmin shrinker.

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "../helpers/event_fuzz.hpp"
#include "serve/engine.hpp"
#include "sim/trace.hpp"
#include "strategies/bbb.hpp"
#include "util/rng.hpp"

namespace minim::strategies {
namespace {

using minim::test::FuzzConfig;
using minim::test::FuzzEvent;
using minim::test::FuzzKind;
using minim::test::FuzzPlacement;

/// Converts fuzz events to join-order-named trace events with the exact
/// live-list semantics of `replay_events`: victims resolve as
/// `live[pick % live.size()]`, leaves erase, joins append the next index.
/// (Same contract as the batch-fuzz soak's converter: subsequences stay
/// replayable, which is what lets the shrinker drop arbitrary chunks.)
sim::Trace to_trace(std::span<const FuzzEvent> events) {
  sim::Trace trace;
  trace.reserve(events.size());
  std::vector<std::size_t> live;  // join indices of live nodes
  std::size_t joined = 0;
  for (const FuzzEvent& e : events) {
    sim::TraceEvent t;
    if (e.kind == FuzzKind::kJoin) {
      t.kind = sim::TraceEvent::Kind::kJoin;
      t.position = {e.x, e.y};
      t.range = e.range;
      live.push_back(joined++);
    } else {
      if (live.empty()) continue;
      const std::size_t index = static_cast<std::size_t>(e.pick % live.size());
      t.node = live[index];
      switch (e.kind) {
        case FuzzKind::kLeave:
          t.kind = sim::TraceEvent::Kind::kLeave;
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
          break;
        case FuzzKind::kMove:
          t.kind = sim::TraceEvent::Kind::kMove;
          t.position = {e.x, e.y};
          break;
        case FuzzKind::kPower:
          t.kind = sim::TraceEvent::Kind::kPower;
          t.range = e.range;
          break;
        case FuzzKind::kJoin:
          break;  // unreachable
      }
    }
    trace.push_back(t);
  }
  return trace;
}

/// The maintained rank sequence with tombstones removed — identical batch
/// boundaries mean even the tombstone layout should agree, but the live
/// form is the invariant the bounded path depends on.
std::vector<net::NodeId> live_ranks(const BbbStrategy& bbb) {
  std::vector<net::NodeId> out;
  for (net::NodeId v : bbb.orderer().ranked_sequence())
    if (v != net::kInvalidNode) out.push_back(v);
  return out;
}

struct SoakOutcome {
  std::string message;  ///< empty = passed
  std::size_t batches = 0;
  BbbStrategy::Counters parallel_counters;
};

/// Replays `events` through twin batched engines — serial (threads=1) and
/// parallel (`threads`) — with identical random batch boundaries, comparing
/// colors, max color, and maintained ranks after every batch.
SoakOutcome run_soak(std::span<const FuzzEvent> events,
                     const BbbStrategy::Params& base_params,
                     std::size_t threads, std::size_t max_batch,
                     std::uint64_t boundary_seed) {
  const sim::Trace trace = to_trace(events);

  BbbStrategy::Params serial_params = base_params;
  serial_params.recolor_threads = 1;
  BbbStrategy::Params parallel_params = base_params;
  parallel_params.recolor_threads = threads;
  BbbStrategy serial_bbb(ColoringOrder::kSmallestLast, serial_params);
  BbbStrategy parallel_bbb(ColoringOrder::kSmallestLast, parallel_params);
  serve::AssignmentEngine serial(serial_bbb);
  serve::AssignmentEngine parallel(parallel_bbb);

  util::Rng rng(boundary_seed);
  SoakOutcome outcome;
  std::size_t at = 0;
  while (at < trace.size()) {
    // First batch forced to size 1 so both strategies seed their caches
    // from the identical from-scratch event.
    const std::size_t want =
        outcome.batches == 0 ? 1 : 1 + rng.below(max_batch);
    const std::size_t take = std::min(want, trace.size() - at);
    const std::span<const sim::TraceEvent> slice(trace.data() + at, take);
    serial.apply_batch(slice);
    parallel.apply_batch(slice);
    ++outcome.batches;

    const auto diverged = [&](const std::string& what) {
      outcome.message = "after batch " + std::to_string(outcome.batches) +
                        " (events [" + std::to_string(at) + ", " +
                        std::to_string(at + take) + ")), threads=" +
                        std::to_string(threads) + ": " + what;
    };
    for (std::size_t node = 0; node < serial.joined(); ++node) {
      if (!serial.is_live(node)) continue;
      if (serial.code_of(node) != parallel.code_of(node)) {
        diverged("color diverged at join index " + std::to_string(node) +
                 ": " + std::to_string(serial.code_of(node)) + " vs " +
                 std::to_string(parallel.code_of(node)));
        return outcome;
      }
    }
    if (serial.summary().max_color != parallel.summary().max_color) {
      diverged("max color diverged");
      return outcome;
    }
    if (live_ranks(serial_bbb) != live_ranks(parallel_bbb)) {
      diverged("maintained rank sequences diverged (serial full_events=" +
               std::to_string(serial_bbb.counters().full_events) +
               ", parallel full_events=" +
               std::to_string(parallel_bbb.counters().full_events) + ")");
      return outcome;
    }
    at += take;
  }
  outcome.parallel_counters = parallel_bbb.counters();
  return outcome;
}

/// Guards tuned to keep the soak on the bounded path (the regime where the
/// parallel pass actually runs): the dirty-fraction gate is disarmed —
/// batches routinely dirty most of a churning population — while the
/// propagation budget stays armed, so slack bailouts and drift rebuilds
/// still interleave.  ProductionParamsThreads4 covers the real gating.
BbbStrategy::Params bounded_params() {
  BbbStrategy::Params p;
  p.bounded_propagation = true;
  p.full_recolor_fraction = 1.1;
  p.propagation_slack = 1.0;
  return p;
}

/// Full soak entry point: run, and on failure shrink + log the minimal
/// repro before failing the test.  `require_parallel` asserts the
/// component-parallel pass engaged (clustered workloads must split).
void soak(const FuzzConfig& cfg, const BbbStrategy::Params& params,
          std::size_t threads, bool require_parallel,
          std::size_t max_batch = 64) {
  const std::vector<FuzzEvent> events = minim::test::generate_events(cfg);
  ASSERT_EQ(events.size(), cfg.events);
  const std::uint64_t boundary_seed = cfg.seed ^ 0x9e3779b97f4a7c15ull;
  const SoakOutcome outcome =
      run_soak(events, params, threads, max_batch, boundary_seed);
  if (outcome.message.empty()) {
    const BbbStrategy::Counters& c = outcome.parallel_counters;
    std::cout << "[ soak     ] threads=" << threads
              << " batches=" << outcome.batches
              << " parallel=" << c.parallel_events
              << " components=" << c.parallel_components
              << " demotions=" << c.parallel_demotions
              << " bounded=" << c.bounded_events << " full=" << c.full_events
              << "\n";
    if (require_parallel) {
      EXPECT_GT(c.parallel_events, 0u)
          << "component-parallel pass never engaged";
    }
    return;
  }

  const auto fails = [&](std::span<const FuzzEvent> candidate) {
    return !run_soak(candidate, params, threads, max_batch, boundary_seed)
                .message.empty();
  };
  const minim::test::ShrinkResult shrunk =
      minim::test::shrink_events(events, fails);
  const SoakOutcome minimal =
      run_soak(shrunk.events, params, threads, max_batch, boundary_seed);
  FAIL() << outcome.message << "\nshrunk to " << shrunk.events.size()
         << " events (" << shrunk.replays << " replays, "
         << (shrunk.minimal ? "1-minimal" : "replay budget hit")
         << "), failing with: " << minimal.message << "\n"
         << minim::test::format_repro(cfg, shrunk.events);
}

FuzzConfig config(FuzzPlacement placement, std::uint64_t seed,
                  std::size_t events = 10000) {
  FuzzConfig cfg;
  cfg.placement = placement;
  cfg.seed = seed;
  cfg.events = events;
  return cfg;
}

TEST(BbbParallelFuzz, ClusteredThreads2) {
  soak(config(FuzzPlacement::kClustered, 9301), bounded_params(), 2,
       /*require_parallel=*/true);
}

TEST(BbbParallelFuzz, ClusteredThreads4) {
  // Same stream as ClusteredThreads2: absorb/demote decisions are
  // thread-count-independent, so a stream that engages at 2 threads must
  // engage identically at 4.
  soak(config(FuzzPlacement::kClustered, 9301), bounded_params(), 4,
       /*require_parallel=*/true);
}

TEST(BbbParallelFuzz, UniformThreads4) {
  // Uniform placement: regions overlap more, so demotions dominate — the
  // soak pins that the demotion ladder itself is bit-exact.
  soak(config(FuzzPlacement::kUniform, 9303), bounded_params(), 4,
       /*require_parallel=*/false);
}

TEST(BbbParallelFuzz, ProductionParamsThreads4) {
  // Production guards armed: fallbacks, slack bailouts, and drift rebuilds
  // interleave with parallel absorption — and must land identically, since
  // every trigger reads state the thread count cannot influence.
  BbbStrategy::Params production;
  production.bounded_propagation = true;
  FuzzConfig cfg = config(FuzzPlacement::kClustered, 9304);
  cfg.storm_chance = 0.01;  // recolor storms force the whole ladder
  soak(cfg, production, 4, /*require_parallel=*/false);
}

TEST(BbbParallelFuzz, LargeBatchesThreads4) {
  // Serving-default batch sizes (up to 512) maximize per-batch dirty spread
  // — the component count's best case and the budget cap's worst case.
  soak(config(FuzzPlacement::kClustered, 9305, 6000), bounded_params(), 4,
       /*require_parallel=*/true, /*max_batch=*/512);
}

TEST(BbbParallelFuzz, TinyPopulationThreads2) {
  // Populations near zero: batches where everyone departs, single-node
  // components, reborn ids — the decomposer's degenerate inputs.
  FuzzConfig cfg = config(FuzzPlacement::kUniform, 9306, 4000);
  cfg.target_live = 12;
  soak(cfg, bounded_params(), 2, /*require_parallel=*/false);
}

}  // namespace
}  // namespace minim::strategies
