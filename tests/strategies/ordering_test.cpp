// DegeneracyOrderer equivalence and fallback policy.
//
// The maintained orderer must produce, after ANY event sequence, exactly the
// order a from-scratch `graph::smallest_last_order` computes on the current
// conflict graph — for every tie-break.  BBB's dirty-region recoloring (and
// therefore the committed figure CSVs) depends on this bit-identity, so the
// soak drives a network through a randomized mix of joins, leaves, moves and
// power changes and compares after every single event.

#include "strategies/ordering.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/algorithms.hpp"
#include "net/network.hpp"
#include "strategies/coloring.hpp"
#include "util/rng.hpp"

namespace {

using minim::graph::DegeneracyTieBreak;
using minim::net::AdhocNetwork;
using minim::net::NodeId;
using minim::strategies::DegeneracyOrderer;

constexpr DegeneracyTieBreak kAllTieBreaks[] = {
    DegeneracyTieBreak::kStack, DegeneracyTieBreak::kLowestId,
    DegeneracyTieBreak::kHighestId};

std::vector<NodeId> reference_order(const AdhocNetwork& net,
                                    const std::vector<NodeId>& vertices,
                                    DegeneracyTieBreak tie) {
  // From-scratch reference over a materialized adjacency copy — shares no
  // state with the orderer's cached-span path.
  const auto adj = minim::strategies::conflict_adjacency(net);
  return minim::graph::smallest_last_order(adj, vertices, tie);
}

/// One random event; returns a one-line description for failure messages.
std::string random_event(AdhocNetwork& net, std::vector<NodeId>& live,
                         minim::util::Rng& rng) {
  const double dice = rng.uniform01();
  if (live.size() < 5 || dice < 0.45) {
    const NodeId id = net.add_node({{rng.uniform(0, 100), rng.uniform(0, 100)},
                                    rng.uniform(15.0, 45.0)});
    live.push_back(id);
    return "join " + std::to_string(id);
  }
  const std::size_t pick = static_cast<std::size_t>(rng.below(live.size()));
  const NodeId v = live[pick];
  if (dice < 0.6) {
    net.remove_node(v);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    return "leave " + std::to_string(v);
  }
  if (dice < 0.8) {
    net.set_position(v, {rng.uniform(0, 100), rng.uniform(0, 100)});
    return "move " + std::to_string(v);
  }
  net.set_range(v, rng.uniform(10.0, 60.0));
  return "power " + std::to_string(v);
}

TEST(DegeneracyOrderer, MatchesFromScratchAcrossEventSoakAndTieBreaks) {
  minim::util::Rng rng(777);
  for (int round = 0; round < 3; ++round) {
    AdhocNetwork net;
    DegeneracyOrderer orderer;  // default params: incremental repair on
    std::vector<NodeId> live;
    std::vector<NodeId> out;
    for (int event = 0; event < 120; ++event) {
      const std::string what = random_event(net, live, rng);
      const std::vector<NodeId> vertices = net.nodes();
      for (const DegeneracyTieBreak tie : kAllTieBreaks) {
        orderer.order(net, vertices, tie, out);
        ASSERT_EQ(out, reference_order(net, vertices, tie))
            << "round " << round << ", event " << event << " (" << what
            << "), tie-break " << static_cast<int>(tie);
      }
    }
    // The soak must actually exercise the bounded-repair path, not fall
    // back to degree rebuilds throughout.
    EXPECT_GT(orderer.counters().repaired_nodes, 0u);
  }
}

TEST(DegeneracyOrderer, ZeroThresholdForcesDegreeRebuildEveryEvent) {
  minim::util::Rng rng(31);
  AdhocNetwork net;
  DegeneracyOrderer::Params params;
  params.rebuild_fraction = 0.0;  // any dirty entry exceeds the threshold
  DegeneracyOrderer orderer(params);
  std::vector<NodeId> out;
  std::vector<NodeId> live;
  // Joins only: every join journals at least its own id, so each order call
  // after the first must trip the zero threshold.
  for (int event = 0; event < 30; ++event) {
    live.push_back(net.add_node({{rng.uniform(0, 100), rng.uniform(0, 100)},
                                 rng.uniform(15.0, 45.0)}));
    orderer.order(net, live, DegeneracyTieBreak::kStack, out);
    EXPECT_EQ(out, reference_order(net, live, DegeneracyTieBreak::kStack));
  }
  // First order rebuilds because the graph is new; every later one because
  // the (never-empty) dirty set exceeds the zero threshold.
  EXPECT_EQ(orderer.counters().degree_rebuilds, 30u);
  EXPECT_EQ(orderer.counters().threshold_fallbacks, 29u);
  EXPECT_EQ(orderer.counters().repaired_nodes, 0u);
}

TEST(DegeneracyOrderer, GenerousThresholdRepairsInPlace) {
  minim::util::Rng rng(32);
  AdhocNetwork net;
  DegeneracyOrderer::Params params;
  params.rebuild_fraction = 1e9;  // never trip on size
  DegeneracyOrderer orderer(params);
  std::vector<NodeId> out;
  std::vector<NodeId> live;
  for (int event = 0; event < 30; ++event) {
    random_event(net, live, rng);
    orderer.order(net, live, DegeneracyTieBreak::kStack, out);
    EXPECT_EQ(out, reference_order(net, live, DegeneracyTieBreak::kStack));
  }
  EXPECT_EQ(orderer.counters().degree_rebuilds, 1u);  // first sight only
  EXPECT_EQ(orderer.counters().threshold_fallbacks, 0u);
  EXPECT_GT(orderer.counters().repaired_nodes, 0u);
}

TEST(DegeneracyOrderer, ThresholdBoundaryIsExclusive) {
  // A single join on an empty network journals exactly 1 dirty id.  With
  // rows R, fraction f, the repair path runs iff dirty <= f * R: pick f just
  // below and above 1/R around one fresh join to pin the boundary.
  for (const bool expect_repair : {false, true}) {
    AdhocNetwork net;
    const NodeId first =
        net.add_node({{10, 10}, 20.0});  // rows == 1 after this
    DegeneracyOrderer::Params params;
    // One more join journals 1 dirty id against rows == 2.
    params.rebuild_fraction = expect_repair ? 0.5 : 0.49;
    DegeneracyOrderer orderer(params);
    std::vector<NodeId> out;
    std::vector<NodeId> live{first};
    orderer.order(net, live, DegeneracyTieBreak::kStack, out);  // sync
    live.push_back(net.add_node({{90, 90}, 20.0}));
    orderer.order(net, live, DegeneracyTieBreak::kStack, out);
    EXPECT_EQ(out, reference_order(net, live, DegeneracyTieBreak::kStack));
    EXPECT_EQ(orderer.counters().threshold_fallbacks, expect_repair ? 0u : 1u);
    EXPECT_EQ(orderer.counters().repaired_nodes > 0, expect_repair);
  }
}

TEST(DegeneracyOrderer, ResetNetworkFallsBackViaJournal) {
  minim::util::Rng rng(33);
  AdhocNetwork net;
  DegeneracyOrderer orderer;
  std::vector<NodeId> out;
  std::vector<NodeId> live;
  for (int event = 0; event < 10; ++event) random_event(net, live, rng);
  std::vector<NodeId> vertices = net.nodes();
  orderer.order(net, vertices, DegeneracyTieBreak::kStack, out);

  net.reset(100.0, 100.0);  // clears the conflict graph and its journal
  live.clear();
  for (int event = 0; event < 10; ++event) random_event(net, live, rng);
  vertices = net.nodes();
  orderer.order(net, vertices, DegeneracyTieBreak::kStack, out);
  EXPECT_EQ(out, reference_order(net, vertices, DegeneracyTieBreak::kStack));
  EXPECT_GE(orderer.counters().journal_fallbacks, 1u);
}

TEST(DegeneracyOrderer, NonIncrementalModeAlwaysRebuilds) {
  minim::util::Rng rng(34);
  AdhocNetwork net;
  DegeneracyOrderer::Params params;
  params.incremental = false;
  DegeneracyOrderer orderer(params);
  std::vector<NodeId> out;
  std::vector<NodeId> live;
  for (int event = 0; event < 15; ++event) {
    random_event(net, live, rng);
    std::vector<NodeId> vertices = net.nodes();
    orderer.order(net, vertices, DegeneracyTieBreak::kStack, out);
    EXPECT_EQ(out, reference_order(net, vertices, DegeneracyTieBreak::kStack));
  }
  EXPECT_EQ(orderer.counters().degree_rebuilds, 15u);
  EXPECT_EQ(orderer.counters().repaired_nodes, 0u);
}

}  // namespace
