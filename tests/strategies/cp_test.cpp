// The CP baseline (Chlamtac-Pinter) — correctness on all events, identity
// ordering semantics, and the worked-example phenomena of Figs 4 and 6.

#include "strategies/cp.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "util/rng.hpp"

namespace {

using minim::core::MinimStrategy;
using minim::core::RecodeReport;
using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::NodeId;
using minim::strategies::CpStrategy;
using minim::test::build_world;
using minim::test::World;
using minim::util::Rng;

TEST(CpStrategy, FirstJoinGetsColor1) {
  AdhocNetwork network;
  CodeAssignment assignment;
  CpStrategy cp;
  const NodeId first = network.add_node({{50, 50}, 20.0});
  const RecodeReport report = cp.on_join(network, assignment, first);
  EXPECT_EQ(assignment.color(first), 1u);
  EXPECT_EQ(report.recodings(), 1u);
}

TEST(CpStrategy, JoinRecolorsDuplicateNeighbors) {
  // Hidden-terminal setup: left and right (same color, no edge between them)
  // both reach the joiner.  CP deselects {left, right, joiner}; all three
  // recolor because the joiner (highest id) grabs color 1 first.
  AdhocNetwork network;
  CodeAssignment assignment;
  const NodeId left = network.add_node({{20, 50}, 35.0});
  const NodeId right = network.add_node({{80, 50}, 35.0});
  assignment.set_color(left, 1);
  assignment.set_color(right, 1);  // valid: no edges, no common receiver yet

  CpStrategy cp;
  const NodeId joiner = network.add_node({{50, 50}, 5.0});  // hears both
  ASSERT_EQ(network.heard_by(joiner).size(), 2u);
  const RecodeReport report = cp.on_join(network, assignment, joiner);
  EXPECT_TRUE(minim::net::is_valid(network, assignment));
  // left and right now conflict (hidden at joiner).
  EXPECT_NE(assignment.color(left), assignment.color(right));
  EXPECT_EQ(report.recodings(), 3u);
}

TEST(CpStrategy, HighestFirstGivesHigherIdsFirstPick) {
  // With highest-first order the joiner picks first (everything in its
  // vicinity is still uncolored), then right, then left.
  AdhocNetwork network;
  CodeAssignment assignment;
  const NodeId left = network.add_node({{20, 50}, 35.0});
  const NodeId right = network.add_node({{80, 50}, 35.0});
  ASSERT_LT(left, right);
  assignment.set_color(left, 1);
  assignment.set_color(right, 1);

  CpStrategy cp(CpStrategy::Order::kHighestFirst);
  const NodeId joiner = network.add_node({{50, 50}, 5.0});
  cp.on_join(network, assignment, joiner);
  EXPECT_EQ(assignment.color(joiner), 1u);
  EXPECT_EQ(assignment.color(right), 2u);
  EXPECT_EQ(assignment.color(left), 3u);
}

TEST(CpStrategy, LowestFirstReversesPicks) {
  AdhocNetwork network;
  CodeAssignment assignment;
  const NodeId left = network.add_node({{20, 50}, 35.0});
  const NodeId right = network.add_node({{80, 50}, 35.0});
  assignment.set_color(left, 1);
  assignment.set_color(right, 1);

  CpStrategy cp(CpStrategy::Order::kLowestFirst);
  const NodeId joiner = network.add_node({{50, 50}, 5.0});
  cp.on_join(network, assignment, joiner);
  EXPECT_EQ(assignment.color(left), 1u);   // picks first, re-selects 1
  EXPECT_EQ(assignment.color(right), 2u);
  EXPECT_EQ(assignment.color(joiner), 3u);
}

TEST(CpStrategy, PowerIncreaseWithoutConflictDoesNothing) {
  AdhocNetwork network;
  CodeAssignment assignment;
  const NodeId a = network.add_node({{0, 0}, 10.0});
  const NodeId b = network.add_node({{30, 0}, 10.0});
  assignment.set_color(a, 1);
  assignment.set_color(b, 2);
  CpStrategy cp;
  const double old_range = network.config(a).range;
  network.set_range(a, 35.0);
  const RecodeReport report = cp.on_power_change(network, assignment, a, old_range);
  EXPECT_EQ(report.recodings(), 0u);
  EXPECT_TRUE(minim::net::is_valid(network, assignment));
}

TEST(CpStrategy, PowerIncreaseRecodesConflictersAndSelf) {
  // Fig 6 phenomenon: CP recolors both the conflicting node and n, where
  // Minim would recolor only n.
  AdhocNetwork network;
  CodeAssignment assignment;
  const NodeId n = network.add_node({{0, 0}, 5.0});
  const NodeId other = network.add_node({{30, 0}, 10.0});
  assignment.set_color(n, 1);
  assignment.set_color(other, 1);

  CpStrategy cp;
  const double old_range = network.config(n).range;
  network.set_range(n, 35.0);
  const RecodeReport cp_report = cp.on_power_change(network, assignment, n, old_range);
  EXPECT_TRUE(minim::net::is_valid(network, assignment));
  // Both candidates deselect; at most one re-picks color 1.
  EXPECT_GE(cp_report.recodings(), 1u);

  // Minim on the same scenario recodes exactly one node (n).
  AdhocNetwork network2;
  CodeAssignment assignment2;
  const NodeId n2 = network2.add_node({{0, 0}, 5.0});
  const NodeId other2 = network2.add_node({{30, 0}, 10.0});
  assignment2.set_color(n2, 1);
  assignment2.set_color(other2, 1);
  MinimStrategy minim;
  network2.set_range(n2, 35.0);
  const RecodeReport minim_report =
      minim.on_power_change(network2, assignment2, n2, 5.0);
  EXPECT_EQ(minim_report.recodings(), 1u);
  EXPECT_LE(minim_report.recodings(), cp_report.recodings());
}

TEST(CpStrategy, LeaveAndDecreaseAreNoOps) {
  Rng rng(71);
  World world = build_world(20, 20.5, 30.5, rng);
  CpStrategy cp;
  const NodeId v = world.ids[5];
  const double old_range = world.network.config(v).range;
  world.network.set_range(v, old_range * 0.5);
  EXPECT_EQ(cp.on_power_change(world.network, world.assignment, v, old_range).recodings(), 0u);
  const NodeId gone = world.ids[7];
  world.network.remove_node(gone);
  world.assignment.clear(gone);
  EXPECT_EQ(cp.on_leave(world.network, world.assignment, gone).recodings(), 0u);
  EXPECT_TRUE(minim::net::is_valid(world.network, world.assignment));
}

TEST(CpStrategy, Names) {
  EXPECT_EQ(CpStrategy().name(), "CP");
  EXPECT_EQ(CpStrategy(CpStrategy::Order::kLowestFirst).name(), "CP/lowest-first");
}

// Randomized soaks: validity after every event, for both identity orders
// and both vicinity modes.
struct CpSoakParams {
  std::uint64_t seed;
  CpStrategy::Order order;
  CpStrategy::Vicinity vicinity = CpStrategy::Vicinity::kTwoHopBall;
};

class CpSoakTest : public ::testing::TestWithParam<CpSoakParams> {};

TEST_P(CpSoakTest, MixedEventsStayValid) {
  const auto param = GetParam();
  Rng rng(param.seed);
  AdhocNetwork network;
  CodeAssignment assignment;
  CpStrategy cp(param.order, param.vicinity);
  std::vector<NodeId> alive;

  for (int event = 0; event < 150; ++event) {
    const double dice = rng.uniform01();
    if (alive.size() < 8 || dice < 0.4) {
      const NodeId id = network.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 30)});
      cp.on_join(network, assignment, id);
      alive.push_back(id);
    } else if (dice < 0.55) {
      const std::size_t pick = rng.below(alive.size());
      const NodeId v = alive[pick];
      network.remove_node(v);
      assignment.clear(v);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      cp.on_leave(network, assignment, v);
    } else if (dice < 0.8) {
      const NodeId v = alive[rng.below(alive.size())];
      network.set_position(v, {rng.uniform(0, 100), rng.uniform(0, 100)});
      cp.on_move(network, assignment, v);
    } else {
      const NodeId v = alive[rng.below(alive.size())];
      const double old_range = network.config(v).range;
      network.set_range(v, old_range * rng.uniform(0.5, 2.5));
      cp.on_power_change(network, assignment, v, old_range);
    }
    ASSERT_TRUE(minim::net::is_valid(network, assignment)) << "event " << event;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Soak, CpSoakTest,
    ::testing::Values(
        CpSoakParams{61, CpStrategy::Order::kHighestFirst},
        CpSoakParams{62, CpStrategy::Order::kHighestFirst},
        CpSoakParams{63, CpStrategy::Order::kLowestFirst},
        CpSoakParams{64, CpStrategy::Order::kLowestFirst},
        CpSoakParams{65, CpStrategy::Order::kHighestFirst,
                     CpStrategy::Vicinity::kExactConstraints},
        CpSoakParams{66, CpStrategy::Order::kLowestFirst,
                     CpStrategy::Vicinity::kExactConstraints}));

}  // namespace
