// Build-level smoke test: every module links and the end-to-end path
// (generate -> replay -> validate) works for each strategy.

#include <gtest/gtest.h>

#include "net/constraints.hpp"
#include "sim/replay.hpp"
#include "sim/workload.hpp"
#include "strategies/factory.hpp"

namespace {

using namespace minim;

TEST(Smoke, TinyJoinWorkloadAllStrategies) {
  util::Rng rng(7);
  sim::WorkloadParams params;
  params.n = 12;
  const sim::Workload workload = sim::make_join_workload(params, rng);
  for (const char* name : {"minim", "cp", "bbb"}) {
    const auto strategy = strategies::make_strategy(name);
    const sim::RunOutcome outcome = sim::replay(workload, *strategy, /*validate=*/true);
    EXPECT_GT(outcome.final_max_color(), 0) << name;
    EXPECT_GE(outcome.total_recodings(), 12.0) << name;  // every join recodes >= 1
  }
}

}  // namespace
