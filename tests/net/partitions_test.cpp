// Join partitions 1n/2n/3n/4n (Fig 2) and the minimal recoding bound
// (Lemma 4.1.1).

#include "net/partitions.hpp"

#include <gtest/gtest.h>

#include "net/assignment.hpp"
#include "net/network.hpp"
#include "../helpers.hpp"
#include "util/rng.hpp"

namespace {

using minim::graph::NodeId;
using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::Color;
using minim::net::JoinPartitions;
using minim::net::minimal_recoding_bound;
using minim::util::Rng;

TEST(Partitions, AllFourSetsPopulated) {
  AdhocNetwork net;
  // n at origin with range 10.
  // a: hears n and is heard (set2).   b: only heard by n... etc.
  const NodeId n = net.add_node({{0, 0}, 10.0});
  const NodeId mutual = net.add_node({{5, 0}, 10.0});   // both directions
  const NodeId to_n_only = net.add_node({{0, 12}, 20.0}); // reaches n; n doesn't reach it
  const NodeId from_n_only = net.add_node({{8, 0}, 1.0});  // n reaches it; it can't reach n
  const NodeId unrelated = net.add_node({{90, 90}, 5.0});

  const JoinPartitions p = JoinPartitions::compute(net, n);
  EXPECT_EQ(p.set2, (std::vector<NodeId>{mutual}));
  EXPECT_EQ(p.set1, (std::vector<NodeId>{to_n_only}));
  EXPECT_EQ(p.set3, (std::vector<NodeId>{from_n_only}));
  EXPECT_EQ(p.set4, (std::vector<NodeId>{unrelated}));
}

TEST(Partitions, RecodeCandidatesIsInNeighborhood) {
  AdhocNetwork net;
  const NodeId n = net.add_node({{0, 0}, 10.0});
  net.add_node({{5, 0}, 10.0});
  net.add_node({{0, 12}, 20.0});
  const JoinPartitions p = JoinPartitions::compute(net, n);
  EXPECT_EQ(p.recode_candidates(), minim::test::ids(net.heard_by(n)));
}

TEST(Partitions, SetsArePairwiseDisjointAndCoverEverything) {
  Rng rng(91);
  AdhocNetwork net;
  for (int i = 0; i < 40; ++i)
    net.add_node({{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(10, 40)});
  const NodeId n = net.add_node({{50, 50}, 25.0});
  const JoinPartitions p = JoinPartitions::compute(net, n);

  std::vector<NodeId> all;
  for (const auto* set : {&p.set1, &p.set2, &p.set3, &p.set4})
    all.insert(all.end(), set->begin(), set->end());
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  std::vector<NodeId> expected = net.nodes();
  expected.erase(std::find(expected.begin(), expected.end(), n));
  EXPECT_EQ(all, expected);
}

TEST(Partitions, IsolatedJoinerHasOnlySet4) {
  AdhocNetwork net;
  net.add_node({{0, 0}, 5.0});
  const NodeId n = net.add_node({{90, 90}, 5.0});
  const JoinPartitions p = JoinPartitions::compute(net, n);
  EXPECT_TRUE(p.set1.empty());
  EXPECT_TRUE(p.set2.empty());
  EXPECT_TRUE(p.set3.empty());
  EXPECT_EQ(p.set4.size(), 1u);
}

// --------------------------------------------------- minimal recoding bound

TEST(MinimalBound, ZeroWhenAllDistinct) {
  AdhocNetwork net;
  const NodeId n = net.add_node({{0, 0}, 0.0});  // hears everyone below
  CodeAssignment asg;
  for (int i = 1; i <= 4; ++i) {
    const NodeId v = net.add_node({{static_cast<double>(i), 0}, 50.0});
    asg.set_color(v, static_cast<Color>(i));
  }
  EXPECT_EQ(minimal_recoding_bound(net, asg, n), 0u);
}

TEST(MinimalBound, CountsDuplicatesPerColorClass) {
  AdhocNetwork net;
  const NodeId n = net.add_node({{0, 0}, 0.0});
  CodeAssignment asg;
  // Colors: 1,1,1 (K=3 -> 2), 2,2 (K=2 -> 1), 3 (K=1 -> 0): bound 3.
  const Color colors[] = {1, 1, 1, 2, 2, 3};
  for (int i = 0; i < 6; ++i) {
    const NodeId v = net.add_node({{static_cast<double>(i + 1), 0}, 50.0});
    asg.set_color(v, colors[i]);
  }
  EXPECT_EQ(minimal_recoding_bound(net, asg, n), 3u);
}

TEST(MinimalBound, NoInNeighborsIsZero) {
  AdhocNetwork net;
  net.add_node({{0, 0}, 5.0});
  const NodeId n = net.add_node({{90, 90}, 5.0});
  CodeAssignment asg;
  asg.set_color(0, 1);
  EXPECT_EQ(minimal_recoding_bound(net, asg, n), 0u);
}

TEST(MinimalBound, FormulaSumKiMinusM) {
  // Direct check of the formula: bound == (sum K_i) - m.
  Rng rng(92);
  for (int trial = 0; trial < 20; ++trial) {
    AdhocNetwork net;
    const NodeId n = net.add_node({{50, 50}, 0.0});
    CodeAssignment asg;
    const int k = 3 + static_cast<int>(rng.below(10));
    std::size_t total = 0;
    std::vector<char> seen(16, 0);
    std::size_t distinct = 0;
    for (int i = 0; i < k; ++i) {
      const NodeId v = net.add_node(
          {{50 + rng.uniform(-5, 5), 50 + rng.uniform(-5, 5)}, 30.0});
      const auto c = static_cast<Color>(1 + rng.below(5));
      asg.set_color(v, c);
      ++total;
      if (!seen[c]) {
        seen[c] = 1;
        ++distinct;
      }
    }
    ASSERT_EQ(minimal_recoding_bound(net, asg, n), total - distinct);
  }
}

// --------------------------------------------------- CodeAssignment basics

TEST(CodeAssignment, DefaultsToNoColor) {
  CodeAssignment asg;
  EXPECT_EQ(asg.color(42), minim::net::kNoColor);
  EXPECT_FALSE(asg.has_color(42));
}

TEST(CodeAssignment, SetAndClear) {
  CodeAssignment asg;
  asg.set_color(3, 7);
  EXPECT_EQ(asg.color(3), 7u);
  asg.clear(3);
  EXPECT_FALSE(asg.has_color(3));
  asg.clear(1000);  // clearing unknown id is a no-op
}

TEST(CodeAssignment, ZeroColorRejected) {
  CodeAssignment asg;
  EXPECT_THROW(asg.set_color(0, 0), std::invalid_argument);
}

TEST(CodeAssignment, MaxAndDistinct) {
  CodeAssignment asg;
  asg.set_color(0, 3);
  asg.set_color(1, 5);
  asg.set_color(2, 3);
  const std::vector<NodeId> nodes{0, 1, 2};
  EXPECT_EQ(asg.max_color(nodes), 5u);
  EXPECT_EQ(asg.distinct_colors(nodes), 2u);
  EXPECT_EQ(asg.max_color({}), minim::net::kNoColor);
}

}  // namespace
