// The network model: edge rule d <= r, incremental edge maintenance under
// join/leave/move/power events, checked against O(n^2) reconstruction.

#include "net/network.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "util/rng.hpp"

namespace {

using minim::graph::NodeId;
using minim::net::AdhocNetwork;
using minim::net::NodeConfig;
using minim::util::Rng;
using minim::util::Vec2;

/// Asserts the incremental graph equals the brute-force rebuild.
void expect_graph_consistent(const AdhocNetwork& net) {
  const auto fresh = net.rebuild_graph_brute_force();
  const auto& incremental = net.graph();
  ASSERT_EQ(incremental.node_count(), fresh.node_count());
  ASSERT_EQ(incremental.edge_count(), fresh.edge_count());
  for (NodeId u : net.nodes()) {
    ASSERT_EQ(minim::test::ids(incremental.out_neighbors(u)),
              minim::test::ids(fresh.out_neighbors(u)))
        << "node " << u;
    ASSERT_EQ(minim::test::ids(incremental.in_neighbors(u)),
              minim::test::ids(fresh.in_neighbors(u)))
        << "node " << u;
  }
}

TEST(AdhocNetwork, EdgeRuleIsDistanceAtMostRange) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 10.0});
  const NodeId b = net.add_node({{10, 0}, 5.0});  // exactly at a's range
  EXPECT_TRUE(net.graph().has_edge(a, b));   // d = 10 <= r_a = 10 (inclusive)
  EXPECT_FALSE(net.graph().has_edge(b, a));  // d = 10 > r_b = 5
}

TEST(AdhocNetwork, AsymmetricRangesGiveAsymmetricEdges) {
  AdhocNetwork net;
  const NodeId strong = net.add_node({{0, 0}, 50.0});
  const NodeId weak = net.add_node({{30, 0}, 10.0});
  EXPECT_TRUE(net.graph().has_edge(strong, weak));
  EXPECT_FALSE(net.graph().has_edge(weak, strong));
  EXPECT_EQ(minim::test::ids(net.heard_by(weak)), (std::vector<NodeId>{strong}));
  EXPECT_TRUE(net.heard_by(strong).empty());
}

TEST(AdhocNetwork, JoinEstablishesBothDirections) {
  AdhocNetwork net;
  net.add_node({{0, 0}, 20.0});
  net.add_node({{10, 0}, 20.0});
  const NodeId late = net.add_node({{5, 0}, 20.0});
  // The late joiner must have edges in both directions with both peers.
  EXPECT_EQ(net.heard_by(late).size(), 2u);
  EXPECT_EQ(net.hearers_of(late).size(), 2u);
  expect_graph_consistent(net);
}

TEST(AdhocNetwork, RemoveNodeCleansEdges) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 20.0});
  const NodeId b = net.add_node({{5, 0}, 20.0});
  net.add_node({{10, 0}, 20.0});
  net.remove_node(b);
  EXPECT_FALSE(net.contains(b));
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_FALSE(net.graph().has_edge(a, b));
  expect_graph_consistent(net);
}

TEST(AdhocNetwork, SetRangeOnlyChangesOwnOutEdges) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 5.0});
  const NodeId b = net.add_node({{10, 0}, 15.0});
  EXPECT_FALSE(net.graph().has_edge(a, b));
  EXPECT_TRUE(net.graph().has_edge(b, a));
  net.set_range(a, 12.0);
  EXPECT_TRUE(net.graph().has_edge(a, b));
  EXPECT_TRUE(net.graph().has_edge(b, a));  // b's edge untouched
  net.set_range(a, 3.0);
  EXPECT_FALSE(net.graph().has_edge(a, b));
  expect_graph_consistent(net);
}

TEST(AdhocNetwork, MoveUpdatesBothDirections) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 15.0});
  const NodeId b = net.add_node({{50, 50}, 15.0});
  EXPECT_EQ(net.graph().edge_count(), 0u);
  net.set_position(b, {10, 0});
  EXPECT_TRUE(net.graph().has_edge(a, b));
  EXPECT_TRUE(net.graph().has_edge(b, a));
  expect_graph_consistent(net);
}

TEST(AdhocNetwork, PositionsClampedToField) {
  AdhocNetwork net(100, 100);
  const NodeId a = net.add_node({{150, -10}, 5.0});
  EXPECT_DOUBLE_EQ(net.config(a).position.x, 100.0);
  EXPECT_DOUBLE_EQ(net.config(a).position.y, 0.0);
  net.set_position(a, {-3, 200});
  EXPECT_DOUBLE_EQ(net.config(a).position.x, 0.0);
  EXPECT_DOUBLE_EQ(net.config(a).position.y, 100.0);
}

TEST(AdhocNetwork, MinimalConnectivity) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 20.0});
  EXPECT_FALSE(net.minimally_connected(a));  // alone
  const NodeId b = net.add_node({{10, 0}, 20.0});
  EXPECT_TRUE(net.minimally_connected(a));
  EXPECT_TRUE(net.minimally_connected(b));
}

TEST(AdhocNetwork, ZeroRangeNodeHearsButIsNotHeard) {
  AdhocNetwork net;
  const NodeId mute = net.add_node({{0, 0}, 0.0});
  const NodeId loud = net.add_node({{5, 0}, 10.0});
  EXPECT_TRUE(net.graph().has_edge(loud, mute));
  EXPECT_FALSE(net.graph().has_edge(mute, loud));
  EXPECT_EQ(minim::test::ids(net.heard_by(mute)), (std::vector<NodeId>{loud}));
}

TEST(AdhocNetwork, NegativeRangeRejected) {
  AdhocNetwork net;
  EXPECT_THROW(net.add_node({{0, 0}, -1.0}), std::invalid_argument);
  const NodeId a = net.add_node({{0, 0}, 1.0});
  EXPECT_THROW(net.set_range(a, -0.5), std::invalid_argument);
}

TEST(AdhocNetwork, IdReuseAfterLeave) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 10.0});
  net.add_node({{20, 0}, 10.0});
  net.remove_node(a);
  const NodeId reused = net.add_node({{40, 0}, 10.0});
  EXPECT_EQ(reused, a);
  expect_graph_consistent(net);
}

// Randomized churn soak: after every event the incremental edge set must
// equal the brute-force rebuild.
struct ChurnParams {
  std::uint64_t seed;
  int events;
  double min_range;
  double max_range;
};

class NetworkChurnTest : public ::testing::TestWithParam<ChurnParams> {};

TEST_P(NetworkChurnTest, IncrementalGraphMatchesBruteForce) {
  const auto param = GetParam();
  Rng rng(param.seed);
  AdhocNetwork net;
  std::vector<NodeId> alive;

  for (int event = 0; event < param.events; ++event) {
    const double dice = rng.uniform01();
    if (alive.size() < 5 || dice < 0.35) {
      alive.push_back(net.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)},
           rng.uniform(param.min_range, param.max_range)}));
    } else if (dice < 0.5) {
      const std::size_t pick = rng.below(alive.size());
      net.remove_node(alive[pick]);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (dice < 0.75) {
      const NodeId v = alive[rng.below(alive.size())];
      net.set_position(v, {rng.uniform(0, 100), rng.uniform(0, 100)});
    } else {
      const NodeId v = alive[rng.below(alive.size())];
      net.set_range(v, rng.uniform(param.min_range, param.max_range * 2));
    }
    expect_graph_consistent(net);
  }
}

INSTANTIATE_TEST_SUITE_P(Churn, NetworkChurnTest,
                         ::testing::Values(ChurnParams{1, 120, 20.5, 30.5},
                                           ChurnParams{2, 120, 5.0, 10.0},
                                           ChurnParams{3, 120, 40.0, 70.0},
                                           ChurnParams{4, 200, 0.0, 100.0}));

}  // namespace
