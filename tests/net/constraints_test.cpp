// CA1/CA2 conflict semantics: oracle functions cross-checked against an
// O(n^3) brute force on random geometric networks.

#include "net/constraints.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace {

using minim::graph::NodeId;
using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::Color;
using minim::net::ConflictKind;
using minim::net::conflict_partners;
using minim::net::find_violations;
using minim::net::forbidden_colors;
using minim::net::in_conflict;
using minim::net::is_valid;
using minim::net::lowest_free_color;
using minim::util::Rng;

/// Brute-force conflict: scan the definition directly.
bool conflict_oracle(const AdhocNetwork& net, NodeId u, NodeId v) {
  const auto& g = net.graph();
  if (g.has_edge(u, v) || g.has_edge(v, u)) return true;
  for (NodeId k : net.nodes()) {
    if (k == u || k == v) continue;
    if (g.has_edge(u, k) && g.has_edge(v, k)) return true;
  }
  return false;
}

AdhocNetwork random_network(Rng& rng, std::size_t n, double min_r, double max_r) {
  AdhocNetwork net;
  for (std::size_t i = 0; i < n; ++i)
    net.add_node({{rng.uniform(0, 100), rng.uniform(0, 100)},
                  rng.uniform(min_r, max_r)});
  return net;
}

// --------------------------------------------------------- hand geometry

TEST(Conflicts, PrimaryConflictFromSingleEdge) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 10.0});
  const NodeId b = net.add_node({{5, 0}, 1.0});  // b cannot reach a
  EXPECT_TRUE(in_conflict(net, a, b));
  EXPECT_TRUE(in_conflict(net, b, a));  // symmetric predicate
}

TEST(Conflicts, HiddenConflictThroughCommonReceiver) {
  // a and c both reach b but not each other: the hidden-terminal pair.
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 12.0});
  const NodeId b = net.add_node({{10, 0}, 1.0});
  const NodeId c = net.add_node({{20, 0}, 12.0});
  ASSERT_TRUE(net.graph().has_edge(a, b));
  ASSERT_TRUE(net.graph().has_edge(c, b));
  ASSERT_FALSE(net.graph().has_edge(a, c));
  EXPECT_TRUE(in_conflict(net, a, c));
}

TEST(Conflicts, NoConflictWhenFarApart) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 10.0});
  const NodeId b = net.add_node({{90, 90}, 10.0});
  EXPECT_FALSE(in_conflict(net, a, b));
}

TEST(Conflicts, PartnersSortedUniqueAndSelfFree) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 15.0});
  const NodeId b = net.add_node({{10, 0}, 15.0});
  const NodeId c = net.add_node({{20, 0}, 15.0});
  // a<->b, b<->c edges; a-c hidden via b.
  const auto partners = conflict_partners(net, a);
  EXPECT_EQ(partners, (std::vector<NodeId>{b, c}));
  EXPECT_TRUE(std::is_sorted(partners.begin(), partners.end()));
}

TEST(Violations, DetectsPrimary) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 10.0});
  const NodeId b = net.add_node({{5, 0}, 10.0});
  CodeAssignment asg;
  asg.set_color(a, 1);
  asg.set_color(b, 1);
  const auto violations = find_violations(net, asg);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ConflictKind::kPrimary);
  EXPECT_EQ(violations[0].color, 1u);
  EXPECT_FALSE(violations[0].to_string().empty());
}

TEST(Violations, DetectsHidden) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 12.0});
  const NodeId b = net.add_node({{10, 0}, 1.0});
  const NodeId c = net.add_node({{20, 0}, 12.0});
  CodeAssignment asg;
  asg.set_color(a, 2);
  asg.set_color(b, 1);
  asg.set_color(c, 2);
  const auto violations = find_violations(net, asg);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ConflictKind::kHidden);
  EXPECT_EQ(violations[0].a, a);
  EXPECT_EQ(violations[0].b, c);
}

TEST(Violations, PairReportedOnceWithPrimaryPrecedence) {
  // Mutual edge AND common receiver: one violation, classified primary.
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 20.0});
  const NodeId b = net.add_node({{5, 0}, 20.0});
  net.add_node({{10, 0}, 1.0});  // common receiver
  CodeAssignment asg;
  for (NodeId v : net.nodes()) asg.set_color(v, 1);
  const auto violations = find_violations(net, asg);
  std::size_t ab_count = 0;
  for (const auto& violation : violations)
    if (violation.a == a && violation.b == b) {
      ++ab_count;
      EXPECT_EQ(violation.kind, ConflictKind::kPrimary);
    }
  EXPECT_EQ(ab_count, 1u);
}

TEST(Violations, UncoloredNodesNeverViolate) {
  AdhocNetwork net;
  net.add_node({{0, 0}, 10.0});
  net.add_node({{5, 0}, 10.0});
  CodeAssignment asg;  // nobody colored
  EXPECT_TRUE(find_violations(net, asg).empty());
  EXPECT_FALSE(is_valid(net, asg));  // but not valid either: uncolored
}

TEST(Validity, ValidAssignmentAccepted) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 10.0});
  const NodeId b = net.add_node({{5, 0}, 10.0});
  CodeAssignment asg;
  asg.set_color(a, 1);
  asg.set_color(b, 2);
  EXPECT_TRUE(is_valid(net, asg));
}

// --------------------------------------------------------- forbidden colors

TEST(ForbiddenColors, CollectsPartnerColors) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 15.0});
  const NodeId b = net.add_node({{10, 0}, 15.0});
  const NodeId c = net.add_node({{20, 0}, 15.0});
  CodeAssignment asg;
  asg.set_color(b, 4);
  asg.set_color(c, 2);
  EXPECT_EQ(forbidden_colors(net, asg, a), (std::vector<Color>{2, 4}));
}

TEST(ForbiddenColors, IgnorePredicateExcludes) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 15.0});
  const NodeId b = net.add_node({{10, 0}, 15.0});
  const NodeId c = net.add_node({{20, 0}, 15.0});
  CodeAssignment asg;
  asg.set_color(b, 4);
  asg.set_color(c, 2);
  const auto forbidden =
      forbidden_colors(net, asg, a, [b](NodeId v) { return v == b; });
  EXPECT_EQ(forbidden, (std::vector<Color>{2}));
}

TEST(LowestFreeColor, FindsGaps) {
  EXPECT_EQ(lowest_free_color({}), 1u);
  EXPECT_EQ(lowest_free_color({1, 2, 3}), 4u);
  EXPECT_EQ(lowest_free_color({2, 3}), 1u);
  EXPECT_EQ(lowest_free_color({1, 3, 4}), 2u);
  EXPECT_EQ(lowest_free_color({1, 2, 5, 9}), 3u);
}

// --------------------------------------------------- randomized cross-check

class ConflictOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConflictOracleTest, PairwisePredicateMatchesBruteForce) {
  Rng rng(GetParam());
  const AdhocNetwork net = random_network(rng, 30, 15.0, 35.0);
  const auto nodes = net.nodes();
  for (NodeId u : nodes)
    for (NodeId v : nodes) {
      if (u >= v) continue;
      ASSERT_EQ(in_conflict(net, u, v), conflict_oracle(net, u, v))
          << "pair " << u << "," << v;
    }
}

TEST_P(ConflictOracleTest, PartnersMatchPredicate) {
  Rng rng(GetParam() + 1000);
  const AdhocNetwork net = random_network(rng, 30, 15.0, 35.0);
  for (NodeId u : net.nodes()) {
    const auto partners = conflict_partners(net, u);
    for (NodeId v : net.nodes()) {
      if (v == u) continue;
      const bool listed = std::binary_search(partners.begin(), partners.end(), v);
      ASSERT_EQ(listed, in_conflict(net, u, v)) << u << " vs " << v;
    }
  }
}

TEST_P(ConflictOracleTest, ViolationsMatchPairScan) {
  Rng rng(GetParam() + 2000);
  const AdhocNetwork net = random_network(rng, 25, 15.0, 35.0);
  CodeAssignment asg;
  // Deliberately tight palette to force violations.
  for (NodeId v : net.nodes()) asg.set_color(v, static_cast<Color>(1 + rng.below(4)));

  const auto violations = find_violations(net, asg);
  std::vector<std::pair<NodeId, NodeId>> reported;
  for (const auto& violation : violations) {
    EXPECT_LT(violation.a, violation.b);
    reported.emplace_back(violation.a, violation.b);
  }
  std::sort(reported.begin(), reported.end());
  EXPECT_TRUE(std::adjacent_find(reported.begin(), reported.end()) == reported.end())
      << "duplicate violation pair";

  std::vector<std::pair<NodeId, NodeId>> expected;
  const auto nodes = net.nodes();
  for (NodeId u : nodes)
    for (NodeId v : nodes) {
      if (u >= v) continue;
      if (asg.color(u) == asg.color(v) && conflict_oracle(net, u, v))
        expected.emplace_back(u, v);
    }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(reported, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictOracleTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
