// The incremental ConflictGraph cache: delta maintenance cross-checked
// against from-scratch construction on brute-force-rebuilt digraphs after
// randomized join/leave/move/power event sequences, plus the dirty-journal
// protocol dirty-region consumers rely on.

#include "net/conflict_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/constraints.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace {

using minim::graph::Digraph;
using minim::graph::NodeId;
using minim::net::AdhocNetwork;
using minim::net::ConflictGraph;
using minim::util::Rng;

/// Asserts the two conflict graphs agree on every pair and multiplicity.
void expect_same(const ConflictGraph& actual, const ConflictGraph& expected) {
  ASSERT_EQ(actual.pair_count(), expected.pair_count());
  const NodeId bound = std::max(actual.id_bound(), expected.id_bound());
  for (NodeId v = 0; v < bound; ++v) {
    const auto a = actual.neighbors(v);
    const auto e = expected.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), e.begin(), e.end()))
        << "partner lists of node " << v << " differ";
    for (NodeId w : e)
      ASSERT_EQ(actual.multiplicity(v, w), expected.multiplicity(v, w))
          << "multiplicity of pair " << v << "," << w;
  }
}

/// The acceptance-criterion oracle: the incrementally maintained cache must
/// equal the conflict graph built from scratch on the brute-force-rebuilt
/// edge set.
void expect_matches_brute_force(const AdhocNetwork& net) {
  const Digraph fresh = net.rebuild_graph_brute_force();
  expect_same(net.conflict_graph(), ConflictGraph::build_from(fresh));
}

// ------------------------------------------------------------ hand geometry

TEST(ConflictGraphDeltas, PrimaryPairHasOneWitnessPerDirection) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 10.0});
  const NodeId b = net.add_node({{5, 0}, 1.0});  // hears a, cannot answer
  EXPECT_EQ(net.conflict_graph().multiplicity(a, b), 1u);
  net.set_range(b, 10.0);  // now mutual
  EXPECT_EQ(net.conflict_graph().multiplicity(a, b), 2u);
  EXPECT_EQ(net.conflict_graph().pair_count(), 1u);
}

TEST(ConflictGraphDeltas, HiddenPairCountsCommonReceivers) {
  // a and c are out of range of each other but both reach b (and later d).
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 12.0});
  const NodeId b = net.add_node({{10, 0}, 1.0});
  const NodeId c = net.add_node({{20, 0}, 12.0});
  EXPECT_EQ(net.conflict_graph().multiplicity(a, c), 1u);  // via b
  const NodeId d = net.add_node({{10, 5}, 1.0});
  EXPECT_EQ(net.conflict_graph().multiplicity(a, c), 2u);  // via b and d
  net.remove_node(b);
  EXPECT_EQ(net.conflict_graph().multiplicity(a, c), 1u);
  net.remove_node(d);
  EXPECT_EQ(net.conflict_graph().multiplicity(a, c), 0u);
  EXPECT_FALSE(net.conflict_graph().in_conflict(a, c));
}

TEST(ConflictGraphDeltas, PowerDecreaseRetractsWitnesses) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 30.0});
  const NodeId b = net.add_node({{20, 0}, 30.0});
  ASSERT_TRUE(net.conflict_graph().in_conflict(a, b));
  net.set_range(a, 1.0);
  net.set_range(b, 1.0);
  EXPECT_FALSE(net.conflict_graph().in_conflict(a, b));
  EXPECT_EQ(net.conflict_graph().pair_count(), 0u);
  expect_matches_brute_force(net);
}

TEST(ConflictGraphDeltas, PartnersMatchConstraintEnumeration) {
  Rng rng(7);
  AdhocNetwork net;
  for (int i = 0; i < 25; ++i)
    net.add_node({{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 35)});
  for (NodeId v : net.nodes()) {
    const auto row = net.conflict_graph().neighbors(v);
    const std::vector<NodeId> partners(row.begin(), row.end());
    EXPECT_EQ(partners, minim::net::conflict_partners(net, v));
  }
}

// --------------------------------------------------- randomized event soak

class ConflictGraphSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConflictGraphSoak, IncrementalEqualsBruteForceRebuild) {
  Rng rng(GetParam());
  AdhocNetwork net;
  std::vector<NodeId> live;

  for (int event = 0; event < 120; ++event) {
    const double roll = rng.uniform(0, 1);
    if (live.size() < 5 || roll < 0.35) {  // join
      live.push_back(net.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(10, 35)}));
    } else if (roll < 0.55) {  // move
      const NodeId v = live[rng.below(live.size())];
      net.set_position(v, {rng.uniform(0, 100), rng.uniform(0, 100)});
    } else if (roll < 0.85) {  // power change (raise or cut)
      const NodeId v = live[rng.below(live.size())];
      net.set_range(v, rng.uniform(0, 40));
    } else {  // leave
      const std::size_t index = rng.below(live.size());
      net.remove_node(live[index]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
    }
    ASSERT_NO_FATAL_FAILURE(expect_matches_brute_force(net)) << "event " << event;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictGraphSoak,
                         ::testing::Values(101u, 202u, 303u));

// ------------------------------------------------------------- the journal

TEST(ConflictGraphJournal, ReportsNodesTouchedSinceARevision) {
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 15.0});
  const NodeId b = net.add_node({{10, 0}, 15.0});
  const std::uint64_t synced = net.conflict_graph().revision();

  const NodeId c = net.add_node({{12, 0}, 15.0});
  std::vector<NodeId> dirty;
  ASSERT_TRUE(net.conflict_graph().append_dirty_since(synced, dirty));
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  // The join links c to b (primary) and to a (hidden via b): all three are
  // dirty.
  EXPECT_EQ(dirty, (std::vector<NodeId>{a, b, c}));

  // Nothing since the head revision.
  dirty.clear();
  ASSERT_TRUE(net.conflict_graph().append_dirty_since(
      net.conflict_graph().revision(), dirty));
  EXPECT_TRUE(dirty.empty());
}

TEST(ConflictGraphJournal, QuietEventTouchesNothing) {
  AdhocNetwork net;
  net.add_node({{0, 0}, 10.0});
  const NodeId b = net.add_node({{5, 0}, 10.0});
  const std::uint64_t synced = net.conflict_graph().revision();
  net.set_range(b, 10.5);  // still reaches exactly {a}: no existence change
  std::vector<NodeId> dirty;
  ASSERT_TRUE(net.conflict_graph().append_dirty_since(synced, dirty));
  EXPECT_TRUE(dirty.empty());
}

TEST(ConflictGraphJournal, TrimmingInvalidatesOldWindows) {
  // Force far more than the journal cap of existence transitions: toggling
  // a's range flips the single-witness pairs (a, b) and (a, c) each time
  // (b's range reaches nobody, so every witness involves a's out-edge).
  AdhocNetwork net;
  const NodeId a = net.add_node({{0, 0}, 12.0});
  net.add_node({{10, 0}, 1.0});  // b: the common receiver
  const NodeId c = net.add_node({{20, 0}, 12.0});
  const std::uint64_t ancient = 0;
  for (int i = 0; i < (1 << 14); ++i) {
    net.set_range(a, 1.0);
    net.set_range(a, 12.0);
  }
  std::vector<NodeId> dirty;
  EXPECT_FALSE(net.conflict_graph().append_dirty_since(ancient, dirty));
  // A recent window still answers.
  const std::uint64_t synced = net.conflict_graph().revision();
  net.set_range(c, 1.0);  // retracts (c, b) and the hidden (a, c)
  dirty.clear();
  EXPECT_TRUE(net.conflict_graph().append_dirty_since(synced, dirty));
  EXPECT_FALSE(dirty.empty());
}

TEST(ConflictGraphJournal, ClearInvalidatesEveryWindow) {
  AdhocNetwork net;
  net.add_node({{0, 0}, 15.0});
  net.add_node({{10, 0}, 15.0});
  const std::uint64_t synced = net.conflict_graph().revision();
  net.reset(100.0, 100.0);
  std::vector<NodeId> dirty;
  EXPECT_FALSE(net.conflict_graph().append_dirty_since(synced, dirty));
  EXPECT_EQ(net.conflict_graph().pair_count(), 0u);
}

// --------------------------------------------------------------- the arena

TEST(NetworkReset, ReplaysIdenticallyToAFreshNetwork) {
  Rng seed_rng(55);
  std::vector<minim::net::NodeConfig> configs;
  for (int i = 0; i < 30; ++i)
    configs.push_back({{seed_rng.uniform(0, 100), seed_rng.uniform(0, 100)},
                       seed_rng.uniform(10, 35)});

  AdhocNetwork reused;
  for (int i = 0; i < 12; ++i)  // occupy, then reset
    reused.add_node(configs[static_cast<std::size_t>(i)]);
  reused.remove_node(3);
  reused.reset(100.0, 100.0);
  ASSERT_EQ(reused.node_count(), 0u);

  AdhocNetwork fresh;
  for (const auto& config : configs) {
    const NodeId a = reused.add_node(config);
    const NodeId b = fresh.add_node(config);
    ASSERT_EQ(a, b);  // same id sequence
  }
  ASSERT_EQ(reused.graph().edge_count(), fresh.graph().edge_count());
  expect_same(reused.conflict_graph(), ConflictGraph::build_from(fresh.graph()));
}

// ------------------------------------------------------------- batched fans

/// Randomized digraph + node set shared by a sequential-protocol instance
/// and a batched-protocol instance.
struct FanFixture {
  Digraph g_seq;
  Digraph g_batch;
  ConflictGraph seq;
  ConflictGraph batch;

  explicit FanFixture(std::size_t n, Rng& rng, double edge_p = 0.25) {
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId a = g_seq.add_node();
      const NodeId b = g_batch.add_node();
      EXPECT_EQ(a, b);
      seq.on_node_added(a);
      batch.on_node_added(a);
    }
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = 0; v < n; ++v) {
        if (u == v || rng.uniform01() >= edge_p) continue;
        add_edge_both(u, v);
      }
  }

  void add_edge_both(NodeId u, NodeId v) {
    seq.on_edge_added(g_seq, u, v);
    g_seq.add_edge(u, v);
    batch.on_edge_added(g_batch, u, v);
    g_batch.add_edge(u, v);
  }
};

std::vector<NodeId> sorted_dirty_since(const ConflictGraph& cg,
                                       std::uint64_t since) {
  std::vector<NodeId> dirty;
  EXPECT_TRUE(cg.append_dirty_since(since, dirty));
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

TEST(ConflictGraphBatch, FanAddAndRemoveEqualSequentialEdgeDeltas) {
  Rng rng(321);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.below(8));
    FanFixture fx(n, rng);

    // A fan from a random source to every non-neighbor (dense on purpose:
    // targets share co-senders, so single pairs collect several witnesses
    // in one batch).
    const NodeId u = static_cast<NodeId>(rng.below(n));
    std::vector<NodeId> targets;
    for (NodeId v = 0; v < n; ++v)
      if (v != u && !fx.g_seq.has_edge(u, v)) targets.push_back(v);
    if (targets.empty()) continue;

    const std::uint64_t seq_rev = fx.seq.revision();
    const std::uint64_t batch_rev = fx.batch.revision();

    for (NodeId v : targets) {
      fx.seq.on_edge_added(fx.g_seq, u, v);
      fx.g_seq.add_edge(u, v);
    }
    fx.batch.on_out_edges_added(fx.g_batch, u, targets);
    for (NodeId v : targets) fx.g_batch.add_edge(u, v);

    ASSERT_NO_FATAL_FAILURE(expect_same(fx.batch, fx.seq)) << "round " << round;
    // Same number of journal marks (the dirty-fraction heuristics depend on
    // it) and the same dirty set.
    EXPECT_EQ(fx.batch.revision() - batch_rev, fx.seq.revision() - seq_rev);
    EXPECT_EQ(sorted_dirty_since(fx.batch, batch_rev),
              sorted_dirty_since(fx.seq, seq_rev));

    // And back out: the batched removal retracts exactly what the
    // sequential protocol does.
    for (NodeId v : targets) {
      fx.seq.on_edge_removed(fx.g_seq, u, v);
      fx.g_seq.remove_edge(u, v);
    }
    fx.batch.on_out_edges_removed(fx.g_batch, u, targets);
    for (NodeId v : targets) fx.g_batch.remove_edge(u, v);
    ASSERT_NO_FATAL_FAILURE(expect_same(fx.batch, fx.seq)) << "round " << round;
    EXPECT_EQ(fx.batch.pair_count(), fx.seq.pair_count());
  }
}

TEST(ConflictGraphBatch, EmptyFanIsANoOp) {
  Rng rng(5);
  FanFixture fx(6, rng);
  const std::uint64_t revision = fx.batch.revision();
  fx.batch.on_out_edges_added(fx.g_batch, 0, {});
  fx.batch.on_out_edges_removed(fx.g_batch, 0, {});
  EXPECT_EQ(fx.batch.revision(), revision);
}

}  // namespace
