// Non-free-space propagation (Section 2's generalization): segment
// intersection geometry, obstructed link predicates, and recoding strategies
// operating on obstructed networks.

#include "net/propagation.hpp"

#include <gtest/gtest.h>

#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "net/network.hpp"
#include "strategies/cp.hpp"
#include "../helpers.hpp"
#include "util/rng.hpp"

namespace {

using minim::core::MinimStrategy;
using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::FreeSpacePropagation;
using minim::net::NodeId;
using minim::net::ObstructedPropagation;
using minim::net::segments_intersect;
using minim::net::Wall;
using minim::util::Rng;
using minim::util::Vec2;

// ------------------------------------------------------ segment geometry

TEST(Segments, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({0, 0}, {10, 10}, {0, 10}, {10, 0}));
}

TEST(Segments, NoIntersection) {
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {2, 2}, {3, 1}));
  EXPECT_FALSE(segments_intersect({0, 0}, {10, 0}, {0, 1}, {10, 1}));  // parallel
}

TEST(Segments, TouchingEndpointCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {5, 5}, {5, 5}, {10, 0}));
}

TEST(Segments, TEndpointOnInterior) {
  EXPECT_TRUE(segments_intersect({0, 0}, {10, 0}, {5, 0}, {5, 5}));
}

TEST(Segments, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({0, 0}, {10, 0}, {5, 0}, {15, 0}));
}

TEST(Segments, CollinearDisjoint) {
  EXPECT_FALSE(segments_intersect({0, 0}, {4, 0}, {5, 0}, {9, 0}));
}

TEST(Segments, SharedLineButSeparated) {
  EXPECT_FALSE(segments_intersect({0, 0}, {0, 3}, {0, 4}, {0, 9}));
}

TEST(Segments, CrossNearEndpoint) {
  EXPECT_TRUE(segments_intersect({0, 0}, {10, 0}, {9.999, -1}, {9.999, 1}));
}

// ------------------------------------------------------ propagation models

TEST(Propagation, FreeSpaceIsDisc) {
  FreeSpacePropagation model;
  EXPECT_TRUE(model.reaches({0, 0}, 10, {10, 0}));   // boundary inclusive
  EXPECT_FALSE(model.reaches({0, 0}, 10, {10.01, 0}));
}

TEST(Propagation, WallBlocksLineOfSight) {
  ObstructedPropagation model({Wall{{5, -5}, {5, 5}}});
  EXPECT_FALSE(model.reaches({0, 0}, 20, {10, 0}));  // wall between
  EXPECT_TRUE(model.reaches({0, 0}, 20, {3, 0}));    // same side
  EXPECT_TRUE(model.reaches({6, 0}, 20, {10, 0}));   // both beyond the wall
}

TEST(Propagation, ObstructedStillRespectsRange) {
  ObstructedPropagation model({});
  EXPECT_FALSE(model.reaches({0, 0}, 5, {10, 0}));
}

TEST(Propagation, ObstructedNeverAddsLinks) {
  // Soundness requirement for the spatial grid: obstructed reachability is
  // a subset of free-space reachability.
  Rng rng(5);
  ObstructedPropagation obstructed(
      {Wall{{20, 0}, {20, 100}}, Wall{{60, 40}, {90, 40}}});
  FreeSpacePropagation free_space;
  for (int i = 0; i < 2000; ++i) {
    const Vec2 from{rng.uniform(0, 100), rng.uniform(0, 100)};
    const Vec2 to{rng.uniform(0, 100), rng.uniform(0, 100)};
    const double range = rng.uniform(0, 60);
    if (obstructed.reaches(from, range, to)) {
      ASSERT_TRUE(free_space.reaches(from, range, to));
    }
  }
}

// ------------------------------------------------------ obstructed networks

TEST(ObstructedNetwork, WallSplitsNeighbors) {
  auto model = std::make_shared<const ObstructedPropagation>(
      std::vector<Wall>{Wall{{50, 0}, {50, 100}}});
  AdhocNetwork net(100, 100, 12.5, model);
  const NodeId west = net.add_node({{40, 50}, 30});
  const NodeId east = net.add_node({{60, 50}, 30});
  const NodeId west2 = net.add_node({{30, 50}, 30});
  // In range but separated by the wall:
  EXPECT_FALSE(net.graph().has_edge(west, east));
  EXPECT_FALSE(net.graph().has_edge(east, west));
  // Same side connects normally:
  EXPECT_TRUE(net.graph().has_edge(west, west2));
  EXPECT_TRUE(net.graph().has_edge(west2, west));
}

TEST(ObstructedNetwork, IncrementalMaintenanceMatchesBruteForce) {
  auto model = std::make_shared<const ObstructedPropagation>(
      std::vector<Wall>{Wall{{30, 0}, {30, 70}}, Wall{{70, 30}, {70, 100}}});
  AdhocNetwork net(100, 100, 12.5, model);
  Rng rng(6);
  std::vector<NodeId> alive;
  for (int event = 0; event < 60; ++event) {
    if (alive.size() < 5 || rng.chance(0.4)) {
      alive.push_back(net.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(10, 40)}));
    } else if (rng.chance(0.5)) {
      net.set_position(alive[rng.below(alive.size())],
                       {rng.uniform(0, 100), rng.uniform(0, 100)});
    } else {
      net.set_range(alive[rng.below(alive.size())], rng.uniform(10, 40));
    }
    const auto fresh = net.rebuild_graph_brute_force();
    ASSERT_EQ(net.graph().edge_count(), fresh.edge_count()) << "event " << event;
    for (NodeId u : net.nodes())
      ASSERT_EQ(minim::test::ids(net.graph().out_neighbors(u)),
                minim::test::ids(fresh.out_neighbors(u)));
  }
}

TEST(ObstructedNetwork, StrategiesStayCorrectBehindWalls) {
  auto model = std::make_shared<const ObstructedPropagation>(
      std::vector<Wall>{Wall{{50, 20}, {50, 80}}});
  for (int strategy_kind = 0; strategy_kind < 2; ++strategy_kind) {
    AdhocNetwork net(100, 100, 12.5, model);
    CodeAssignment asg;
    MinimStrategy minim;
    minim::strategies::CpStrategy cp;
    minim::core::RecodingStrategy& strategy =
        strategy_kind == 0 ? static_cast<minim::core::RecodingStrategy&>(minim)
                           : cp;
    Rng rng(7 + strategy_kind);
    std::vector<NodeId> alive;
    for (int event = 0; event < 80; ++event) {
      if (alive.size() < 6 || rng.chance(0.4)) {
        const NodeId id = net.add_node(
            {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 35)});
        strategy.on_join(net, asg, id);
        alive.push_back(id);
      } else if (rng.chance(0.6)) {
        const NodeId v = alive[rng.below(alive.size())];
        net.set_position(v, {rng.uniform(0, 100), rng.uniform(0, 100)});
        strategy.on_move(net, asg, v);
      } else {
        const NodeId v = alive[rng.below(alive.size())];
        const double old_range = net.config(v).range;
        net.set_range(v, old_range * rng.uniform(0.6, 1.8));
        strategy.on_power_change(net, asg, v, old_range);
      }
      ASSERT_TRUE(minim::net::is_valid(net, asg))
          << "strategy " << strategy_kind << " event " << event;
    }
  }
}

TEST(ObstructedNetwork, WallsReduceColorPressure) {
  // Obstacles remove conflicts, so the same deployment needs no more (and
  // usually fewer) codes than in free space.
  Rng rng(8);
  std::vector<minim::net::NodeConfig> configs;
  for (int i = 0; i < 40; ++i)
    configs.push_back({{rng.uniform(0, 100), rng.uniform(0, 100)},
                       rng.uniform(20.5, 30.5)});

  auto run = [&configs](std::shared_ptr<const minim::net::PropagationModel> model) {
    AdhocNetwork net(100, 100, 12.5, std::move(model));
    CodeAssignment asg;
    MinimStrategy minim;
    for (const auto& config : configs)
      minim.on_join(net, asg, net.add_node(config));
    return asg.max_color(net.nodes());
  };

  const auto free_colors = run(nullptr);
  const auto walled_colors = run(std::make_shared<const ObstructedPropagation>(
      std::vector<Wall>{Wall{{50, 0}, {50, 100}}, Wall{{0, 50}, {100, 50}}}));
  EXPECT_LE(walled_colors, free_colors);
}

}  // namespace
