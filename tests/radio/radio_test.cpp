// CDMA PHY substrate: Walsh orthogonality, spreading round-trips, and the
// end-to-end claim the whole paper rests on — a CA1/CA2-valid assignment
// yields zero bit errors under simultaneous transmission, while primary and
// hidden collisions garble links.

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "net/constraints.hpp"
#include "radio/phy.hpp"
#include "radio/spread.hpp"
#include "radio/walsh.hpp"
#include "util/rng.hpp"

namespace {

using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::NodeId;
using minim::radio::Bits;
using minim::radio::despread;
using minim::radio::hamming_distance;
using minim::radio::PhyParams;
using minim::radio::random_bits;
using minim::radio::Signal;
using minim::radio::simulate_all_transmit;
using minim::radio::simulate_transmitters;
using minim::radio::spread;
using minim::radio::superpose;
using minim::radio::WalshCodeBook;
using minim::test::build_world;
using minim::test::World;
using minim::util::Rng;

// ---------------------------------------------------------------- Walsh

TEST(Walsh, RejectsNonPowerOfTwo) {
  EXPECT_THROW(WalshCodeBook(3), std::invalid_argument);
  EXPECT_THROW(WalshCodeBook(1), std::invalid_argument);
  EXPECT_THROW(WalshCodeBook(0), std::invalid_argument);
}

TEST(Walsh, KnownH4) {
  const WalshCodeBook book(4);
  using Code = std::vector<minim::radio::Chip>;
  EXPECT_EQ(book.code(0), (Code{1, 1, 1, 1}));
  EXPECT_EQ(book.code(1), (Code{1, -1, 1, -1}));
  EXPECT_EQ(book.code(2), (Code{1, 1, -1, -1}));
  EXPECT_EQ(book.code(3), (Code{1, -1, -1, 1}));
}

class WalshOrthogonalityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WalshOrthogonalityTest, AllRowPairsOrthogonal) {
  const WalshCodeBook book(GetParam());
  for (std::size_t i = 0; i < book.length(); ++i)
    for (std::size_t j = 0; j < book.length(); ++j) {
      const auto corr = WalshCodeBook::correlate(book.code(i), book.code(j));
      if (i == j) {
        ASSERT_EQ(corr, static_cast<std::int64_t>(book.length()));
      } else {
        ASSERT_EQ(corr, 0) << "rows " << i << "," << j;
      }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WalshOrthogonalityTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u));

TEST(Walsh, ForColorsSizesMinimally) {
  EXPECT_EQ(WalshCodeBook::for_colors(1).length(), 2u);
  EXPECT_EQ(WalshCodeBook::for_colors(3).length(), 4u);
  EXPECT_EQ(WalshCodeBook::for_colors(4).length(), 8u);
  EXPECT_EQ(WalshCodeBook::for_colors(7).length(), 8u);
  EXPECT_EQ(WalshCodeBook::for_colors(8).length(), 16u);
  EXPECT_GE(WalshCodeBook::for_colors(40).capacity(), 40u);
}

// ---------------------------------------------------------------- spreading

TEST(Spread, RoundTripSingleTransmitter) {
  Rng rng(1);
  const WalshCodeBook book(16);
  const Bits bits = random_bits(64, rng);
  const Signal signal = spread(bits, book.code(5));
  EXPECT_EQ(signal.size(), 64u * 16u);
  EXPECT_EQ(despread(signal, book.code(5)), bits);
}

TEST(Spread, TwoOrthogonalTransmittersSeparatePerfectly) {
  Rng rng(2);
  const WalshCodeBook book(8);
  const Bits b1 = random_bits(32, rng);
  const Bits b2 = random_bits(32, rng);
  Signal channel = spread(b1, book.code(1));
  superpose(channel, spread(b2, book.code(2)));
  EXPECT_EQ(despread(channel, book.code(1)), b1);
  EXPECT_EQ(despread(channel, book.code(2)), b2);
}

TEST(Spread, ManyOrthogonalTransmittersStillSeparate) {
  Rng rng(3);
  const WalshCodeBook book(16);
  std::vector<Bits> payloads;
  Signal channel;
  for (std::size_t code = 1; code <= 15; ++code) {
    payloads.push_back(random_bits(16, rng));
    const Signal s = spread(payloads.back(), book.code(code));
    if (channel.empty()) channel.assign(s.size(), 0.0);
    superpose(channel, s);
  }
  for (std::size_t code = 1; code <= 15; ++code)
    ASSERT_EQ(despread(channel, book.code(code)), payloads[code - 1]);
}

TEST(Spread, SameCodeCollisionGarbles) {
  Rng rng(4);
  const WalshCodeBook book(8);
  const Bits b1 = random_bits(256, rng);
  const Bits b2 = random_bits(256, rng);
  Signal channel = spread(b1, book.code(3));
  superpose(channel, spread(b2, book.code(3)));
  const Bits decoded = despread(channel, book.code(3));
  // Where the two payloads agree the sum reinforces; where they differ the
  // statistic is 0 and decodes as 0.  Errors must appear.
  EXPECT_GT(hamming_distance(decoded, b1), 0u);
}

TEST(Spread, ModerateNoiseIsRejectedBySpreadingGain) {
  Rng rng(5);
  const WalshCodeBook book(64);
  const Bits bits = random_bits(64, rng);
  Signal signal = spread(bits, book.code(9));
  minim::radio::add_awgn(signal, 0.5, rng);  // well under the gain of 64
  EXPECT_EQ(despread(signal, book.code(9)), bits);
}

TEST(Spread, MismatchedLengthsThrow) {
  const WalshCodeBook book(8);
  Signal too_short(12, 0.0);  // not a multiple of 8
  EXPECT_THROW(despread(too_short, book.code(1)), std::invalid_argument);
  Signal a(8, 0.0);
  Signal b(16, 0.0);
  EXPECT_THROW(superpose(a, b), std::invalid_argument);
}

// ---------------------------------------------------------------- PHY + net

TEST(Phy, ValidAssignmentGivesZeroErrorsEverywhere) {
  Rng rng(6);
  World world = build_world(25, 20.5, 30.5, rng);
  ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));
  PhyParams params;
  const auto report =
      simulate_all_transmit(world.network, world.assignment, params, rng);
  EXPECT_GT(report.links.size(), 0u);
  EXPECT_EQ(report.total_bit_errors, 0u);
  EXPECT_EQ(report.garbled_links, 0u);
}

TEST(Phy, PrimaryCollisionGarblesLink) {
  // u -> v edge with equal colors: v's own transmission stomps u's.
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId u = net.add_node({{0, 0}, 10.0});
  const NodeId v = net.add_node({{5, 0}, 1.0});
  asg.set_color(u, 2);
  asg.set_color(v, 2);  // CA1 violation on edge u->v
  Rng rng(7);
  PhyParams params;
  const auto report = simulate_all_transmit(net, asg, params, rng);
  bool found = false;
  for (const auto& link : report.links)
    if (link.transmitter == u && link.receiver == v) {
      found = true;
      EXPECT_GT(link.bit_errors, 0u);
    }
  EXPECT_TRUE(found);
}

TEST(Phy, HiddenCollisionGarblesBothLinks) {
  // Classic hidden terminal: a and c share a color and a receiver b.
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId a = net.add_node({{0, 0}, 12.0});
  const NodeId b = net.add_node({{10, 0}, 1.0});
  const NodeId c = net.add_node({{20, 0}, 12.0});
  asg.set_color(a, 3);
  asg.set_color(b, 1);
  asg.set_color(c, 3);  // CA2 violation at receiver b
  Rng rng(8);
  PhyParams params;
  const auto report = simulate_transmitters(net, asg, {a, c}, params, rng);
  ASSERT_EQ(report.links.size(), 2u);  // a->b and c->b
  for (const auto& link : report.links) {
    EXPECT_EQ(link.receiver, b);
    EXPECT_GT(link.bit_errors, 0u) << "tx " << link.transmitter;
  }
}

TEST(Phy, RecodingRestoresCleanDecoding) {
  // End-to-end story: force a hidden collision by a power increase, let
  // Minim recode, confirm the channel is clean again.
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId a = net.add_node({{0, 0}, 12.0});
  const NodeId b = net.add_node({{10, 0}, 1.0});
  const NodeId c = net.add_node({{30, 0}, 5.0});  // out of range of b at first
  asg.set_color(a, 1);
  asg.set_color(b, 2);
  asg.set_color(c, 1);
  ASSERT_TRUE(minim::net::is_valid(net, asg));

  Rng rng(9);
  minim::core::MinimStrategy minim;
  net.set_range(c, 25.0);  // now c -> b too: hidden collision with a
  ASSERT_FALSE(minim::net::find_violations(net, asg).empty());

  // Without recoding the channel is garbled...
  PhyParams params;
  const auto bad = simulate_transmitters(net, asg, {a, c}, params, rng);
  EXPECT_GT(bad.total_bit_errors, 0u);

  // ...after RecodeOnPowIncrease it is clean.
  minim.on_power_change(net, asg, c, 5.0);
  ASSERT_TRUE(minim::net::is_valid(net, asg));
  const auto good = simulate_all_transmit(net, asg, params, rng);
  EXPECT_EQ(good.total_bit_errors, 0u);
}

TEST(Phy, PathLossKeepsOrthogonalLinksClean) {
  // Unequal gains do not break orthogonality: the correlator cancels every
  // other code exactly, regardless of amplitude.
  Rng rng(12);
  World world = build_world(20, 20.5, 30.5, rng);
  PhyParams params;
  params.path_loss_exponent = 2.7;
  params.reference_distance = 1.0;
  const auto report =
      simulate_all_transmit(world.network, world.assignment, params, rng);
  EXPECT_GT(report.links.size(), 0u);
  EXPECT_EQ(report.total_bit_errors, 0u);
}

TEST(Phy, NearFarCaptureOnSameCodeCollision) {
  // Two same-code transmitters at very different distances: the near link
  // captures (decodes cleanly), the far link garbles.
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId near_tx = net.add_node({{48, 50}, 10});
  const NodeId rx = net.add_node({{50, 50}, 1});
  const NodeId far_tx = net.add_node({{80, 50}, 31});  // reaches rx, not near_tx
  asg.set_color(near_tx, 2);
  asg.set_color(rx, 1);
  asg.set_color(far_tx, 2);  // CA2 violation at rx
  Rng rng(13);
  PhyParams params;
  params.packet_bits = 256;
  params.path_loss_exponent = 3.0;
  const auto report = simulate_transmitters(net, asg, {near_tx, far_tx}, params, rng);
  ASSERT_EQ(report.links.size(), 2u);
  for (const auto& link : report.links) {
    if (link.transmitter == near_tx) {
      EXPECT_EQ(link.bit_errors, 0u) << "near link must capture";
    } else {
      EXPECT_GT(link.bit_errors, 0u) << "far link must garble";
    }
  }
}

TEST(Phy, UnitGainWhenPathLossDisabled) {
  // Default params reproduce the paper's abstract model: collisions garble
  // both ways regardless of distance.
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId a = net.add_node({{48, 50}, 10});
  const NodeId rx = net.add_node({{50, 50}, 1});
  const NodeId b = net.add_node({{80, 50}, 40});
  asg.set_color(a, 2);
  asg.set_color(rx, 1);
  asg.set_color(b, 2);
  Rng rng(14);
  PhyParams params;
  params.packet_bits = 256;
  const auto report = simulate_transmitters(net, asg, {a, b}, params, rng);
  for (const auto& link : report.links)
    EXPECT_GT(link.bit_errors, 0u) << "tx " << link.transmitter;
}

TEST(Phy, UncoloredTransmitterRejected) {
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId u = net.add_node({{0, 0}, 10.0});
  net.add_node({{5, 0}, 10.0});
  asg.set_color(u, 1);
  Rng rng(10);
  PhyParams params;
  EXPECT_THROW(simulate_all_transmit(net, asg, params, rng), std::invalid_argument);
}

TEST(Phy, NoTransmittersMeansEmptyReport) {
  AdhocNetwork net;
  CodeAssignment asg;
  Rng rng(11);
  PhyParams params;
  const auto report = simulate_transmitters(net, asg, {}, params, rng);
  EXPECT_TRUE(report.links.empty());
  EXPECT_EQ(report.link_error_rate(), 0.0);
}

}  // namespace
