// TcpServerTransport end to end: a real localhost socket client drives a
// session on a server thread, and the transcript must be byte-identical to
// the same requests served over a stream transport.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/engine.hpp"
#include "serve/session.hpp"
#include "serve/transport.hpp"

namespace minim::serve {
namespace {

class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                  sizeof address) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  bool connected() const { return fd_ >= 0; }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_all(const std::string& text) {
    std::size_t sent = 0;
    while (sent < text.size()) {
      const ssize_t wrote =
          ::send(fd_, text.data() + sent, text.size() - sent, 0);
      ASSERT_GT(wrote, 0) << std::strerror(errno);
      sent += static_cast<std::size_t>(wrote);
    }
  }

  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  std::string read_to_eof() {
    std::string all;
    char chunk[4096];
    while (true) {
      const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
      if (got <= 0) break;
      all.append(chunk, static_cast<std::size_t>(got));
    }
    return all;
  }

 private:
  int fd_ = -1;
};

const char kRequests[] =
    "join 10 10 20\n"
    "join 15 10 20\n"
    "join 40 40 10\n"
    "code 1\n"
    "conflicts 0\n"
    "move 2 12 12\n"
    "power 1 25\n"
    "bogus\n"
    "leave 0\n"
    "stats\n";

std::string serve_over_stream(const std::string& requests) {
  std::istringstream in(requests);
  std::ostringstream out;
  StreamTransport transport(in, out, "test");
  AssignmentEngine engine{std::string("minim")};
  serve_session(engine, transport);
  return out.str();
}

TEST(TcpServerTransport, SessionMatchesStreamTransportByteForByte) {
  TcpServerTransport transport(0);
  ASSERT_GT(transport.port(), 0);
  EXPECT_EQ(transport.describe(),
            "tcp:127.0.0.1:" + std::to_string(transport.port()));

  AssignmentEngine engine{std::string("minim")};
  SessionStats stats;
  std::thread server([&] {
    stats = serve_session(engine, transport);
    transport.disconnect();  // hand the client its EOF
  });

  std::string tcp_responses;
  {
    Client client(transport.port());
    if (!client.connected()) {
      server.detach();  // cannot happen on loopback; avoid a hang if it does
      FAIL() << "connect: " << std::strerror(errno);
    }
    client.send_all(kRequests);
    client.shutdown_write();
    tcp_responses = client.read_to_eof();
  }
  server.join();

  EXPECT_EQ(tcp_responses, serve_over_stream(kRequests));
  EXPECT_EQ(stats.lines, 10u);
  EXPECT_EQ(stats.events, 6u);
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.errors, 1u);
  // The engine state survived the disconnect: the session's view is intact.
  EXPECT_EQ(engine.events_served(), 6u);
  EXPECT_FALSE(engine.is_live(0));
  EXPECT_TRUE(engine.is_live(1));
}

TEST(TcpServerTransport, StripsCarriageReturnsFromClients) {
  TcpServerTransport transport(0);
  AssignmentEngine engine{std::string("minim")};
  std::thread server([&] {
    serve_session(engine, transport);
    transport.disconnect();
  });

  std::string responses;
  {
    Client client(transport.port());
    if (!client.connected()) {
      server.detach();
      FAIL() << "connect: " << std::strerror(errno);
    }
    // A telnet-style client terminates lines with \r\n, and the final line
    // may arrive without any terminator at all.
    client.send_all("join 10 10 20\r\nstats\r\nquit");
    client.shutdown_write();
    responses = client.read_to_eof();
  }
  server.join();

  EXPECT_EQ(responses,
            "ok 1 join node=0 recoded=1 maxc=1 live=1 fallback=0\n"
            "stats live=1 joined=1 maxc=1 colors=1 events=1 recodings=1\n"
            "bye\n");
}

}  // namespace
}  // namespace minim::serve
