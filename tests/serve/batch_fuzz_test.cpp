// Differential fuzz soak for batched event application (satellite of the
// batching tentpole): an `AssignmentEngine` fed random-size batches through
// `apply_batch` must land in the same state as a twin engine fed the same
// events one at a time through `apply`.
//
// Equivalence tiers, by strategy regime:
//
//   * minim (and any strategy without batched repair): `apply_batch`
//     degrades to the exact per-event loop, so everything — colors, totals,
//     per-event receipts — is bit-identical by construction.  The soak pins
//     the protocol plumbing (join-index naming, projection, accounting).
//   * bbb (unbounded): the final assignment is a pure function of the final
//     conflict graph, so one coalesced repair per batch is bit-identical to
//     sequential repair no matter where the batch boundaries fall.
//   * bbb-bounded, no-fallback params: while every event absorbs, the
//     maintained rank sequence evolves exactly as a sequential replay's
//     (tombstone-filtered), and colors are bit-identical.
//   * bbb-bounded, production params: fallbacks reseed the maintained order
//     at different times on the two paths, so colors may legitimately
//     differ — the soak holds validity (CA1/CA2) plus identical live sets
//     and conflict graphs instead.
//
// Streams are >= 10^4 events (the ISSUE's soak floor) with random batch
// boundaries; the FIRST batch is forced to size 1 so both engines seed
// their strategy caches from the identical from-scratch event.

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "../helpers/event_fuzz.hpp"
#include "net/constraints.hpp"
#include "serve/engine.hpp"
#include "sim/trace.hpp"
#include "strategies/bbb.hpp"
#include "util/rng.hpp"

namespace minim::serve {
namespace {

using minim::test::FuzzConfig;
using minim::test::FuzzEvent;
using minim::test::FuzzKind;
using minim::test::FuzzPlacement;

/// Converts fuzz events to join-order-named trace events with the exact
/// live-list semantics of `replay_events`: victims resolve as
/// `live[pick % live.size()]`, leaves erase, joins append the next index.
sim::Trace to_trace(std::span<const FuzzEvent> events) {
  sim::Trace trace;
  trace.reserve(events.size());
  std::vector<std::size_t> live;  // join indices of live nodes
  std::size_t joined = 0;
  for (const FuzzEvent& e : events) {
    sim::TraceEvent t;
    if (e.kind == FuzzKind::kJoin) {
      t.kind = sim::TraceEvent::Kind::kJoin;
      t.position = {e.x, e.y};
      t.range = e.range;
      live.push_back(joined++);
    } else {
      if (live.empty()) continue;
      const std::size_t index =
          static_cast<std::size_t>(e.pick % live.size());
      t.node = live[index];
      switch (e.kind) {
        case FuzzKind::kLeave:
          t.kind = sim::TraceEvent::Kind::kLeave;
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
          break;
        case FuzzKind::kMove:
          t.kind = sim::TraceEvent::Kind::kMove;
          t.position = {e.x, e.y};
          break;
        case FuzzKind::kPower:
          t.kind = sim::TraceEvent::Kind::kPower;
          t.range = e.range;
          break;
        case FuzzKind::kJoin:
          break;  // unreachable
      }
    }
    trace.push_back(t);
  }
  return trace;
}

enum class Equivalence {
  kBitIdentical,  ///< colors (and ranks, when available) must match exactly
  kValidOnly,     ///< CA1/CA2 validity + identical live set / conflict graph
};

/// Compares the two engines at a batch boundary.  Returns a failure
/// description, or empty when they agree at the required tier.
std::string compare_engines(const AssignmentEngine& sequential,
                            const AssignmentEngine& batched,
                            Equivalence tier) {
  if (sequential.joined() != batched.joined())
    return "joined() diverged: " + std::to_string(sequential.joined()) +
           " vs " + std::to_string(batched.joined());
  for (std::size_t node = 0; node < sequential.joined(); ++node) {
    if (sequential.is_live(node) != batched.is_live(node))
      return "liveness diverged at join index " + std::to_string(node);
    if (!sequential.is_live(node)) continue;
    if (sequential.conflicts_of(node) != batched.conflicts_of(node))
      return "conflict set diverged at join index " + std::to_string(node);
    if (tier == Equivalence::kBitIdentical &&
        sequential.code_of(node) != batched.code_of(node))
      return "color diverged at join index " + std::to_string(node) + ": " +
             std::to_string(sequential.code_of(node)) + " vs " +
             std::to_string(batched.code_of(node));
  }
  if (tier == Equivalence::kBitIdentical &&
      sequential.summary().max_color != batched.summary().max_color)
    return "max color diverged";
  if (!net::is_valid(batched.simulation().network(),
                     batched.simulation().assignment()))
    return "batched engine assignment violates CA1/CA2";
  return {};
}

/// The maintained rank sequence with tombstones removed — the only
/// sequential-vs-batched comparable form (batch absorption never appends
/// ids that joined and left within one batch, so raw tombstone layouts
/// legitimately differ).
std::vector<net::NodeId> live_ranks(const strategies::BbbStrategy& bbb) {
  std::vector<net::NodeId> out;
  for (net::NodeId v : bbb.orderer().ranked_sequence())
    if (v != net::kInvalidNode) out.push_back(v);
  return out;
}

struct SoakResult {
  std::size_t batches = 0;
  std::size_t coalesced = 0;  ///< batches the strategy repaired in one pass
  std::size_t events = 0;
};

/// Feeds `trace` to `sequential` one event at a time and to `batched` in
/// random-size batches (first batch forced to size 1), comparing at every
/// batch boundary.  `check_ranks` additionally requires the two borrowed
/// bounded strategies' maintained sequences to agree.
SoakResult run_soak(const sim::Trace& trace, AssignmentEngine& sequential,
                    AssignmentEngine& batched, Equivalence tier,
                    std::size_t max_batch, std::uint64_t boundary_seed,
                    const strategies::BbbStrategy* sequential_bbb = nullptr,
                    const strategies::BbbStrategy* batched_bbb = nullptr) {
  util::Rng rng(boundary_seed);
  SoakResult result;
  std::size_t at = 0;
  while (at < trace.size()) {
    const std::size_t want =
        result.batches == 0 ? 1 : 1 + rng.below(max_batch);
    const std::size_t take = std::min(want, trace.size() - at);
    const std::span<const sim::TraceEvent> slice(trace.data() + at, take);

    for (const sim::TraceEvent& event : slice) sequential.apply(event);
    const BatchReceipt receipt = batched.apply_batch(slice);
    EXPECT_EQ(receipt.events, take);
    ++result.batches;
    result.events += take;
    if (receipt.coalesced) ++result.coalesced;

    const std::string diff = compare_engines(sequential, batched, tier);
    if (!diff.empty()) {
      ADD_FAILURE() << "after batch " << result.batches << " (events [" << at
                    << ", " << at + take << ")): " << diff;
      return result;
    }
    if (sequential_bbb != nullptr && batched_bbb != nullptr &&
        live_ranks(*sequential_bbb) != live_ranks(*batched_bbb)) {
      std::string seq_ranks, bat_ranks;
      for (net::NodeId v : live_ranks(*sequential_bbb))
        seq_ranks += std::to_string(v) + " ";
      for (net::NodeId v : live_ranks(*batched_bbb))
        bat_ranks += std::to_string(v) + " ";
      ADD_FAILURE() << "after batch " << result.batches
                    << ": maintained rank sequences diverged\n  sequential: "
                    << seq_ranks << " (full_events="
                    << sequential_bbb->counters().full_events
                    << ")\n  batched:    " << bat_ranks << " (full_events="
                    << batched_bbb->counters().full_events << ")\n  batch was ["
                    << at << ", " << at + take << ")";
      return result;
    }
    at += take;
  }
  EXPECT_EQ(result.events, trace.size());
  return result;
}

sim::Trace fuzz_trace(FuzzPlacement placement, std::uint64_t seed,
                      std::size_t events, double storm_chance = 0.002) {
  FuzzConfig cfg;
  cfg.placement = placement;
  cfg.seed = seed;
  cfg.events = events;
  cfg.storm_chance = storm_chance;
  return to_trace(minim::test::generate_events(cfg));
}

/// Bounded-BBB params with every fallback trigger disarmed: the soak stays
/// on the absorb path, where batch absorption claims bit-identity.
strategies::BbbStrategy::Params no_fallback_params() {
  strategies::BbbStrategy::Params p;
  p.bounded_propagation = true;
  // The dirty set counts departed ids too, so a big batch over a tiny
  // population can exceed any O(1) multiple of the live count — only an
  // absurd threshold truly disarms the trigger.
  p.full_recolor_fraction = 1e9;
  p.propagation_slack = 1e9;       // never bail out on budget
  p.rank_rebuild_fraction = 1e9;   // never reseed on drift
  return p;
}

TEST(BatchFuzz, MinimExactPathBitIdentical) {
  const sim::Trace trace =
      fuzz_trace(FuzzPlacement::kUniform, 8101, 10000);
  AssignmentEngine sequential{std::string("minim")};
  AssignmentEngine batched{std::string("minim")};
  const SoakResult r = run_soak(trace, sequential, batched,
                                Equivalence::kBitIdentical, 64, 61);
  // No batched repair: every batch must have taken the per-event loop.
  EXPECT_EQ(r.coalesced, 0u);
  std::cout << "[ soak     ] minim batches=" << r.batches
            << " events=" << r.events << "\n";
}

TEST(BatchFuzz, BbbCoalescedBitIdentical) {
  const sim::Trace trace =
      fuzz_trace(FuzzPlacement::kClustered, 8102, 10000);
  AssignmentEngine sequential{std::string("bbb")};
  AssignmentEngine batched{std::string("bbb")};
  const SoakResult r = run_soak(trace, sequential, batched,
                                Equivalence::kBitIdentical, 64, 62);
  EXPECT_GT(r.coalesced, 0u) << "batched repair never engaged";
  std::cout << "[ soak     ] bbb batches=" << r.batches
            << " coalesced=" << r.coalesced << "\n";
}

TEST(BatchFuzz, BbbLargeBatchesBitIdentical) {
  // Batch sizes up to 512 (the serving default): the journal window must
  // keep covering whole batches, and a trimmed window must fall back to the
  // from-scratch path without losing equivalence.
  const sim::Trace trace =
      fuzz_trace(FuzzPlacement::kUniform, 8103, 10000, /*storm_chance=*/0.01);
  AssignmentEngine sequential{std::string("bbb")};
  AssignmentEngine batched{std::string("bbb")};
  const SoakResult r = run_soak(trace, sequential, batched,
                                Equivalence::kBitIdentical, 512, 63);
  EXPECT_GT(r.coalesced, 0u);
}

TEST(BatchFuzz, BoundedNoFallbackRanksAndColorsBitIdentical) {
  // The strongest claim: while every event absorbs, batch rank maintenance
  // (tombstone + join-order append, reborn blanking) reproduces the
  // sequential maintained sequence exactly, and so do the colors.
  const sim::Trace trace =
      fuzz_trace(FuzzPlacement::kClustered, 8104, 10000);
  strategies::BbbStrategy sequential_bbb(
      strategies::ColoringOrder::kSmallestLast, no_fallback_params());
  strategies::BbbStrategy batched_bbb(
      strategies::ColoringOrder::kSmallestLast, no_fallback_params());
  AssignmentEngine sequential(sequential_bbb);
  AssignmentEngine batched(batched_bbb);
  const SoakResult r =
      run_soak(trace, sequential, batched, Equivalence::kBitIdentical, 64, 64,
               &sequential_bbb, &batched_bbb);
  EXPECT_GT(r.coalesced, 0u);
  // The point of the soak is the absorb path; both engines must stay on it
  // after the seeding event.
  EXPECT_LE(batched_bbb.counters().full_events, 1u);
  EXPECT_LE(sequential_bbb.counters().full_events, 1u);
  std::cout << "[ soak     ] bounded batches=" << r.batches
            << " coalesced=" << r.coalesced
            << " bounded_events=" << batched_bbb.counters().bounded_events
            << "\n";
}

TEST(BatchFuzz, BoundedProductionParamsStayValid) {
  // Production guards: fallbacks reseed the maintained order at different
  // points on the two paths, so colors may differ — but every batch must
  // leave a CA1/CA2-valid assignment over the identical live set and
  // conflict graph.
  const sim::Trace trace = fuzz_trace(FuzzPlacement::kClustered, 8105, 10000,
                                      /*storm_chance=*/0.01);
  strategies::BbbStrategy::Params production;
  production.bounded_propagation = true;
  strategies::BbbStrategy sequential_bbb(
      strategies::ColoringOrder::kSmallestLast, production);
  strategies::BbbStrategy batched_bbb(strategies::ColoringOrder::kSmallestLast,
                                      production);
  AssignmentEngine sequential(sequential_bbb);
  AssignmentEngine batched(batched_bbb);
  const SoakResult r = run_soak(trace, sequential, batched,
                                Equivalence::kValidOnly, 64, 65);
  EXPECT_GT(r.coalesced, 0u);
}

TEST(BatchFuzz, SecondSeedSweep) {
  for (const FuzzPlacement placement :
       {FuzzPlacement::kUniform, FuzzPlacement::kPoissonDisk}) {
    const sim::Trace trace = fuzz_trace(placement, 8206, 4000);
    AssignmentEngine sequential{std::string("bbb")};
    AssignmentEngine batched{std::string("bbb")};
    run_soak(trace, sequential, batched, Equivalence::kBitIdentical, 64, 66);
  }
}

TEST(BatchFuzz, TinyPopulationsWithIdReuse) {
  // Near-zero populations maximize id reuse inside single batches (a join
  // reusing an id a leave freed earlier in the same batch) — the reborn
  // bookkeeping this soak exists to catch.
  FuzzConfig cfg;
  cfg.placement = FuzzPlacement::kUniform;
  cfg.seed = 8107;
  cfg.events = 6000;
  cfg.target_live = 8;
  const sim::Trace trace = to_trace(minim::test::generate_events(cfg));
  strategies::BbbStrategy sequential_bbb(
      strategies::ColoringOrder::kSmallestLast, no_fallback_params());
  strategies::BbbStrategy batched_bbb(
      strategies::ColoringOrder::kSmallestLast, no_fallback_params());
  AssignmentEngine sequential(sequential_bbb);
  AssignmentEngine batched(batched_bbb);
  run_soak(trace, sequential, batched, Equivalence::kBitIdentical, 32, 67,
           &sequential_bbb, &batched_bbb);
}

}  // namespace
}  // namespace minim::serve
