// BatchReceipt accounting (satellite of the batching tentpole): the
// per-batch receipt must add up — outcome rows cover every event, counts
// reconcile with the receipt totals, an empty batch is a no-op, and a batch
// containing any invalid reference is rejected whole with the engine
// untouched (the same std::invalid_argument contract as single `apply`).

#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "strategies/bbb.hpp"

namespace minim::serve {
namespace {

sim::TraceEvent join_at(double x, double y, double range = 20.0) {
  sim::TraceEvent e;
  e.kind = sim::TraceEvent::Kind::kJoin;
  e.position = {x, y};
  e.range = range;
  return e;
}

sim::TraceEvent leave_of(std::size_t node) {
  sim::TraceEvent e;
  e.kind = sim::TraceEvent::Kind::kLeave;
  e.node = node;
  return e;
}

sim::TraceEvent move_of(std::size_t node, double x, double y) {
  sim::TraceEvent e;
  e.kind = sim::TraceEvent::Kind::kMove;
  e.node = node;
  e.position = {x, y};
  return e;
}

sim::TraceEvent power_of(std::size_t node, double range) {
  sim::TraceEvent e;
  e.kind = sim::TraceEvent::Kind::kPower;
  e.node = node;
  e.range = range;
  return e;
}

/// A small cluster where joins conflict (everyone within range of everyone).
std::vector<sim::TraceEvent> clustered_joins(std::size_t n) {
  std::vector<sim::TraceEvent> events;
  for (std::size_t i = 0; i < n; ++i)
    events.push_back(join_at(10.0 + static_cast<double>(i), 10.0));
  return events;
}

TEST(BatchReceipt, ExactPathOutcomesSumToReceipt) {
  // minim has no batched repair: the batch takes the per-event loop, so
  // every outcome is exact and their recode counts sum to the batch total.
  AssignmentEngine engine{std::string("minim")};
  const std::vector<sim::TraceEvent> events = clustered_joins(6);
  const BatchReceipt receipt = engine.apply_batch(events);

  EXPECT_EQ(receipt.events, events.size());
  EXPECT_FALSE(receipt.coalesced);
  EXPECT_EQ(receipt.repairs, events.size());
  ASSERT_EQ(receipt.outcomes.size(), events.size());
  std::size_t recoded = 0;
  for (std::size_t i = 0; i < receipt.outcomes.size(); ++i) {
    const BatchEventOutcome& outcome = receipt.outcomes[i];
    EXPECT_TRUE(outcome.exact) << i;
    EXPECT_EQ(outcome.seq, i + 1) << i;
    EXPECT_EQ(outcome.node, i) << i;  // join order
    EXPECT_EQ(outcome.kind, sim::TraceEvent::Kind::kJoin) << i;
    EXPECT_EQ(outcome.live_nodes, i + 1) << "exact outcomes are post-THIS-event";
    recoded += outcome.recoded;
  }
  EXPECT_EQ(recoded, receipt.recoded);
  // The receipt's summary fields are the post-batch state.
  EXPECT_EQ(receipt.live_nodes, events.size());
  EXPECT_EQ(receipt.max_color, engine.summary().max_color);
  EXPECT_EQ(engine.events_served(), events.size());
}

TEST(BatchReceipt, CoalescedPathReportsBatchLevelOutcomes) {
  AssignmentEngine engine{std::string("bbb")};
  engine.apply_batch(clustered_joins(8));  // seed a population

  std::vector<sim::TraceEvent> batch;
  batch.push_back(move_of(0, 40, 40));
  batch.push_back(power_of(1, 5.0));
  batch.push_back(leave_of(2));
  batch.push_back(join_at(12, 11));
  const BatchReceipt receipt = engine.apply_batch(batch);

  EXPECT_TRUE(receipt.coalesced);
  EXPECT_EQ(receipt.repairs, 1u) << "one repair must cover the whole batch";
  ASSERT_EQ(receipt.outcomes.size(), batch.size());
  for (std::size_t i = 0; i < receipt.outcomes.size(); ++i) {
    const BatchEventOutcome& outcome = receipt.outcomes[i];
    EXPECT_FALSE(outcome.exact) << i;
    // Post-batch values, identical across the batch's outcome rows.
    EXPECT_EQ(outcome.recoded, receipt.recoded) << i;
    EXPECT_EQ(outcome.max_color, receipt.max_color) << i;
    EXPECT_EQ(outcome.live_nodes, receipt.live_nodes) << i;
  }
  EXPECT_EQ(receipt.outcomes[0].kind, sim::TraceEvent::Kind::kMove);
  EXPECT_EQ(receipt.outcomes[2].kind, sim::TraceEvent::Kind::kLeave);
  EXPECT_EQ(receipt.outcomes[3].kind, sim::TraceEvent::Kind::kJoin);
  EXPECT_EQ(receipt.outcomes[3].node, 8u) << "the joiner's join-order index";
  EXPECT_EQ(receipt.live_nodes, 8u);  // 8 - 1 leave + 1 join
  EXPECT_EQ(engine.events_served(), 12u);
}

TEST(BatchReceipt, EmptyBatchIsANoOp) {
  AssignmentEngine engine{std::string("minim")};
  engine.apply_batch(clustered_joins(3));
  const AssignmentEngine::Summary before = engine.summary();

  const BatchReceipt receipt = engine.apply_batch({});
  EXPECT_EQ(receipt.events, 0u);
  EXPECT_EQ(receipt.recoded, 0u);
  EXPECT_EQ(receipt.repairs, 0u);
  EXPECT_TRUE(receipt.outcomes.empty());
  // The no-op still reports where the network stands.
  EXPECT_EQ(receipt.live_nodes, before.live);
  EXPECT_EQ(receipt.max_color, before.max_color);

  EXPECT_EQ(engine.events_served(), 3u) << "seq must not advance";
  EXPECT_EQ(engine.summary().events, before.events);
}

TEST(BatchReceipt, InvalidMidBatchRejectsWholeBatchUntouched) {
  for (const char* strategy : {"minim", "bbb"}) {
    AssignmentEngine engine{std::string(strategy)};
    engine.apply_batch(clustered_joins(4));
    const AssignmentEngine::Summary before = engine.summary();
    const net::Color color0 = engine.code_of(0);

    // Valid, valid, invalid (node 9 never joined), valid: all-or-nothing
    // means even the valid prefix must not land.
    std::vector<sim::TraceEvent> batch;
    batch.push_back(move_of(0, 50, 50));
    batch.push_back(power_of(1, 25.0));
    batch.push_back(leave_of(9));
    batch.push_back(move_of(2, 60, 60));
    EXPECT_THROW(engine.apply_batch(batch), std::invalid_argument) << strategy;

    EXPECT_EQ(engine.events_served(), 4u) << strategy;
    EXPECT_EQ(engine.summary().events, before.events) << strategy;
    EXPECT_EQ(engine.summary().live, before.live) << strategy;
    EXPECT_EQ(engine.code_of(0), color0) << strategy;
    EXPECT_TRUE(engine.is_live(0)) << strategy;
  }
}

TEST(BatchReceipt, ProjectionSeesJoinsAndLeavesWithinTheBatch) {
  AssignmentEngine engine{std::string("minim")};

  // A batch may reference a node that joins earlier in the SAME batch...
  std::vector<sim::TraceEvent> batch = clustered_joins(2);
  batch.push_back(move_of(1, 30, 30));  // node 1 joins at batch index 1
  const BatchReceipt receipt = engine.apply_batch(batch);
  EXPECT_EQ(receipt.events, 3u);
  EXPECT_EQ(receipt.outcomes[2].node, 1u);

  // ...and a node that leaves earlier in the same batch is gone for the
  // rest of it, even though it was live when the batch started.
  std::vector<sim::TraceEvent> dead_ref;
  dead_ref.push_back(leave_of(0));
  dead_ref.push_back(power_of(0, 10.0));
  EXPECT_THROW(engine.apply_batch(dead_ref), std::invalid_argument);
  EXPECT_TRUE(engine.is_live(0)) << "rejected batch must not apply its leave";
  EXPECT_EQ(engine.events_served(), 3u);
}

TEST(BatchReceipt, SeqContinuesAcrossBatchesAndSingles) {
  AssignmentEngine engine{std::string("minim")};
  const BatchReceipt first = engine.apply_batch(clustered_joins(3));
  EXPECT_EQ(first.outcomes.back().seq, 3u);

  const EventReceipt single = engine.apply(join_at(20, 20));
  EXPECT_EQ(single.seq, 4u);

  const BatchReceipt second = engine.apply_batch(clustered_joins(2));
  EXPECT_EQ(second.outcomes.front().seq, 5u);
  EXPECT_EQ(second.outcomes.back().seq, 6u);
  EXPECT_EQ(engine.events_served(), 6u);
}

TEST(BatchReceipt, FallbackFlagTracksBoundedCounters) {
  // full_recolor_fraction = 0 forces every bounded event to the
  // from-scratch path: the batch-level fallback flag must be set.
  strategies::BbbStrategy::Params params;
  params.bounded_propagation = true;
  params.full_recolor_fraction = 0.0;
  strategies::BbbStrategy bounded(strategies::ColoringOrder::kSmallestLast,
                                  params);
  AssignmentEngine engine(bounded);

  const BatchReceipt receipt = engine.apply_batch(clustered_joins(5));
  EXPECT_TRUE(receipt.fallback);

  // A strategy with no fallback notion (minim) never sets the flag.
  AssignmentEngine plain{std::string("minim")};
  EXPECT_FALSE(plain.apply_batch(clustered_joins(5)).fallback);
}

TEST(BatchReceipt, LatencyHistogramsReceiveAmortizedPerEventSamples) {
  AssignmentEngine engine{std::string("bbb")};
  std::vector<sim::TraceEvent> batch = clustered_joins(4);
  batch.push_back(move_of(0, 15, 15));
  engine.apply_batch(batch);

  EXPECT_EQ(engine.latency(sim::TraceEvent::Kind::kJoin).count(), 4u);
  EXPECT_EQ(engine.latency(sim::TraceEvent::Kind::kMove).count(), 1u);
  EXPECT_EQ(engine.total_latency().count(), batch.size());
}

TEST(BatchReceipt, SingleEventBatchMatchesApplyExactly) {
  // A size-1 batch takes the exact path even for batch-capable strategies:
  // its receipt row must match what `apply` would have reported.
  AssignmentEngine via_batch{std::string("bbb")};
  AssignmentEngine via_apply{std::string("bbb")};
  const std::vector<sim::TraceEvent> events = clustered_joins(5);
  for (const sim::TraceEvent& event : events) {
    const BatchReceipt receipt =
        via_batch.apply_batch({&event, 1});
    const EventReceipt reference = via_apply.apply(event);
    ASSERT_EQ(receipt.outcomes.size(), 1u);
    const BatchEventOutcome& outcome = receipt.outcomes[0];
    EXPECT_TRUE(outcome.exact);
    EXPECT_FALSE(receipt.coalesced);
    EXPECT_EQ(outcome.seq, reference.seq);
    EXPECT_EQ(outcome.node, reference.node);
    EXPECT_EQ(outcome.recoded, reference.recoded);
    EXPECT_EQ(outcome.max_color, reference.max_color);
    EXPECT_EQ(outcome.live_nodes, reference.live_nodes);
    EXPECT_EQ(receipt.fallback, reference.fallback);
  }
}

}  // namespace
}  // namespace minim::serve
