// The serving line protocol over an in-memory stream transport: scripted
// request/response transcripts, err-and-continue behavior, and the
// ingest-only (echo=false) mode.

#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/transport.hpp"

namespace minim::serve {
namespace {

struct Script {
  std::string responses;
  SessionStats stats;
};

Script run_script(const std::string& input, bool echo = true) {
  std::istringstream in(input);
  std::ostringstream out;
  StreamTransport transport(in, out, "test");
  AssignmentEngine engine{std::string("minim")};
  SessionOptions options;
  options.echo = echo;
  Script script;
  script.stats = serve_session(engine, transport, options);
  script.responses = out.str();
  return script;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ServeSession, EventsAnswerWithReceipts) {
  const Script script = run_script(
      "join 10 10 20\n"
      "join 15 10 20\n"
      "leave 0\n");
  const std::vector<std::string> lines = lines_of(script.responses);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "ok 1 join node=0 recoded=1 maxc=1 live=1 fallback=0");
  EXPECT_EQ(lines[1], "ok 2 join node=1 recoded=1 maxc=2 live=2 fallback=0");
  EXPECT_EQ(lines[2], "ok 3 leave node=0 recoded=0 maxc=2 live=1 fallback=0");
  EXPECT_EQ(script.stats.events, 3u);
  EXPECT_EQ(script.stats.errors, 0u);
}

TEST(ServeSession, QueriesAnswerInline) {
  const Script script = run_script(
      "join 10 10 20\n"
      "join 15 10 20\n"
      "join 80 80 5\n"
      "code 0\n"
      "conflicts 0\n"
      "conflicts 2\n"
      "stats\n");
  const std::vector<std::string> lines = lines_of(script.responses);
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines[3], "code node=0 color=1");
  EXPECT_EQ(lines[4], "conflicts node=0 count=1 partners=1");
  EXPECT_EQ(lines[5], "conflicts node=2 count=0 partners=-");
  EXPECT_EQ(lines[6],
            "stats live=3 joined=3 maxc=2 colors=2 events=3 recodings=3");
  EXPECT_EQ(script.stats.queries, 4u);
}

TEST(ServeSession, BlankAndCommentLinesGetNoResponse) {
  const Script script = run_script(
      "# a recorded trace header\n"
      "\n"
      "join 10 10 20\n"
      "   \n"
      "join 15 10 20   # inline comment\n");
  const std::vector<std::string> lines = lines_of(script.responses);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(script.stats.lines, 5u);
  EXPECT_EQ(script.stats.events, 2u);
}

TEST(ServeSession, ErrorsCarryLineNumbersAndTheSessionContinues) {
  const Script script = run_script(
      "join 10 10 20\n"
      "bogus 1 2\n"
      "leave 5\n"
      "code 99\n"
      "code x\n"
      "code 0 extra\n"
      "join 15 10 20\n");
  const std::vector<std::string> lines = lines_of(script.responses);
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines[1], "err line=2 unknown verb 'bogus'");
  EXPECT_EQ(lines[2], "err line=3 node has not joined yet");
  EXPECT_EQ(lines[3], "err line=4 code: node has not joined yet");
  EXPECT_EQ(lines[4], "err line=5 code: missing/invalid node");
  EXPECT_EQ(lines[5], "err line=6 code: trailing tokens");
  // The session survived five errors and served the final join.
  EXPECT_EQ(lines[6], "ok 2 join node=1 recoded=1 maxc=2 live=2 fallback=0");
  EXPECT_EQ(script.stats.errors, 5u);
  EXPECT_EQ(script.stats.events, 2u);
}

TEST(ServeSession, QuitEndsTheSessionEarly) {
  const Script script = run_script(
      "join 10 10 20\n"
      "quit\n"
      "join 15 10 20\n");  // never read
  const std::vector<std::string> lines = lines_of(script.responses);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "bye");
  EXPECT_EQ(script.stats.events, 1u);
  EXPECT_EQ(script.stats.lines, 2u);
}

TEST(ServeSession, QuietModeIngestsWithoutResponses) {
  const Script script = run_script(
      "join 10 10 20\n"
      "join 15 10 20\n"
      "stats\n",
      /*echo=*/false);
  EXPECT_TRUE(script.responses.empty());
  EXPECT_EQ(script.stats.events, 2u);
  EXPECT_EQ(script.stats.queries, 1u);
}

TEST(ServeSession, PipelinedAndFlushEachTranscriptsAreByteIdentical) {
  // The pipelined session coalesces a piped burst into engine batches but
  // must answer byte-for-byte like the line-at-a-time session for a
  // strategy on the exact per-event path.
  const std::string input =
      "join 10 10 20\n"
      "join 15 10 20\n"
      "stats\n"
      "leave 0\n"
      "bogus\n"
      "code 1\n"
      "join 30 30 10\n";
  const auto run = [&input](bool flush_each) {
    std::istringstream in(input);
    std::ostringstream out;
    StreamTransport transport(in, out, "test");
    AssignmentEngine engine{std::string("minim")};
    SessionOptions options;
    options.flush_each = flush_each;
    Script script;
    script.stats = serve_session(engine, transport, options);
    script.responses = out.str();
    return script;
  };
  const Script pipelined = run(false);
  const Script line_at_a_time = run(true);
  EXPECT_EQ(pipelined.responses, line_at_a_time.responses);
  EXPECT_EQ(pipelined.stats.events, line_at_a_time.stats.events);
  EXPECT_EQ(pipelined.stats.queries, line_at_a_time.stats.queries);
  EXPECT_EQ(pipelined.stats.errors, line_at_a_time.stats.errors);
  // Queries and the error split the events into separate batches, but the
  // pipelined run still needs fewer engine calls than one per event.
  EXPECT_LE(pipelined.stats.batches, pipelined.stats.events);
  EXPECT_EQ(line_at_a_time.stats.batches, line_at_a_time.stats.events);
  EXPECT_EQ(line_at_a_time.stats.coalesced_events, 0u);
}

TEST(ServeSession, PipelinedBurstCoalescesForBatchCapableStrategies) {
  std::istringstream in(
      "join 10 10 20\n"
      "join 15 10 20\n"
      "join 20 10 20\n"
      "join 80 80 5\n");
  std::ostringstream out;
  StreamTransport transport(in, out, "test");
  AssignmentEngine engine{std::string("bbb")};
  const SessionStats stats = serve_session(engine, transport, {});

  EXPECT_EQ(stats.events, 4u);
  EXPECT_EQ(stats.batches, 1u) << "a piped burst must land as one batch";
  EXPECT_EQ(stats.coalesced_events, 4u);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 4u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // Coalesced receipts carry the batch marker and post-batch population.
    EXPECT_NE(lines[i].find(" batch=4"), std::string::npos) << lines[i];
    EXPECT_NE(lines[i].find(" live=4"), std::string::npos) << lines[i];
    EXPECT_EQ(lines[i].substr(0, 5), "ok " + std::to_string(i + 1) + " ");
  }
}

TEST(ServeSession, MaxBatchOneKeepsExactReceipts) {
  std::istringstream in(
      "join 10 10 20\n"
      "join 15 10 20\n"
      "join 20 10 20\n");
  std::ostringstream out;
  StreamTransport transport(in, out, "test");
  AssignmentEngine engine{std::string("bbb")};
  SessionOptions options;
  options.max_batch = 1;
  const SessionStats stats = serve_session(engine, transport, options);

  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.coalesced_events, 0u);
  for (const std::string& line : lines_of(out.str()))
    EXPECT_EQ(line.find(" batch="), std::string::npos) << line;
}

TEST(ServeSession, QueriesLeaveEventNumberingAlone) {
  // Receipts number events, not lines: queries interleaved between events
  // must not advance seq, while error line numbers still track the stream.
  const Script script = run_script(
      "join 10 10 20\n"
      "stats\n"
      "code 0\n"
      "join 15 10 20\n"
      "leave 9\n");
  const std::vector<std::string> lines = lines_of(script.responses);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[3].substr(0, 4), "ok 2");
  EXPECT_EQ(lines[4], "err line=5 node has not joined yet");
}

}  // namespace
}  // namespace minim::serve
