// AssignmentEngine: the online serving core.  The load-bearing property is
// batch equivalence — feeding a recorded trace event by event through
// `apply` must leave the network and assignment byte-identical to batch
// `apply_trace` on a fresh simulation.

#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/constraints.hpp"
#include "sim/trace.hpp"
#include "strategies/bbb.hpp"
#include "strategies/factory.hpp"
#include "util/rng.hpp"

namespace minim::serve {
namespace {

/// A deterministic churn trace: ramp joins, then a mixed phase.
sim::Trace churn_trace(std::uint64_t seed, std::size_t ramp,
                       std::size_t events) {
  util::Rng rng(seed);
  sim::Trace trace;
  std::vector<std::size_t> live;
  std::size_t joined = 0;
  const auto join = [&] {
    sim::TraceEvent e;
    e.kind = sim::TraceEvent::Kind::kJoin;
    e.position = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    e.range = rng.uniform(10.0, 30.0);
    live.push_back(joined++);
    trace.push_back(e);
  };
  for (std::size_t i = 0; i < ramp; ++i) join();
  for (std::size_t i = 0; i < events; ++i) {
    const double u = rng.uniform01();
    if (live.size() < 5 || u < 0.3) {
      join();
      continue;
    }
    const std::size_t slot = static_cast<std::size_t>(rng.below(live.size()));
    sim::TraceEvent e;
    e.node = live[slot];
    if (u < 0.5) {
      e.kind = sim::TraceEvent::Kind::kLeave;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(slot));
    } else if (u < 0.8) {
      e.kind = sim::TraceEvent::Kind::kMove;
      e.position = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    } else {
      e.kind = sim::TraceEvent::Kind::kPower;
      e.range = rng.uniform(10.0, 30.0);
    }
    trace.push_back(e);
  }
  return trace;
}

TEST(AssignmentEngine, MatchesBatchApplyTraceExactly) {
  for (const char* strategy : {"minim", "cp", "bbb", "bbb-bounded"}) {
    const sim::Trace trace = churn_trace(2001, 40, 300);

    AssignmentEngine engine{std::string(strategy)};
    for (const sim::TraceEvent& event : trace) engine.apply(event);

    core::StrategyPtr batch_strategy = strategies::make_strategy(strategy);
    sim::Simulation batch(*batch_strategy);
    sim::apply_trace(trace, batch);

    // Identical totals, population, and every per-node color.
    EXPECT_EQ(engine.simulation().totals().events, batch.totals().events)
        << strategy;
    EXPECT_EQ(engine.simulation().totals().recodings,
              batch.totals().recodings)
        << strategy;
    EXPECT_EQ(engine.simulation().max_color(), batch.max_color()) << strategy;
    std::vector<net::NodeId> served = engine.simulation().network().nodes();
    std::vector<net::NodeId> batched = batch.network().nodes();
    std::sort(served.begin(), served.end());
    std::sort(batched.begin(), batched.end());
    ASSERT_EQ(served, batched) << strategy;
    for (net::NodeId v : served)
      EXPECT_EQ(engine.simulation().assignment().color(v),
                batch.assignment().color(v))
          << strategy << " node " << v;
  }
}

TEST(AssignmentEngine, ReceiptsDescribeEachEvent) {
  AssignmentEngine engine{std::string("minim")};

  sim::TraceEvent join;
  join.kind = sim::TraceEvent::Kind::kJoin;
  join.position = {10, 10};
  join.range = 20;
  const EventReceipt first = engine.apply(join);
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(first.kind, sim::TraceEvent::Kind::kJoin);
  EXPECT_EQ(first.node, 0u);
  EXPECT_EQ(first.recoded, 1u);  // the joiner gets its first code
  EXPECT_EQ(first.live_nodes, 1u);
  EXPECT_FALSE(first.fallback);
  EXPECT_EQ(first.max_color, 1u);

  join.position = {12, 10};
  const EventReceipt second = engine.apply(join);
  EXPECT_EQ(second.seq, 2u);
  EXPECT_EQ(second.node, 1u);
  EXPECT_EQ(second.live_nodes, 2u);
  EXPECT_EQ(second.max_color, 2u);  // CA1: neighbors need distinct codes

  sim::TraceEvent leave;
  leave.kind = sim::TraceEvent::Kind::kLeave;
  leave.node = 0;
  const EventReceipt third = engine.apply(leave);
  EXPECT_EQ(third.seq, 3u);
  EXPECT_EQ(third.node, 0u);
  EXPECT_EQ(third.live_nodes, 1u);
  EXPECT_EQ(engine.events_served(), 3u);
}

TEST(AssignmentEngine, RejectsBadReferencesWithoutStateDamage) {
  AssignmentEngine engine{std::string("minim")};
  sim::TraceEvent join;
  join.kind = sim::TraceEvent::Kind::kJoin;
  join.position = {10, 10};
  join.range = 20;
  engine.apply(join);

  sim::TraceEvent bad;
  bad.kind = sim::TraceEvent::Kind::kLeave;
  bad.node = 7;  // never joined
  EXPECT_THROW(engine.apply(bad), std::invalid_argument);
  EXPECT_EQ(engine.events_served(), 1u);  // the rejected event never counted
  EXPECT_TRUE(engine.is_live(0));

  bad.node = 0;
  engine.apply(bad);  // leave 0
  EXPECT_THROW(engine.apply(bad), std::invalid_argument);  // already left
  EXPECT_THROW(engine.code_of(0), std::invalid_argument);
  EXPECT_THROW(engine.conflicts_of(7), std::invalid_argument);
}

TEST(AssignmentEngine, ConflictsMatchTheConstraintOracle) {
  AssignmentEngine engine{std::string("minim")};
  const sim::Trace trace = churn_trace(7, 30, 120);
  for (const sim::TraceEvent& event : trace) engine.apply(event);

  // For every live join index, conflicts_of must agree with the net-layer
  // conflict_partners oracle mapped through the engine's own naming.
  std::size_t checked = 0;
  for (std::size_t node = 0; node < engine.joined(); ++node) {
    if (!engine.is_live(node)) continue;
    const std::vector<std::size_t> got = engine.conflicts_of(node);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    // Symmetry: conflict is a mutual relation under join-order naming.
    for (std::size_t partner : got) {
      const std::vector<std::size_t> back = engine.conflicts_of(partner);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), node))
          << node << " <-> " << partner;
    }
    checked += got.size();
  }
  EXPECT_GT(checked, 0u) << "trace produced no conflicts to check";
}

TEST(AssignmentEngine, FallbackFlagTracksBoundedStrategyCounters) {
  strategies::BbbStrategy::Params params;
  params.bounded_propagation = true;
  strategies::BbbStrategy bounded(strategies::ColoringOrder::kSmallestLast,
                                  params);
  AssignmentEngine engine(bounded);

  const sim::Trace trace = churn_trace(42, 50, 400);
  std::size_t flagged = 0;
  std::uint64_t counter_before = bounded.counters().full_events;
  for (const sim::TraceEvent& event : trace) {
    const EventReceipt receipt = engine.apply(event);
    const std::uint64_t counter_after = bounded.counters().full_events;
    EXPECT_EQ(receipt.fallback, counter_after > counter_before)
        << "event " << receipt.seq;
    counter_before = counter_after;
    if (receipt.fallback) ++flagged;
  }
  EXPECT_EQ(flagged, bounded.counters().full_events);
}

TEST(AssignmentEngine, SummaryAndLatencyInstrumentation) {
  AssignmentEngine engine{std::string("minim")};
  const sim::Trace trace = churn_trace(3, 20, 60);
  std::size_t moves = 0;
  for (const sim::TraceEvent& event : trace) {
    engine.apply(event);
    if (event.kind == sim::TraceEvent::Kind::kMove) ++moves;
  }

  const AssignmentEngine::Summary s = engine.summary();
  EXPECT_EQ(s.events, trace.size());
  EXPECT_EQ(s.joined, engine.joined());
  EXPECT_GT(s.live, 0u);
  EXPECT_GE(s.joined, s.live);
  EXPECT_GT(s.distinct_colors, 0u);
  EXPECT_GE(s.max_color, 1u);

  EXPECT_EQ(engine.latency(sim::TraceEvent::Kind::kMove).count(), moves);
  EXPECT_EQ(engine.total_latency().count(), trace.size());
}

TEST(AssignmentEngine, ResetStartsAFreshSession) {
  AssignmentEngine engine{std::string("minim")};
  const sim::Trace trace = churn_trace(5, 10, 30);
  for (const sim::TraceEvent& event : trace) engine.apply(event);
  ASSERT_GT(engine.joined(), 0u);

  engine.reset();
  EXPECT_EQ(engine.joined(), 0u);
  EXPECT_EQ(engine.events_served(), 0u);
  EXPECT_EQ(engine.total_latency().count(), 0u);
  EXPECT_EQ(engine.summary().live, 0u);

  // The fresh session renames from zero and serves normally.
  sim::TraceEvent join;
  join.kind = sim::TraceEvent::Kind::kJoin;
  join.position = {1, 1};
  join.range = 5;
  EXPECT_EQ(engine.apply(join).node, 0u);
}

TEST(AssignmentEngine, UnknownStrategyNameThrows) {
  EXPECT_THROW(AssignmentEngine{std::string("no-such-strategy")},
               std::invalid_argument);
}

}  // namespace
}  // namespace minim::serve
