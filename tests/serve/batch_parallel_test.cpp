// Engine-level plumbing for component-parallel batched recoloring: the
// `AssignmentEngine::Params::recolor_threads` knob must reach the strategy
// (owned-by-name and borrowed constructions), engage on clustered batches,
// and produce receipts and codes identical to a serial twin.  This suite is
// also the serving-side TSan target for the parallel recolor fan-out (the
// CI thread-sanitizer leg filters it in by name).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "sim/trace.hpp"
#include "strategies/bbb.hpp"
#include "util/rng.hpp"

namespace minim::serve {
namespace {

using Kind = sim::TraceEvent::Kind;

/// A 4-cluster churn workload: clusters sit at distant corners, so a batch
/// touching several clusters dirties disjoint regions — the decomposable
/// regime the parallel pass exists for.
sim::Trace clustered_workload(std::size_t per_cluster, std::size_t churn,
                              std::uint64_t seed) {
  const double cx[] = {10.0, 90.0, 10.0, 90.0};
  const double cy[] = {10.0, 10.0, 90.0, 90.0};
  util::Rng rng(seed);
  sim::Trace trace;
  std::size_t joined = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      sim::TraceEvent e;
      e.kind = Kind::kJoin;
      e.position = {cx[c] + rng.uniform(-4.0, 4.0),
                    cy[c] + rng.uniform(-4.0, 4.0)};
      e.range = rng.uniform(4.0, 9.0);
      trace.push_back(e);
      ++joined;
    }
  }
  for (std::size_t i = 0; i < churn; ++i) {
    sim::TraceEvent e;
    e.node = rng.below(joined);  // all joins stay live in this workload
    if (rng.chance(0.5)) {
      e.kind = Kind::kPower;
      e.range = rng.uniform(4.0, 9.0);
    } else {
      e.kind = Kind::kMove;
      const std::size_t c = rng.below(4);
      e.position = {cx[c] + rng.uniform(-4.0, 4.0),
                    cy[c] + rng.uniform(-4.0, 4.0)};
    }
    trace.push_back(e);
  }
  return trace;
}

/// Applies `trace` in fixed-size batches; returns the receipts.
std::vector<BatchReceipt> drive(AssignmentEngine& engine,
                                const sim::Trace& trace, std::size_t batch) {
  std::vector<BatchReceipt> receipts;
  for (std::size_t at = 0; at < trace.size(); at += batch) {
    const std::size_t take = std::min(batch, trace.size() - at);
    receipts.push_back(engine.apply_batch(
        std::span<const sim::TraceEvent>(trace.data() + at, take)));
  }
  return receipts;
}

strategies::BbbStrategy::Params bounded_params(std::size_t threads) {
  strategies::BbbStrategy::Params p;
  p.bounded_propagation = true;
  // The tight clusters mean one batch dirties whole clusters at once;
  // disarm the dirty-fraction gate and widen the budget so every batch
  // stays on the bounded path (where the parallel pass lives).
  p.full_recolor_fraction = 1.1;
  p.propagation_slack = 1.0;
  p.recolor_threads = threads;
  return p;
}

TEST(BatchParallelServe, EngineParamsReachBorrowedStrategy) {
  strategies::BbbStrategy bbb(strategies::ColoringOrder::kSmallestLast,
                              bounded_params(1));
  AssignmentEngine::Params params;
  params.recolor_threads = 4;
  AssignmentEngine engine(bbb, params);
  EXPECT_EQ(bbb.params().recolor_threads, 4u);
}

TEST(BatchParallelServe, ParallelEngagesAndMatchesSerialExactly) {
  const sim::Trace trace = clustered_workload(12, 512, 7401);

  strategies::BbbStrategy serial_bbb(strategies::ColoringOrder::kSmallestLast,
                                     bounded_params(1));
  strategies::BbbStrategy parallel_bbb(
      strategies::ColoringOrder::kSmallestLast, bounded_params(4));
  AssignmentEngine serial(serial_bbb);
  AssignmentEngine parallel(parallel_bbb);

  const std::vector<BatchReceipt> serial_receipts = drive(serial, trace, 64);
  const std::vector<BatchReceipt> parallel_receipts =
      drive(parallel, trace, 64);

  EXPECT_GT(parallel_bbb.counters().parallel_events, 0u)
      << "clustered batches never decomposed into parallel components";
  EXPECT_EQ(serial_bbb.counters().parallel_events, 0u);

  // Receipts must agree on everything but wall clocks.
  ASSERT_EQ(serial_receipts.size(), parallel_receipts.size());
  for (std::size_t i = 0; i < serial_receipts.size(); ++i) {
    const BatchReceipt& s = serial_receipts[i];
    const BatchReceipt& p = parallel_receipts[i];
    EXPECT_EQ(s.events, p.events) << "batch " << i;
    EXPECT_EQ(s.recoded, p.recoded) << "batch " << i;
    EXPECT_EQ(s.repairs, p.repairs) << "batch " << i;
    EXPECT_EQ(s.coalesced, p.coalesced) << "batch " << i;
    EXPECT_EQ(s.fallback, p.fallback) << "batch " << i;
    EXPECT_EQ(s.max_color, p.max_color) << "batch " << i;
    EXPECT_EQ(s.live_nodes, p.live_nodes) << "batch " << i;
  }
  for (std::size_t node = 0; node < serial.joined(); ++node) {
    ASSERT_EQ(serial.is_live(node), parallel.is_live(node));
    if (serial.is_live(node)) {
      EXPECT_EQ(serial.code_of(node), parallel.code_of(node))
          << "join index " << node;
    }
  }
}

TEST(BatchParallelServe, OwnedStrategyByNameMatchesSerial) {
  // The owned-by-name path (cdma_drive --serve --recolor-threads=N): same
  // workload, engine-constructed strategies, identical final codes.
  const sim::Trace trace = clustered_workload(10, 256, 7402);

  AssignmentEngine serial{std::string("bbb-bounded")};
  AssignmentEngine::Params params;
  params.recolor_threads = 2;
  AssignmentEngine parallel("bbb-bounded", params);

  drive(serial, trace, 128);
  drive(parallel, trace, 128);

  ASSERT_EQ(serial.joined(), parallel.joined());
  EXPECT_EQ(serial.summary().max_color, parallel.summary().max_color);
  for (std::size_t node = 0; node < serial.joined(); ++node) {
    if (serial.is_live(node)) {
      EXPECT_EQ(serial.code_of(node), parallel.code_of(node))
          << "join index " << node;
    }
  }
}

TEST(BatchParallelServe, ThreadsZeroResolvesToHardware) {
  // recolor_threads=0 (auto) must construct and serve correctly whatever
  // the machine's core count — including 1, where it degrades to serial.
  strategies::BbbStrategy bbb(strategies::ColoringOrder::kSmallestLast,
                              bounded_params(0));
  AssignmentEngine engine(bbb);
  strategies::BbbStrategy reference_bbb(
      strategies::ColoringOrder::kSmallestLast, bounded_params(1));
  AssignmentEngine reference(reference_bbb);
  const sim::Trace trace = clustered_workload(8, 128, 7403);
  drive(engine, trace, 64);
  drive(reference, trace, 64);
  for (std::size_t node = 0; node < reference.joined(); ++node) {
    if (reference.is_live(node)) {
      EXPECT_EQ(engine.code_of(node), reference.code_of(node))
          << "join index " << node;
    }
  }
}

}  // namespace
}  // namespace minim::serve
