// Direct tests of the G' builder (Section 4.1 step 4) and the recode-report
// plumbing, plus evidence that the paper's weight scheme is load-bearing:
// uniform weights break minimality, cardinality matching breaks it harder,
// yet both remain *correct* (validity is enforced by the graph, not the
// weights).

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/bipartite_builder.hpp"
#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "net/partitions.hpp"
#include "util/rng.hpp"

namespace {

using minim::core::BipartiteWeights;
using minim::core::build_recode_problem;
using minim::core::EventType;
using minim::core::MinimStrategy;
using minim::core::RecodeProblem;
using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::Color;
using minim::net::NodeId;
using minim::test::build_world;
using minim::test::World;
using minim::util::Rng;

// ----------------------------------------------------------- the builder

TEST(BipartiteBuilder, PoolBoundCoversConstraintsAndOldColors) {
  // Joiner hears u (color 5); u's outside partner holds color 7.
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId u = net.add_node({{50, 50}, 20});
  const NodeId outside = net.add_node({{50, 65}, 20});  // mutual with u
  asg.set_color(u, 5);
  asg.set_color(outside, 7);
  const NodeId joiner = net.add_node({{50, 40}, 5});  // hears u only? u reaches it
  ASSERT_TRUE(net.graph().has_edge(u, joiner));

  std::vector<NodeId> v1 = minim::test::ids(net.heard_by(joiner));
  v1.push_back(joiner);
  const RecodeProblem problem = build_recode_problem(net, asg, v1);
  // outside (7) constrains u; old color 5 also counts: pool max must be >= 7.
  EXPECT_GE(problem.max_color, 7u);
  EXPECT_EQ(problem.graph.left_size(), problem.v1.size());
  EXPECT_EQ(problem.graph.right_size(), problem.max_color);
}

TEST(BipartiteBuilder, ForbiddenColorsHaveNoEdges) {
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId u = net.add_node({{50, 50}, 20});
  const NodeId outside = net.add_node({{50, 65}, 20});
  asg.set_color(u, 2);
  asg.set_color(outside, 3);
  const NodeId joiner = net.add_node({{50, 40}, 5});

  std::vector<NodeId> v1 = minim::test::ids(net.heard_by(joiner));
  v1.push_back(joiner);
  const RecodeProblem problem = build_recode_problem(net, asg, v1);

  // Find u's index in v1.
  const auto it = std::find(problem.v1.begin(), problem.v1.end(), u);
  ASSERT_NE(it, problem.v1.end());
  const auto ui = static_cast<std::uint32_t>(it - problem.v1.begin());
  // u conflicts with `outside` (mutual edge): color 3 must have no edge.
  EXPECT_FALSE(problem.graph.has_edge(ui, 3 - 1));
  // u's own old color must be a weight-3 edge.
  EXPECT_EQ(problem.graph.weight(ui, 2 - 1), 3);
}

TEST(BipartiteBuilder, WeightSchemeConfigurable) {
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId u = net.add_node({{50, 50}, 20});
  net.add_node({{50, 60}, 20});
  asg.set_color(u, 1);
  asg.set_color(1, 2);
  BipartiteWeights weights;
  weights.old_color_weight = 9;
  weights.other_weight = 4;
  const RecodeProblem problem = build_recode_problem(net, asg, {u}, weights);
  EXPECT_EQ(problem.graph.weight(0, 0), 9);  // old color 1
  // Color 2 is forbidden (partner), so the only other pool color is... pool
  // max = max(old=1, constraint=2) = 2 and color 2 has no edge.
  EXPECT_EQ(problem.max_color, 2u);
  EXPECT_FALSE(problem.graph.has_edge(0, 1));
}

TEST(BipartiteBuilder, RejectsNonPositiveWeights) {
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId u = net.add_node({{50, 50}, 20});
  BipartiteWeights weights;
  weights.other_weight = 0;
  EXPECT_THROW(build_recode_problem(net, asg, {u}, weights), std::invalid_argument);
}

TEST(BipartiteBuilder, DeduplicatesV1) {
  AdhocNetwork net;
  CodeAssignment asg;
  const NodeId u = net.add_node({{50, 50}, 20});
  asg.set_color(u, 1);
  const RecodeProblem problem = build_recode_problem(net, asg, {u, u, u});
  EXPECT_EQ(problem.v1.size(), 1u);
}

TEST(BipartiteBuilder, EmptyRecodeSet) {
  AdhocNetwork net;
  CodeAssignment asg;
  const RecodeProblem problem = build_recode_problem(net, asg, {});
  EXPECT_EQ(problem.graph.left_size(), 0u);
  EXPECT_EQ(problem.max_color, 0u);
}

// ------------------------------------------------- weights are load-bearing

TEST(WeightScheme, UniformWeightsLoseMinimalitySomewhere) {
  // Thm 4.1.8 needs weight 3 > 1 + 1.  With uniform weights the matcher may
  // displace old colors; across many random joins we must find at least one
  // event where the uniform variant recodes more than the bound (and the
  // paper scheme never does).
  MinimStrategy::Params uniform_params;
  uniform_params.weights.old_color_weight = 1;
  bool witness = false;
  for (std::uint64_t seed = 1; seed <= 20 && !witness; ++seed) {
    Rng rng(seed * 13);
    World world = build_world(25, 20.5, 30.5, rng);
    // Fork the world; apply one more join under each variant.
    const minim::net::NodeConfig config{{rng.uniform(0, 100), rng.uniform(0, 100)},
                                        rng.uniform(20.5, 30.5)};
    AdhocNetwork net_u = world.network;
    CodeAssignment asg_u = world.assignment;
    const NodeId id_u = net_u.add_node(config);
    const std::size_t bound = minim::net::minimal_recoding_bound(net_u, asg_u, id_u);
    MinimStrategy uniform(uniform_params);
    const auto report_u = uniform.on_join(net_u, asg_u, id_u);
    ASSERT_TRUE(minim::net::is_valid(net_u, asg_u));  // still correct!
    if (report_u.recodings() > bound + 1) witness = true;
  }
  EXPECT_TRUE(witness) << "uniform weights never exceeded the bound in 20 worlds";
}

TEST(WeightScheme, Weight2StillMinimalOnPairFreeInstances) {
  // 2 > 1 but 2 < 1 + 1 + epsilon... the exchange argument needs
  // old > other + other; with old=2, other=1 a kept color can be traded for
  // two matched nodes without losing weight, so minimality *can* break —
  // but correctness never does.  We just assert validity across a sweep.
  MinimStrategy::Params params;
  params.weights.old_color_weight = 2;
  MinimStrategy strategy(params);
  Rng rng(77);
  AdhocNetwork net;
  CodeAssignment asg;
  for (int i = 0; i < 40; ++i) {
    const NodeId id = net.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(20.5, 30.5)});
    strategy.on_join(net, asg, id);
    ASSERT_TRUE(minim::net::is_valid(net, asg));
  }
}

TEST(WeightScheme, CardinalityMatcherValidButNotMinimal) {
  MinimStrategy::Params params;
  params.matcher = MinimStrategy::Matcher::kCardinality;
  MinimStrategy cardinality(params);
  MinimStrategy exact;

  double cardinality_total = 0;
  double exact_total = 0;
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    Rng rng_a(seed);
    Rng rng_b(seed);
    AdhocNetwork net_a;
    CodeAssignment asg_a;
    AdhocNetwork net_b;
    CodeAssignment asg_b;
    for (int i = 0; i < 35; ++i) {
      const minim::net::NodeConfig config{{rng_a.uniform(0, 100), rng_a.uniform(0, 100)},
                                          rng_a.uniform(20.5, 30.5)};
      rng_b.uniform(0, 1);  // keep streams aligned (unused)
      const NodeId id_a = net_a.add_node(config);
      cardinality_total += static_cast<double>(
          cardinality.on_join(net_a, asg_a, id_a).recodings());
      ASSERT_TRUE(minim::net::is_valid(net_a, asg_a));
      const NodeId id_b = net_b.add_node(config);
      exact_total += static_cast<double>(exact.on_join(net_b, asg_b, id_b).recodings());
    }
  }
  EXPECT_GE(cardinality_total, exact_total);
}

// ----------------------------------------------------------- report basics

TEST(RecodeReport, EventTypeNames) {
  EXPECT_EQ(minim::core::to_string(EventType::kJoin), "join");
  EXPECT_EQ(minim::core::to_string(EventType::kLeave), "leave");
  EXPECT_EQ(minim::core::to_string(EventType::kMove), "move");
  EXPECT_EQ(minim::core::to_string(EventType::kPowerIncrease), "power-increase");
  EXPECT_EQ(minim::core::to_string(EventType::kPowerDecrease), "power-decrease");
}

TEST(RecodeReport, FinalizeComputesNetworkMax) {
  AdhocNetwork net;
  CodeAssignment asg;
  asg.set_color(net.add_node({{10, 10}, 5}), 4);
  asg.set_color(net.add_node({{90, 90}, 5}), 9);
  minim::core::RecodeReport report;
  finalize_report(net, asg, report);
  EXPECT_EQ(report.max_color_after, 9u);
}

}  // namespace
