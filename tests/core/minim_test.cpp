// The paper's theorems, executed: correctness (Thm 4.1.4), minimality
// (Lemma 4.1.1 + Thm 4.1.8), optimality among minimal strategies
// (Thm 4.1.9), old-color feasibility (Lemma 4.1.6), power-increase
// minimality (Thm 4.2.3), leave/decrease passivity (Thm 4.3.x) and the
// move equivalence (Thm 4.4.1).

#include "core/minim.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/bipartite_builder.hpp"
#include "net/constraints.hpp"
#include "net/partitions.hpp"
#include "util/rng.hpp"

namespace {

using minim::core::build_recode_problem;
using minim::core::EventType;
using minim::core::MinimStrategy;
using minim::core::RecodeReport;
using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::Color;
using minim::net::minimal_recoding_bound;
using minim::net::NodeConfig;
using minim::net::NodeId;
using minim::test::build_world;
using minim::test::ExhaustiveAdversary;
using minim::test::World;
using minim::util::Rng;

// --------------------------------------------------------------- correctness

struct JoinSweep {
  std::uint64_t seed;
  std::size_t n;
  double min_range;
  double max_range;
};

class MinimJoinTheorems : public ::testing::TestWithParam<JoinSweep> {};

TEST_P(MinimJoinTheorems, CorrectnessAfterEveryJoin) {
  const auto param = GetParam();
  Rng rng(param.seed);
  AdhocNetwork network;
  CodeAssignment assignment;
  MinimStrategy minim;
  for (std::size_t i = 0; i < param.n; ++i) {
    const NodeId id = network.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)},
         rng.uniform(param.min_range, param.max_range)});
    minim.on_join(network, assignment, id);
    ASSERT_TRUE(minim::net::is_valid(network, assignment)) << "after join " << i;
  }
}

TEST_P(MinimJoinTheorems, MinimalityBoundIsExact) {
  // Thm 4.1.8: recodings(join) == Σ(K_i - 1) + 1 (the +1 is n itself).
  const auto param = GetParam();
  Rng rng(param.seed + 7777);
  AdhocNetwork network;
  CodeAssignment assignment;
  MinimStrategy minim;
  for (std::size_t i = 0; i < param.n; ++i) {
    const NodeId id = network.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)},
         rng.uniform(param.min_range, param.max_range)});
    const std::size_t bound = minimal_recoding_bound(network, assignment, id);
    const RecodeReport report = minim.on_join(network, assignment, id);
    ASSERT_EQ(report.recodings(), bound + 1) << "join " << i;
  }
}

TEST_P(MinimJoinTheorems, OldColorEdgesExistWithWeight3) {
  // Lemma 4.1.6: for every u in 1n ∪ 2n the edge (u, old_color(u)) is in G'
  // and carries weight 3.
  const auto param = GetParam();
  Rng rng(param.seed + 31);
  World world = build_world(param.n, param.min_range, param.max_range, rng);

  const NodeId joiner = world.network.add_node(
      {{rng.uniform(0, 100), rng.uniform(0, 100)},
       rng.uniform(param.min_range, param.max_range)});
  std::vector<NodeId> v1 = minim::test::ids(world.network.heard_by(joiner));
  v1.push_back(joiner);
  const auto problem = build_recode_problem(world.network, world.assignment, v1);

  for (std::size_t i = 0; i < problem.v1.size(); ++i) {
    const NodeId u = problem.v1[i];
    if (u == joiner) continue;
    const Color old = world.assignment.color(u);
    ASSERT_NE(old, minim::net::kNoColor);
    ASSERT_LE(old, problem.max_color);
    ASSERT_EQ(problem.graph.weight(static_cast<std::uint32_t>(i), old - 1), 3)
        << "node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinimJoinTheorems,
    ::testing::Values(JoinSweep{101, 40, 20.5, 30.5}, JoinSweep{102, 60, 20.5, 30.5},
                      JoinSweep{103, 40, 10.0, 15.0}, JoinSweep{104, 40, 35.0, 45.0},
                      JoinSweep{105, 25, 50.0, 60.0}, JoinSweep{106, 80, 12.0, 18.0}));

// ------------------------------------------- optimality among minimal (join)

class MinimOptimalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimOptimalityTest, JoinAchievesAdversaryOptimum) {
  // Small dense worlds keep |V1| <= 6 so exhaustive enumeration is feasible.
  Rng rng(GetParam());
  World world = build_world(8, 18.0, 26.0, rng);

  const NodeId joiner = world.network.add_node(
      {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(18.0, 26.0)});
  std::vector<NodeId> v1 = minim::test::ids(world.network.heard_by(joiner));
  if (v1.size() > 6) GTEST_SKIP() << "recode set too large for the oracle";
  v1.push_back(joiner);

  ExhaustiveAdversary adversary(world.network, world.assignment, v1);
  const auto oracle = adversary.run();

  MinimStrategy minim;
  const RecodeReport report = minim.on_join(world.network, world.assignment, joiner);

  ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));
  // Thm 4.1.8: minimal recodings.
  EXPECT_EQ(report.recodings(), oracle.min_recodings);
  // Thm 4.1.9: least max color among all minimal V1-recodings.
  EXPECT_EQ(report.max_color_after, oracle.best_max_color);
}

TEST_P(MinimOptimalityTest, MoveAchievesAdversaryOptimum) {
  Rng rng(GetParam() + 5000);
  World world = build_world(9, 18.0, 26.0, rng);

  const NodeId mover = world.ids[rng.below(world.ids.size())];
  world.network.set_position(mover, {rng.uniform(0, 100), rng.uniform(0, 100)});

  std::vector<NodeId> v1 = minim::test::ids(world.network.heard_by(mover));
  if (v1.size() > 6) GTEST_SKIP() << "recode set too large for the oracle";
  v1.push_back(mover);

  ExhaustiveAdversary adversary(world.network, world.assignment, v1);
  const auto oracle = adversary.run();

  MinimStrategy minim;  // default: mover may keep its color (weight-3 edge)
  const RecodeReport report = minim.on_move(world.network, world.assignment, mover);

  ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));
  EXPECT_EQ(report.recodings(), oracle.min_recodings);
  EXPECT_EQ(report.max_color_after, oracle.best_max_color);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimOptimalityTest,
                         ::testing::Range<std::uint64_t>(1, 26));

// ----------------------------------------------------------- power increase

TEST(MinimPowerIncrease, NoConflictMeansNoRecode) {
  AdhocNetwork network;
  CodeAssignment assignment;
  const NodeId a = network.add_node({{0, 0}, 10.0});
  const NodeId b = network.add_node({{30, 0}, 10.0});
  assignment.set_color(a, 1);
  assignment.set_color(b, 2);

  MinimStrategy minim;
  const double old_range = network.config(a).range;
  network.set_range(a, 35.0);  // now reaches b, but colors differ
  const RecodeReport report = minim.on_power_change(network, assignment, a, old_range);
  EXPECT_EQ(report.recodings(), 0u);
  EXPECT_EQ(report.event, EventType::kPowerIncrease);
  EXPECT_TRUE(minim::net::is_valid(network, assignment));
}

TEST(MinimPowerIncrease, ConflictRecodesOnlyN) {
  AdhocNetwork network;
  CodeAssignment assignment;
  const NodeId a = network.add_node({{0, 0}, 10.0});
  const NodeId b = network.add_node({{30, 0}, 10.0});
  assignment.set_color(a, 1);
  assignment.set_color(b, 1);  // same color; fine while out of range

  MinimStrategy minim;
  const double old_range = network.config(a).range;
  network.set_range(a, 35.0);  // CA1 conflict with b appears
  const RecodeReport report = minim.on_power_change(network, assignment, a, old_range);
  ASSERT_EQ(report.recodings(), 1u);
  EXPECT_EQ(report.changes[0].node, a);
  EXPECT_TRUE(minim::net::is_valid(network, assignment));
}

TEST(MinimPowerIncrease, PicksLowestAvailableColor) {
  // n in conflict must take the lowest color not forbidden by any partner.
  AdhocNetwork network;
  CodeAssignment assignment;
  const NodeId n = network.add_node({{0, 0}, 5.0});
  const NodeId r1 = network.add_node({{10, 0}, 30.0});
  const NodeId r2 = network.add_node({{0, 10}, 30.0});
  assignment.set_color(n, 1);
  assignment.set_color(r1, 1);  // will conflict once n reaches it
  assignment.set_color(r2, 2);

  MinimStrategy minim;
  const double old_range = network.config(n).range;
  network.set_range(n, 15.0);  // reaches r1 and r2
  const RecodeReport report = minim.on_power_change(network, assignment, n, old_range);
  ASSERT_EQ(report.recodings(), 1u);
  EXPECT_EQ(assignment.color(n), 3u);  // 1 and 2 both forbidden
  EXPECT_TRUE(minim::net::is_valid(network, assignment));
}

class MinimPowerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimPowerSweep, IncreaseRecodesAtMostOneAndStaysValid) {
  Rng rng(GetParam());
  World world = build_world(40, 20.5, 30.5, rng);
  MinimStrategy minim;
  for (int i = 0; i < 20; ++i) {
    const NodeId v = world.ids[rng.below(world.ids.size())];
    const double old_range = world.network.config(v).range;
    world.network.set_range(v, old_range * rng.uniform(1.0, 3.0));
    const RecodeReport report =
        minim.on_power_change(world.network, world.assignment, v, old_range);
    ASSERT_LE(report.recodings(), 1u);
    if (report.recodings() == 1) {
      ASSERT_EQ(report.changes[0].node, v);
    }
    ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));
  }
}

TEST_P(MinimPowerSweep, DecreaseAndLeaveNeverRecode) {
  Rng rng(GetParam() + 40);
  World world = build_world(40, 20.5, 30.5, rng);
  MinimStrategy minim;
  for (int i = 0; i < 10; ++i) {
    const NodeId v = world.ids[rng.below(world.ids.size())];
    const double old_range = world.network.config(v).range;
    world.network.set_range(v, old_range * rng.uniform(0.3, 1.0));
    const RecodeReport report =
        minim.on_power_change(world.network, world.assignment, v, old_range);
    ASSERT_EQ(report.recodings(), 0u);
    ASSERT_EQ(report.event, EventType::kPowerDecrease);
    ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));
  }
  // Leaves.
  for (int i = 0; i < 10; ++i) {
    const std::size_t pick = rng.below(world.ids.size());
    const NodeId v = world.ids[pick];
    world.network.remove_node(v);
    world.assignment.clear(v);
    world.ids.erase(world.ids.begin() + static_cast<std::ptrdiff_t>(pick));
    const RecodeReport report = minim.on_leave(world.network, world.assignment, v);
    ASSERT_EQ(report.recodings(), 0u);
    ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimPowerSweep,
                         ::testing::Values(301u, 302u, 303u, 304u));

// ------------------------------------------------------------------ moves

class MinimMoveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimMoveSweep, MoveKeepsValidityAndRespectsInNeighborBound) {
  Rng rng(GetParam());
  World world = build_world(30, 20.5, 30.5, rng);
  MinimStrategy minim;
  for (int i = 0; i < 30; ++i) {
    const NodeId mover = world.ids[rng.below(world.ids.size())];
    world.network.set_position(mover, {rng.uniform(0, 100), rng.uniform(0, 100)});
    const std::size_t bound =
        minimal_recoding_bound(world.network, world.assignment, mover);
    const RecodeReport report = minim.on_move(world.network, world.assignment, mover);
    // In-neighbors recoded exactly per the bound; the mover may add one.
    ASSERT_GE(report.recodings(), bound);
    ASSERT_LE(report.recodings(), bound + 1);
    ASSERT_TRUE(minim::net::is_valid(world.network, world.assignment));
  }
}

TEST_P(MinimMoveSweep, ClearingMoverMatchesLeaveThenJoin) {
  // Thm 4.4.1 under the literal semantics: RecodeOnMove(n) ==
  // RecodeDecreasePowOrLeave(n) at the old position followed by
  // RecodeOnJoin(n) at the new one.
  Rng rng(GetParam() + 99);
  World world = build_world(25, 20.5, 30.5, rng);

  const NodeId mover = world.ids[rng.below(world.ids.size())];
  const minim::util::Vec2 target{rng.uniform(0, 100), rng.uniform(0, 100)};
  const double range = world.network.config(mover).range;

  // Path A: move with move_clears_mover.
  AdhocNetwork net_a = world.network;
  CodeAssignment asg_a = world.assignment;
  MinimStrategy::Params params;
  params.move_clears_mover = true;
  MinimStrategy move_strategy(params);
  net_a.set_position(mover, target);
  move_strategy.on_move(net_a, asg_a, mover);

  // Path B: leave, then join at the new position.  The rejoined node gets
  // the same id because the lowest free slot is reused.
  AdhocNetwork net_b = world.network;
  CodeAssignment asg_b = world.assignment;
  MinimStrategy plain;
  net_b.remove_node(mover);
  asg_b.clear(mover);
  plain.on_leave(net_b, asg_b, mover);
  const NodeId rejoined = net_b.add_node({target, range});
  ASSERT_EQ(rejoined, mover);
  plain.on_join(net_b, asg_b, rejoined);

  for (NodeId v : net_a.nodes())
    ASSERT_EQ(asg_a.color(v), asg_b.color(v)) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimMoveSweep,
                         ::testing::Values(501u, 502u, 503u, 504u, 505u));

// ----------------------------------------------------- misc strategy facts

TEST(MinimStrategy, FirstJoinGetsColor1) {
  AdhocNetwork network;
  CodeAssignment assignment;
  MinimStrategy minim;
  const NodeId first = network.add_node({{50, 50}, 20.0});
  const RecodeReport report = minim.on_join(network, assignment, first);
  EXPECT_EQ(assignment.color(first), 1u);
  EXPECT_EQ(report.recodings(), 1u);
  EXPECT_EQ(report.max_color_after, 1u);
}

TEST(MinimStrategy, IsolatedJoinerReusesColor1) {
  AdhocNetwork network;
  CodeAssignment assignment;
  MinimStrategy minim;
  network.add_node({{0, 0}, 5.0});
  minim.on_join(network, assignment, 0);
  const NodeId far = network.add_node({{90, 90}, 5.0});
  minim.on_join(network, assignment, far);
  EXPECT_EQ(assignment.color(far), 1u);  // no constraints at all
}

TEST(MinimStrategy, NamesReflectMatcher) {
  MinimStrategy def;
  EXPECT_EQ(def.name(), "Minim");
  MinimStrategy::Params p;
  p.matcher = MinimStrategy::Matcher::kGreedy;
  EXPECT_EQ(MinimStrategy(p).name(), "Minim/greedy");
  p.matcher = MinimStrategy::Matcher::kCardinality;
  EXPECT_EQ(MinimStrategy(p).name(), "Minim/cardinality");
}

TEST(MinimStrategy, ReportToStringMentionsEventAndChanges) {
  AdhocNetwork network;
  CodeAssignment assignment;
  MinimStrategy minim;
  const NodeId first = network.add_node({{50, 50}, 20.0});
  const RecodeReport report = minim.on_join(network, assignment, first);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("join"), std::string::npos);
  EXPECT_NE(text.find("1 recodings"), std::string::npos);
}

}  // namespace
