// The bench-side selection logic the ablation/figure harnesses rely on:
// list parsing, the --runs/--fast precedence of sweep_options_from, metric
// selection in print_series' CSV output — plus an end-to-end run of the
// real bench_ablations binary (path injected via MINIM_BENCH_ABLATIONS)
// asserting every ablation section and variant row is selected and printed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hpp"
#include "../bench/trajectory.hpp"

namespace {

namespace fs = std::filesystem;

using minim::bench::double_list_from;
using minim::bench::Metric;
using minim::bench::split_list;
using minim::bench::string_list_from;
using minim::bench::sweep_options_from;
using minim::util::Options;

Options options_from(std::vector<std::string> args) {
  std::vector<const char*> argv{"test"};
  for (const auto& a : args) argv.push_back(a.c_str());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchTrajectory, EntrySingleCoreParsesTheAnnotation) {
  minim::bench::TrajectoryEntry entry;
  EXPECT_FALSE(minim::bench::entry_single_core(entry));  // no config at all

  entry.config_json = R"({"runs": 2, "threads": [1], "seed": 2001})";
  EXPECT_FALSE(minim::bench::entry_single_core(entry));

  entry.config_json =
      R"({"runs": 2, "threads": [1], "seed": 2001, "single_core": true})";
  EXPECT_TRUE(minim::bench::entry_single_core(entry));

  entry.config_json = R"({"single_core": false})";
  EXPECT_FALSE(minim::bench::entry_single_core(entry));

  // Whitespace after the colon must not defeat the scan.
  entry.config_json = "{\"single_core\":   true}";
  EXPECT_TRUE(minim::bench::entry_single_core(entry));
}

TEST(BenchTrajectory, SingleCoreAnnotationRoundTripsThroughTheFile) {
  minim::bench::TrajectoryEntry entry;
  entry.label = "one-core";
  entry.config_json = R"({"runs": 1, "single_core": true})";
  entry.benchmarks.push_back({"bench.x@t4", 1.0, 0.0, 0.0});
  std::ostringstream out;
  minim::bench::write_trajectory(out, {entry});

  const fs::path path =
      fs::temp_directory_path() / "minim_single_core_roundtrip.json";
  {
    std::ofstream file(path);
    file << out.str();
  }
  const auto loaded = minim::bench::load_trajectory(path.string());
  fs::remove(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(minim::bench::entry_single_core(loaded[0]));
  const auto* baseline = minim::bench::baseline_for(loaded, "bench.x@t4");
  ASSERT_NE(baseline, nullptr);
  EXPECT_EQ(baseline->label, "one-core");
}

using minim::bench::check_measurements;
using minim::bench::CheckResult;
using minim::bench::Measurement;
using minim::bench::TrajectoryEntry;

TrajectoryEntry entry_with(std::string label, std::string config,
                           std::vector<Measurement> benchmarks) {
  TrajectoryEntry entry;
  entry.label = std::move(label);
  entry.config_json = std::move(config);
  entry.benchmarks = std::move(benchmarks);
  return entry;
}

Measurement wall_of(const std::string& name, double wall_s) {
  Measurement m;
  m.name = name;
  m.wall_s = wall_s;
  return m;
}

Measurement rate_of(const std::string& name, double events_per_s) {
  Measurement m;
  m.name = name;
  m.wall_s = 1.0;
  m.events_per_s = events_per_s;
  return m;
}

/// A config whose single-core annotation MATCHES this machine, so
/// throughput comparisons against it are allowed to proceed.
std::string matched_config() {
  return std::thread::hardware_concurrency() <= 1 ? R"({"single_core": true})"
                                                  : R"({"seed": 1})";
}

/// The opposite annotation: throughput gates must skip this baseline.
std::string mismatched_config() {
  return std::thread::hardware_concurrency() <= 1 ? R"({"seed": 1})"
                                                  : R"({"single_core": true})";
}

TEST(BenchCheck, WallClockGateFlagsSlowdowns) {
  const std::vector<TrajectoryEntry> trajectory{
      entry_with("base", "{}", {wall_of("bench.a", 1.0)})};
  std::ostringstream log;
  const CheckResult slow =
      check_measurements(trajectory, {wall_of("bench.a", 2.0)}, 1.5, log);
  EXPECT_FALSE(slow.ok);
  EXPECT_FALSE(slow.pass());
  EXPECT_EQ(slow.compared, 1u);
  EXPECT_NE(log.str().find("REGRESSION"), std::string::npos);

  const CheckResult fine =
      check_measurements(trajectory, {wall_of("bench.a", 1.4)}, 1.5, log);
  EXPECT_TRUE(fine.pass());
}

TEST(BenchCheck, ThroughputGateFlagsCollapseNotWallClock) {
  // The baseline annotation matches this machine, so the events/s
  // comparison runs: 400 < 1000 / 2 regresses, 600 does not — and a
  // throughput record's wall clock is never compared (it measures the same
  // run from the other side).
  const std::vector<TrajectoryEntry> trajectory{
      entry_with("base", matched_config(), {rate_of("bench.rate", 1000.0)})};
  std::ostringstream log;
  const CheckResult collapsed =
      check_measurements(trajectory, {rate_of("bench.rate", 400.0)}, 2.0, log);
  EXPECT_FALSE(collapsed.ok);
  EXPECT_EQ(collapsed.compared, 1u);

  Measurement slower_but_fast_enough = rate_of("bench.rate", 600.0);
  slower_but_fast_enough.wall_s = 100.0;  // would fail a wall gate
  const CheckResult fine = check_measurements(
      trajectory, {slower_but_fast_enough}, 2.0, log);
  EXPECT_TRUE(fine.pass());
}

TEST(BenchCheck, ScalingNamesSkipSingleCoreBaselines) {
  const std::vector<TrajectoryEntry> trajectory{entry_with(
      "one-core", R"({"single_core": true})", {wall_of("bench.a@t8", 9.0)})};
  std::ostringstream log;
  const CheckResult outcome =
      check_measurements(trajectory, {wall_of("bench.a@t8", 1000.0)}, 1.5, log);
  EXPECT_EQ(outcome.compared, 0u);
  EXPECT_EQ(outcome.skipped, 1u);
  EXPECT_TRUE(outcome.pass()) << "a rule-based skip is not a failure";
  EXPECT_NE(log.str().find("scaling comparison skipped"), std::string::npos);
}

TEST(BenchCheck, ThroughputSkipsHardwareMismatchedBaselines) {
  // events/s across different core counts measures the machine, not the
  // code: the mismatched baseline is skipped even though the measured rate
  // collapsed.
  const std::vector<TrajectoryEntry> trajectory{entry_with(
      "elsewhere", mismatched_config(), {rate_of("bench.rate", 1000.0)})};
  std::ostringstream log;
  const CheckResult outcome =
      check_measurements(trajectory, {rate_of("bench.rate", 1.0)}, 1.5, log);
  EXPECT_EQ(outcome.compared, 0u);
  EXPECT_EQ(outcome.skipped, 1u);
  EXPECT_TRUE(outcome.pass());
  EXPECT_NE(log.str().find("throughput comparison "), std::string::npos);
}

TEST(BenchCheck, FleetNamesSkipWhenOnlyOtherAgentCountsExist) {
  // The trajectory covers the fleet study at 2 agents; checking a 3-agent
  // run finds no baseline under its own name, but the stem match at @a2
  // proves the fleet was merely resized — a counted rule-based skip, not a
  // bare "no baseline".
  const std::vector<TrajectoryEntry> trajectory{entry_with(
      "fleet", matched_config(), {rate_of("bench.fleet.grid@a2", 50.0)})};
  std::ostringstream log;
  const CheckResult outcome = check_measurements(
      trajectory, {rate_of("bench.fleet.grid@a3", 1.0)}, 1.5, log);
  EXPECT_EQ(outcome.compared, 0u);
  EXPECT_EQ(outcome.skipped, 1u);
  EXPECT_TRUE(outcome.pass());
  EXPECT_NE(log.str().find("different agent count"), std::string::npos);
}

TEST(BenchCheck, FleetNamesWithNoFleetHistoryAreAPlainMiss) {
  // No bench.fleet.* history at any agent count: that is the ordinary
  // "no baseline" case and must not count as a rule-based skip.
  const std::vector<TrajectoryEntry> trajectory{
      entry_with("unrelated", "{}", {wall_of("bench.other", 1.0)})};
  std::ostringstream log;
  const CheckResult outcome = check_measurements(
      trajectory, {rate_of("bench.fleet.grid@a3", 1.0)}, 1.5, log);
  EXPECT_EQ(outcome.compared, 0u);
  EXPECT_EQ(outcome.skipped, 0u);
  EXPECT_NE(log.str().find("no baseline (skipped)"), std::string::npos);
}

TEST(BenchCheck, FleetThroughputSkipsHardwareMismatchedBaselines) {
  // Same-name fleet baseline recorded on a differently-sized machine:
  // units/s rides the general throughput hardware rule.
  const std::vector<TrajectoryEntry> trajectory{entry_with(
      "fleet", mismatched_config(), {rate_of("bench.fleet.grid@a3", 50.0)})};
  std::ostringstream log;
  const CheckResult outcome = check_measurements(
      trajectory, {rate_of("bench.fleet.grid@a3", 1.0)}, 1.5, log);
  EXPECT_EQ(outcome.compared, 0u);
  EXPECT_EQ(outcome.skipped, 1u);
  EXPECT_TRUE(outcome.pass());
}

TEST(BenchCheck, FleetNamesStillCompareAgainstASameCountBaseline) {
  // Matching agent count and matching hardware: the gate runs for real and
  // catches a units/s collapse.
  const std::vector<TrajectoryEntry> trajectory{entry_with(
      "fleet", matched_config(), {rate_of("bench.fleet.grid@a3", 100.0)})};
  std::ostringstream log;
  const CheckResult outcome = check_measurements(
      trajectory, {rate_of("bench.fleet.grid@a3", 10.0)}, 2.0, log);
  EXPECT_EQ(outcome.compared, 1u);
  EXPECT_FALSE(outcome.ok);
}

TEST(BenchCheck, AGateThatComparedNothingFails) {
  std::ostringstream log;
  const CheckResult outcome = check_measurements(
      {entry_with("base", "{}", {wall_of("bench.other", 1.0)})},
      {wall_of("bench.a", 1.0)}, 1.5, log);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.compared, 0u);
  EXPECT_EQ(outcome.skipped, 0u);
  EXPECT_FALSE(outcome.pass()) << "no baseline anywhere must not pass vacuously";
  EXPECT_NE(log.str().find("no baseline (skipped)"), std::string::npos);
}

TEST(BenchCheck, TheMostRecentCoveringEntryIsTheBaseline) {
  const std::vector<TrajectoryEntry> trajectory{
      entry_with("old", "{}", {wall_of("bench.a", 100.0)}),
      entry_with("new", "{}", {wall_of("bench.a", 1.0)}),
      entry_with("unrelated", "{}", {wall_of("bench.b", 1.0)})};
  std::ostringstream log;
  // 2.0 s passes against the old baseline but regresses against the new
  // one; the gate must pick "new".
  const CheckResult outcome =
      check_measurements(trajectory, {wall_of("bench.a", 2.0)}, 1.5, log);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(log.str().find("baseline \"new\""), std::string::npos);
}

TEST(BenchUtil, SplitListDropsEmptyFields) {
  EXPECT_EQ(split_list("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list(",a,,b,"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_list("").empty());
  EXPECT_EQ(split_list("solo"), (std::vector<std::string>{"solo"}));
}

TEST(BenchUtil, ListOptionsFallBackWhenAbsent) {
  const Options options = options_from({"--strategies=minim,bbb"});
  EXPECT_EQ(string_list_from(options, "strategies", {"cp"}),
            (std::vector<std::string>{"minim", "bbb"}));
  EXPECT_EQ(string_list_from(options, "missing", {"cp"}),
            (std::vector<std::string>{"cp"}));
  EXPECT_EQ(double_list_from(options, "missing", {1.5}), (std::vector<double>{1.5}));
  const Options with_ns = options_from({"--ns=40,60"});
  EXPECT_EQ(double_list_from(with_ns, "ns", {}), (std::vector<double>{40, 60}));
}

TEST(BenchUtil, SweepOptionsRunsDefaultsAndFastPrecedence) {
  EXPECT_EQ(sweep_options_from(options_from({}), {"minim"}).runs, 100u);
  EXPECT_EQ(sweep_options_from(options_from({"--runs=7"}), {"minim"}).runs, 7u);
  // --fast is the CI smoke switch: it wins even over an explicit --runs.
  EXPECT_EQ(sweep_options_from(options_from({"--fast"}), {"minim"}).runs, 10u);
  EXPECT_EQ(sweep_options_from(options_from({"--runs=7", "--fast"}), {"minim"}).runs,
            10u);
  const auto sweep = sweep_options_from(options_from({"--seed=5", "--threads=2"}),
                                        {"minim", "cp"});
  EXPECT_EQ(sweep.seed, 5u);
  EXPECT_EQ(sweep.threads, 2u);
  EXPECT_EQ(sweep.strategies, (std::vector<std::string>{"minim", "cp"}));
}

TEST(BenchUtil, PrintSeriesSelectsTheRequestedMetric) {
  // Two distinguishable metrics; the CSV written for kRecodings must carry
  // the recoding stat, not the color stat.
  minim::sim::SweepPoint point;
  point.x = 80.0;
  point.strategy = "minim";
  point.color_metric.add(3.0);
  point.recoding_metric.add(42.0);

  const fs::path dir = fs::temp_directory_path() / "minim_bench_util_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const Options options = options_from({"--csv-dir=" + dir.string()});

  testing::internal::CaptureStdout();
  print_series("title", "N", {point}, Metric::kRecodings, options, "series");
  const std::string stdout_text = testing::internal::GetCapturedStdout();
  EXPECT_NE(stdout_text.find("42.00"), std::string::npos);

  std::ifstream csv(dir / "series.csv");
  std::stringstream contents;
  contents << csv.rdbuf();
  EXPECT_NE(contents.str().find("42.000000"), std::string::npos);
  EXPECT_EQ(contents.str().find("3.000000"), std::string::npos);
  fs::remove_all(dir);
}

TEST(BenchAblations, EveryAblationSectionIsSelectedAndPrinted) {
  const fs::path out = fs::temp_directory_path() / "minim_ablations_out.txt";
  const std::string command = std::string(MINIM_BENCH_ABLATIONS) +
                              " --runs=1 --threads=1 > " + out.string() +
                              " 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  std::ifstream in(out);
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();
  for (const char* needle :
       {"A. Matching engine", "hungarian (paper)", "greedy 1/2-approx",
        "max-cardinality", "B. Old-color edge weight", "weight 3 (paper)",
        "C. CP variants", "D. BBB coloring order",
        "E. Minim move semantics", "mover keeps preference",
        "mover rejoins uncolored"})
    EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
  fs::remove(out);
}

}  // namespace
