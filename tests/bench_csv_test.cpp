// End-to-end test of a bench harness's --csv-dir output path: runs the
// actual bench_grid_study binary (path injected by CMake via
// MINIM_BENCH_GRID_STUDY) against a temp directory and checks the emitted
// CSV header and row counts.  This is the only test that exercises the
// harness-side CSV plumbing the way a user does.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(BenchCsv, GridStudyWritesTheSeriesCsv) {
  const fs::path dir = fs::temp_directory_path() / "minim_bench_csv_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // 2 x 2 grid x 2 strategies, tiny trial count: 8 data rows expected.
  const std::string command = std::string(MINIM_BENCH_GRID_STUDY) +
                              " --trials=2 --ns=20,30 --factors=2.0,3.0"
                              " --strategies=minim,cp --threads=1"
                              " --csv-dir=" +
                              dir.string() + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const fs::path csv = dir / "grid_study.csv";
  ASSERT_TRUE(fs::exists(csv)) << csv;
  const std::vector<std::string> lines = read_lines(csv);
  ASSERT_EQ(lines.size(), 1u + 2u * 2u * 2u);  // header + points x strategies
  EXPECT_EQ(lines.front(),
            "n,raise_factor,strategy,trials,d_color_mean,d_color_ci95,"
            "d_recodings_mean,d_recodings_ci95");
  // Every data row carries the full column set and the right trial count.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(std::count(lines[i].begin(), lines[i].end(), ','), 7) << lines[i];
    EXPECT_NE(lines[i].find(",2,"), std::string::npos) << lines[i];
  }

  fs::remove_all(dir);
}

}  // namespace
