// End-to-end tests of the real bench_grid_study binary (path injected by
// CMake via MINIM_BENCH_GRID_STUDY):
//  * the --csv-dir output path (header and row counts) the way a user
//    drives it;
//  * the orchestrated driver: --orchestrate spawns worker processes (the
//    binary re-invoking itself per work unit) whose merged per-trial CSV
//    must be byte-identical to the single-process run — including with an
//    injected worker crash that exercises the bounded retry.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(BenchCsv, GridStudyWritesTheSeriesCsv) {
  const fs::path dir = fs::temp_directory_path() / "minim_bench_csv_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // 2 x 2 grid x 2 strategies, tiny trial count: 8 data rows expected.
  const std::string command = std::string(MINIM_BENCH_GRID_STUDY) +
                              " --trials=2 --ns=20,30 --factors=2.0,3.0"
                              " --strategies=minim,cp --threads=1"
                              " --csv-dir=" +
                              dir.string() + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const fs::path csv = dir / "grid_study.csv";
  ASSERT_TRUE(fs::exists(csv)) << csv;
  const std::vector<std::string> lines = read_lines(csv);
  ASSERT_EQ(lines.size(), 1u + 2u * 2u * 2u);  // header + points x strategies
  EXPECT_EQ(lines.front(),
            "n,raise_factor,strategy,trials,d_color_mean,d_color_ci95,"
            "d_recodings_mean,d_recodings_ci95");
  // Every data row carries the full column set and the right trial count.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(std::count(lines[i].begin(), lines[i].end(), ','), 7) << lines[i];
    EXPECT_NE(lines[i].find(",2,"), std::string::npos) << lines[i];
  }

  fs::remove_all(dir);
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(BenchCsv, OrchestratedRunMatchesSingleProcessByteForByte) {
  const fs::path dir = fs::temp_directory_path() / "minim_bench_orchestrate_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const std::string grid_args =
      " --trials=4 --ns=20,30 --factors=2.0,3.0 --strategies=minim,cp";
  const fs::path single_csv = dir / "single.csv";
  const fs::path orch_csv = dir / "orchestrated.csv";

  const std::string single = std::string(MINIM_BENCH_GRID_STUDY) + grid_args +
                             " --threads=1 --save-experiment=" +
                             single_csv.string() + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(single.c_str()), 0) << single;

  // 2 workers, 4 units over both axes, unit 0 crashing on its first attempt.
  const std::string orchestrated =
      std::string(MINIM_BENCH_GRID_STUDY) + grid_args +
      " --orchestrate=2 --units=4 --split=auto --crash-unit=0" +
      " --shard-dir=" + (dir / "scratch").string() +
      " --save-experiment=" + orch_csv.string() + " > " +
      (dir / "driver.log").string() + " 2>&1";
  ASSERT_EQ(std::system(orchestrated.c_str()), 0)
      << orchestrated << "\n" << read_file(dir / "driver.log");

  const std::string expected = read_file(single_csv);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(read_file(orch_csv), expected)
      << "orchestrated merge is not byte-identical to the single-process run";
  // The driver's progress log must show the injected crash being retried.
  const std::string log = read_file(dir / "driver.log");
  EXPECT_NE(log.find("failed (exit 1), retrying"), std::string::npos) << log;

  fs::remove_all(dir);
}

}  // namespace
