// Cross-module integration: long mixed-event soaks per strategy, the
// paper's headline comparisons at small scale, and gossip riding along with
// the event stream.

#include <gtest/gtest.h>

#include "net/constraints.hpp"
#include "net/partitions.hpp"
#include "sim/replay.hpp"
#include "sim/simulation.hpp"
#include "sim/workload.hpp"
#include "strategies/factory.hpp"
#include "strategies/gossip.hpp"
#include "util/rng.hpp"

namespace {

using minim::net::NodeId;
using minim::sim::Simulation;
using minim::util::Rng;

struct SoakParams {
  const char* strategy;
  std::uint64_t seed;
};

class StrategySoakTest : public ::testing::TestWithParam<SoakParams> {};

TEST_P(StrategySoakTest, TwoHundredMixedEventsStayValid) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const auto strategy = minim::strategies::make_strategy(param.strategy);
  Simulation::Params sim_params;
  sim_params.validate_after_each = true;  // throws on any CA1/CA2 violation
  Simulation simulation(*strategy, sim_params);

  std::vector<NodeId> alive;
  for (int event = 0; event < 200; ++event) {
    const double dice = rng.uniform01();
    if (alive.size() < 10 || dice < 0.35) {
      alive.push_back(simulation.join(
          {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 30)}));
    } else if (dice < 0.5) {
      const std::size_t pick = rng.below(alive.size());
      simulation.leave(alive[pick]);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (dice < 0.75) {
      simulation.move(alive[rng.below(alive.size())],
                      {rng.uniform(0, 100), rng.uniform(0, 100)});
    } else {
      const NodeId v = alive[rng.below(alive.size())];
      simulation.change_power(
          v, simulation.network().config(v).range * rng.uniform(0.5, 2.0));
    }
  }
  EXPECT_EQ(simulation.totals().events, 200u);
  EXPECT_TRUE(minim::net::is_valid(simulation.network(), simulation.assignment()));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategySoakTest,
    ::testing::Values(SoakParams{"minim", 1}, SoakParams{"minim", 2},
                      SoakParams{"minim-greedy", 3},
                      SoakParams{"minim-cardinality", 4}, SoakParams{"cp", 5},
                      SoakParams{"cp", 6}, SoakParams{"cp-lowest", 7},
                      SoakParams{"bbb", 8}, SoakParams{"bbb-dsatur", 9},
                      SoakParams{"bbb-identity", 10}));

// -------------------------------------------------- headline relations

TEST(HeadlineRelations, MinimRecodesLessThanCpOnJoinsOnAverage) {
  // Fig 10(b,c): Minim's per-event recoding count is the provable minimum
  // *for a given assignment state*.  Across a long event sequence the two
  // strategies' states diverge, so CP can occasionally edge out Minim on a
  // single run; the paper's claim (and this test) is about the average.
  double minim_total = 0;
  double cp_total = 0;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u, 17u, 18u}) {
    Rng rng(seed);
    minim::sim::WorkloadParams params;
    params.n = 50;
    const auto workload = minim::sim::make_join_workload(params, rng);
    const auto minim_strategy = minim::strategies::make_strategy("minim");
    const auto cp_strategy = minim::strategies::make_strategy("cp");
    minim_total += minim::sim::replay(workload, *minim_strategy).total_recodings();
    cp_total += minim::sim::replay(workload, *cp_strategy).total_recodings();
  }
  EXPECT_LE(minim_total, cp_total);
}

TEST(HeadlineRelations, MinimMatchesBoundPerEventAgainstSharedState) {
  // The apples-to-apples version of minimality: starting from the *same*
  // assignment state, Minim's join recodes no more than CP's join.
  for (std::uint64_t seed : {111u, 112u, 113u, 114u}) {
    Rng rng(seed);
    minim::sim::WorkloadParams params;
    params.n = 40;
    const auto workload = minim::sim::make_join_workload(params, rng);
    const auto base = minim::strategies::make_strategy("minim");
    Simulation simulation(*base);
    for (std::size_t i = 0; i + 1 < workload.joins.size(); ++i)
      simulation.join(workload.joins[i]);

    // Fork the state, apply the last join under each strategy.
    auto net_m = simulation.network();
    auto asg_m = simulation.assignment();
    auto net_c = simulation.network();
    auto asg_c = simulation.assignment();
    const auto minim_strategy = minim::strategies::make_strategy("minim");
    const auto cp_strategy = minim::strategies::make_strategy("cp");
    const NodeId id_m = net_m.add_node(workload.joins.back());
    const auto report_m = minim_strategy->on_join(net_m, asg_m, id_m);
    const NodeId id_c = net_c.add_node(workload.joins.back());
    const auto report_c = cp_strategy->on_join(net_c, asg_c, id_c);
    EXPECT_LE(report_m.recodings(), report_c.recodings()) << "seed " << seed;
  }
}

TEST(HeadlineRelations, BbbRecodesVastlyMoreThanDistributed) {
  Rng rng(21);
  minim::sim::WorkloadParams params;
  params.n = 40;
  const auto workload = minim::sim::make_join_workload(params, rng);
  const auto minim_strategy = minim::strategies::make_strategy("minim");
  const auto bbb_strategy = minim::strategies::make_strategy("bbb");
  const auto minim_outcome = minim::sim::replay(workload, *minim_strategy);
  const auto bbb_outcome = minim::sim::replay(workload, *bbb_strategy);
  EXPECT_GT(bbb_outcome.total_recodings(), 2 * minim_outcome.total_recodings());
}

TEST(HeadlineRelations, BbbUsesFewestColorsOnJoins) {
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    Rng rng(seed);
    minim::sim::WorkloadParams params;
    params.n = 60;
    const auto workload = minim::sim::make_join_workload(params, rng);
    const auto bbb = minim::strategies::make_strategy("bbb");
    const auto minim_s = minim::strategies::make_strategy("minim");
    const auto bbb_outcome = minim::sim::replay(workload, *bbb);
    const auto minim_outcome = minim::sim::replay(workload, *minim_s);
    EXPECT_LE(bbb_outcome.final_max_color(), minim_outcome.final_max_color())
        << "seed " << seed;
  }
}

TEST(HeadlineRelations, MinimPowerIncreaseRecodesLessThanCp) {
  // Fig 11(b,c): Minim recodes at most one node per power increase; CP can
  // recode a whole 2-hop group.  Summed over many raises Minim must not lose.
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    Rng rng(seed);
    minim::sim::WorkloadParams params;
    params.n = 60;
    const auto workload = minim::sim::make_power_workload(params, 3.0, rng);
    const auto minim_strategy = minim::strategies::make_strategy("minim");
    const auto cp_strategy = minim::strategies::make_strategy("cp");
    const auto minim_outcome = minim::sim::replay(workload, *minim_strategy);
    const auto cp_outcome = minim::sim::replay(workload, *cp_strategy);
    EXPECT_LE(minim_outcome.delta_recodings(), cp_outcome.delta_recodings())
        << "seed " << seed;
  }
}

TEST(HeadlineRelations, LowerBoundHoldsForEveryStrategy) {
  // Lemma 4.1.1 is strategy-agnostic: ANY correct recoding after a join must
  // change at least sum(K_i - 1) in-neighbors plus the joiner.  Verify it on
  // CP and BBB too (Minim achieves it with equality; see minim_test).
  for (const char* name : {"minim", "cp", "cp-lowest", "cp-exact", "bbb"}) {
    Rng rng(1234);
    const auto strategy = minim::strategies::make_strategy(name);
    minim::net::AdhocNetwork net;
    minim::net::CodeAssignment asg;
    for (int i = 0; i < 45; ++i) {
      const NodeId id = net.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(18, 30)});
      const std::size_t bound = minim::net::minimal_recoding_bound(net, asg, id);
      const auto report = strategy->on_join(net, asg, id);
      ASSERT_GE(report.recodings(), bound + 1) << name << " join " << i;
    }
  }
}

// -------------------------------------------------- gossip integration

TEST(GossipIntegration, CompactionAfterChurnReducesOrKeepsMaxColor) {
  Rng rng(51);
  const auto strategy = minim::strategies::make_strategy("minim");
  Simulation simulation(*strategy);
  std::vector<NodeId> alive;
  for (int i = 0; i < 60; ++i)
    alive.push_back(simulation.join(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 30)}));
  // Churn: half leave, colors get gappy.
  for (int i = 0; i < 30; ++i) {
    const std::size_t pick = rng.below(alive.size());
    simulation.leave(alive[pick]);
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  auto net = simulation.network();              // copies for compaction
  auto assignment = simulation.assignment();
  const auto before = assignment.max_color(net.nodes());
  const auto result = minim::strategies::gossip_compact(net, assignment);
  EXPECT_LE(result.max_color_after, before);
  EXPECT_TRUE(minim::net::is_valid(net, assignment));
}

}  // namespace
