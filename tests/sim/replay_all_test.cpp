// Lockstep replay contract: `replay_all` over k strategies is bit-identical,
// lane by lane, to k solo `replay` calls — the network's evolution is a pure
// function of the workload, so sharing one evolution across per-strategy
// assignments must change nothing.  The experiment layer (and with it every
// figure CSV) rides on this equivalence.

#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "strategies/factory.hpp"
#include "util/rng.hpp"

namespace {

using namespace minim;

void expect_same_outcome(const sim::RunOutcome& lockstep,
                         const sim::RunOutcome& solo, const std::string& label) {
  EXPECT_EQ(lockstep.setup_max_color, solo.setup_max_color) << label;
  EXPECT_EQ(lockstep.setup_recodings, solo.setup_recodings) << label;
  EXPECT_EQ(lockstep.max_color, solo.max_color) << label;
  EXPECT_EQ(lockstep.totals.events, solo.totals.events) << label;
  EXPECT_EQ(lockstep.totals.recodings, solo.totals.recodings) << label;
  EXPECT_EQ(lockstep.totals.messages, solo.totals.messages) << label;
  EXPECT_EQ(lockstep.totals.events_by_type, solo.totals.events_by_type) << label;
  EXPECT_EQ(lockstep.totals.recodings_by_type, solo.totals.recodings_by_type)
      << label;
}

TEST(ReplayAll, MatchesSoloReplaysAcrossScenariosAndStrategies) {
  const std::vector<std::string> names{"minim", "cp", "cp-exact", "bbb"};
  const sim::ScenarioKind kinds[] = {sim::ScenarioKind::kJoin,
                                     sim::ScenarioKind::kPower,
                                     sim::ScenarioKind::kMove};
  sim::ReplayArena arena;
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    for (const sim::ScenarioKind kind : kinds) {
      util::Rng rng = util::Rng::for_stream(2024, trial);
      sim::ScenarioSpec spec;
      spec.kind = kind;
      spec.workload.n = 30;
      spec.raise_factor = 3.0;
      spec.move_rounds = 2;
      const sim::Workload workload = sim::make_scenario_workload(spec, rng);

      std::vector<std::unique_ptr<core::RecodingStrategy>> objects;
      std::vector<core::RecodingStrategy*> lanes;
      for (const std::string& name : names) {
        objects.push_back(strategies::make_strategy(name));
        lanes.push_back(objects.back().get());
      }
      const std::vector<sim::RunOutcome> lockstep =
          sim::replay_all(workload, lanes, /*validate=*/true, &arena);
      ASSERT_EQ(lockstep.size(), names.size());

      for (std::size_t s = 0; s < names.size(); ++s) {
        const auto solo_strategy = strategies::make_strategy(names[s]);
        const sim::RunOutcome solo =
            sim::replay(workload, *solo_strategy, /*validate=*/true);
        expect_same_outcome(lockstep[s], solo,
                            names[s] + " kind " +
                                std::to_string(static_cast<int>(kind)) +
                                " trial " + std::to_string(trial));
      }
    }
  }
}

TEST(ReplayAll, ArenaReuseAcrossLaneCountsIsBitIdentical) {
  // A wide replay followed by a narrow one must not leak lane state.
  util::Rng rng = util::Rng::for_stream(7, 0);
  sim::ScenarioSpec spec;
  spec.kind = sim::ScenarioKind::kPower;
  spec.workload.n = 25;
  const sim::Workload workload = sim::make_scenario_workload(spec, rng);

  sim::ReplayArena arena;
  const auto wide_a = strategies::make_strategy("minim");
  const auto wide_b = strategies::make_strategy("cp");
  const auto wide_c = strategies::make_strategy("bbb");
  core::RecodingStrategy* wide[] = {wide_a.get(), wide_b.get(), wide_c.get()};
  sim::replay_all(workload, wide, false, &arena);

  const auto narrow = strategies::make_strategy("cp");
  core::RecodingStrategy* lanes[] = {narrow.get()};
  const auto reused = sim::replay_all(workload, lanes, false, &arena);

  const auto fresh_strategy = strategies::make_strategy("cp");
  const auto fresh = sim::replay(workload, *fresh_strategy, false);
  expect_same_outcome(reused[0], fresh, "cp after wide arena use");
}

}  // namespace
