// Regression guards for the *shapes* of the paper's figures — the headline
// qualitative claims the reproduction stands on, pinned at small scale with
// fixed seeds (deterministic: sweeps are seed-stable across thread counts).
//
//   Fig 10: BBB <= Minim < CP in max color; Minim <= CP << BBB in recodings.
//   Fig 11: Minim << CP << BBB in delta recodings; CP/exact-vicinity beats
//           Minim in delta max color (the direction the paper reports).
//   Fig 12: Minim << CP << BBB in delta recodings; gap grows with rounds.

#include <gtest/gtest.h>

#include "sim/sweeps.hpp"

namespace {

using minim::sim::SweepOptions;
using minim::sim::SweepPoint;

const SweepPoint& point_of(const std::vector<SweepPoint>& points, double x,
                           const std::string& strategy) {
  for (const auto& point : points)
    if (point.x == x && point.strategy == strategy) return point;
  throw std::logic_error("missing sweep point");
}

SweepOptions options_with(std::vector<std::string> strategies) {
  SweepOptions options;
  options.strategies = std::move(strategies);
  options.runs = 12;
  options.seed = 20010101;
  options.threads = 2;
  return options;
}

TEST(FigureShapes, Fig10ColorOrdering) {
  const auto points =
      minim::sim::sweep_join_vs_n({60}, options_with({"minim", "cp", "bbb"}));
  const double minim = point_of(points, 60, "minim").color_metric.mean();
  const double cp = point_of(points, 60, "cp").color_metric.mean();
  const double bbb = point_of(points, 60, "bbb").color_metric.mean();
  EXPECT_LE(bbb, minim + 0.5);   // BBB near-optimal
  EXPECT_LT(minim, cp);          // Minim closer to BBB than CP
}

TEST(FigureShapes, Fig10RecodingOrdering) {
  const auto points =
      minim::sim::sweep_join_vs_n({60}, options_with({"minim", "cp", "bbb"}));
  const double minim = point_of(points, 60, "minim").recoding_metric.mean();
  const double cp = point_of(points, 60, "cp").recoding_metric.mean();
  const double bbb = point_of(points, 60, "bbb").recoding_metric.mean();
  EXPECT_LE(minim, cp + 0.5);
  EXPECT_GT(bbb, 2.0 * cp);  // global recoloring is an order worse
}

TEST(FigureShapes, Fig10RecodingsScaleRoughlyLinearly) {
  const auto points =
      minim::sim::sweep_join_vs_n({40, 80}, options_with({"minim"}));
  const double at40 = point_of(points, 40, "minim").recoding_metric.mean();
  const double at80 = point_of(points, 80, "minim").recoding_metric.mean();
  EXPECT_GT(at80, 1.6 * at40);
  EXPECT_LT(at80, 2.8 * at40);
}

TEST(FigureShapes, Fig11RecodingOrdering) {
  const auto points = minim::sim::sweep_power_vs_raise_factor(
      {3.0}, options_with({"minim", "cp", "bbb"}), /*n=*/60);
  const double minim = point_of(points, 3.0, "minim").recoding_metric.mean();
  const double cp = point_of(points, 3.0, "cp").recoding_metric.mean();
  const double bbb = point_of(points, 3.0, "bbb").recoding_metric.mean();
  EXPECT_LT(minim, cp);
  EXPECT_GT(bbb, 5.0 * cp);
}

TEST(FigureShapes, Fig11ColorDirectionWithExactVicinityCp) {
  // The paper's Fig 11(a) claim — CP slightly better than Minim on
  // delta(max color) — reproduces under the exact-constraint port of CP's
  // color rule (see EXPERIMENTS.md).
  const auto points = minim::sim::sweep_power_vs_raise_factor(
      {3.0}, options_with({"minim", "cp-exact"}), /*n=*/60);
  const double minim = point_of(points, 3.0, "minim").color_metric.mean();
  const double cp_exact = point_of(points, 3.0, "cp-exact").color_metric.mean();
  EXPECT_LT(cp_exact, minim);
  // "by only 6 colors" at the paper's scale; stay loose at this small scale.
  EXPECT_LT(minim - cp_exact, 20.0);
}

TEST(FigureShapes, Fig12RecodingOrderingAndGrowth) {
  const auto points = minim::sim::sweep_move_vs_rounds(
      {2, 5}, options_with({"minim", "cp", "bbb"}), /*n=*/30);
  for (double rounds : {2.0, 5.0}) {
    const double minim = point_of(points, rounds, "minim").recoding_metric.mean();
    const double cp = point_of(points, rounds, "cp").recoding_metric.mean();
    const double bbb = point_of(points, rounds, "bbb").recoding_metric.mean();
    EXPECT_LT(minim, cp) << rounds;
    EXPECT_GT(bbb, 3.0 * cp) << rounds;
  }
  // The CP-minus-Minim gap widens with rounds (Fig 12(c,d)).
  const double gap2 = point_of(points, 2, "cp").recoding_metric.mean() -
                      point_of(points, 2, "minim").recoding_metric.mean();
  const double gap5 = point_of(points, 5, "cp").recoding_metric.mean() -
                      point_of(points, 5, "minim").recoding_metric.mean();
  EXPECT_GT(gap5, gap2);
}

TEST(FigureShapes, Fig12ColorDeltaStaysSmall) {
  // Fig 12(b): over many movement rounds the max-color drift stays within a
  // handful of colors for the distributed strategies.
  const auto points =
      minim::sim::sweep_move_vs_rounds({6}, options_with({"minim", "cp"}), /*n=*/30);
  EXPECT_LT(point_of(points, 6, "minim").color_metric.mean(), 10.0);
  EXPECT_LT(point_of(points, 6, "cp").color_metric.mean(), 10.0);
}

}  // namespace
