// The large-N scenario family: clustered (Thomas process) and Poisson-disk
// placements, the constant-density parameter helper, and the new sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/network.hpp"
#include "sim/sweeps.hpp"
#include "sim/workload.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace {

using namespace minim;
using sim::Placement;
using sim::Workload;
using sim::WorkloadParams;

WorkloadParams base_params(Placement placement, std::size_t n) {
  WorkloadParams params;
  params.n = n;
  params.placement = placement;
  return params;
}

TEST(Placement, GeneratorsAreDeterministicPerStream) {
  for (const Placement placement :
       {Placement::kUniform, Placement::kClustered, Placement::kPoissonDisk}) {
    util::Rng a = util::Rng::for_stream(5, 1);
    util::Rng b = util::Rng::for_stream(5, 1);
    const Workload wa = sim::make_join_workload(base_params(placement, 80), a);
    const Workload wb = sim::make_join_workload(base_params(placement, 80), b);
    ASSERT_EQ(wa.joins.size(), wb.joins.size());
    for (std::size_t i = 0; i < wa.joins.size(); ++i) {
      EXPECT_EQ(wa.joins[i].position.x, wb.joins[i].position.x);
      EXPECT_EQ(wa.joins[i].position.y, wb.joins[i].position.y);
      EXPECT_EQ(wa.joins[i].range, wb.joins[i].range);
    }
  }
}

TEST(Placement, AllPlacementsStayInsideTheField) {
  util::Rng rng(11);
  for (const Placement placement :
       {Placement::kUniform, Placement::kClustered, Placement::kPoissonDisk}) {
    const Workload w = sim::make_join_workload(base_params(placement, 200), rng);
    ASSERT_EQ(w.joins.size(), 200u);
    for (const auto& config : w.joins) {
      EXPECT_GE(config.position.x, 0.0);
      EXPECT_LE(config.position.x, w.width);
      EXPECT_GE(config.position.y, 0.0);
      EXPECT_LE(config.position.y, w.height);
      EXPECT_GE(config.range, 20.5);
      EXPECT_LE(config.range, 30.5);
    }
  }
}

TEST(Placement, PoissonDiskRespectsSeparationBelowPackingLimit) {
  // 40 points on 100x100 with separation 8: far below the packing limit, so
  // dart throwing must never need its give-up path.
  WorkloadParams params = base_params(Placement::kPoissonDisk, 40);
  params.min_separation = 8.0;
  util::Rng rng(12);
  const Workload w = sim::make_join_workload(params, rng);
  for (std::size_t i = 0; i < w.joins.size(); ++i)
    for (std::size_t j = i + 1; j < w.joins.size(); ++j) {
      const double d2 = util::distance_squared(w.joins[i].position,
                                               w.joins[j].position);
      EXPECT_GE(d2, 8.0 * 8.0 - 1e-9) << "pair " << i << "," << j;
    }
}

TEST(Placement, PoissonDiskDegradesGracefullyPastPackingLimit) {
  // Far more points than the separation admits: generation must still
  // produce n nodes (the attempt cap accepts the last candidate).
  WorkloadParams params = base_params(Placement::kPoissonDisk, 400);
  params.min_separation = 30.0;
  util::Rng rng(13);
  const Workload w = sim::make_join_workload(params, rng);
  EXPECT_EQ(w.joins.size(), 400u);
}

TEST(Placement, ClusteredConcentratesAroundFewCenters) {
  // With one tight cluster, the point spread must be far below the uniform
  // field spread.
  WorkloadParams params = base_params(Placement::kClustered, 150);
  params.cluster_count = 1;
  params.cluster_sigma = 3.0;
  util::Rng rng(14);
  const Workload w = sim::make_join_workload(params, rng);
  util::Vec2 mean{0, 0};
  for (const auto& config : w.joins) mean = mean + config.position;
  mean = mean * (1.0 / static_cast<double>(w.joins.size()));
  double rms = 0;
  for (const auto& config : w.joins)
    rms += util::distance_squared(config.position, mean);
  rms = std::sqrt(rms / static_cast<double>(w.joins.size()));
  // Clamping at the border can only pull points inward; 6 sigma is a
  // generous bound, a uniform field would give ~40.
  EXPECT_LT(rms, 6.0 * params.cluster_sigma);
}

TEST(LargeNParams, ConstantDensityHitsTheTargetDegree) {
  const double target = 12.0;
  for (const std::size_t n : {1000u, 4000u}) {
    const WorkloadParams params =
        sim::make_large_n_params(n, target, Placement::kUniform);
    util::Rng rng(15);
    const Workload w = sim::make_join_workload(params, rng);
    net::AdhocNetwork net(w.width, w.height);
    for (const auto& config : w.joins) net.add_node(config);
    const double mean_degree =
        static_cast<double>(net.graph().edge_count()) / static_cast<double>(n);
    EXPECT_GT(mean_degree, target * 0.7) << "n " << n;
    EXPECT_LT(mean_degree, target * 1.3) << "n " << n;
  }
}

TEST(LargeNSweeps, ConstantDensityAndClusterCountSweepsRun) {
  sim::SweepOptions options;
  options.strategies = {"minim", "cp"};
  options.runs = 2;
  options.threads = 1;

  const auto density = sim::sweep_join_vs_n_constant_density(
      {50, 100}, options, Placement::kClustered, 10.0);
  ASSERT_EQ(density.size(), 4u);  // 2 ns x 2 strategies
  for (const auto& point : density) {
    EXPECT_EQ(point.color_metric.count(), 2u);
    EXPECT_GT(point.color_metric.mean(), 0.0);
  }

  const auto clusters = sim::sweep_join_vs_cluster_count({2, 8}, options, 60);
  ASSERT_EQ(clusters.size(), 4u);
  // Fewer clusters concentrate the nodes, which must not lower color usage.
  const double few = clusters[0].color_metric.mean();   // 2 clusters, minim
  const double many = clusters[2].color_metric.mean();  // 8 clusters, minim
  EXPECT_GE(few, many * 0.8);
}

}  // namespace
