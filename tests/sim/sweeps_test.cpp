// Unit tests for sim/sweeps.cpp itself (previously only exercised through
// figure-shape assertions): point ordering (x-major, strategy-minor), run
// accounting, the validate flag actually running CA1/CA2 checks, and the
// figure-sweep adapters agreeing with the generic engine.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "sim/sweeps.hpp"
#include "strategies/factory.hpp"

namespace {

using namespace minim;

sim::WorkloadFactory join_factory(std::size_t n) {
  return [n](double, util::Rng& rng) {
    sim::WorkloadParams params;
    params.n = n;
    return sim::make_join_workload(params, rng);
  };
}

TEST(Sweeps, PointsOrderedXMajorStrategyMinor) {
  sim::SweepOptions options;
  options.strategies = {"minim", "cp"};
  options.runs = 3;
  options.threads = 2;
  const std::vector<double> xs{10, 20, 30};
  const auto points =
      sim::run_sweep(xs, join_factory(8), /*delta_metrics=*/false, options);

  ASSERT_EQ(points.size(), xs.size() * options.strategies.size());
  std::size_t at = 0;
  for (double x : xs)
    for (const std::string& strategy : options.strategies) {
      EXPECT_EQ(points[at].x, x) << at;
      EXPECT_EQ(points[at].strategy, strategy) << at;
      EXPECT_EQ(points[at].color_metric.count(), options.runs) << at;
      EXPECT_EQ(points[at].recoding_metric.count(), options.runs) << at;
      ++at;
    }
}

TEST(Sweeps, FigureSweepKeepsTheSameOrdering) {
  sim::SweepOptions options;
  options.strategies = {"minim", "cp"};
  options.runs = 2;
  options.threads = 1;
  const auto points = sim::sweep_join_vs_n({20, 30}, options);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].x, 20);
  EXPECT_EQ(points[0].strategy, "minim");
  EXPECT_EQ(points[1].x, 20);
  EXPECT_EQ(points[1].strategy, "cp");
  EXPECT_EQ(points[2].x, 30);
  EXPECT_EQ(points[2].strategy, "minim");
  EXPECT_EQ(points[3].x, 30);
  EXPECT_EQ(points[3].strategy, "cp");
}

// A deliberately invalid strategy: every node gets color 1, so any two
// constrained nodes conflict as soon as the network has an edge.
class EveryoneColorOne final : public core::RecodingStrategy {
 public:
  std::string name() const override { return "broken"; }

  core::RecodeReport on_join(const net::AdhocNetwork& net,
                             net::CodeAssignment& assignment,
                             net::NodeId n) override {
    assignment.set_color(n, 1);
    core::RecodeReport report;
    report.event = core::EventType::kJoin;
    report.subject = n;
    report.changes.push_back(core::Recode{n, net::kNoColor, 1});
    core::finalize_report(net, assignment, report);
    return report;
  }
  core::RecodeReport on_leave(const net::AdhocNetwork&, net::CodeAssignment&,
                              net::NodeId) override {
    return {};
  }
  core::RecodeReport on_move(const net::AdhocNetwork&, net::CodeAssignment&,
                             net::NodeId) override {
    return {};
  }
  core::RecodeReport on_power_change(const net::AdhocNetwork&,
                                     net::CodeAssignment&, net::NodeId,
                                     double) override {
    return {};
  }
};

strategies::StrategyFactory broken_factory() {
  return [](const std::string& name) -> core::StrategyPtr {
    if (name == "broken") return std::make_unique<EveryoneColorOne>();
    return strategies::make_strategy(name);
  };
}

TEST(Sweeps, ValidateFlagRunsTheCa1Ca2Checks) {
  // With enough nodes on the default 100x100 field the all-ones coloring is
  // invalid, so a validating sweep must throw — and a non-validating sweep
  // must sail through, proving the flag is what arms the check.
  sim::SweepOptions options;
  options.strategies = {"broken"};
  options.strategy_factory = broken_factory();
  options.runs = 2;
  options.threads = 1;

  options.validate = true;
  EXPECT_THROW(
      sim::run_sweep({0.0}, join_factory(16), /*delta_metrics=*/false, options),
      std::logic_error);

  options.validate = false;
  EXPECT_NO_THROW(
      sim::run_sweep({0.0}, join_factory(16), /*delta_metrics=*/false, options));
}

TEST(Sweeps, ValidateFlagReachesTheFigureSweeps) {
  sim::SweepOptions options;
  options.strategies = {"broken"};
  options.strategy_factory = broken_factory();
  options.runs = 2;
  options.threads = 1;
  options.validate = true;
  EXPECT_THROW(sim::sweep_join_vs_n({16}, options), std::logic_error);
  options.validate = false;
  EXPECT_NO_THROW(sim::sweep_join_vs_n({16}, options));
}

TEST(Sweeps, FigureSweepMatchesGenericEngineBitForBit) {
  // sweep_join_vs_n is an Experiment-grid adapter; run_sweep drives
  // map_reduce directly.  Both assign stream xi*runs+run to item (xi, run),
  // so their points must agree bitwise.
  sim::SweepOptions options;
  options.strategies = {"minim", "cp", "bbb"};
  options.runs = 5;
  options.seed = 77;
  options.threads = 2;

  const auto via_grid = sim::sweep_join_vs_n({24, 32}, options);
  const auto via_generic = sim::run_sweep(
      {24, 32},
      [](double x, util::Rng& rng) {
        sim::WorkloadParams params;
        params.n = static_cast<std::size_t>(x);
        params.min_range = 20.5;
        params.max_range = 30.5;
        return sim::make_join_workload(params, rng);
      },
      /*delta_metrics=*/false, options);

  ASSERT_EQ(via_grid.size(), via_generic.size());
  for (std::size_t i = 0; i < via_grid.size(); ++i) {
    EXPECT_EQ(via_grid[i].x, via_generic[i].x);
    EXPECT_EQ(via_grid[i].strategy, via_generic[i].strategy);
    EXPECT_EQ(via_grid[i].color_metric.mean(), via_generic[i].color_metric.mean());
    EXPECT_EQ(via_grid[i].color_metric.variance(),
              via_generic[i].color_metric.variance());
    EXPECT_EQ(via_grid[i].recoding_metric.mean(),
              via_generic[i].recoding_metric.mean());
    EXPECT_EQ(via_grid[i].recoding_metric.variance(),
              via_generic[i].recoding_metric.variance());
  }
}

}  // namespace
