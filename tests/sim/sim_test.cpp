// Workload generation, the simulation engine, replay metrics and sweep
// determinism.

#include <gtest/gtest.h>

#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "sim/replay.hpp"
#include "sim/simulation.hpp"
#include "sim/sweeps.hpp"
#include "sim/workload.hpp"
#include "strategies/factory.hpp"
#include "util/rng.hpp"

namespace {

using minim::core::MinimStrategy;
using minim::net::NodeId;
using minim::sim::make_join_workload;
using minim::sim::make_move_workload;
using minim::sim::make_power_workload;
using minim::sim::replay;
using minim::sim::run_sweep;
using minim::sim::Simulation;
using minim::sim::SweepOptions;
using minim::sim::Workload;
using minim::sim::WorkloadParams;
using minim::util::Rng;

// ---------------------------------------------------------------- workloads

TEST(Workload, JoinWorkloadRespectsParams) {
  Rng rng(1);
  WorkloadParams params;
  params.n = 50;
  params.min_range = 20.5;
  params.max_range = 30.5;
  const Workload w = make_join_workload(params, rng);
  EXPECT_EQ(w.joins.size(), 50u);
  EXPECT_TRUE(w.power_raises.empty());
  EXPECT_TRUE(w.move_rounds.empty());
  for (const auto& join : w.joins) {
    EXPECT_GE(join.position.x, 0.0);
    EXPECT_LE(join.position.x, 100.0);
    EXPECT_GE(join.range, 20.5);
    EXPECT_LT(join.range, 30.5);
  }
}

TEST(Workload, SameSeedSameWorkload) {
  WorkloadParams params;
  params.n = 30;
  Rng rng_a(7);
  Rng rng_b(7);
  const Workload a = make_join_workload(params, rng_a);
  const Workload b = make_join_workload(params, rng_b);
  for (std::size_t i = 0; i < a.joins.size(); ++i) {
    EXPECT_EQ(a.joins[i].position, b.joins[i].position);
    EXPECT_DOUBLE_EQ(a.joins[i].range, b.joins[i].range);
  }
}

TEST(Workload, PowerWorkloadRaisesHalfTheNodesDistinctly) {
  Rng rng(2);
  WorkloadParams params;
  params.n = 100;
  const Workload w = make_power_workload(params, 3.0, rng);
  EXPECT_EQ(w.power_raises.size(), 50u);
  std::vector<std::size_t> indices;
  for (const auto& raise : w.power_raises) {
    indices.push_back(raise.join_index);
    EXPECT_NEAR(raise.new_range, w.joins[raise.join_index].range * 3.0, 1e-9);
  }
  std::sort(indices.begin(), indices.end());
  EXPECT_TRUE(std::adjacent_find(indices.begin(), indices.end()) == indices.end());
}

TEST(Workload, PowerWorkloadRejectsShrinkFactor) {
  Rng rng(3);
  WorkloadParams params;
  EXPECT_THROW(make_power_workload(params, 0.5, rng), std::invalid_argument);
}

TEST(Workload, MoveWorkloadMovesEveryNodeEveryRound) {
  Rng rng(4);
  WorkloadParams params;
  params.n = 40;
  const Workload w = make_move_workload(params, 40.0, 3, rng);
  ASSERT_EQ(w.move_rounds.size(), 3u);
  for (const auto& round : w.move_rounds) {
    ASSERT_EQ(round.size(), 40u);
    for (std::size_t i = 0; i < round.size(); ++i) {
      EXPECT_EQ(round[i].join_index, i);  // "one by one" in join order
      EXPECT_GE(round[i].position.x, 0.0);
      EXPECT_LE(round[i].position.x, 100.0);
    }
  }
}

TEST(Workload, MoveDisplacementBounded) {
  // Between consecutive rounds a node moves at most maxdisp (pre-clamping;
  // clamping can only shorten the step).
  Rng rng(5);
  WorkloadParams params;
  params.n = 10;
  const double maxdisp = 15.0;
  const Workload w = make_move_workload(params, maxdisp, 4, rng);
  std::vector<minim::util::Vec2> pos;
  for (const auto& join : w.joins) pos.push_back(join.position);
  for (const auto& round : w.move_rounds)
    for (const auto& mv : round) {
      EXPECT_LE(minim::util::distance(pos[mv.join_index], mv.position),
                maxdisp + 1e-9);
      pos[mv.join_index] = mv.position;
    }
}

TEST(Workload, ZeroDisplacementMovesNowhere) {
  Rng rng(6);
  WorkloadParams params;
  params.n = 5;
  const Workload w = make_move_workload(params, 0.0, 2, rng);
  for (const auto& round : w.move_rounds)
    for (const auto& mv : round)
      EXPECT_EQ(mv.position, w.joins[mv.join_index].position);
}

// ---------------------------------------------------------------- engine

TEST(Simulation, TotalsAccumulatePerEventType) {
  MinimStrategy minim;
  Simulation::Params params;
  params.validate_after_each = true;
  Simulation simulation(minim, params);
  const NodeId a = simulation.join({{10, 10}, 20.0});
  const NodeId b = simulation.join({{20, 10}, 20.0});
  simulation.move(b, {25, 15});
  simulation.change_power(a, 30.0);
  simulation.change_power(a, 10.0);
  simulation.leave(b);

  const auto& totals = simulation.totals();
  EXPECT_EQ(totals.events, 6u);
  using minim::core::EventType;
  EXPECT_EQ(totals.events_by_type[static_cast<std::size_t>(EventType::kJoin)], 2u);
  EXPECT_EQ(totals.events_by_type[static_cast<std::size_t>(EventType::kMove)], 1u);
  EXPECT_EQ(totals.events_by_type[static_cast<std::size_t>(EventType::kPowerIncrease)], 1u);
  EXPECT_EQ(totals.events_by_type[static_cast<std::size_t>(EventType::kPowerDecrease)], 1u);
  EXPECT_EQ(totals.events_by_type[static_cast<std::size_t>(EventType::kLeave)], 1u);
  EXPECT_GE(totals.recodings, 2u);  // at least the two joins
}

TEST(Simulation, HistoryKeptWhenRequested) {
  MinimStrategy minim;
  Simulation::Params params;
  params.keep_history = true;
  Simulation simulation(minim, params);
  simulation.join({{10, 10}, 20.0});
  simulation.join({{20, 10}, 20.0});
  EXPECT_EQ(simulation.history().size(), 2u);
  Simulation bare(minim);
  bare.join({{10, 10}, 20.0});
  EXPECT_TRUE(bare.history().empty());
}

TEST(Simulation, MaxColorTracksAssignment) {
  MinimStrategy minim;
  Simulation simulation(minim);
  EXPECT_EQ(simulation.max_color(), minim::net::kNoColor);
  simulation.join({{10, 10}, 20.0});
  EXPECT_EQ(simulation.max_color(), 1u);
}

// ---------------------------------------------------------------- replay

TEST(Replay, JoinOnlyWorkloadHasEqualSetupAndFinal) {
  Rng rng(8);
  WorkloadParams params;
  params.n = 30;
  const Workload w = make_join_workload(params, rng);
  const auto strategy = minim::strategies::make_strategy("minim");
  const auto outcome = replay(w, *strategy, /*validate=*/true);
  EXPECT_EQ(outcome.setup_max_color, outcome.final_max_color());
  EXPECT_EQ(outcome.setup_recodings, outcome.total_recodings());
  EXPECT_EQ(outcome.delta_recodings(), 0.0);
}

TEST(Replay, PowerPhaseProducesNonNegativeDeltas) {
  Rng rng(9);
  WorkloadParams params;
  params.n = 40;
  const Workload w = make_power_workload(params, 3.0, rng);
  for (const char* name : {"minim", "cp"}) {
    const auto strategy = minim::strategies::make_strategy(name);
    const auto outcome = replay(w, *strategy, /*validate=*/true);
    EXPECT_GE(outcome.delta_recodings(), 0.0) << name;
    EXPECT_GE(outcome.delta_max_color(), 0.0) << name;
  }
}

TEST(Replay, SameWorkloadSameStrategyIsDeterministic) {
  Rng rng(10);
  WorkloadParams params;
  params.n = 25;
  const Workload w = make_move_workload(params, 30.0, 2, rng);
  const auto s1 = minim::strategies::make_strategy("minim");
  const auto s2 = minim::strategies::make_strategy("minim");
  const auto o1 = replay(w, *s1);
  const auto o2 = replay(w, *s2);
  EXPECT_EQ(o1.final_max_color(), o2.final_max_color());
  EXPECT_EQ(o1.total_recodings(), o2.total_recodings());
}

// ---------------------------------------------------------------- sweeps

TEST(Sweep, PointsOrderedAndSized) {
  SweepOptions options;
  options.strategies = {"minim", "cp"};
  options.runs = 4;
  options.threads = 2;
  const auto points = minim::sim::sweep_join_vs_n({10, 20}, options);
  ASSERT_EQ(points.size(), 4u);  // 2 x-values x 2 strategies
  EXPECT_EQ(points[0].x, 10);
  EXPECT_EQ(points[0].strategy, "minim");
  EXPECT_EQ(points[1].strategy, "cp");
  EXPECT_EQ(points[2].x, 20);
  for (const auto& point : points) {
    EXPECT_EQ(point.color_metric.count(), 4u);
    EXPECT_EQ(point.recoding_metric.count(), 4u);
  }
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  SweepOptions base;
  base.strategies = {"minim"};
  base.runs = 6;
  base.seed = 77;

  SweepOptions serial = base;
  serial.threads = 1;
  SweepOptions parallel = base;
  parallel.threads = 2;

  const auto a = minim::sim::sweep_join_vs_n({15, 25}, serial);
  const auto b = minim::sim::sweep_join_vs_n({15, 25}, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].color_metric.mean(), b[i].color_metric.mean());
    EXPECT_DOUBLE_EQ(a[i].recoding_metric.mean(), b[i].recoding_metric.mean());
  }
}

TEST(Sweep, JoinRecodingsGrowWithN) {
  SweepOptions options;
  options.strategies = {"minim"};
  options.runs = 5;
  const auto points = minim::sim::sweep_join_vs_n({10, 40}, options);
  EXPECT_LT(points[0].recoding_metric.mean(), points[1].recoding_metric.mean());
}

TEST(Sweep, PowerSweepProducesDeltas) {
  SweepOptions options;
  options.strategies = {"minim", "cp"};
  options.runs = 3;
  const auto points =
      minim::sim::sweep_power_vs_raise_factor({2.0}, options, /*n=*/30);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& point : points) EXPECT_GE(point.recoding_metric.mean(), 0.0);
}

TEST(Sweep, MoveSweepRunsBothVariants) {
  SweepOptions options;
  options.strategies = {"minim"};
  options.runs = 2;
  const auto by_disp =
      minim::sim::sweep_move_vs_max_displacement({10.0}, options, /*n=*/15);
  ASSERT_EQ(by_disp.size(), 1u);
  const auto by_rounds = minim::sim::sweep_move_vs_rounds({2}, options, /*n=*/15);
  ASSERT_EQ(by_rounds.size(), 1u);
  EXPECT_GE(by_rounds[0].recoding_metric.mean(), 0.0);
}

TEST(Sweep, RejectsEmptyInputs) {
  SweepOptions options;
  EXPECT_THROW(minim::sim::sweep_join_vs_n({}, options), std::invalid_argument);
  options.strategies.clear();
  EXPECT_THROW(minim::sim::sweep_join_vs_n({10}, options), std::invalid_argument);
}

}  // namespace
