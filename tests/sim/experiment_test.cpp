// Tests for the unified experiment API (sim/experiment.hpp):
//  * grid enumeration (axis-0-major) and per-point spec application;
//  * the two headline determinism contracts — (a) grid results bit-identical
//    for any thread count, (b) trial ranges run as k shards and merged are
//    bit-identical to the unsharded run, including through the CSV
//    persistence round-trip;
//  * paired workloads across strategies;
//  * merge validation (gaps, overlaps, mismatched experiments).

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/experiment_io.hpp"

namespace {

using namespace minim;

sim::ExperimentGrid small_power_grid() {
  sim::ExperimentGrid grid;
  grid.base.kind = sim::ScenarioKind::kPower;
  grid.axes.push_back(sim::GridAxis{
      "n", {12, 20}, [](sim::ScenarioSpec& spec, double x) {
        spec.workload.n = static_cast<std::size_t>(x);
      }});
  grid.axes.push_back(sim::GridAxis{
      "raise_factor", {2.0, 3.5},
      [](sim::ScenarioSpec& spec, double x) { spec.raise_factor = x; }});
  grid.strategies = {"minim", "cp"};
  return grid;
}

void expect_identical(const sim::ExperimentResult& a,
                      const sim::ExperimentResult& b) {
  ASSERT_EQ(a.axis_names, b.axis_names);
  ASSERT_EQ(a.points, b.points);
  ASSERT_EQ(a.strategies, b.strategies);
  EXPECT_EQ(a.total_trials, b.total_trials);
  EXPECT_EQ(a.total_points, b.total_points);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.trial_begin, b.trial_begin);
  EXPECT_EQ(a.trial_count, b.trial_count);
  EXPECT_EQ(a.point_begin, b.point_begin);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    const auto& ca = a.cells[c];
    const auto& cb = b.cells[c];
    EXPECT_EQ(ca.point_index, cb.point_index);
    EXPECT_EQ(ca.strategy_index, cb.strategy_index);
    ASSERT_EQ(ca.trials.size(), cb.trials.size()) << "cell " << c;
    for (std::size_t i = 0; i < ca.trials.size(); ++i) {
      const auto& ta = ca.trials[i];
      const auto& tb = cb.trials[i];
      EXPECT_EQ(ta.trial, tb.trial);
      EXPECT_EQ(ta.totals.events, tb.totals.events);
      EXPECT_EQ(ta.totals.recodings, tb.totals.recodings);
      EXPECT_EQ(ta.totals.messages, tb.totals.messages);
      EXPECT_EQ(ta.totals.events_by_type, tb.totals.events_by_type);
      EXPECT_EQ(ta.totals.recodings_by_type, tb.totals.recodings_by_type);
      EXPECT_EQ(ta.final_max_color, tb.final_max_color);
      EXPECT_EQ(ta.setup_max_color, tb.setup_max_color);  // EQ: bit-identical
      EXPECT_EQ(ta.setup_recodings, tb.setup_recodings);
    }
    // Summaries accumulate in trial order, so they must match bitwise too.
    const sim::TotalsSummary sa = sim::summarize(ca);
    const sim::TotalsSummary sb = sim::summarize(cb);
    EXPECT_EQ(sa.events.mean(), sb.events.mean());
    EXPECT_EQ(sa.events.variance(), sb.events.variance());
    EXPECT_EQ(sa.recodings.mean(), sb.recodings.mean());
    EXPECT_EQ(sa.recodings.variance(), sb.recodings.variance());
    EXPECT_EQ(sa.max_color.mean(), sb.max_color.mean());
    EXPECT_EQ(sa.max_color.min(), sb.max_color.min());
    EXPECT_EQ(sa.max_color.max(), sb.max_color.max());
  }
}

TEST(Experiment, EnumeratesGridAxis0Major) {
  const sim::Experiment experiment(small_power_grid());
  const std::vector<std::vector<double>> expected{
      {12, 2.0}, {12, 3.5}, {20, 2.0}, {20, 3.5}};
  EXPECT_EQ(experiment.points(), expected);

  const sim::ScenarioSpec spec = experiment.spec_for_point(2);
  EXPECT_EQ(spec.workload.n, 20u);
  EXPECT_DOUBLE_EQ(spec.raise_factor, 2.0);
}

TEST(Experiment, NoAxesMeansOneGridPoint) {
  sim::ExperimentGrid grid;
  grid.strategies = {"minim"};
  const sim::Experiment experiment(grid);
  ASSERT_EQ(experiment.points().size(), 1u);
  EXPECT_TRUE(experiment.points()[0].empty());

  sim::ExperimentOptions options;
  options.trials = 3;
  options.threads = 1;
  const sim::ExperimentResult result = experiment.run(options);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cell(0, 0).trials.size(), 3u);
}

TEST(Experiment, GridResultsBitIdenticalForAnyThreadCount) {
  // Acceptance criterion (a): the full grid, run serially and with a pool,
  // must agree on every per-trial counter and every summary bit.
  for (const auto kind :
       {sim::ScenarioKind::kPower, sim::ScenarioKind::kChurn}) {
    sim::ExperimentGrid grid = small_power_grid();
    grid.base.kind = kind;
    grid.base.churn.duration = 80.0;
    grid.base.churn.max_nodes = 40;
    const sim::Experiment experiment(std::move(grid));

    sim::ExperimentOptions serial;
    serial.trials = 6;
    serial.seed = 42;
    serial.threads = 1;
    sim::ExperimentOptions parallel = serial;
    parallel.threads = 4;

    expect_identical(experiment.run(serial), experiment.run(parallel));
  }
}

TEST(Experiment, ShardedTrialRangesMergeBitIdenticalToUnsharded) {
  // Acceptance criterion (b): trials [0,3), [3,5), [5,7) run as separate
  // shards (uneven on purpose) and merged equal the unsharded run.
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions options;
  options.trials = 7;
  options.seed = 2001;
  options.threads = 2;
  const sim::ExperimentResult full = experiment.run(options);

  std::vector<sim::ExperimentResult> shards;
  for (const auto& [begin, count] :
       std::vector<std::pair<std::size_t, std::size_t>>{{0, 3}, {3, 2}, {5, 2}}) {
    sim::ExperimentOptions slice = options;
    slice.trial_begin = begin;
    slice.trial_count = count;
    shards.push_back(experiment.run(slice));
    EXPECT_EQ(shards.back().trial_begin, begin);
    EXPECT_EQ(shards.back().trial_count, count);
  }
  // Shards may arrive in any order.
  std::swap(shards[0], shards[2]);
  const sim::ExperimentResult merged = sim::merge_shards(std::move(shards));
  expect_identical(full, merged);
}

TEST(Experiment, PointRangeShardsMergeBitIdenticalToUnsharded) {
  // Axis-space sharding: the 4 grid points run as [0,1) + [1,3) + [3,4)
  // in separate shards (each over all trials) and merge bit-identically.
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions options;
  options.trials = 5;
  options.threads = 2;
  const sim::ExperimentResult full = experiment.run(options);
  EXPECT_EQ(full.total_points, 4u);
  EXPECT_EQ(full.point_begin, 0u);

  std::vector<sim::ExperimentResult> shards;
  for (const auto& [begin, count] :
       std::vector<std::pair<std::size_t, std::size_t>>{{0, 1}, {1, 2}, {3, 1}}) {
    sim::ExperimentOptions slice = options;
    slice.point_begin = begin;
    slice.point_count = count;
    shards.push_back(experiment.run(slice));
    EXPECT_EQ(shards.back().point_begin, begin);
    EXPECT_EQ(shards.back().points.size(), count);
    EXPECT_EQ(shards.back().cells.size(), count * 2);
  }
  std::swap(shards[0], shards[2]);  // any arrival order
  expect_identical(full, sim::merge_shards(std::move(shards)));
}

TEST(Experiment, TwoAxisRectangleTilingMergesBitIdentical) {
  // Both axes cut at once: 2 point slices x 2 trial slices = 4 work units.
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions options;
  options.trials = 6;
  options.threads = 1;
  const sim::ExperimentResult full = experiment.run(options);

  std::vector<sim::ExperimentResult> shards;
  for (const std::size_t point_begin : {0u, 2u})
    for (const std::size_t trial_begin : {0u, 3u}) {
      sim::ExperimentOptions slice = options;
      slice.point_begin = point_begin;
      slice.point_count = 2;
      slice.trial_begin = trial_begin;
      slice.trial_count = 3;
      shards.push_back(experiment.run(slice));
    }
  expect_identical(full, sim::merge_shards(std::move(shards)));
}

TEST(Experiment, PointShardStreamsMatchTheFullRun) {
  // The same grid point computed from a point shard and from the full run
  // must agree bit-for-bit — the global-stream invariant on the point axis.
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions options;
  options.trials = 3;
  options.threads = 1;
  const sim::ExperimentResult full = experiment.run(options);

  sim::ExperimentOptions slice = options;
  slice.point_begin = 2;
  slice.point_count = 1;
  const sim::ExperimentResult shard = experiment.run(slice);
  for (std::size_t s = 0; s < shard.strategy_count(); ++s) {
    const auto& lone = shard.cell(0, s).trials;
    const auto& same = full.cell(2, s).trials;
    ASSERT_EQ(lone.size(), same.size());
    for (std::size_t i = 0; i < lone.size(); ++i) {
      EXPECT_EQ(lone[i].totals.recodings, same[i].totals.recodings);
      EXPECT_EQ(lone[i].final_max_color, same[i].final_max_color);
    }
  }
}

TEST(Experiment, MergeRejectsPointGapsOverlapsAndPartialTrials) {
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions options;
  options.trials = 4;
  options.threads = 1;

  auto slice = [&](std::size_t point_begin, std::size_t point_count,
                   std::size_t trial_begin, std::size_t trial_count) {
    sim::ExperimentOptions s = options;
    s.point_begin = point_begin;
    s.point_count = point_count;
    s.trial_begin = trial_begin;
    s.trial_count = trial_count;
    return experiment.run(s);
  };

  // Point gap: [0,1) + [2,4).
  EXPECT_THROW(sim::merge_shards({slice(0, 1, 0, 4), slice(2, 2, 0, 4)}),
               std::invalid_argument);
  // Point overlap: [0,3) + [2,2).
  EXPECT_THROW(sim::merge_shards({slice(0, 3, 0, 4), slice(2, 2, 0, 4)}),
               std::invalid_argument);
  // One point group covers only part of the trial space.
  EXPECT_THROW(sim::merge_shards({slice(0, 2, 0, 4), slice(2, 2, 0, 2)}),
               std::invalid_argument);
  // The happy 2D path.
  const sim::ExperimentResult merged = sim::merge_shards(
      {slice(0, 2, 0, 2), slice(0, 2, 2, 2), slice(2, 2, 0, 4)});
  EXPECT_EQ(merged.point_begin, 0u);
  EXPECT_EQ(merged.points.size(), 4u);
  EXPECT_EQ(merged.trial_count, 4u);
}

TEST(Experiment, PointShardCsvRoundTripIsExact) {
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions options;
  options.trials = 3;
  options.threads = 1;
  options.point_begin = 1;
  options.point_count = 2;
  options.trial_begin = 1;
  options.trial_count = 2;
  const sim::ExperimentResult shard = experiment.run(options);
  EXPECT_EQ(shard.point_begin, 1u);
  EXPECT_EQ(shard.total_points, 4u);

  std::stringstream io;
  sim::write_experiment_csv(shard, io);
  expect_identical(shard, sim::read_experiment_csv(io));
}

TEST(Experiment, CsvRoundTripIsExact) {
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions options;
  options.trials = 4;
  options.threads = 2;
  options.trial_begin = 1;
  options.trial_count = 2;
  const sim::ExperimentResult shard = experiment.run(options);

  std::stringstream io;
  sim::write_experiment_csv(shard, io);
  const sim::ExperimentResult parsed = sim::read_experiment_csv(io);
  expect_identical(shard, parsed);
}

TEST(Experiment, CsvReaderRejectsTruncatedShards) {
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions options;
  options.trials = 4;
  options.threads = 1;
  std::stringstream io;
  sim::write_experiment_csv(experiment.run(options), io);

  // Drop the last data row, keeping the metadata intact — the exact failure
  // a cut-short file transfer produces.
  std::string text = io.str();
  text.erase(text.find_last_of('\n', text.size() - 2) + 1);
  std::stringstream truncated(text);
  EXPECT_THROW(sim::read_experiment_csv(truncated), std::runtime_error);

  // Malformed metadata must also surface as runtime_error, per the header.
  std::stringstream corrupt("#minim-experiment v1\n#seed\n");
  EXPECT_THROW(sim::read_experiment_csv(corrupt), std::runtime_error);
}

TEST(Experiment, StrategiesShareTheTrialWorkload) {
  // Paired comparison: two copies of the same strategy in one grid must
  // produce identical cells, because the workload is generated once per
  // (point, trial) and replayed.
  sim::ExperimentGrid grid = small_power_grid();
  grid.strategies = {"minim", "minim"};
  const sim::Experiment experiment(std::move(grid));
  sim::ExperimentOptions options;
  options.trials = 4;
  options.threads = 2;
  const sim::ExperimentResult result = experiment.run(options);
  for (std::size_t p = 0; p < result.point_count(); ++p) {
    const auto& a = result.cell(p, 0).trials;
    const auto& b = result.cell(p, 1).trials;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].totals.recodings, b[i].totals.recodings);
      EXPECT_EQ(a[i].final_max_color, b[i].final_max_color);
    }
  }
}

TEST(Experiment, StreamsDependOnGlobalTrialNotShardPosition) {
  // The same global trial run from two different shard framings must agree.
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions narrow;
  narrow.trials = 6;
  narrow.threads = 1;
  narrow.trial_begin = 4;
  narrow.trial_count = 1;
  sim::ExperimentOptions wide = narrow;
  wide.trial_begin = 3;
  wide.trial_count = 3;

  const sim::ExperimentResult a = experiment.run(narrow);
  const sim::ExperimentResult b = experiment.run(wide);
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    const sim::ExperimentTrial& lone = a.cells[c].trials.at(0);
    const sim::ExperimentTrial& same = b.cells[c].trials.at(1);  // global 4
    EXPECT_EQ(lone.trial, 4u);
    EXPECT_EQ(same.trial, 4u);
    EXPECT_EQ(lone.totals.recodings, same.totals.recodings);
    EXPECT_EQ(lone.final_max_color, same.final_max_color);
  }
}

TEST(Experiment, MergeRejectsGapsOverlapsAndMismatches) {
  const sim::Experiment experiment(small_power_grid());
  sim::ExperimentOptions options;
  options.trials = 6;
  options.threads = 1;

  auto slice = [&](std::size_t begin, std::size_t count) {
    sim::ExperimentOptions s = options;
    s.trial_begin = begin;
    s.trial_count = count;
    return experiment.run(s);
  };

  EXPECT_THROW(sim::merge_shards({}), std::invalid_argument);
  // Gap: [0,2) + [4,6).
  EXPECT_THROW(sim::merge_shards({slice(0, 2), slice(4, 2)}),
               std::invalid_argument);
  // Overlap: [0,4) + [2,4).
  EXPECT_THROW(sim::merge_shards({slice(0, 4), slice(2, 4)}),
               std::invalid_argument);
  // Incomplete coverage: [0,4) alone.
  EXPECT_THROW(sim::merge_shards({slice(0, 4)}), std::invalid_argument);
  // Different seed = a different experiment.
  sim::ExperimentOptions other = options;
  other.seed = 999;
  other.trial_begin = 3;
  other.trial_count = 3;
  EXPECT_THROW(sim::merge_shards({slice(0, 3), experiment.run(other)}),
               std::invalid_argument);
  // And the happy path still works.
  const sim::ExperimentResult merged =
      sim::merge_shards({slice(0, 3), slice(3, 3)});
  EXPECT_EQ(merged.trial_begin, 0u);
  EXPECT_EQ(merged.trial_count, 6u);
}

}  // namespace
