// Continuous-time churn engine: determinism, rate sanity, equilibrium,
// validity under every strategy, and cap/sampling mechanics.

#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include "strategies/factory.hpp"
#include "util/rng.hpp"

namespace {

using minim::sim::ChurnParams;
using minim::sim::ChurnResult;
using minim::sim::run_churn;
using minim::util::Rng;

ChurnParams small_params() {
  ChurnParams params;
  params.duration = 400.0;
  params.arrival_rate = 0.2;
  params.mean_lifetime = 150.0;
  params.move_rate = 0.02;
  params.power_rate = 0.01;
  params.sample_interval = 40.0;
  return params;
}

TEST(Churn, DeterministicGivenSeed) {
  const auto strategy_a = minim::strategies::make_strategy("minim");
  const auto strategy_b = minim::strategies::make_strategy("minim");
  Rng rng_a(42);
  Rng rng_b(42);
  const ChurnResult a = run_churn(small_params(), *strategy_a, rng_a);
  const ChurnResult b = run_churn(small_params(), *strategy_b, rng_b);
  EXPECT_EQ(a.totals.events, b.totals.events);
  EXPECT_EQ(a.totals.recodings, b.totals.recodings);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].nodes, b.samples[i].nodes);
    EXPECT_EQ(a.samples[i].max_color, b.samples[i].max_color);
  }
}

TEST(Churn, SamplesOnTheGrid) {
  const auto strategy = minim::strategies::make_strategy("minim");
  Rng rng(43);
  const ChurnParams params = small_params();
  const ChurnResult result = run_churn(params, *strategy, rng);
  ASSERT_FALSE(result.samples.empty());
  // duration / interval samples, first at t = interval.
  EXPECT_EQ(result.samples.size(),
            static_cast<std::size_t>(params.duration / params.sample_interval));
  for (std::size_t i = 0; i < result.samples.size(); ++i)
    EXPECT_DOUBLE_EQ(result.samples[i].time,
                     params.sample_interval * static_cast<double>(i + 1));
}

TEST(Churn, ArrivalCountNearExpectation) {
  const auto strategy = minim::strategies::make_strategy("minim");
  Rng rng(44);
  ChurnParams params = small_params();
  params.duration = 2000.0;
  const ChurnResult result = run_churn(params, *strategy, rng);
  using minim::core::EventType;
  const double joins = static_cast<double>(
      result.totals.events_by_type[static_cast<std::size_t>(EventType::kJoin)]);
  const double expected = params.arrival_rate * params.duration;  // 400
  EXPECT_NEAR(joins, expected, 4 * std::sqrt(expected));  // 4-sigma band
}

TEST(Churn, PopulationHoversAroundLittleLaw) {
  // Little's law equilibrium: N = arrival_rate * mean_lifetime = 30.
  const auto strategy = minim::strategies::make_strategy("minim");
  Rng rng(45);
  ChurnParams params = small_params();
  params.duration = 3000.0;
  const ChurnResult result = run_churn(params, *strategy, rng);
  double late_mean = 0;
  std::size_t count = 0;
  for (const auto& sample : result.samples) {
    if (sample.time < params.duration / 2) continue;  // warm-up
    late_mean += static_cast<double>(sample.nodes);
    ++count;
  }
  late_mean /= static_cast<double>(count);
  const double expected = params.arrival_rate * params.mean_lifetime;
  EXPECT_NEAR(late_mean, expected, expected * 0.35);
}

TEST(Churn, MaxNodesCapDropsArrivals) {
  const auto strategy = minim::strategies::make_strategy("minim");
  Rng rng(46);
  ChurnParams params = small_params();
  params.max_nodes = 10;
  params.arrival_rate = 1.0;
  params.duration = 500.0;
  const ChurnResult result = run_churn(params, *strategy, rng);
  EXPECT_GT(result.dropped_arrivals, 0u);
  EXPECT_LE(result.peak_nodes, 10u);
}

struct ChurnStrategyCase {
  const char* name;
  std::uint64_t seed;
};

class ChurnStrategyTest : public ::testing::TestWithParam<ChurnStrategyCase> {};

TEST_P(ChurnStrategyTest, StaysValidThroughout) {
  const auto param = GetParam();
  const auto strategy = minim::strategies::make_strategy(param.name);
  Rng rng(param.seed);
  ChurnParams params = small_params();
  params.validate = true;  // throws on any mid-run violation
  const ChurnResult result = run_churn(params, *strategy, rng);
  EXPECT_TRUE(result.final_valid);
  EXPECT_GT(result.totals.events, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ChurnStrategyTest,
    ::testing::Values(ChurnStrategyCase{"minim", 1}, ChurnStrategyCase{"cp", 2},
                      ChurnStrategyCase{"cp-exact", 3},
                      ChurnStrategyCase{"bbb", 4},
                      ChurnStrategyCase{"minim-cardinality", 5}));

TEST(Churn, MinimBeatsCpOnRecodingsOverLongRun) {
  ChurnParams params = small_params();
  params.duration = 1500.0;
  double minim_total = 0;
  double cp_total = 0;
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    const auto minim = minim::strategies::make_strategy("minim");
    const auto cp = minim::strategies::make_strategy("cp");
    Rng rng_a(seed);
    Rng rng_b(seed);  // identical event randomness
    minim_total += static_cast<double>(run_churn(params, *minim, rng_a).totals.recodings);
    cp_total += static_cast<double>(run_churn(params, *cp, rng_b).totals.recodings);
  }
  EXPECT_LT(minim_total, cp_total);
}

TEST(Churn, InitialNodesSeedThePopulationBeforeTimeZero) {
  // A pre-populated run starts at `initial_nodes` and churns from there —
  // the large-N "leave/move/power on an n-node network" stage.
  const auto strategy = minim::strategies::make_strategy("minim");
  Rng rng(77);
  ChurnParams params = small_params();
  params.initial_nodes = 60;
  params.max_nodes = 120;
  const ChurnResult result = run_churn(params, *strategy, rng);
  ASSERT_FALSE(result.samples.empty());
  // The first sample (t = 40) still sees most of the seed population.
  EXPECT_GE(result.samples.front().nodes, 40u);
  EXPECT_GE(result.peak_nodes, 60u);
  // Seeded nodes leave like arrivals: with lifetime 150 over horizon 400,
  // a majority of the original 60 must have departed at least once.
  EXPECT_GE(result.totals.events_by_type[static_cast<std::size_t>(
                minim::core::EventType::kLeave)],
            20u);
}

TEST(Churn, InitialNodesAreDeterministicAndCapRespecting) {
  const auto strategy_a = minim::strategies::make_strategy("minim");
  const auto strategy_b = minim::strategies::make_strategy("minim");
  ChurnParams params = small_params();
  params.initial_nodes = 50;
  params.max_nodes = 30;  // cap below the seed count: the rest is dropped
  Rng rng_a(9);
  Rng rng_b(9);
  const ChurnResult a = run_churn(params, *strategy_a, rng_a);
  const ChurnResult b = run_churn(params, *strategy_b, rng_b);
  EXPECT_EQ(a.totals.events, b.totals.events);
  EXPECT_EQ(a.totals.recodings, b.totals.recodings);
  EXPECT_GE(a.dropped_arrivals, 20u);  // 50 seeds into a 30-node cap
  EXPECT_LE(a.peak_nodes, 30u);
}

TEST(Churn, RejectsBadParams) {
  const auto strategy = minim::strategies::make_strategy("minim");
  Rng rng(50);
  ChurnParams params = small_params();
  params.duration = 0;
  EXPECT_THROW(run_churn(params, *strategy, rng), std::invalid_argument);
  params = small_params();
  params.sample_interval = 0;
  EXPECT_THROW(run_churn(params, *strategy, rng), std::invalid_argument);
}

}  // namespace
