// Text trace format: parse/serialize round-trips, error reporting with line
// numbers, workload conversion, and replay equivalence.

#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"

namespace {

using minim::core::MinimStrategy;
using minim::sim::apply_trace;
using minim::sim::parse_trace;
using minim::sim::serialize_trace;
using minim::sim::Simulation;
using minim::sim::Trace;
using minim::sim::trace_from_workload;
using minim::sim::TraceEvent;
using minim::util::Rng;

TEST(Trace, ParseBasicDocument) {
  const Trace trace = parse_trace(
      "# a comment\n"
      "join 10 20 25.5\n"
      "join 30 40 20\n"
      "\n"
      "move 0 50 60   # trailing comment\n"
      "power 1 35\n"
      "leave 0\n");
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[0].kind, TraceEvent::Kind::kJoin);
  EXPECT_DOUBLE_EQ(trace[0].position.x, 10);
  EXPECT_DOUBLE_EQ(trace[0].range, 25.5);
  EXPECT_EQ(trace[2].kind, TraceEvent::Kind::kMove);
  EXPECT_EQ(trace[2].node, 0u);
  EXPECT_EQ(trace[3].kind, TraceEvent::Kind::kPower);
  EXPECT_DOUBLE_EQ(trace[3].range, 35);
  EXPECT_EQ(trace[4].kind, TraceEvent::Kind::kLeave);
}

TEST(Trace, SerializeParseRoundTrip) {
  const Trace original = parse_trace(
      "join 1.25 2.5 10\njoin 99.125 3 20\nmove 1 7 8\npower 0 12.5\nleave 1\n");
  const Trace reparsed = parse_trace(serialize_trace(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed[i].kind, original[i].kind) << i;
    EXPECT_EQ(reparsed[i].node, original[i].node) << i;
    EXPECT_EQ(reparsed[i].position, original[i].position) << i;
    EXPECT_DOUBLE_EQ(reparsed[i].range, original[i].range) << i;
  }
}

TEST(Trace, ErrorsCarryLineNumbers) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      parse_trace(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("warp 1 2 3\n", "line 1");
  expect_error("join 1 2\n", "missing range");
  expect_error("join 1 2 3\nmove 5 1 2\n", "not joined");
  expect_error("join 1 2 3\nleave 0\nmove 0 1 2\n", "already left");
  expect_error("join 1 2 3 4\n", "trailing");
  expect_error("join 1 2 -5\n", "negative range");
  expect_error("move -1 2 2\n", "invalid node");
}

TEST(Trace, FromWorkloadCoversAllPhases) {
  Rng rng(9);
  minim::sim::WorkloadParams params;
  params.n = 10;
  const auto workload = minim::sim::make_power_workload(params, 2.0, rng);
  const Trace trace = trace_from_workload(workload);
  EXPECT_EQ(trace.size(), workload.joins.size() + workload.power_raises.size());
}

TEST(Trace, ApplyMatchesWorkloadReplay) {
  Rng rng(10);
  minim::sim::WorkloadParams params;
  params.n = 20;
  const auto workload = minim::sim::make_move_workload(params, 25.0, 2, rng);

  MinimStrategy strategy_a;
  const auto outcome = minim::sim::replay(workload, strategy_a);

  MinimStrategy strategy_b;
  Simulation simulation(strategy_b);
  apply_trace(trace_from_workload(workload), simulation);

  EXPECT_EQ(static_cast<double>(simulation.totals().recodings),
            outcome.total_recodings());
  EXPECT_EQ(static_cast<double>(simulation.max_color()), outcome.final_max_color());
}

TEST(Trace, TextRoundTripPreservesSimulationResult) {
  Rng rng(11);
  minim::sim::WorkloadParams params;
  params.n = 15;
  const auto workload = minim::sim::make_join_workload(params, rng);
  const Trace trace = trace_from_workload(workload);
  const Trace reparsed = parse_trace(serialize_trace(trace));

  MinimStrategy s1;
  MinimStrategy s2;
  Simulation sim1(s1);
  Simulation sim2(s2);
  apply_trace(trace, sim1);
  apply_trace(reparsed, sim2);
  EXPECT_EQ(sim1.totals().recodings, sim2.totals().recodings);
  EXPECT_EQ(sim1.max_color(), sim2.max_color());
  for (auto v : sim1.network().nodes())
    EXPECT_EQ(sim1.assignment().color(v), sim2.assignment().color(v));
}

TEST(Trace, EmptyDocumentIsEmptyTrace) {
  EXPECT_TRUE(parse_trace("").empty());
  EXPECT_TRUE(parse_trace("# only comments\n\n").empty());
  EXPECT_EQ(serialize_trace({}), "");
}

}  // namespace
