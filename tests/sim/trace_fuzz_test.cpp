// Round-trip fuzz for the trace grammar: serialize(parse(serialize)) must
// be the identity on randomly generated churn histories, and malformed
// input must fail with the right 1-based line number while leaving the
// incremental parser's state untouched (the property a long-lived serving
// session depends on).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "../helpers/event_fuzz.hpp"
#include "sim/trace.hpp"

namespace minim::sim {
namespace {

/// Converts a fuzz event stream into a join-order-indexed Trace by
/// mirroring the replayer's live-list semantics (victim = live[pick % n],
/// leaves erase in place).
Trace trace_from_fuzz(const std::vector<test::FuzzEvent>& events) {
  Trace trace;
  std::vector<std::size_t> live;  // join indices currently live
  std::size_t joined = 0;
  for (const test::FuzzEvent& e : events) {
    TraceEvent out;
    if (e.kind == test::FuzzKind::kJoin) {
      out.kind = TraceEvent::Kind::kJoin;
      out.position = {e.x, e.y};
      out.range = e.range;
      live.push_back(joined++);
    } else {
      if (live.empty()) continue;
      const std::size_t slot = static_cast<std::size_t>(e.pick % live.size());
      out.node = live[slot];
      switch (e.kind) {
        case test::FuzzKind::kLeave:
          out.kind = TraceEvent::Kind::kLeave;
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(slot));
          break;
        case test::FuzzKind::kMove:
          out.kind = TraceEvent::Kind::kMove;
          out.position = {e.x, e.y};
          break;
        case test::FuzzKind::kPower:
          out.kind = TraceEvent::Kind::kPower;
          out.range = e.range;
          break;
        case test::FuzzKind::kJoin:
          break;  // unreachable
      }
    }
    trace.push_back(out);
  }
  return trace;
}

/// Bitwise event equality — serialize_trace prints doubles at exact
/// round-trip precision, so nothing weaker than memcmp-equality is owed.
void expect_same(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "event " << i;
    EXPECT_EQ(std::memcmp(&a[i].position.x, &b[i].position.x, sizeof(double)),
              0)
        << "event " << i << " x";
    EXPECT_EQ(std::memcmp(&a[i].position.y, &b[i].position.y, sizeof(double)),
              0)
        << "event " << i << " y";
    EXPECT_EQ(std::memcmp(&a[i].range, &b[i].range, sizeof(double)), 0)
        << "event " << i << " range";
  }
}

TEST(TraceFuzz, SerializeParseRoundTripsExactly) {
  for (std::uint64_t seed : {1u, 7u, 42u, 2001u}) {
    for (test::FuzzPlacement placement :
         {test::FuzzPlacement::kUniform, test::FuzzPlacement::kClustered,
          test::FuzzPlacement::kPoissonDisk}) {
      test::FuzzConfig cfg;
      cfg.seed = seed;
      cfg.events = 1500;
      cfg.placement = placement;
      cfg.storm_chance = 0.01;  // storms exercise dense power/move runs
      const Trace trace = trace_from_fuzz(test::generate_events(cfg));
      ASSERT_FALSE(trace.empty());

      const std::string text = serialize_trace(trace);
      const Trace reparsed = parse_trace(text);
      expect_same(trace, reparsed);
      // And the fixpoint: a second round-trip renders identical text.
      EXPECT_EQ(serialize_trace(reparsed), text)
          << "seed " << seed << " placement " << to_string(placement);
    }
  }
}

TEST(TraceFuzz, MalformedLinesCarryTheirLineNumber) {
  struct Case {
    const char* text;
    std::size_t line;
    const char* reason;
  };
  const Case cases[] = {
      {"join 1 2\n", 1, "missing range"},
      {"join 1 2 3\nleave 1\n", 2, "node has not joined yet"},
      {"join 1 2 3\nleave 0\nleave 0\n", 3, "node already left"},
      {"join 1 2 3\n\n# comment\nmove 0 1\n", 4, "missing y"},
      {"join 1 2 3\npower 0 -4\n", 2, "negative range"},
      {"join 1 2 3\njoin 4 5 6 7\n", 2, "trailing tokens"},
      {"warp 0\n", 1, "unknown verb 'warp'"},
      {"leave -1\n", 1, "missing/invalid node"},
  };
  for (const Case& c : cases) {
    try {
      parse_trace(c.text);
      FAIL() << "expected TraceParseError for: " << c.text;
    } catch (const TraceParseError& e) {
      EXPECT_EQ(e.line(), c.line) << c.text;
      EXPECT_EQ(e.reason(), c.reason) << c.text;
      // what() keeps the historical "line <n>" phrasing.
      EXPECT_NE(std::string(e.what()).find("line " + std::to_string(c.line)),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(TraceFuzz, ParserStateSurvivesMalformedLines) {
  TraceLineParser parser;
  ASSERT_TRUE(parser.parse_line("join 1 2 3").has_value());
  ASSERT_EQ(parser.joined(), 1u);

  // A join that fails validation must not count as joined.
  EXPECT_THROW(parser.parse_line("join 9 9"), TraceParseError);
  EXPECT_EQ(parser.joined(), 1u);
  // A leave that fails validation must not mark anything departed.
  EXPECT_THROW(parser.parse_line("leave 5"), TraceParseError);
  EXPECT_TRUE(parser.is_live(0));
  // A valid leave with trailing garbage must not commit the leave.
  EXPECT_THROW(parser.parse_line("leave 0 junk"), TraceParseError);
  EXPECT_TRUE(parser.is_live(0));

  // The session keeps serving: the node is still leavable, and the line
  // counter kept advancing through the failures.
  const auto event = parser.parse_line("leave 0");
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, TraceEvent::Kind::kLeave);
  EXPECT_EQ(parser.line_number(), 5u);
  EXPECT_FALSE(parser.is_live(0));
}

TEST(TraceFuzz, ExplicitLineNumbersFollowInterleavedStreams) {
  // A serving session hands the parser its own line numbering because the
  // input stream interleaves queries the parser never sees.
  TraceLineParser parser;
  ASSERT_TRUE(parser.parse_line("join 1 2 3", 10).has_value());
  try {
    parser.parse_line("leave 7", 12);
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 12u);
  }
  EXPECT_EQ(parser.line_number(), 12u);
}

}  // namespace
}  // namespace minim::sim
