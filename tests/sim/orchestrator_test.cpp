// Orchestration determinism: any tiling of the (point x trial) rectangle —
// trial-split, axis-split, or both — merges bit-identically to the
// unsharded run, through the CSV persistence round-trip and through the
// real process-pool driver with an injected worker failure; plus the shard
// manifest's round-trip and resume semantics.

#include "sim/orchestrator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/experiment_io.hpp"
#include "sim/work_plan.hpp"
#include "util/remote_pool.hpp"
#include "util/rpc.hpp"

namespace {

namespace fs = std::filesystem;
using namespace minim;

sim::ExperimentGrid small_grid() {
  sim::ExperimentGrid grid;
  grid.base.kind = sim::ScenarioKind::kJoin;
  grid.axes.push_back(sim::GridAxis{
      "n", {10, 14, 18}, [](sim::ScenarioSpec& spec, double x) {
        spec.workload.n = static_cast<std::size_t>(x);
      }});
  grid.strategies = {"minim", "cp"};
  return grid;
}

sim::ExperimentOptions small_run() {
  sim::ExperimentOptions run;
  run.trials = 5;
  run.seed = 99;
  run.threads = 1;
  return run;
}

std::string csv_text(const sim::ExperimentResult& result) {
  std::stringstream out;
  sim::write_experiment_csv(result, out);
  return out.str();
}

/// Runs every unit of `plan` as its own rectangle (CSV round-tripped, the
/// way a worker process would ship it) and merges.
sim::ExperimentResult run_plan(const sim::Experiment& experiment,
                               const sim::ExperimentOptions& run,
                               const std::vector<sim::WorkUnit>& plan) {
  std::vector<sim::ExperimentResult> shards;
  for (const sim::WorkUnit& unit : plan) {
    sim::ExperimentOptions slice = run;
    slice.point_begin = unit.point_begin;
    slice.point_count = unit.point_count;
    slice.trial_begin = unit.trial_begin;
    slice.trial_count = unit.trial_count;
    std::stringstream io;
    sim::write_experiment_csv(experiment.run(slice), io);
    shards.push_back(sim::read_experiment_csv(io));
  }
  return sim::merge_shards(std::move(shards));
}

TEST(OrchestrationDeterminism, EverySplitModeMergesByteIdenticalToUnsharded) {
  const sim::Experiment experiment(small_grid());
  const sim::ExperimentOptions run = small_run();
  const std::string full = csv_text(experiment.run(run));

  for (const sim::WorkSplit split :
       {sim::WorkSplit::kTrials, sim::WorkSplit::kPoints, sim::WorkSplit::kAuto})
    for (const std::size_t units : {2u, 3u, 6u}) {
      const auto plan = sim::plan_work_units(
          units, experiment.points().size(), run.trials, split);
      const sim::ExperimentResult merged = run_plan(experiment, run, plan);
      EXPECT_EQ(csv_text(merged), full)
          << "split " << to_string(split) << ", " << units << " units";
    }
}

TEST(OrchestrationDeterminism, IrregularRectangleTilingsAlsoMerge) {
  // Point groups may shard their trial axis differently; merge_shards must
  // still assemble the exact result.
  const sim::Experiment experiment(small_grid());
  const sim::ExperimentOptions run = small_run();
  const std::string full = csv_text(experiment.run(run));

  std::vector<sim::WorkUnit> plan;
  plan.push_back({0, 0, 1, 0, 2});  // point 0, trials [0,2)
  plan.push_back({1, 0, 1, 2, 3});  // point 0, trials [2,5)
  plan.push_back({2, 1, 2, 0, 5});  // points 1-2, all trials
  EXPECT_EQ(csv_text(run_plan(experiment, run, plan)), full);
}

// ------------------------------------------------------------ process level

/// A worker command that "computes" its unit by copying a pre-staged shard
/// CSV — the orchestrator cannot tell the difference, and the test stays
/// independent of any bench binary.  `fail_units` crash on their first
/// attempt (before producing output), exercising the bounded retry.
class StagedWorkers {
 public:
  explicit StagedWorkers(const fs::path& dir) : dir_(dir) {
    fs::create_directories(dir_);
  }

  sim::Orchestrator::WorkerCommand command(
      const sim::Experiment& experiment, const sim::ExperimentOptions& run,
      const std::vector<std::size_t>& fail_units = {}) {
    return [this, &experiment, run, fail_units](
               const sim::WorkUnit& unit, const std::string& out_path) {
      sim::ExperimentOptions slice = run;
      slice.point_begin = unit.point_begin;
      slice.point_count = unit.point_count;
      slice.trial_begin = unit.trial_begin;
      slice.trial_count = unit.trial_count;
      const fs::path staged =
          dir_ / ("staged_" + std::to_string(unit.id) + ".csv");
      sim::write_experiment_csv_file(experiment.run(slice), staged.string());

      std::string script;
      const bool fails = std::find(fail_units.begin(), fail_units.end(),
                                   unit.id) != fail_units.end();
      if (fails) {
        const fs::path marker =
            dir_ / ("crashed_" + std::to_string(unit.id));
        script = "if [ ! -e " + marker.string() + " ]; then touch " +
                 marker.string() + "; exit 1; fi; ";
      }
      script += "cp " + staged.string() + " " + out_path;
      return std::vector<std::string>{"/bin/sh", "-c", script};
    };
  }

 private:
  fs::path dir_;
};

fs::path scratch_root() {
  return fs::temp_directory_path() / "minim_orchestrator_test";
}

TEST(Orchestrator, InjectedWorkerFailureRetriesAndMergesByteIdentical) {
  const fs::path root = scratch_root() / "retry";
  fs::remove_all(root);
  const sim::Experiment experiment(small_grid());
  const sim::ExperimentOptions run = small_run();
  const std::string full = csv_text(experiment.run(run));

  sim::OrchestratorOptions options;
  options.workers = 2;
  options.units = 4;
  options.split = sim::WorkSplit::kAuto;
  options.max_attempts = 2;
  options.scratch_dir = (root / "scratch").string();
  options.keep_scratch = true;

  StagedWorkers workers(root / "staged");
  sim::Orchestrator orchestrator(experiment.points().size(), run.trials,
                                 run.seed, options);
  const sim::ExperimentResult merged =
      orchestrator.run(workers.command(experiment, run, /*fail_units=*/{0}));
  EXPECT_EQ(csv_text(merged), full);

  // The ledger records the unit geometry and the retried unit's attempts.
  const sim::ShardManifest manifest =
      sim::read_shard_manifest_file(orchestrator.manifest_path());
  ASSERT_EQ(manifest.entries.size(), orchestrator.units().size());
  for (const sim::ShardManifestEntry& entry : manifest.entries)
    EXPECT_EQ(entry.status, "done");
  EXPECT_EQ(manifest.entries[0].attempts, 2u);
  EXPECT_EQ(manifest.entries[1].attempts, 1u);
  fs::remove_all(root);
}

TEST(Orchestrator, ExhaustedRetriesThrowAndLeaveAFailedManifest) {
  const fs::path root = scratch_root() / "fail";
  fs::remove_all(root);
  const sim::Experiment experiment(small_grid());
  const sim::ExperimentOptions run = small_run();

  sim::OrchestratorOptions options;
  options.workers = 2;
  options.units = 2;
  options.max_attempts = 2;
  options.scratch_dir = (root / "scratch").string();
  options.keep_scratch = true;

  sim::Orchestrator orchestrator(experiment.points().size(), run.trials,
                                 run.seed, options);
  EXPECT_THROW(
      orchestrator.run([](const sim::WorkUnit&, const std::string&) {
        return std::vector<std::string>{"/bin/sh", "-c", "exit 9"};
      }),
      std::runtime_error);
  const sim::ShardManifest manifest =
      sim::read_shard_manifest_file(orchestrator.manifest_path());
  EXPECT_EQ(manifest.entries[0].status, "failed");
  fs::remove_all(root);
}

TEST(Orchestrator, ResumeSkipsUnitsWithValidShards) {
  const fs::path root = scratch_root() / "resume";
  fs::remove_all(root);
  const sim::Experiment experiment(small_grid());
  const sim::ExperimentOptions run = small_run();
  const std::string full = csv_text(experiment.run(run));

  sim::OrchestratorOptions options;
  options.workers = 2;
  options.units = 3;
  options.split = sim::WorkSplit::kPoints;
  options.max_attempts = 1;
  options.scratch_dir = (root / "scratch").string();
  options.keep_scratch = true;

  // First pass completes everything and keeps its scratch.
  StagedWorkers workers(root / "staged");
  sim::Orchestrator first(experiment.points().size(), run.trials, run.seed,
                          options);
  first.run(workers.command(experiment, run));

  // Second pass resumes: every unit is already done, so a worker command
  // that would always fail must never be invoked.
  options.resume = true;
  sim::Orchestrator second(experiment.points().size(), run.trials, run.seed,
                           options);
  const sim::ExperimentResult merged =
      second.run([](const sim::WorkUnit&, const std::string&) {
        return std::vector<std::string>{"/bin/sh", "-c", "exit 1"};
      });
  EXPECT_EQ(csv_text(merged), full);
  fs::remove_all(root);
}

TEST(Orchestrator, ResumeRefusesAnotherExperimentsManifest) {
  // Two same-shaped studies (same seed, rectangle, unit plan) must not
  // resume off each other's shards: identity is part of the manifest.
  const fs::path root = scratch_root() / "identity";
  fs::remove_all(root);
  const sim::Experiment experiment(small_grid());
  const sim::ExperimentOptions run = small_run();

  sim::OrchestratorOptions options;
  options.experiment = "study-a#1111";
  options.workers = 2;
  options.units = 2;
  options.scratch_dir = (root / "scratch").string();
  options.keep_scratch = true;

  StagedWorkers workers(root / "staged");
  sim::Orchestrator first(experiment.points().size(), run.trials, run.seed,
                          options);
  first.run(workers.command(experiment, run));

  options.experiment = "study-b#2222";
  options.resume = true;
  sim::Orchestrator second(experiment.points().size(), run.trials, run.seed,
                           options);
  EXPECT_THROW(second.run(workers.command(experiment, run)),
               std::runtime_error);
  fs::remove_all(root);
}

TEST(Orchestrator, ResumeMixesLocalShardsWithAFleetAndSurvivesAgentLoss) {
  // Mixed provenance: pass 1 computes some units with local worker
  // processes and dies; pass 2 resumes the same manifest over a TCP fleet,
  // loses an agent mid-run (its unit is requeued onto the survivor), and
  // the merged CSV must still be byte-identical to the unsharded run.
  const fs::path root = scratch_root() / "mixed";
  fs::remove_all(root);
  const sim::Experiment experiment(small_grid());
  const sim::ExperimentOptions run = small_run();
  const std::string full = csv_text(experiment.run(run));

  sim::OrchestratorOptions options;
  options.experiment = "mixed-study#1234";
  options.workers = 2;
  options.units = 4;
  options.split = sim::WorkSplit::kAuto;
  options.max_attempts = 1;
  options.scratch_dir = (root / "scratch").string();
  options.keep_scratch = true;

  // Pass 1, local processes: units 2 and 3 fail permanently (one attempt),
  // so the run throws with units 0 and 1 done on disk.
  StagedWorkers workers(root / "staged");
  sim::Orchestrator first(experiment.points().size(), run.trials, run.seed,
                          options);
  EXPECT_THROW(
      first.run(workers.command(experiment, run, /*fail_units=*/{2, 3})),
      std::runtime_error);
  {
    const sim::ShardManifest manifest =
        sim::read_shard_manifest_file(first.manifest_path());
    EXPECT_EQ(manifest.entries[0].status, "done");
    EXPECT_EQ(manifest.entries[1].status, "done");
  }

  // Pass 2, remote fleet: a synthetic agent-side runner computes the
  // unit's rectangle from the argv the driver would hand a real worker.
  std::atomic<std::size_t> fleet_units{0};
  const util::JobRunner runner = [&](const util::JobRequest& request) {
    util::JobResult result;
    result.job = request.job;
    for (const std::string& arg : request.args) {
      if (arg.rfind("--run-unit=", 0) != 0) continue;
      std::string rect = arg.substr(std::string("--run-unit=").size());
      std::replace(rect.begin(), rect.end(), '/', ' ');
      std::istringstream fields(rect);
      sim::ExperimentOptions slice = run;
      fields >> slice.point_begin >> slice.point_count >> slice.trial_begin >>
          slice.trial_count;
      result.bytes = csv_text(experiment.run(slice));
      result.ok = true;
      result.exit_code = 0;
      ++fleet_units;
    }
    return result;
  };

  util::RemotePoolOptions pool_options;
  pool_options.scratch_dir = (root / "fleet").string();
  util::RemotePool pool(pool_options);
  options.resume = true;
  options.max_attempts = 3;  // the agent-loss requeue needs attempt budget
  options.pool = &pool;

  // "mayfly" joins first (capacity 2 takes both remaining units) and drops
  // its connection after one result; "steady" joins late and picks up the
  // requeued unit.
  std::thread mayfly([&pool, &runner] {
    util::AgentOptions agent;
    agent.port = pool.port();
    agent.name = "mayfly";
    agent.capacity = 2;
    agent.die_after = 1;
    util::run_worker_agent(agent, runner);
  });
  std::thread steady([&pool, &runner] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    util::AgentOptions agent;
    agent.port = pool.port();
    agent.name = "steady";
    agent.capacity = 1;
    util::run_worker_agent(agent, runner);
  });

  // The driver-format argv a real fleet worker would receive (the pool
  // strips the program name before shipping the tail to the agent).
  const auto fleet_command = [](const sim::WorkUnit& unit,
                                const std::string& out_path) {
    return std::vector<std::string>{
        "driver-binary",
        "--run-unit=" + std::to_string(unit.point_begin) + "/" +
            std::to_string(unit.point_count) + "/" +
            std::to_string(unit.trial_begin) + "/" +
            std::to_string(unit.trial_count),
        "--unit-out=" + out_path};
  };
  sim::Orchestrator second(experiment.points().size(), run.trials, run.seed,
                           options);
  const sim::ExperimentResult merged = second.run(fleet_command);
  mayfly.join();
  steady.join();

  EXPECT_EQ(csv_text(merged), full);
  EXPECT_EQ(pool.stats().agents_seen, 2u);
  EXPECT_EQ(pool.stats().agents_lost, 1u);
  // The two locally-computed units were resumed, never re-run remotely.
  EXPECT_GE(fleet_units.load(), 2u);
  EXPECT_LE(fleet_units.load(), 3u);  // at most the lost unit ran twice
  const sim::ShardManifest manifest =
      sim::read_shard_manifest_file(second.manifest_path());
  for (const sim::ShardManifestEntry& entry : manifest.entries)
    EXPECT_EQ(entry.status, "done");
  fs::remove_all(root);
}

TEST(ShardManifest, RoundTripsThroughItsCsv) {
  sim::ShardManifest manifest;
  manifest.experiment = "grid_study#00ffab1234567890";
  manifest.seed = 2001;
  manifest.total_points = 6;
  manifest.total_trials = 40;
  manifest.entries.push_back({0, 0, 3, 0, 20, 1, "done", "a/unit_0.csv"});
  manifest.entries.push_back({1, 3, 3, 0, 20, 2, "retrying", "a/unit_1.csv"});
  manifest.entries.push_back({2, 0, 6, 20, 20, 0, "pending", "dir,with,commas/u.csv"});

  std::stringstream io;
  sim::write_shard_manifest(manifest, io);
  const sim::ShardManifest parsed = sim::read_shard_manifest(io);
  ASSERT_EQ(parsed.entries.size(), manifest.entries.size());
  EXPECT_EQ(parsed.experiment, manifest.experiment);
  EXPECT_EQ(parsed.seed, manifest.seed);
  EXPECT_EQ(parsed.total_points, manifest.total_points);
  EXPECT_EQ(parsed.total_trials, manifest.total_trials);
  for (std::size_t i = 0; i < manifest.entries.size(); ++i) {
    const auto& a = manifest.entries[i];
    const auto& b = parsed.entries[i];
    EXPECT_EQ(a.unit, b.unit);
    EXPECT_EQ(a.point_begin, b.point_begin);
    EXPECT_EQ(a.point_count, b.point_count);
    EXPECT_EQ(a.trial_begin, b.trial_begin);
    EXPECT_EQ(a.trial_count, b.trial_count);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.path, b.path);
  }

  std::stringstream corrupt("#minim-manifest v1\n#seed\n");
  EXPECT_THROW(sim::read_shard_manifest(corrupt), std::runtime_error);
  std::stringstream wrong_magic("#something-else\n");
  EXPECT_THROW(sim::read_shard_manifest(wrong_magic), std::runtime_error);
}

}  // namespace
