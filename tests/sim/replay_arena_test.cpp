// ReplayArena contract: replays through a reused arena are bit-identical to
// replays through freshly constructed simulations, for every scenario shape,
// across strategy switches, size changes, and field-dimension changes.

#include <gtest/gtest.h>

#include <vector>

#include "sim/experiment.hpp"
#include "sim/replay.hpp"
#include "strategies/factory.hpp"
#include "util/rng.hpp"

namespace {

using minim::sim::ReplayArena;
using minim::sim::RunOutcome;
using minim::sim::ScenarioKind;
using minim::sim::ScenarioSpec;
using minim::sim::Workload;
using minim::util::Rng;

void expect_same_outcome(const RunOutcome& a, const RunOutcome& b,
                         const std::string& label) {
  EXPECT_EQ(a.setup_max_color, b.setup_max_color) << label;
  EXPECT_EQ(a.setup_recodings, b.setup_recodings) << label;
  EXPECT_EQ(a.max_color, b.max_color) << label;
  EXPECT_EQ(a.totals.events, b.totals.events) << label;
  EXPECT_EQ(a.totals.recodings, b.totals.recodings) << label;
  EXPECT_EQ(a.totals.messages, b.totals.messages) << label;
  EXPECT_EQ(a.totals.events_by_type, b.totals.events_by_type) << label;
  EXPECT_EQ(a.totals.recodings_by_type, b.totals.recodings_by_type) << label;
}

Workload workload_for(ScenarioKind kind, std::size_t n, double width,
                      std::uint64_t stream) {
  ScenarioSpec spec;
  spec.kind = kind;
  spec.workload.n = n;
  spec.workload.width = width;
  Rng rng = Rng::for_stream(4242, stream);
  return make_scenario_workload(spec, rng);
}

TEST(ReplayArena, MatchesFreshReplayAcrossShapesStrategiesAndSizes) {
  // One arena serves a mixed sequence: kinds x strategies x sizes, in the
  // order a sweep worker would see them.
  ReplayArena arena;
  const std::vector<ScenarioKind> kinds{ScenarioKind::kJoin, ScenarioKind::kPower,
                                        ScenarioKind::kMove};
  const std::vector<std::string> strategies{"minim", "cp", "bbb"};
  const std::vector<std::size_t> sizes{40, 25, 60};

  std::uint64_t stream = 0;
  for (const ScenarioKind kind : kinds)
    for (const std::size_t n : sizes) {
      const Workload workload = workload_for(kind, n, 100.0, stream++);
      for (const std::string& name : strategies) {
        const auto arena_strategy = minim::strategies::make_strategy(name);
        const auto fresh_strategy = minim::strategies::make_strategy(name);
        const RunOutcome with_arena =
            replay(workload, *arena_strategy, /*validate=*/true, &arena);
        const RunOutcome fresh = replay(workload, *fresh_strategy, /*validate=*/true);
        expect_same_outcome(with_arena, fresh,
                            name + "/n=" + std::to_string(n));
      }
    }
}

TEST(ReplayArena, SurvivesFieldDimensionChanges) {
  ReplayArena arena;
  for (const double width : {100.0, 60.0, 100.0}) {
    const Workload workload =
        workload_for(ScenarioKind::kPower, 30, width, 77 + static_cast<int>(width));
    const auto a = minim::strategies::make_strategy("minim");
    const auto b = minim::strategies::make_strategy("minim");
    const RunOutcome with_arena = replay(workload, *a, true, &arena);
    const RunOutcome fresh = replay(workload, *b, true);
    expect_same_outcome(with_arena, fresh, "width=" + std::to_string(width));
  }
}

TEST(ReplayArena, RepeatedIdenticalReplaysAreDeterministic) {
  ReplayArena arena;
  const Workload workload = workload_for(ScenarioKind::kMove, 35, 100.0, 9);
  const auto first_strategy = minim::strategies::make_strategy("bbb");
  const RunOutcome first = replay(workload, *first_strategy, true, &arena);
  for (int i = 0; i < 3; ++i) {
    const auto strategy = minim::strategies::make_strategy("bbb");
    const RunOutcome again = replay(workload, *strategy, true, &arena);
    expect_same_outcome(again, first, "iteration " + std::to_string(i));
  }
}

}  // namespace
