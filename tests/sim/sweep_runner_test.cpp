// Tests for the batched scenario-sweep engine (sim/sweep_runner.hpp):
// the parallel-vs-serial bit-identical determinism contract, correct
// Totals aggregation, and per-trial stream independence.

#include <gtest/gtest.h>

#include <cstddef>

#include "sim/sweep_runner.hpp"
#include "util/rng.hpp"

namespace {

using namespace minim;

sim::ScenarioSpec small_spec(sim::ScenarioKind kind) {
  sim::ScenarioSpec spec;
  spec.kind = kind;
  spec.workload.n = 24;
  spec.move_rounds = 2;
  spec.churn.duration = 120.0;
  spec.churn.max_nodes = 60;
  return spec;
}

void expect_bitwise_equal(const util::RunningStats& a, const util::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());        // EQ, not NEAR: bit-identical required
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_bitwise_equal(const sim::TotalsSummary& a, const sim::TotalsSummary& b) {
  expect_bitwise_equal(a.events, b.events);
  expect_bitwise_equal(a.recodings, b.recodings);
  expect_bitwise_equal(a.messages, b.messages);
  expect_bitwise_equal(a.max_color, b.max_color);
  for (std::size_t t = 0; t < a.recodings_by_type.size(); ++t) {
    expect_bitwise_equal(a.events_by_type[t], b.events_by_type[t]);
    expect_bitwise_equal(a.recodings_by_type[t], b.recodings_by_type[t]);
  }
}

TEST(SweepRunner, ParallelMatchesSerialBitForBit) {
  for (const auto kind : {sim::ScenarioKind::kJoin, sim::ScenarioKind::kPower,
                          sim::ScenarioKind::kMove, sim::ScenarioKind::kChurn}) {
    const sim::ScenarioSpec spec = small_spec(kind);

    sim::SweepRunnerOptions serial;
    serial.trials = 16;
    serial.seed = 42;
    serial.threads = 1;
    serial.keep_trials = true;

    sim::SweepRunnerOptions parallel = serial;
    parallel.threads = 4;

    const sim::SweepReport a = sim::run_scenario_sweep(spec, serial);
    const sim::SweepReport b = sim::run_scenario_sweep(spec, parallel);

    expect_bitwise_equal(a.summary, b.summary);
    ASSERT_EQ(a.trials.size(), b.trials.size());
    for (std::size_t i = 0; i < a.trials.size(); ++i) {
      EXPECT_EQ(a.trials[i].totals.events, b.trials[i].totals.events);
      EXPECT_EQ(a.trials[i].totals.recodings, b.trials[i].totals.recodings);
      EXPECT_EQ(a.trials[i].final_max_color, b.trials[i].final_max_color);
    }
  }
}

TEST(SweepRunner, SummaryAggregatesTrialTotals) {
  const sim::ScenarioSpec spec = small_spec(sim::ScenarioKind::kJoin);
  sim::SweepRunnerOptions options;
  options.trials = 8;
  options.seed = 7;
  options.threads = 2;
  options.keep_trials = true;

  const sim::SweepReport report = sim::run_scenario_sweep(spec, options);
  ASSERT_EQ(report.trials.size(), options.trials);
  EXPECT_EQ(report.summary.events.count(), options.trials);

  // Recompute the means by hand from the retained trials.
  double event_sum = 0, recoding_sum = 0, color_sum = 0;
  for (const auto& trial : report.trials) {
    event_sum += static_cast<double>(trial.totals.events);
    recoding_sum += static_cast<double>(trial.totals.recodings);
    color_sum += static_cast<double>(trial.final_max_color);
    // A pure join scenario applies exactly n events, all joins.
    EXPECT_EQ(trial.totals.events, spec.workload.n);
    EXPECT_EQ(trial.totals.events_by_type[0], spec.workload.n);
    EXPECT_EQ(trial.totals.recodings_by_type[0], trial.totals.recodings);
  }
  const auto trials = static_cast<double>(options.trials);
  EXPECT_DOUBLE_EQ(report.summary.events.mean(), event_sum / trials);
  EXPECT_DOUBLE_EQ(report.summary.recodings.mean(), recoding_sum / trials);
  EXPECT_DOUBLE_EQ(report.summary.max_color.mean(), color_sum / trials);
}

TEST(SweepRunner, TrialsAreIndependentStreams) {
  // Distinct trials must see distinct randomness: with 24-node random worlds,
  // 8 trials producing identical recoding counts would mean stream reuse.
  const sim::ScenarioSpec spec = small_spec(sim::ScenarioKind::kJoin);
  sim::SweepRunnerOptions options;
  options.trials = 8;
  options.seed = 2001;
  options.threads = 1;
  options.keep_trials = true;

  const sim::SweepReport report = sim::run_scenario_sweep(spec, options);
  bool any_differ = false;
  for (std::size_t i = 1; i < report.trials.size(); ++i)
    if (report.trials[i].totals.recodings != report.trials[0].totals.recodings ||
        report.trials[i].final_max_color != report.trials[0].final_max_color)
      any_differ = true;
  EXPECT_TRUE(any_differ);
}

TEST(SweepRunner, SeedChangesResults) {
  const sim::ScenarioSpec spec = small_spec(sim::ScenarioKind::kJoin);
  sim::SweepRunnerOptions a;
  a.trials = 8;
  a.seed = 1;
  a.threads = 1;
  sim::SweepRunnerOptions b = a;
  b.seed = 2;

  const sim::SweepReport ra = sim::run_scenario_sweep(spec, a);
  const sim::SweepReport rb = sim::run_scenario_sweep(spec, b);
  EXPECT_NE(ra.summary.recodings.mean(), rb.summary.recodings.mean());
}

TEST(SweepRunner, KeepTrialsOffByDefault) {
  const sim::ScenarioSpec spec = small_spec(sim::ScenarioKind::kJoin);
  sim::SweepRunnerOptions options;
  options.trials = 2;
  const sim::SweepReport report = sim::run_scenario_sweep(spec, options);
  EXPECT_TRUE(report.trials.empty());
  EXPECT_EQ(report.summary.events.count(), 2u);
}

TEST(SweepRunner, RunScenarioTrialMatchesSweepSlot) {
  // The sweep derives trial i's stream as for_stream(seed, i); calling the
  // single-trial entry point with that stream must reproduce the slot.
  const sim::ScenarioSpec spec = small_spec(sim::ScenarioKind::kPower);
  sim::SweepRunnerOptions options;
  options.trials = 4;
  options.seed = 99;
  options.threads = 1;
  options.keep_trials = true;
  const sim::SweepReport report = sim::run_scenario_sweep(spec, options);

  util::Rng rng = util::Rng::for_stream(options.seed, 2);
  const sim::TrialResult direct = sim::run_scenario_trial(spec, rng);
  EXPECT_EQ(direct.totals.recodings, report.trials[2].totals.recodings);
  EXPECT_EQ(direct.final_max_color, report.trials[2].final_max_color);
}

}  // namespace
