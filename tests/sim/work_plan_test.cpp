// The work-unit planner: slice arithmetic, split-mode shapes, and the
// invariant every plan must satisfy — the units exactly tile the
// (point x trial) rectangle, because merge_shards accepts nothing less.

#include "sim/work_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using namespace minim;

/// Asserts `units` exactly tile points x trials (dense ids, no gap/overlap).
void expect_exact_tiling(const std::vector<sim::WorkUnit>& units,
                         std::size_t points, std::size_t trials) {
  std::vector<std::vector<char>> covered(points, std::vector<char>(trials, 0));
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(units[i].id, i);
    for (std::size_t p = units[i].point_begin;
         p < units[i].point_begin + units[i].point_count; ++p)
      for (std::size_t t = units[i].trial_begin;
           t < units[i].trial_begin + units[i].trial_count; ++t) {
        ASSERT_LT(p, points);
        ASSERT_LT(t, trials);
        EXPECT_EQ(covered[p][t], 0) << "cell (" << p << "," << t
                                    << ") covered twice";
        covered[p][t] = 1;
      }
  }
  for (std::size_t p = 0; p < points; ++p)
    for (std::size_t t = 0; t < trials; ++t)
      EXPECT_EQ(covered[p][t], 1) << "cell (" << p << "," << t << ") uncovered";
}

TEST(SliceRange, NearEqualContiguousSlices) {
  // 10 items over 3 slices: 4 + 3 + 3.
  EXPECT_EQ(sim::slice_range(10, 0, 3), (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(sim::slice_range(10, 1, 3), (std::pair<std::size_t, std::size_t>{4, 3}));
  EXPECT_EQ(sim::slice_range(10, 2, 3), (std::pair<std::size_t, std::size_t>{7, 3}));
}

TEST(PlanShape, TrialSplitUsesOneAxis) {
  const sim::PlanShape shape =
      sim::plan_shape(4, 6, 100, sim::WorkSplit::kTrials);
  EXPECT_EQ(shape.point_slices, 1u);
  EXPECT_EQ(shape.trial_slices, 4u);
}

TEST(PlanShape, PointSplitUsesTheOtherAxis) {
  const sim::PlanShape shape =
      sim::plan_shape(4, 6, 100, sim::WorkSplit::kPoints);
  EXPECT_EQ(shape.point_slices, 4u);
  EXPECT_EQ(shape.trial_slices, 1u);
}

TEST(PlanShape, SplitsClampToTheAxisLength) {
  EXPECT_EQ(sim::plan_shape(10, 3, 100, sim::WorkSplit::kPoints).point_slices, 3u);
  EXPECT_EQ(sim::plan_shape(10, 6, 4, sim::WorkSplit::kTrials).trial_slices, 4u);
}

TEST(PlanShape, AutoCutsBothAxes) {
  // 6 units over a 4 x 100 rectangle: a 2 x 3 (or 3 x 2) factorization beats
  // 1 x 6 and 6 x 1 on balance; the planner must use both axes.
  const sim::PlanShape shape = sim::plan_shape(6, 4, 100, sim::WorkSplit::kAuto);
  EXPECT_EQ(shape.point_slices * shape.trial_slices, 6u);
  EXPECT_GT(shape.point_slices, 1u);
  EXPECT_GT(shape.trial_slices, 1u);
}

TEST(PlanShape, AutoRealizesTheFullUnitCountWhenAnAxisIsShort) {
  // 8 units, only 2 points: 2 x 4 keeps all 8 units.
  const sim::PlanShape shape = sim::plan_shape(8, 2, 100, sim::WorkSplit::kAuto);
  EXPECT_EQ(shape.point_slices, 2u);
  EXPECT_EQ(shape.trial_slices, 4u);
}

TEST(PlanShape, RequestBeyondTheRectangleClamps) {
  const sim::PlanShape shape = sim::plan_shape(100, 3, 2, sim::WorkSplit::kAuto);
  EXPECT_LE(shape.point_slices, 3u);
  EXPECT_LE(shape.trial_slices, 2u);
  EXPECT_EQ(shape.point_slices * shape.trial_slices, 6u);
}

TEST(PlanWorkUnits, ExactTilingForEveryModeAndShape) {
  for (const sim::WorkSplit split :
       {sim::WorkSplit::kTrials, sim::WorkSplit::kPoints, sim::WorkSplit::kAuto})
    for (const std::size_t units : {1u, 2u, 3u, 5u, 7u, 16u})
      for (const auto& [points, trials] :
           std::vector<std::pair<std::size_t, std::size_t>>{
               {1, 1}, {1, 100}, {4, 1}, {4, 25}, {5, 7}, {20, 3}}) {
        const std::vector<sim::WorkUnit> plan =
            sim::plan_work_units(units, points, trials, split);
        ASSERT_FALSE(plan.empty());
        EXPECT_LE(plan.size(), std::max<std::size_t>(units, 1));
        ASSERT_NO_FATAL_FAILURE(expect_exact_tiling(plan, points, trials))
            << "split " << to_string(split) << ", " << units << " units over "
            << points << "x" << trials;
      }
}

TEST(PlanWorkUnits, SingleUnitIsTheWholeRectangle) {
  const auto plan = sim::plan_work_units(1, 5, 9, sim::WorkSplit::kAuto);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].point_begin, 0u);
  EXPECT_EQ(plan[0].point_count, 5u);
  EXPECT_EQ(plan[0].trial_begin, 0u);
  EXPECT_EQ(plan[0].trial_count, 9u);
}

TEST(WorkSplit, ParsesAndRejects) {
  EXPECT_EQ(sim::work_split_from("trials"), sim::WorkSplit::kTrials);
  EXPECT_EQ(sim::work_split_from("points"), sim::WorkSplit::kPoints);
  EXPECT_EQ(sim::work_split_from("auto"), sim::WorkSplit::kAuto);
  EXPECT_THROW(sim::work_split_from("diagonal"), std::invalid_argument);
}

}  // namespace
