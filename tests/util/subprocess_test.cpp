// util::ProcessPool: spawn/collect/exit-code/timeout/retry semantics, driven
// with /bin/sh workers so the tests need no fixture binary.  The pool is the
// process-level substrate of the experiment orchestrator; its contracts
// (outcomes indexed like specs, bounded retry, deadline kill, stdout
// capture) are what sim::Orchestrator builds on.

#include "util/subprocess.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

using minim::util::ProcessEvent;
using minim::util::ProcessOutcome;
using minim::util::ProcessPool;
using minim::util::ProcessSpec;

ProcessSpec shell(const std::string& script) {
  ProcessSpec spec;
  spec.args = {"/bin/sh", "-c", script};
  return spec;
}

fs::path temp_dir() {
  const fs::path dir = fs::temp_directory_path() / "minim_subprocess_test";
  fs::create_directories(dir);
  return dir;
}

TEST(SelfExePath, PointsAtARealExecutable) {
  const std::string self = minim::util::self_exe_path();
  ASSERT_FALSE(self.empty());
  EXPECT_TRUE(fs::exists(self)) << self;
}

TEST(ProcessPool, RunsABatchAndReportsExitCodes) {
  ProcessPool pool(2);
  const std::vector<ProcessOutcome> outcomes =
      pool.run_all({shell("exit 0"), shell("exit 3"), shell("exit 0")});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].exit_code, 3);
  EXPECT_EQ(outcomes[1].attempts, 1u);
  EXPECT_TRUE(outcomes[2].ok());
}

TEST(ProcessPool, CapturesStdoutAndStderrToTheCollectionFile) {
  const fs::path out = temp_dir() / "capture.log";
  fs::remove(out);
  ProcessSpec spec = shell("echo captured-out; echo captured-err >&2");
  spec.stdout_path = out.string();
  ProcessPool pool(1);
  ASSERT_TRUE(pool.run_all({spec})[0].ok());
  std::ifstream in(out);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("captured-out"), std::string::npos) << text;
  EXPECT_NE(text.find("captured-err"), std::string::npos) << text;
  fs::remove(out);
}

TEST(ProcessPool, KillsWorkersPastTheDeadline) {
  ProcessSpec slow = shell("sleep 30");
  slow.timeout_s = 0.2;
  ProcessPool pool(1);
  const ProcessOutcome outcome = pool.run_all({slow})[0];
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_LT(outcome.wall_s, 10.0);  // killed, not waited out
}

TEST(ProcessPool, RetriesUpToTheAttemptBudget) {
  // The worker fails until its marker file exists, then succeeds — the
  // shape of a transient shard failure.
  const fs::path marker = temp_dir() / "retry.marker";
  fs::remove(marker);
  ProcessSpec flaky = shell("if [ ! -e " + marker.string() +
                            " ]; then touch " + marker.string() +
                            "; exit 1; fi; exit 0");
  flaky.max_attempts = 3;
  ProcessPool pool(1);
  const ProcessOutcome outcome = pool.run_all({flaky})[0];
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 2u);
  fs::remove(marker);
}

TEST(ProcessPool, ExhaustsTheAttemptBudgetAndReportsFailure) {
  ProcessSpec hopeless = shell("exit 7");
  hopeless.max_attempts = 3;
  ProcessPool pool(2);
  const ProcessOutcome outcome = pool.run_all({hopeless})[0];
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(outcome.exit_code, 7);
}

TEST(ProcessPool, ObserverSeesTheLifecycle) {
  const fs::path marker = temp_dir() / "observer.marker";
  fs::remove(marker);
  ProcessSpec flaky = shell("if [ ! -e " + marker.string() +
                            " ]; then touch " + marker.string() +
                            "; exit 1; fi; exit 0");
  flaky.max_attempts = 2;

  std::vector<ProcessEvent::Kind> kinds;
  ProcessPool pool(1);
  pool.run_all({flaky}, [&kinds](const ProcessEvent& event) {
    kinds.push_back(event.kind);
  });
  const std::vector<ProcessEvent::Kind> expected{
      ProcessEvent::Kind::kStart, ProcessEvent::Kind::kRetry,
      ProcessEvent::Kind::kStart, ProcessEvent::Kind::kFinish};
  EXPECT_EQ(kinds, expected);
  fs::remove(marker);
}

TEST(ProcessPool, MissingExecutableIsAFailureNotACrash) {
  ProcessSpec ghost;
  ghost.args = {"/nonexistent/minim-no-such-binary"};
  ProcessPool pool(1);
  const ProcessOutcome outcome = pool.run_all({ghost})[0];
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.exit_code, 127);  // exec failed
}

TEST(ProcessPool, EventsCarryPerAttemptWallClock) {
  // A deliberately slow worker: the kFinish event's wall_s must reflect the
  // real attempt duration, because that duration is what feeds the shared
  // straggler-threshold logic (StragglerTracker) for local and remote
  // pools alike.
  ProcessSpec slow = shell("sleep 0.3");
  double finish_wall_s = -1.0;
  double start_wall_s = -1.0;
  ProcessPool pool(1);
  pool.run_all({slow}, [&](const ProcessEvent& event) {
    if (event.kind == ProcessEvent::Kind::kStart) start_wall_s = event.wall_s;
    if (event.kind == ProcessEvent::Kind::kFinish) finish_wall_s = event.wall_s;
  });
  EXPECT_EQ(start_wall_s, 0.0);  // nothing has run at start time
  EXPECT_GE(finish_wall_s, 0.25);
  EXPECT_LT(finish_wall_s, 30.0);
}

TEST(ProcessPool, RunJobsAdaptsTheWorkerPoolInterface) {
  // The WorkerPool face: same machinery, WorkerJob/WorkerOutcome types, so
  // sim::Orchestrator can swap in a RemotePool without caring which.
  const fs::path out = temp_dir() / "adapter.txt";
  fs::remove(out);
  minim::util::WorkerJob good;
  good.args = {"/bin/sh", "-c", "echo shard > " + out.string()};
  good.out_path = out.string();
  minim::util::WorkerJob bad;
  bad.args = {"/bin/sh", "-c", "exit 5"};
  bad.max_attempts = 2;

  std::vector<minim::util::WorkerPoolEvent::Kind> kinds;
  ProcessPool pool(1);
  minim::util::WorkerPool& face = pool;
  const std::vector<minim::util::WorkerOutcome> outcomes = face.run_jobs(
      {good, bad}, [&kinds](const minim::util::WorkerPoolEvent& event) {
        kinds.push_back(event.kind);
      });
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_TRUE(fs::exists(out));
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].exit_code, 5);
  EXPECT_EQ(outcomes[1].attempts, 2u);
  EXPECT_TRUE(outcomes[1].executor.empty());  // local process, no agent name
  using Kind = minim::util::WorkerPoolEvent::Kind;
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(), Kind::kRetry), 1);
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(), Kind::kFinish), 2);
  fs::remove(out);
}

TEST(StragglerTracker, NoThresholdBelowMinSamples) {
  minim::util::StragglerTracker tracker(3.0, 0.5, 3);
  tracker.record(1.0);
  tracker.record(1.0);
  EXPECT_EQ(tracker.threshold(), 0.0);
  EXPECT_FALSE(tracker.is_straggler(1000.0));  // too little evidence yet
  tracker.record(1.0);
  EXPECT_GT(tracker.threshold(), 0.0);
}

TEST(StragglerTracker, ThresholdIsFactorTimesRunningMedian) {
  minim::util::StragglerTracker tracker(3.0, 0.1, 3);
  tracker.record(2.0);
  tracker.record(4.0);
  tracker.record(100.0);  // one outlier must not drag the threshold up
  EXPECT_DOUBLE_EQ(tracker.median(), 4.0);
  EXPECT_DOUBLE_EQ(tracker.threshold(), 12.0);
  EXPECT_FALSE(tracker.is_straggler(11.9));
  EXPECT_TRUE(tracker.is_straggler(12.1));
  // Even-count median averages the middle pair, out-of-order inserts fine.
  tracker.record(1.0);
  EXPECT_DOUBLE_EQ(tracker.median(), 3.0);
}

TEST(StragglerTracker, MinSecondsFloorsTheThreshold) {
  // Sub-millisecond medians (tiny smoke units) must not cause re-dispatch
  // storms: the floor wins when factor x median is small.
  minim::util::StragglerTracker tracker(3.0, 0.5, 1);
  tracker.record(0.001);
  EXPECT_DOUBLE_EQ(tracker.threshold(), 0.5);
  EXPECT_FALSE(tracker.is_straggler(0.4));
  EXPECT_TRUE(tracker.is_straggler(0.6));
}

}  // namespace
