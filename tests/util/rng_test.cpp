#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace {

using minim::util::Rng;
using minim::util::splitmix64;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, StreamsAreIndependentAndReproducible) {
  Rng s0 = Rng::for_stream(42, 0);
  Rng s1 = Rng::for_stream(42, 1);
  Rng s0_again = Rng::for_stream(42, 0);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const auto a = s0();
    const auto b = s1();
    EXPECT_EQ(a, s0_again());
    if (a != b) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, AdjacentStreamsDiffer) {
  // Regression guard: naive seeding (seed + index) made adjacent streams
  // correlated; the splitmix double-mix must keep them apart.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 256; ++i) firsts.insert(Rng::for_stream(7, i)());
  EXPECT_EQ(firsts.size(), 256u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(6);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(20.5, 30.5);
    ASSERT_GE(x, 20.5);
    ASSERT_LT(x, 30.5);
  }
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng rng(8);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(10);
  constexpr std::uint64_t kBound = 10;
  constexpr int kN = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kN; ++i) ++counts[rng.below(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b)
    EXPECT_NEAR(counts[b], kN / kBound, kN * 0.01) << "bucket " << b;
}

TEST(Rng, UniformIntInclusiveEnds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = xs;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(xs.begin(), xs.end(), shuffled.begin()));
}

TEST(Rng, ShuffleSingletonAndEmpty) {
  Rng rng(14);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ShuffleMovesElements) {
  Rng rng(15);
  std::vector<int> xs(100);
  for (int i = 0; i < 100; ++i) xs[static_cast<std::size_t>(i)] = i;
  auto shuffled = xs;
  rng.shuffle(shuffled);
  EXPECT_NE(xs, shuffled);  // probability of identity is 1/100!
}

TEST(Splitmix, KnownFirstValueIsStable) {
  // Lock the seeding path: changing it would silently change every
  // experiment in the repository.
  std::uint64_t state = 0;
  const auto v1 = splitmix64(state);
  std::uint64_t state2 = 0;
  const auto v1_again = splitmix64(state2);
  EXPECT_EQ(v1, v1_again);
  EXPECT_NE(splitmix64(state), v1);  // state advanced
}

}  // namespace
