// TextTable rendering edge cases: empty tables, title/header interaction,
// ragged rows, column sizing driven by later rows, and numeric formatting.

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using minim::util::fmt_fixed;
using minim::util::TextTable;

std::vector<std::string> lines_of(const std::string& rendered) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < rendered.size()) {
    const std::size_t pos = rendered.find('\n', start);
    lines.push_back(rendered.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return lines;
}

TEST(TextTable, EmptyTableRendersNothing) {
  EXPECT_EQ(TextTable().render(), "");
  EXPECT_EQ(TextTable().row_count(), 0u);
}

TEST(TextTable, TitleOnlyRendersTheTitleLine) {
  EXPECT_EQ(TextTable("just a title").render(), "just a title\n");
}

TEST(TextTable, HeaderOnlyRendersHeaderAndRule) {
  TextTable table;
  table.set_header({"ab", "c"});
  const auto lines = lines_of(table.render());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "ab  c");
  EXPECT_EQ(lines[1], "-----");  // widths 2 + gap 2 + 1
}

TEST(TextTable, ColumnsWidenToTheLargestCellAnywhere) {
  TextTable table("t");
  table.set_header({"x", "y"});
  table.add_row({"1", "2"});
  table.add_row({"wide-cell", "3"});
  const auto lines = lines_of(table.render());
  ASSERT_EQ(lines.size(), 5u);  // title, header, rule, 2 rows
  EXPECT_EQ(lines[1], "x          y");  // header padded to the wide cell
  EXPECT_EQ(lines[3], "1          2");
  EXPECT_EQ(lines[4], "wide-cell  3");
}

TEST(TextTable, RaggedRowsRenderTheirOwnCells) {
  // A row longer than the header grows the width table; a shorter row just
  // stops early — neither crashes nor disturbs other rows.
  TextTable table;
  table.set_header({"a", "b"});
  table.add_row({"1"});
  table.add_row({"1", "2", "3"});
  const auto lines = lines_of(table.render());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[2], "1");
  EXPECT_EQ(lines[3], "1  2  3");
}

TEST(TextTable, NumericRowsHonourPrecision) {
  TextTable table;
  table.add_row_numeric({1.0, 2.345, -0.5}, 1);
  table.add_row_numeric({10.0}, 0);
  const auto lines = lines_of(table.render());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "1.0  2.3  -0.5");
  EXPECT_EQ(lines[1], "10 ");  // padded to the 3-wide first column
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(FmtFixed, RoundsAndPadsLikeTheFigureTables) {
  EXPECT_EQ(fmt_fixed(1.0, 2), "1.00");
  EXPECT_EQ(fmt_fixed(2.675, 2), "2.67");  // binary 2.675 is just below .675
  EXPECT_EQ(fmt_fixed(-3.14159, 3), "-3.142");
  EXPECT_EQ(fmt_fixed(0.0, 0), "0");
}

}  // namespace
