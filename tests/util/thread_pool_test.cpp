#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using minim::util::ThreadPool;

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.parallel_for(kN, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(3);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 5; });
  EXPECT_EQ(value, 5);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 5000;
  std::vector<long> out(kN, 0);
  pool.parallel_for(kN, [&](std::size_t i) { out[i] = static_cast<long>(i) * 3; });
  const long total = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(total, 3L * kN * (kN - 1) / 2);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(257, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 257);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  // The recolor fan-out's common case: a handful of dirty components on a
  // wider pool.  Exactly `count` helpers are enlisted; every index runs once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(3);
  pool.parallel_for(3, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForReusableAfterException) {
  // A throwing batch must not poison the pool: the same pool serves a clean
  // parallel_for afterwards (the strategy keeps one pool across events).
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   64, [&](std::size_t i) {
                     if (i % 7 == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  std::atomic<int> counter{0};
  pool.parallel_for(64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ParallelForRunsOnCallerWhenWorkersBusy) {
  // The caller participates in its own loop, so a pool whose workers are
  // wedged on other work still completes (the no-deadlock guarantee the
  // recolor fan-out leans on).
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto wedged = pool.submit([gate] { gate.wait(); });
  std::atomic<int> counter{0};
  // The lone worker stays wedged until every iteration has run, so the
  // caller must execute all ten itself; the final iteration unwedges the
  // worker so parallel_for's helper task (queued behind it) can retire.
  pool.parallel_for(10, [&](std::size_t) {
    if (counter.fetch_add(1) + 1 == 10) release.set_value();
  });
  EXPECT_EQ(counter.load(), 10);
  wedged.get();
}

TEST(ThreadPool, BackToBackParallelForsReuseThePool) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (std::size_t round = 1; round <= 20; ++round)
    pool.parallel_for(round, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 20L * 21L / 2L);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&done] { done.fetch_add(1); });
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
