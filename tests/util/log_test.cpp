// Tests for util/log.hpp (previously zero coverage): level parsing and
// filtering, sink redirection, the streaming macros, and thread-safe line
// interleaving (lines may interleave, characters must not).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace {

using namespace minim;

/// Captures log output into a stringstream and restores level + sink on
/// destruction, so tests don't leak state into each other.
class LogCapture {
 public:
  explicit LogCapture(util::LogLevel level) : previous_level_(util::log_level()) {
    previous_sink_ = util::set_log_sink(&stream_);
    util::set_log_level(level);
  }
  ~LogCapture() {
    util::set_log_level(previous_level_);
    util::set_log_sink(previous_sink_);
  }
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  std::string text() const { return stream_.str(); }
  std::vector<std::string> lines() const {
    std::vector<std::string> out;
    std::istringstream in(stream_.str());
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }

 private:
  std::ostringstream stream_;
  util::LogLevel previous_level_;
  std::ostream* previous_sink_;
};

TEST(Log, ParsesLevelNames) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("info"), util::LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("warn"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), util::LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
  // Unknown strings fall back to info, per the header contract.
  EXPECT_EQ(util::parse_log_level("chatty"), util::LogLevel::kInfo);
}

TEST(Log, FiltersBelowTheGlobalLevel) {
  LogCapture capture(util::LogLevel::kWarn);
  util::log_line(util::LogLevel::kDebug, "too quiet");
  util::log_line(util::LogLevel::kInfo, "still too quiet");
  util::log_line(util::LogLevel::kWarn, "loud enough");
  util::log_line(util::LogLevel::kError, "very loud");
  EXPECT_EQ(capture.text(), "[warn] loud enough\n[error] very loud\n");
}

TEST(Log, OffSilencesEverything) {
  LogCapture capture(util::LogLevel::kOff);
  util::log_line(util::LogLevel::kError, "nope");
  EXPECT_TRUE(capture.text().empty());
}

TEST(Log, SetLevelChangesFilteringAtRuntime) {
  LogCapture capture(util::LogLevel::kError);
  util::log_line(util::LogLevel::kInfo, "dropped");
  util::set_log_level(util::LogLevel::kDebug);
  util::log_line(util::LogLevel::kDebug, "kept");
  EXPECT_EQ(capture.text(), "[debug] kept\n");
}

TEST(Log, SinkRedirectionAndRestore) {
  std::ostringstream first;
  std::ostringstream second;
  const util::LogLevel previous_level = util::log_level();
  util::set_log_level(util::LogLevel::kInfo);

  std::ostream* original = util::set_log_sink(&first);
  util::log_line(util::LogLevel::kInfo, "to first");
  // Swapping sinks returns the one being replaced.
  EXPECT_EQ(util::set_log_sink(&second), &first);
  util::log_line(util::LogLevel::kInfo, "to second");
  util::set_log_sink(original);
  util::set_log_level(previous_level);

  EXPECT_EQ(first.str(), "[info] to first\n");
  EXPECT_EQ(second.str(), "[info] to second\n");
}

TEST(Log, MacroBuildsOneLine) {
  LogCapture capture(util::LogLevel::kDebug);
  MINIM_LOG_ERROR() << "x=" << 42 << " y=" << 1.5;
  EXPECT_EQ(capture.text(), "[error] x=42 y=1.5\n");
}

TEST(Log, MacroRespectsLevelFiltering) {
  LogCapture capture(util::LogLevel::kError);
  MINIM_LOG_DEBUG() << "invisible";
  MINIM_LOG_WARN() << "also invisible";
  EXPECT_TRUE(capture.text().empty());
}

TEST(Log, ConcurrentWritersNeverTearLines) {
  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  LogCapture capture(util::LogLevel::kInfo);
  {
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      writers.emplace_back([t] {
        for (int i = 0; i < kLines; ++i)
          MINIM_LOG_INFO() << "writer" << t << " line" << i;
      });
    for (auto& writer : writers) writer.join();
  }

  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kLines));
  std::vector<int> per_writer(kThreads, 0);
  for (const std::string& line : lines) {
    // Every line must be exactly "[info] writerT lineI" — interleaved
    // characters from two writers would break the format.
    int t = -1;
    int i = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "[info] writer%d line%d", &t, &i), 2)
        << "torn line: '" << line << "'";
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    EXPECT_GE(i, 0);
    EXPECT_LT(i, kLines);
    ++per_writer[static_cast<std::size_t>(t)];
  }
  EXPECT_TRUE(std::all_of(per_writer.begin(), per_writer.end(),
                          [](int count) { return count == kLines; }));
}

}  // namespace
