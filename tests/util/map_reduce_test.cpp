// Tests for the deterministic map-reduce primitive (util/map_reduce.hpp):
// in-order reduction, per-item stream derivation, stream offset/override
// (the sharding hooks), thread-count invariance, and exception propagation.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "util/map_reduce.hpp"
#include "util/rng.hpp"

namespace {

using namespace minim;

TEST(MapReduce, ReducesInItemOrderRegardlessOfThreads) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::MapReduceOptions options;
    options.threads = threads;
    std::vector<std::size_t> order;
    util::map_reduce(
        64, options, [](std::size_t i, util::Rng&) { return i * 3; },
        [&](std::size_t i, std::size_t&& value) {
          EXPECT_EQ(value, i * 3);
          order.push_back(i);
        });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(MapReduce, ItemStreamsAreForStreamOfSeed) {
  util::MapReduceOptions options;
  options.seed = 99;
  options.threads = 2;
  std::vector<std::uint64_t> draws(16);
  util::map_reduce(
      16, options, [](std::size_t, util::Rng& rng) { return rng(); },
      [&](std::size_t i, std::uint64_t&& draw) { draws[i] = draw; });
  for (std::size_t i = 0; i < draws.size(); ++i) {
    util::Rng expected = util::Rng::for_stream(99, i);
    EXPECT_EQ(draws[i], expected()) << i;
  }
}

TEST(MapReduce, StreamOffsetShiftsTheStreamSpace) {
  // A shard running items [0, 4) of a larger space still draws the global
  // streams [10, 14) — the property trial-range sharding rests on.
  util::MapReduceOptions options;
  options.seed = 7;
  options.stream_offset = 10;
  std::vector<std::uint64_t> draws(4);
  util::map_reduce(
      4, options, [](std::size_t, util::Rng& rng) { return rng(); },
      [&](std::size_t i, std::uint64_t&& draw) { draws[i] = draw; });
  for (std::size_t i = 0; i < draws.size(); ++i) {
    util::Rng expected = util::Rng::for_stream(7, 10 + i);
    EXPECT_EQ(draws[i], expected()) << i;
  }
}

TEST(MapReduce, StreamOfOverridesTheOffset) {
  util::MapReduceOptions options;
  options.seed = 7;
  options.stream_offset = 1000;  // must be ignored when stream_of is set
  options.stream_of = [](std::size_t i) { return 5 * i + 2; };
  std::vector<std::uint64_t> draws(5);
  util::map_reduce(
      5, options, [](std::size_t, util::Rng& rng) { return rng(); },
      [&](std::size_t i, std::uint64_t&& draw) { draws[i] = draw; });
  for (std::size_t i = 0; i < draws.size(); ++i) {
    util::Rng expected = util::Rng::for_stream(7, 5 * i + 2);
    EXPECT_EQ(draws[i], expected()) << i;
  }
}

TEST(MapReduce, ThreadCountInvariantResults) {
  auto run_with = [](std::size_t threads) {
    util::MapReduceOptions options;
    options.seed = 2001;
    options.threads = threads;
    std::vector<double> values;
    util::map_reduce(
        40, options,
        [](std::size_t, util::Rng& rng) {
          double sum = 0;
          for (int draw = 0; draw < 10; ++draw) sum += rng.uniform01();
          return sum;
        },
        [&](std::size_t, double&& value) { values.push_back(value); });
    return values;
  };
  const std::vector<double> serial = run_with(1);
  const std::vector<double> parallel = run_with(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << i;  // EQ, not NEAR: bit-identical
}

TEST(MapReduce, MoveOnlyResultsAreMovedIntoReduce) {
  util::MapReduceOptions options;
  options.threads = 2;
  std::size_t sum = 0;
  util::map_reduce(
      8, options,
      [](std::size_t i, util::Rng&) { return std::make_unique<std::size_t>(i); },
      [&](std::size_t i, std::unique_ptr<std::size_t>&& value) {
        ASSERT_TRUE(value);
        EXPECT_EQ(*value, i);
        sum += *value;
      });
  EXPECT_EQ(sum, 28u);
}

TEST(MapReduce, PropagatesMapExceptions) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::MapReduceOptions options;
    options.threads = threads;
    EXPECT_THROW(
        util::map_reduce(
            16, options,
            [](std::size_t i, util::Rng&) -> int {
              if (i == 11) throw std::runtime_error("boom");
              return 0;
            },
            [](std::size_t, int&&) {}),
        std::runtime_error);
  }
}

TEST(MapReduce, ZeroItemsIsANoOp) {
  util::MapReduceOptions options;
  bool reduced = false;
  util::map_reduce(
      0, options, [](std::size_t, util::Rng&) { return 0; },
      [&](std::size_t, int&&) { reduced = true; });
  EXPECT_FALSE(reduced);
}

}  // namespace
