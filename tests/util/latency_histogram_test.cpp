#include "util/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace minim::util {
namespace {

TEST(LatencyHistogram, EmptyReportsZeroes) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(LatencyHistogram, QuantileRejectsOutOfRange) {
  LatencyHistogram h;
  h.record(42);
  EXPECT_THROW(h.quantile(-0.01), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.01), std::invalid_argument);
  EXPECT_THROW(h.quantile(2.0), std::invalid_argument);
}

TEST(LatencyHistogram, SingleSampleIsExactAtEveryQuantile) {
  LatencyHistogram h;
  h.record(777);
  for (double q : {0.0, 0.1, 0.5, 0.99, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 777.0) << "q=" << q;
  EXPECT_EQ(h.min(), 777u);
  EXPECT_EQ(h.max(), 777u);
  EXPECT_DOUBLE_EQ(h.mean(), 777.0);
}

TEST(LatencyHistogram, SmallValuesUseExactUnitBuckets) {
  // Below 2^kSubBits every value has its own bucket, so quantiles over
  // small samples are exact, not approximate.
  LatencyHistogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 4u, 5u}) h.record(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.2), 1.0);   // ceil(0.2*5) = 1st sample
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(LatencyHistogram, QuantileClampsToObservedMinMax) {
  LatencyHistogram h;
  h.record(1000);
  h.record(1001);
  // Both land in one log bucket; the midpoint estimate must still be
  // clamped into [min, max].
  EXPECT_GE(h.quantile(0.5), 1000.0);
  EXPECT_LE(h.quantile(0.5), 1001.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1001.0);
}

TEST(LatencyHistogram, RelativeErrorBoundedAcrossMagnitudes) {
  // Against a sorted-sample oracle: every quantile estimate must land
  // within 1/kSubBuckets of the true order statistic.
  util::Rng rng(7);
  LatencyHistogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~6 decades, the shape of real latency data.
    const double log_value = rng.uniform(0.0, 20.0);
    const auto v = static_cast<std::uint64_t>(std::exp2(log_value));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const double tolerance = 1.0 / static_cast<double>(LatencyHistogram::kSubBuckets);
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double exact = static_cast<double>(samples[rank - 1]);
    const double estimate = h.quantile(q);
    EXPECT_NEAR(estimate, exact, exact * tolerance) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  util::Rng rng(11);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(1u << 20);
    combined.record(v);
    (i % 2 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999})
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
}

TEST(LatencyHistogram, ResetDropsEverything) {
  LatencyHistogram h;
  h.record(5);
  h.record(1u << 30);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  h.record(9);  // still usable after reset
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 9.0);
}

TEST(LatencyHistogram, HandlesExtremeValues) {
  LatencyHistogram h;
  h.record(0);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0),
                   static_cast<double>(~std::uint64_t{0}));
}

TEST(LatencyHistogram, SummaryMentionsTheQuantiles) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v * 1000);
  const std::string line = h.summary(1e-3, "us");
  EXPECT_NE(line.find("n=100"), std::string::npos) << line;
  EXPECT_NE(line.find("p50="), std::string::npos) << line;
  EXPECT_NE(line.find("p99.9="), std::string::npos) << line;
  EXPECT_NE(line.find("us"), std::string::npos) << line;
}

}  // namespace
}  // namespace minim::util
