// util/rpc.hpp: the fleet wire format.  Frames and codecs are exercised
// over real socketpairs (so the partial-I/O path underneath is live), and
// the decoders are fed truncations and hostile length prefixes — every
// byte of a frame comes off a network in production, so "garbage in,
// false out" is the contract, never a throw or an over-read.

#include "util/rpc.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "util/fd_io.hpp"

namespace {

using namespace minim::util;

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    for (int fd : fds)
      if (fd >= 0) ::close(fd);
  }
};

TEST(Rpc, FramesRoundTripInOrder) {
  SocketPair pair;
  const std::string big(1 << 20, 'x');  // bigger than any socket buffer
  std::thread sender([&] {
    EXPECT_TRUE(send_frame(pair.fds[0], RpcType::kHello, "hi"));
    EXPECT_TRUE(send_frame(pair.fds[0], RpcType::kJob, big));
    EXPECT_TRUE(send_frame(pair.fds[0], RpcType::kShutdown, ""));
  });

  RpcFrame frame;
  ASSERT_EQ(recv_frame(pair.fds[1], frame), RecvStatus::kFrame);
  EXPECT_EQ(frame.type, RpcType::kHello);
  EXPECT_EQ(frame.payload, "hi");
  ASSERT_EQ(recv_frame(pair.fds[1], frame), RecvStatus::kFrame);
  EXPECT_EQ(frame.type, RpcType::kJob);
  EXPECT_EQ(frame.payload, big);
  ASSERT_EQ(recv_frame(pair.fds[1], frame), RecvStatus::kFrame);
  EXPECT_EQ(frame.type, RpcType::kShutdown);
  EXPECT_TRUE(frame.payload.empty());
  sender.join();
}

TEST(Rpc, CleanCloseBetweenFramesIsClosed) {
  SocketPair pair;
  ASSERT_TRUE(send_frame(pair.fds[0], RpcType::kHello, "x"));
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  RpcFrame frame;
  ASSERT_EQ(recv_frame(pair.fds[1], frame), RecvStatus::kFrame);
  EXPECT_EQ(recv_frame(pair.fds[1], frame), RecvStatus::kClosed);
}

TEST(Rpc, TruncatedFrameIsErrorNotClosed) {
  // A peer that dies mid-frame must not look like a clean goodbye.
  SocketPair pair;
  std::string frame_bytes;
  {
    // Hand-build a JOB header claiming 100 payload bytes, send only 3.
    const unsigned char header[8] = {2, 0, 0, 0, 100, 0, 0, 0};
    frame_bytes.assign(reinterpret_cast<const char*>(header), 8);
    frame_bytes += "abc";
  }
  ASSERT_TRUE(write_all(pair.fds[0], frame_bytes.data(), frame_bytes.size()));
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  RpcFrame frame;
  EXPECT_EQ(recv_frame(pair.fds[1], frame), RecvStatus::kError);
}

TEST(Rpc, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  SocketPair pair;
  // Type HELLO, length 0xffffffff: recv_frame must refuse, not try to
  // allocate 4 GiB and read forever.
  const unsigned char header[8] = {1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(write_all(pair.fds[0], header, sizeof header));
  RpcFrame frame;
  EXPECT_EQ(recv_frame(pair.fds[1], frame, /*max_payload=*/1 << 20),
            RecvStatus::kError);
}

TEST(Rpc, UnknownFrameTypeIsError) {
  SocketPair pair;
  const unsigned char header[8] = {99, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_TRUE(write_all(pair.fds[0], header, sizeof header));
  RpcFrame frame;
  EXPECT_EQ(recv_frame(pair.fds[1], frame), RecvStatus::kError);
}

TEST(Rpc, HelloCodecRoundTrips) {
  AgentHello hello;
  hello.capacity = 16;
  hello.name = "box-a:12345";
  AgentHello back;
  ASSERT_TRUE(decode_hello(encode_hello(hello), back));
  EXPECT_EQ(back.capacity, 16u);
  EXPECT_EQ(back.name, "box-a:12345");
}

TEST(Rpc, JobCodecRoundTripsArbitraryArgs) {
  JobRequest request;
  request.job = (std::uint64_t{7} << 40) + 42;  // exercises the high word
  request.args = {"--run-unit=0/3/0/5", "--unit-out=/tmp/shard_0.csv",
                  "--trials=5", "", "spaces and = signs"};
  JobRequest back;
  ASSERT_TRUE(decode_job(encode_job(request), back));
  EXPECT_EQ(back.job, request.job);
  EXPECT_EQ(back.args, request.args);
}

TEST(Rpc, ResultCodecRoundTripsBinaryBytes) {
  JobResult result;
  result.job = 3;
  result.ok = true;
  result.exit_code = 0;
  result.log = "worker said things\n";
  result.bytes = std::string("csv,with\nnul\0bytes", 18);
  JobResult back;
  ASSERT_TRUE(decode_result(encode_result(result), back));
  EXPECT_EQ(back.job, 3u);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.exit_code, 0);
  EXPECT_EQ(back.log, result.log);
  EXPECT_EQ(back.bytes, result.bytes);
}

TEST(Rpc, ResultCodecPreservesNegativeExitCode) {
  JobResult result;
  result.job = 1;
  result.ok = false;
  result.exit_code = -1;  // "killed / never ran" must survive the trip
  JobResult back;
  ASSERT_TRUE(decode_result(encode_result(result), back));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.exit_code, -1);
}

TEST(Rpc, DecodersRejectTruncationAtEveryByte) {
  JobRequest request;
  request.job = 9;
  request.args = {"--run-unit=1/2/3/4", "--unit-out=x.csv"};
  const std::string whole = encode_job(request);
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    JobRequest back;
    EXPECT_FALSE(decode_job(whole.substr(0, cut), back))
        << "accepted a " << cut << "-byte prefix of a " << whole.size()
        << "-byte payload";
  }
  JobRequest back;
  EXPECT_TRUE(decode_job(whole, back));
  // Trailing junk is also a malformed payload, not something to ignore.
  EXPECT_FALSE(decode_job(whole + "z", back));
}

TEST(Rpc, DecodersRejectLyingStringLengths) {
  // A string length prefix pointing past the payload end must fail cleanly.
  std::string payload;
  payload.append({4, 0, 0, 0});                      // capacity = 4
  payload.append({(char)0xff, (char)0xff, 0, 0});    // name length = 65535
  payload.append("ab");                              // ...but 2 bytes follow
  AgentHello hello;
  EXPECT_FALSE(decode_hello(payload, hello));
}

TEST(Rpc, ConnectTcpToNothingFails) {
  // Port 1 on loopback: nothing listens there in any sane environment.
  EXPECT_LT(connect_tcp("127.0.0.1", 1), 0);
}

}  // namespace
