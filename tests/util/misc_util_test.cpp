// Tests for CSV emission, table rendering, option parsing and geometry.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/geometry.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using minim::util::clamp_to_box;
using minim::util::CsvWriter;
using minim::util::distance;
using minim::util::distance_squared;
using minim::util::Options;
using minim::util::TextTable;
using minim::util::Vec2;

// ---------------------------------------------------------------- CSV

TEST(Csv, PlainRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "y"});
  csv.row({"1", "2"});
  csv.row({"3", "4"});
  EXPECT_EQ(out.str(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowWidthEnforced) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b", "c"});
  EXPECT_THROW(csv.row({"1", "2"}), std::invalid_argument);
}

TEST(Csv, HeaderTwiceRejected) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"b"}), std::invalid_argument);
}

TEST(Csv, NumericFormatting) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row_numeric({1.5, 2.0});
  EXPECT_EQ(out.str(), "1.5,2\n");
}

// ---------------------------------------------------------------- Table

TEST(Table, AlignsColumns) {
  TextTable t("Title");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("Title"), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  // Header separator rule present.
  EXPECT_NE(rendered.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumericRowsUsePrecision) {
  TextTable t;
  t.add_row_numeric({3.14159, 2.0}, 2);
  EXPECT_NE(t.render().find("3.14"), std::string::npos);
  EXPECT_NE(t.render().find("2.00"), std::string::npos);
}

TEST(Table, FmtFixed) {
  EXPECT_EQ(minim::util::fmt_fixed(1.005, 1), "1.0");
  EXPECT_EQ(minim::util::fmt_fixed(-2.5, 0), "-2");  // round-half-even
}

// ---------------------------------------------------------------- Options

TEST(Options, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--runs=50", "--seed=7"};
  Options opts(3, argv);
  EXPECT_EQ(opts.get_int("runs", 0), 50);
  EXPECT_EQ(opts.get_int("seed", 0), 7);
}

TEST(Options, ParsesKeySpaceValue) {
  const char* argv[] = {"prog", "--runs", "25"};
  Options opts(3, argv);
  EXPECT_EQ(opts.get_int("runs", 0), 25);
}

TEST(Options, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--csv"};
  Options opts(2, argv);
  EXPECT_TRUE(opts.get_bool("csv", false));
  EXPECT_FALSE(opts.get_bool("other", false));
}

TEST(Options, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=TRUE"};
  Options opts(4, argv);
  EXPECT_TRUE(opts.get_bool("a", false));
  EXPECT_FALSE(opts.get_bool("b", true));
  EXPECT_TRUE(opts.get_bool("c", false));
}

TEST(Options, DefaultsWhenAbsent) {
  Options opts;
  EXPECT_EQ(opts.get("name", "fallback"), "fallback");
  EXPECT_EQ(opts.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(opts.get_double("x", 2.5), 2.5);
}

TEST(Options, PositionalCollected) {
  const char* argv[] = {"prog", "input.txt", "--k=1", "more"};
  Options opts(4, argv);
  ASSERT_EQ(opts.positional().size(), 2u);
  EXPECT_EQ(opts.positional()[0], "input.txt");
  EXPECT_EQ(opts.positional()[1], "more");
}

TEST(Options, BadIntegerThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  Options opts(2, argv);
  EXPECT_THROW(opts.get_int("n", 0), std::invalid_argument);
}

TEST(Options, DoubleParsing) {
  const char* argv[] = {"prog", "--r=20.5"};
  Options opts(2, argv);
  EXPECT_DOUBLE_EQ(opts.get_double("r", 0), 20.5);
}

// ---------------------------------------------------------------- Geometry

TEST(Geometry, DistanceBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_squared({1, 1}, {4, 5}), 25.0);
  EXPECT_DOUBLE_EQ(distance({2, 3}, {2, 3}), 0.0);
}

TEST(Geometry, VectorOps) {
  const Vec2 a{1, 2};
  const Vec2 b{3, -1};
  EXPECT_EQ(a + b, Vec2(4, 1));
  EXPECT_EQ(a - b, Vec2(-2, 3));
  EXPECT_EQ(a * 2.0, Vec2(2, 4));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
}

TEST(Geometry, FromAngleIsUnit) {
  for (double angle : {0.0, 0.7, 1.5707963267948966, 3.0}) {
    const Vec2 v = Vec2::from_angle(angle);
    EXPECT_NEAR(v.norm(), 1.0, 1e-12) << angle;
  }
  EXPECT_NEAR(Vec2::from_angle(0.0).x, 1.0, 1e-12);
}

TEST(Geometry, ClampToBox) {
  EXPECT_EQ(clamp_to_box({-5, 50}, 100, 100), Vec2(0, 50));
  EXPECT_EQ(clamp_to_box({105, -2}, 100, 100), Vec2(100, 0));
  EXPECT_EQ(clamp_to_box({42, 17}, 100, 100), Vec2(42, 17));
}

TEST(Geometry, ToStringContainsCoords) {
  EXPECT_EQ(Vec2(1.5, -2).to_string(), "(1.5, -2)");
}

}  // namespace
