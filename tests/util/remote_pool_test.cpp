// util::RemotePool: the fleet driver, tested against in-process agents
// (run_worker_agent on std::threads with synthetic JobRunners) so every
// scheduling decision is observable and failure injection is exact.  The
// production subprocess runner is covered end-to-end by the orchestrator
// fleet tests and the CI loopback gate; here the runners are scripted.

#include "util/remote_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/rpc.hpp"
#include "util/worker_pool.hpp"

namespace {

using namespace minim::util;
using namespace std::chrono_literals;

/// A per-test scratch directory, so unit_<i>.csv names never collide (or
/// leak state) across cases.
std::string fresh_dir(const std::string& name) {
  const std::string dir = std::string(testing::TempDir()) + "remote_pool_" +
                          name + "/";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// An in-process agent: run_worker_agent on a thread, joined on scope exit
/// (the pool's SHUTDOWN frame, or an injected death, ends the loop).
struct TestAgent {
  std::thread thread;
  TestAgent(std::uint16_t port, std::string name, std::uint32_t capacity,
            JobRunner runner, std::size_t die_after = 0,
            std::chrono::milliseconds connect_delay = 0ms) {
    thread = std::thread([=] {
      if (connect_delay.count() > 0) std::this_thread::sleep_for(connect_delay);
      AgentOptions options;
      options.port = port;
      options.capacity = capacity;
      options.name = std::move(name);
      options.die_after = die_after;
      run_worker_agent(options, runner);
    });
  }
  ~TestAgent() {
    if (thread.joinable()) thread.join();
  }
};

std::vector<WorkerJob> make_jobs(const std::string& dir, std::size_t count,
                                 std::size_t max_attempts = 1) {
  std::vector<WorkerJob> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    WorkerJob job;
    job.args = {"driver-binary", "--unit-out=" + dir + "unit_" +
                                     std::to_string(i) + ".csv",
                "--unit-id=" + std::to_string(i)};
    job.out_path = dir + "unit_" + std::to_string(i) + ".csv";
    job.max_attempts = max_attempts;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// The standard synthetic worker: succeed with bytes derived from the job
/// id (what a deterministic shard worker would produce).
JobResult ok_result(std::uint64_t job, const std::string& who = "x") {
  JobResult result;
  result.job = job;
  result.ok = true;
  result.exit_code = 0;
  result.bytes = "shard-" + std::to_string(job) + "-by-" + who + "\n";
  return result;
}

TEST(RemotePool, DispatchesAcrossAgentsAndWritesResults) {
  const std::string dir = fresh_dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  RemotePoolOptions options;
  options.hello_timeout_s = 10.0;
  RemotePool pool(options);

  JobRunner runner = [](const JobRequest& request) {
    return ok_result(request.job);
  };
  std::vector<WorkerPoolEvent::Kind> kinds;
  std::vector<WorkerOutcome> outcomes;
  {
    TestAgent a(pool.port(), "a", 1, runner);
    TestAgent b(pool.port(), "b", 1, runner);
    outcomes = pool.run_jobs(
        make_jobs(dir, 8),
        [&kinds](const WorkerPoolEvent& event) { kinds.push_back(event.kind); });
  }

  ASSERT_EQ(outcomes.size(), 8u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << "unit " << i;
    EXPECT_EQ(outcomes[i].attempts, 1u);
    EXPECT_FALSE(outcomes[i].executor.empty());
    EXPECT_EQ(read_file(dir + "unit_" + std::to_string(i) + ".csv"),
              "shard-" + std::to_string(i) + "-by-x\n");
  }
  EXPECT_EQ(pool.stats().agents_seen, 2u);
  EXPECT_EQ(pool.stats().agents_lost, 0u);
  // Two joins, eight starts, eight finishes (order interleaved).
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(),
                       WorkerPoolEvent::Kind::kAgentJoin),
            2);
  EXPECT_EQ(
      std::count(kinds.begin(), kinds.end(), WorkerPoolEvent::Kind::kStart), 8);
  EXPECT_EQ(
      std::count(kinds.begin(), kinds.end(), WorkerPoolEvent::Kind::kFinish),
      8);
}

TEST(RemotePool, CapacityWeightedDispatchFavorsTheBiggerAgent) {
  const std::string dir = fresh_dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  RemotePoolOptions options;
  options.hello_timeout_s = 10.0;
  RemotePool pool(options);

  // Uniform 30ms jobs: the capacity-3 agent holds three slots whenever the
  // queue is nonempty, so it must finish strictly more of the 12 units
  // than the capacity-1 agent.
  JobRunner slow = [](const JobRequest& request) {
    std::this_thread::sleep_for(30ms);
    return ok_result(request.job);
  };
  std::vector<WorkerOutcome> outcomes;
  {
    TestAgent big(pool.port(), "big", 3, slow);
    TestAgent small(pool.port(), "small", 1, slow);
    outcomes = pool.run_jobs(make_jobs(dir, 12));
  }
  for (const WorkerOutcome& outcome : outcomes) EXPECT_TRUE(outcome.ok);

  std::size_t big_wins = 0;
  std::size_t small_wins = 0;
  const RemotePool::Stats& stats = pool.stats();
  for (std::size_t i = 0; i < stats.agent_names.size(); ++i) {
    if (stats.agent_names[i] == "big") big_wins = stats.agent_completed[i];
    if (stats.agent_names[i] == "small") small_wins = stats.agent_completed[i];
  }
  EXPECT_EQ(big_wins + small_wins, 12u);
  EXPECT_GT(big_wins, small_wins);
}

TEST(RemotePool, FailedJobRetriesUntilItSucceeds) {
  const std::string dir = fresh_dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  RemotePoolOptions options;
  options.hello_timeout_s = 10.0;
  RemotePool pool(options);

  // Unit 2 fails on its first execution, succeeds on the second.
  std::atomic<int> unit2_runs{0};
  JobRunner flaky = [&unit2_runs](const JobRequest& request) {
    if (request.job == 2 && unit2_runs.fetch_add(1) == 0) {
      JobResult result;
      result.job = request.job;
      result.ok = false;
      result.exit_code = 9;
      result.log = "synthetic failure";
      return result;
    }
    return ok_result(request.job);
  };

  std::size_t retries = 0;
  std::vector<WorkerOutcome> outcomes;
  {
    TestAgent a(pool.port(), "a", 1, flaky);
    outcomes = pool.run_jobs(make_jobs(dir, 4, /*max_attempts=*/3),
                             [&retries](const WorkerPoolEvent& event) {
                               if (event.kind == WorkerPoolEvent::Kind::kRetry)
                                 ++retries;
                             });
  }
  EXPECT_EQ(retries, 1u);
  for (const WorkerOutcome& outcome : outcomes) EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcomes[2].attempts, 2u);
}

TEST(RemotePool, ExhaustedRetryBudgetIsAFinalFailureNotAHang) {
  const std::string dir = fresh_dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  RemotePoolOptions options;
  options.hello_timeout_s = 10.0;
  RemotePool pool(options);

  JobRunner doomed = [](const JobRequest& request) {
    JobResult result;
    result.job = request.job;
    if (request.job == 1) {
      result.ok = false;
      result.exit_code = 1;
      return result;
    }
    return ok_result(request.job);
  };
  std::vector<WorkerOutcome> outcomes;
  {
    TestAgent a(pool.port(), "a", 1, doomed);
    outcomes = pool.run_jobs(make_jobs(dir, 3, /*max_attempts=*/2));
  }
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].attempts, 2u);
  EXPECT_TRUE(outcomes[2].ok);
}

TEST(RemotePool, AgentDeathMidRunRequeuesAndCompletes) {
  const std::string dir = fresh_dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  RemotePoolOptions options;
  options.hello_timeout_s = 10.0;
  RemotePool pool(options);

  // "mayfly" drops the connection after its first result; "steady" must
  // absorb the requeued work.  Jobs sleep so mayfly reliably holds units
  // in flight when it dies.
  JobRunner slow = [](const JobRequest& request) {
    std::this_thread::sleep_for(20ms);
    return ok_result(request.job);
  };
  std::size_t lost = 0;
  std::vector<WorkerOutcome> outcomes;
  {
    TestAgent mayfly(pool.port(), "mayfly", 2, slow, /*die_after=*/1);
    TestAgent steady(pool.port(), "steady", 1, slow);
    outcomes = pool.run_jobs(
        make_jobs(dir, 8, /*max_attempts=*/3),
        [&lost](const WorkerPoolEvent& event) {
          if (event.kind == WorkerPoolEvent::Kind::kAgentLost) ++lost;
        });
  }
  EXPECT_EQ(lost, 1u);
  EXPECT_EQ(pool.stats().agents_lost, 1u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << "unit " << i;
    EXPECT_FALSE(read_file(dir + "unit_" + std::to_string(i) + ".csv").empty());
  }
}

TEST(RemotePool, StragglerGetsASpeculativeCopyAndFirstResultWins) {
  const std::string dir = fresh_dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  RemotePoolOptions options;
  options.hello_timeout_s = 10.0;
  options.straggler_factor = 3.0;
  options.straggler_min_s = 0.05;
  options.straggler_min_samples = 2;
  RemotePool pool(options);

  // Deterministic straggle: "tortoise" connects first and alone, so unit 0
  // is dispatched to it and blocks on the latch.  "hare" joins late, clears
  // every other unit (seeding the duration median), then sits idle — the
  // straggler scan must hand it a speculative copy of unit 0.  Hare's copy
  // releases the latch only after finishing, and tortoise then dawdles
  // another 200ms, so hare's bytes win the race by construction.
  std::promise<void> latch;
  std::shared_future<void> released(latch.get_future());
  JobRunner tortoise_runner = [released](const JobRequest& request) {
    if (request.job == 0) {
      released.wait();
      std::this_thread::sleep_for(200ms);
      return ok_result(request.job, "tortoise");
    }
    return ok_result(request.job, "tortoise");
  };
  JobRunner hare_runner = [&latch](const JobRequest& request) {
    if (request.job == 0) {
      JobResult result = ok_result(request.job, "hare");
      latch.set_value();
      return result;
    }
    std::this_thread::sleep_for(10ms);
    return ok_result(request.job, "hare");
  };

  std::size_t redispatches = 0;
  std::vector<WorkerOutcome> outcomes;
  {
    TestAgent tortoise(pool.port(), "tortoise", 1, tortoise_runner);
    TestAgent hare(pool.port(), "hare", 1, hare_runner, 0,
                   /*connect_delay=*/300ms);
    outcomes = pool.run_jobs(
        make_jobs(dir, 6),
        [&redispatches](const WorkerPoolEvent& event) {
          if (event.kind == WorkerPoolEvent::Kind::kRedispatch) ++redispatches;
        });
  }
  EXPECT_GE(redispatches, 1u);
  EXPECT_EQ(pool.stats().redispatched, redispatches);
  for (const WorkerOutcome& outcome : outcomes) EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcomes[0].executor, "hare");
  EXPECT_EQ(read_file(dir + "unit_0.csv"), "shard-0-by-hare\n");
  // The speculative copy never charged the retry budget.
  EXPECT_EQ(outcomes[0].attempts, 1u);
}

TEST(RemotePool, ThrowsWhenNoAgentEverConnects) {
  RemotePoolOptions options;
  options.hello_timeout_s = 0.2;
  RemotePool pool(options);
  EXPECT_THROW(pool.run_jobs(make_jobs(testing::TempDir(), 2)),
               std::runtime_error);
}

TEST(RemotePool, EmptyBatchNeedsNoAgents) {
  RemotePoolOptions options;
  options.hello_timeout_s = 0.1;
  RemotePool pool(options);
  EXPECT_TRUE(pool.run_jobs({}).empty());
}

TEST(RemotePool, EphemeralPortIsBoundAtConstruction) {
  RemotePool pool(RemotePoolOptions{});
  EXPECT_GT(pool.port(), 0);
  // A second pool gets a different port: both are really bound.
  RemotePool other(RemotePoolOptions{});
  EXPECT_NE(pool.port(), other.port());
}

}  // namespace
