#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace {

using minim::util::Histogram;
using minim::util::quantile_sorted;
using minim::util::RunningStats;
using minim::util::Summary;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.stderror(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  minim::util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(-5, 17));

  RunningStats whole;
  for (double x : xs) whole.add(x);

  RunningStats left;
  RunningStats right;
  for (std::size_t i = 0; i < xs.size(); ++i) (i < 313 ? left : right).add(xs[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  minim::util::Rng rng(4);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Quantile, EndpointsAndMedian) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 3.0);
}

TEST(Quantile, InterpolatesBetweenSamples) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.75), 7.5);
}

TEST(Quantile, RejectsBadInput) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile_sorted(xs, 1.1), std::invalid_argument);
}

TEST(Summary, OfEmptyIsAllZero) {
  const Summary s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, MatchesHandComputation) {
  const std::vector<double> xs{9, 1, 5, 3, 7};
  const Summary s = Summary::of(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);    // bucket 0 (inclusive lower edge)
  h.add(1.99);   // bucket 0
  h.add(2.0);    // bucket 1
  h.add(9.999);  // bucket 4
  h.add(10.0);   // overflow (hi is exclusive)
  h.add(-0.1);   // underflow
  EXPECT_EQ(h.count_in_bucket(0), 2u);
  EXPECT_EQ(h.count_in_bucket(1), 1u);
  EXPECT_EQ(h.count_in_bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string render = h.render(10);
  EXPECT_NE(render.find("1"), std::string::npos);
  EXPECT_NE(render.find("2"), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileRejectsOutOfRangeQ) {
  Histogram h(0.0, 10.0, 5);
  h.add(5.0);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, QuantileOfSingleBucket) {
  // One sample in one bucket interpolates to the bucket's middle — the
  // best unbiased estimate when only the bucket is known.
  Histogram h(0.0, 10.0, 5);
  h.add(3.7);  // bucket [2, 4)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(Histogram, QuantileWalksCumulativeCounts) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5, 9.5})
    h.add(x);
  // One sample per unit bucket: quantiles land on the sample centers.
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 9.5);
}

TEST(Histogram, QuantileClampsUnderflowAndOverflowToTheEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);  // underflow: real value unknown, counted at lo
  h.add(5.0);
  h.add(999.0);   // overflow: counted at hi
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

}  // namespace
