// util::read_exact / util::write_all: the partial-I/O loops every socket
// layer in the tree shares (serve/transport, util/rpc).  The tests
// manufacture the hostile cases directly: a send buffer far smaller than
// the message (short writes), a reader bombarded with signals while
// blocked (EINTR), a peer that closes mid-message (truncated frame), and
// a non-socket descriptor (the write(2)/read(2) fallback).

#include "util/fd_io.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

using minim::util::IoStatus;
using minim::util::read_exact;
using minim::util::write_all;

/// A connected socketpair with tiny kernel buffers, so multi-kilobyte
/// messages are guaranteed to need many short writes.
struct TinySocketPair {
  int fds[2] = {-1, -1};
  TinySocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const int small = 4096;  // the kernel clamps to its minimum if lower
    ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
    ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof small);
  }
  ~TinySocketPair() {
    for (int fd : fds)
      if (fd >= 0) ::close(fd);
  }
};

std::string pattern_bytes(std::size_t n) {
  std::string bytes(n, '\0');
  for (std::size_t i = 0; i < n; ++i)
    bytes[i] = static_cast<char>('a' + (i * 31 + i / 251) % 26);
  return bytes;
}

TEST(FdIo, ShortWritesDeliverTheWholeMessage) {
  // 1 MiB through a ~4 KiB send buffer: write_all must loop through
  // hundreds of partial sends while the reader drains the other end.
  TinySocketPair pair;
  const std::string message = pattern_bytes(1 << 20);

  std::string received(message.size(), '\0');
  std::thread reader([&] {
    EXPECT_EQ(read_exact(pair.fds[1], received.data(), received.size()),
              IoStatus::kOk);
  });
  EXPECT_TRUE(write_all(pair.fds[0], message.data(), message.size()));
  reader.join();
  EXPECT_EQ(received, message);
}

void ignore_signal(int) {}

TEST(FdIo, InterruptedReadsAndWritesResume) {
  // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART, so every signal
  // delivery makes a blocked recv/send return EINTR rather than resuming
  // transparently — exactly the case the loops exist for.
  struct sigaction action {};
  struct sigaction saved {};
  action.sa_handler = ignore_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART on purpose
  ASSERT_EQ(sigaction(SIGUSR1, &action, &saved), 0);

  TinySocketPair pair;
  const std::string message = pattern_bytes(1 << 20);
  std::string received(message.size(), '\0');

  const pthread_t self = pthread_self();
  std::atomic<bool> done{false};
  // Bombard the main thread (blocked in write_all) with signals.  The
  // reader thread starts late and drains slowly enough that the writer is
  // reliably parked in send() when signals land.
  std::thread pest([&] {
    while (!done.load()) {
      pthread_kill(self, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread reader([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(read_exact(pair.fds[1], received.data(), received.size()),
              IoStatus::kOk);
  });

  EXPECT_TRUE(write_all(pair.fds[0], message.data(), message.size()));
  reader.join();
  done.store(true);
  pest.join();
  EXPECT_EQ(received, message);

  ASSERT_EQ(sigaction(SIGUSR1, &saved, nullptr), 0);
}

TEST(FdIo, CleanCloseBeforeAnyByteIsClosedNotError) {
  TinySocketPair pair;
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  char byte = 0;
  EXPECT_EQ(read_exact(pair.fds[1], &byte, 1), IoStatus::kClosed);
}

TEST(FdIo, CloseMidMessageIsAnError) {
  // The peer delivers 3 of 8 bytes and vanishes: a truncated frame, which
  // a framing layer must distinguish from a clean end of session.
  TinySocketPair pair;
  ASSERT_TRUE(write_all(pair.fds[0], "abc", 3));
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  char frame[8];
  EXPECT_EQ(read_exact(pair.fds[1], frame, sizeof frame), IoStatus::kError);
}

TEST(FdIo, WriteToAClosedPeerFailsWithoutSigpipe) {
  TinySocketPair pair;
  ::close(pair.fds[1]);
  pair.fds[1] = -1;
  const std::string message = pattern_bytes(1 << 16);
  // MSG_NOSIGNAL: the dead peer surfaces as a false return (EPIPE), never
  // as a process-killing SIGPIPE.  A few writes may succeed into the
  // buffer first; the loop must eventually fail, not hang.
  bool ok = true;
  for (int i = 0; i < 64 && ok; ++i)
    ok = write_all(pair.fds[0], message.data(), message.size());
  EXPECT_FALSE(ok);
}

TEST(FdIo, FallsBackToPlainReadWriteOnPipes) {
  // Pipes reject send/recv with ENOTSOCK; the loops must switch to
  // read/write and still move every byte.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string message = pattern_bytes(1 << 18);  // > pipe buffer
  std::string received(message.size(), '\0');
  std::thread reader([&] {
    EXPECT_EQ(read_exact(fds[0], received.data(), received.size()),
              IoStatus::kOk);
  });
  EXPECT_TRUE(write_all(fds[1], message.data(), message.size()));
  reader.join();
  EXPECT_EQ(received, message);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
