// Cross-feature composition tests: properties that must hold when the
// extensions are combined — grid tuning must never change semantics,
// obstacles must compose with every strategy and with gossip, and the
// whole stack must agree with itself.

#include <gtest/gtest.h>

#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "net/partitions.hpp"
#include "net/propagation.hpp"
#include "strategies/factory.hpp"
#include "strategies/gossip.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace {

using minim::core::MinimStrategy;
using minim::net::AdhocNetwork;
using minim::net::CodeAssignment;
using minim::net::NodeConfig;
using minim::net::NodeId;
using minim::net::ObstructedPropagation;
using minim::net::Wall;
using minim::util::Rng;

std::vector<NodeConfig> random_configs(std::size_t n, Rng& rng) {
  std::vector<NodeConfig> configs;
  for (std::size_t i = 0; i < n; ++i)
    configs.push_back({{rng.uniform(0, 100), rng.uniform(0, 100)},
                       rng.uniform(15, 35)});
  return configs;
}

// The spatial grid is a pure accelerator: any cell size must induce the
// exact same communication graph.
class GridCellInvarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(GridCellInvarianceTest, EdgeSetIndependentOfCellSize) {
  Rng rng(1);
  const auto configs = random_configs(60, rng);

  AdhocNetwork reference(100, 100, 12.5);
  AdhocNetwork tuned(100, 100, GetParam());
  for (const auto& config : configs) {
    reference.add_node(config);
    tuned.add_node(config);
  }
  ASSERT_EQ(reference.graph().edge_count(), tuned.graph().edge_count());
  for (NodeId v : reference.nodes()) {
    ASSERT_EQ(minim::test::ids(reference.graph().out_neighbors(v)),
              minim::test::ids(tuned.graph().out_neighbors(v)));
    ASSERT_EQ(minim::test::ids(reference.graph().in_neighbors(v)),
              minim::test::ids(tuned.graph().in_neighbors(v)));
  }

  // ...and after mutation too.
  reference.set_position(3, {1, 1});
  tuned.set_position(3, {1, 1});
  reference.set_range(7, 55);
  tuned.set_range(7, 55);
  for (NodeId v : reference.nodes())
    ASSERT_EQ(minim::test::ids(reference.graph().out_neighbors(v)),
              minim::test::ids(tuned.graph().out_neighbors(v)));
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridCellInvarianceTest,
                         ::testing::Values(1.0, 5.0, 25.0, 100.0, 500.0));

TEST(Composition, GridCellDoesNotChangeStrategyDecisions) {
  // Same edges => same recoding decisions, color for color.
  Rng rng(2);
  const auto configs = random_configs(40, rng);
  AdhocNetwork net_a(100, 100, 5.0);
  AdhocNetwork net_b(100, 100, 50.0);
  CodeAssignment asg_a;
  CodeAssignment asg_b;
  MinimStrategy minim;
  for (const auto& config : configs) {
    minim.on_join(net_a, asg_a, net_a.add_node(config));
    minim.on_join(net_b, asg_b, net_b.add_node(config));
  }
  for (NodeId v : net_a.nodes()) ASSERT_EQ(asg_a.color(v), asg_b.color(v));
}

TEST(Composition, MixedEventsOnObstructedNetworkEveryStrategy) {
  const auto walls = std::make_shared<const ObstructedPropagation>(
      std::vector<Wall>{Wall{{33, 0}, {33, 66}}, Wall{{66, 33}, {66, 100}}});
  for (const char* name : {"minim", "cp", "cp-exact", "bbb"}) {
    AdhocNetwork net(100, 100, 12.5, walls);
    CodeAssignment asg;
    const auto strategy = minim::strategies::make_strategy(name);
    Rng rng(3);
    std::vector<NodeId> alive;
    for (int event = 0; event < 100; ++event) {
      const double dice = rng.uniform01();
      if (alive.size() < 8 || dice < 0.4) {
        const NodeId id = net.add_node(
            {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 35)});
        strategy->on_join(net, asg, id);
        alive.push_back(id);
      } else if (dice < 0.55) {
        const std::size_t pick = rng.below(alive.size());
        const NodeId v = alive[pick];
        net.remove_node(v);
        asg.clear(v);
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
        strategy->on_leave(net, asg, v);
      } else if (dice < 0.8) {
        const NodeId v = alive[rng.below(alive.size())];
        net.set_position(v, {rng.uniform(0, 100), rng.uniform(0, 100)});
        strategy->on_move(net, asg, v);
      } else {
        const NodeId v = alive[rng.below(alive.size())];
        const double old_range = net.config(v).range;
        net.set_range(v, old_range * rng.uniform(0.5, 2.0));
        strategy->on_power_change(net, asg, v, old_range);
      }
      ASSERT_TRUE(minim::net::is_valid(net, asg)) << name << " event " << event;
    }
  }
}

TEST(Composition, GossipCompactsObstructedNetworks) {
  const auto walls = std::make_shared<const ObstructedPropagation>(
      std::vector<Wall>{Wall{{50, 0}, {50, 100}}});
  AdhocNetwork net(100, 100, 12.5, walls);
  CodeAssignment asg;
  MinimStrategy minim;
  Rng rng(4);
  std::vector<NodeId> alive;
  for (int i = 0; i < 50; ++i) {
    const NodeId id = net.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 35)});
    minim.on_join(net, asg, id);
    alive.push_back(id);
  }
  for (int i = 0; i < 25; ++i) {
    const std::size_t pick = rng.below(alive.size());
    net.remove_node(alive[pick]);
    asg.clear(alive[pick]);
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  const auto result = minim::strategies::gossip_compact(net, asg);
  EXPECT_LE(result.max_color_after, result.max_color_before);
  EXPECT_TRUE(minim::net::is_valid(net, asg));
}

TEST(Composition, MinimalityBoundHoldsBehindWalls) {
  // Lemma 4.1.1 is purely graph-theoretic; obstacles change the graph, not
  // the theorem.
  const auto walls = std::make_shared<const ObstructedPropagation>(
      std::vector<Wall>{Wall{{25, 25}, {75, 75}}});
  AdhocNetwork net(100, 100, 12.5, walls);
  CodeAssignment asg;
  MinimStrategy minim;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const NodeId id = net.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(18, 30)});
    const std::size_t bound = minim::net::minimal_recoding_bound(net, asg, id);
    const auto report = minim.on_join(net, asg, id);
    ASSERT_EQ(report.recodings(), bound + 1) << "join " << i;
  }
}

}  // namespace
