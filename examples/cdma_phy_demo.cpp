// Physical-layer demonstration of WHY the paper's constraints exist.
//
// Builds a small network, assigns codes with Minim, and runs the chip-level
// CDMA simulation (Walsh spreading, superposing channel, correlation
// receiver) in three acts:
//   1. valid assignment          -> every link decodes with zero bit errors,
//                                   even with all nodes transmitting at once;
//   2. forced CA2 violation      -> the hidden-terminal links garble;
//   3. RecodeOnPowIncrease fixes -> clean channel again.
//
// Run:  ./build/examples/example_cdma_phy_demo [--packet-bits=64] [--seed=5]

#include <iostream>

#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "radio/phy.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace minim;

namespace {

void print_links(const std::string& title, const radio::BroadcastReport& report) {
  util::TextTable table(title);
  table.set_header({"link", "bit errors", "BER"});
  for (const auto& link : report.links)
    table.add_row({std::to_string(link.transmitter) + " -> " +
                       std::to_string(link.receiver),
                   std::to_string(link.bit_errors),
                   util::fmt_fixed(link.bit_error_rate(), 3)});
  std::cout << table.render();
  std::cout << "garbled links: " << report.garbled_links << "/"
            << report.links.size() << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  radio::PhyParams phy;
  phy.packet_bits = static_cast<std::size_t>(options.get_int("packet-bits", 64));
  util::Rng rng(static_cast<std::uint64_t>(options.get_int("seed", 5)));

  std::cout << "=== CDMA PHY demo: orthogonal codes vs collisions ===\n\n";

  // A hidden-terminal-prone topology: two strong transmitters flanking a
  // weak relay, plus a pair further out.
  net::AdhocNetwork net;
  net::CodeAssignment asg;
  core::MinimStrategy minim;
  const auto left = net.add_node({{30, 50}, 25});
  minim.on_join(net, asg, left);
  const auto relay = net.add_node({{50, 50}, 8});
  minim.on_join(net, asg, relay);
  const auto right = net.add_node({{70, 50}, 25});
  minim.on_join(net, asg, right);
  const auto far_a = net.add_node({{15, 80}, 20});
  minim.on_join(net, asg, far_a);
  const auto far_b = net.add_node({{85, 80}, 20});
  minim.on_join(net, asg, far_b);

  std::cout << "codes: ";
  for (net::NodeId v : net.nodes()) std::cout << v << ":" << asg.color(v) << "  ";
  std::cout << "\n\n--- Act 1: valid assignment, everyone transmits ---\n";
  print_links("all links", radio::simulate_all_transmit(net, asg, phy, rng));

  std::cout << "--- Act 2: force a hidden collision (CA2) ---\n"
            << "Painting node " << right << " with node " << left
            << "'s code; both reach the relay " << relay << ".\n";
  const net::Color saved = asg.color(right);
  asg.set_color(right, asg.color(left));
  const auto violations = net::find_violations(net, asg);
  for (const auto& violation : violations)
    std::cout << "violation: " << violation.to_string() << "\n";
  print_links("links into the relay garble",
              radio::simulate_transmitters(net, asg, {left, right}, phy, rng));
  asg.set_color(right, saved);

  std::cout << "--- Act 3: a power increase creates the same collision; "
               "RecodeOnPowIncrease repairs it ---\n";
  // far_a raises power until it reaches the relay, which left also reaches.
  asg.set_color(far_a, asg.color(left));  // same code, legal while far apart
  std::cout << "pre-raise validity: " << (net::is_valid(net, asg) ? "yes" : "NO")
            << "\n";
  const double old_range = net.config(far_a).range;
  net.set_range(far_a, 50);
  std::cout << "post-raise violations: " << net::find_violations(net, asg).size()
            << "\n";
  print_links("garbled before recoding",
              radio::simulate_transmitters(net, asg, {left, far_a}, phy, rng));

  const auto report = minim.on_power_change(net, asg, far_a, old_range);
  std::cout << "recoding: " << report.to_string() << "\n";
  print_links("clean after recoding", radio::simulate_all_transmit(net, asg, phy, rng));

  std::cout << "Take-away: distinct Walsh codes cancel exactly at the "
               "correlator;\nthe recoding strategies exist to keep codes "
               "distinct wherever signals meet.\n";
  return 0;
}
