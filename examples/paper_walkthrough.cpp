// Walks through the phenomena of the paper's worked examples (Figs 1, 4, 6,
// 7 and 9) on hand-built topologies, printing each strategy's decisions side
// by side.  The exact coordinates of the paper's figures are not recoverable
// from the text, so each scene is a reconstruction that exhibits the same
// behaviour the figure is cited for (Minim vs CP recoding counts and max
// color relations).
//
// Run:  ./build/examples/example_paper_walkthrough

#include <array>
#include <iostream>
#include <vector>

#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "net/partitions.hpp"
#include "strategies/cp.hpp"
#include "util/table.hpp"

using namespace minim;

namespace {

void show_assignment(const std::string& label, const net::AdhocNetwork& net,
                     const net::CodeAssignment& asg) {
  std::cout << label << ": ";
  for (net::NodeId v : net.nodes())
    std::cout << v << ":" << asg.color(v) << "  ";
  std::cout << "(valid: " << (net::is_valid(net, asg) ? "yes" : "NO") << ")\n";
}

// ---------------------------------------------------------------- Fig 1

void fig1_model() {
  std::cout << "== Fig 1: the network model ==\n"
               "Nodes with positions + ranges induce a directed graph; the\n"
               "TOCA constraints are CA1 (edges) and CA2 (common receivers).\n\n";
  net::AdhocNetwork net;
  const auto n1 = net.add_node({{10, 10}, 15});
  const auto n2 = net.add_node({{25, 10}, 18});
  const auto n3 = net.add_node({{40, 10}, 12});
  const auto n4 = net.add_node({{25, 28}, 25});

  util::TextTable table("Induced digraph");
  table.set_header({"edge", "reason"});
  for (net::NodeId u : net.nodes())
    for (net::NodeId v : net.graph().out_neighbors(u))
      table.add_row({std::to_string(u) + " -> " + std::to_string(v),
                     "d <= r_" + std::to_string(u)});
  std::cout << table.render();

  std::cout << "conflict pairs (must differ in code):\n";
  for (net::NodeId u : net.nodes())
    for (net::NodeId v : net.nodes())
      if (u < v && net::in_conflict(net, u, v))
        std::cout << "  {" << u << "," << v << "}\n";

  // Color it like Fig 1(c): a small valid assignment.
  net::CodeAssignment asg;
  core::MinimStrategy minim;
  for (net::NodeId v : {n1, n2, n3, n4}) minim.on_join(net, asg, v);
  show_assignment("assignment", net, asg);
  std::cout << "\n";
}

// ---------------------------------------------------------------- Fig 4

void fig4_join() {
  std::cout << "== Fig 4: a join where Minim recodes fewer nodes than CP ==\n"
               "Two pairs of the joiner's from-neighbors share colors; the\n"
               "minimal bound is sum(K_i - 1) + 1 = 3, which Minim attains\n"
               "while CP recodes more.\n\n";

  auto build = [](net::AdhocNetwork& net, net::CodeAssignment& asg) {
    // Four spokes around the joiner's landing spot (all reach it, none
    // reach each other), with colors 1,1,2,2.
    const auto w = net.add_node({{10, 50}, 45});   // color 1
    const auto x = net.add_node({{90, 50}, 45});   // color 1
    const auto y = net.add_node({{50, 10}, 45});   // color 2
    const auto z = net.add_node({{50, 90}, 45});   // color 2
    asg.set_color(w, 1);
    asg.set_color(x, 1);
    asg.set_color(y, 2);
    asg.set_color(z, 2);
    return std::array{w, x, y, z};
  };

  net::AdhocNetwork net_m;
  net::CodeAssignment asg_m;
  build(net_m, asg_m);
  const auto joiner_m = net_m.add_node({{50, 50}, 8});
  std::cout << "joiner hears " << net_m.heard_by(joiner_m).size()
            << " nodes; minimal bound = "
            << net::minimal_recoding_bound(net_m, asg_m, joiner_m) << " + 1\n";
  core::MinimStrategy minim;
  const auto report_m = minim.on_join(net_m, asg_m, joiner_m);
  std::cout << "Minim: " << report_m.to_string() << "\n";
  show_assignment("Minim result", net_m, asg_m);

  net::AdhocNetwork net_c;
  net::CodeAssignment asg_c;
  build(net_c, asg_c);
  const auto joiner_c = net_c.add_node({{50, 50}, 8});
  strategies::CpStrategy cp;
  const auto report_c = cp.on_join(net_c, asg_c, joiner_c);
  std::cout << "CP:    " << report_c.to_string() << "\n";
  show_assignment("CP result", net_c, asg_c);

  std::cout << "recodings: Minim " << report_m.recodings() << " vs CP "
            << report_c.recodings() << "\n\n";
}

// ---------------------------------------------------------------- Fig 6

void fig6_power_increase() {
  std::cout << "== Fig 6: power increase — Minim recodes 1 node, CP recodes "
               "the conflict group ==\n\n";
  auto build = [](net::AdhocNetwork& net, net::CodeAssignment& asg) {
    const auto n = net.add_node({{20, 50}, 10});    // the riser, color 3
    const auto far1 = net.add_node({{60, 50}, 15}); // color 3 (no conflict yet)
    const auto far2 = net.add_node({{70, 60}, 15}); // color 1
    const auto near = net.add_node({{28, 50}, 10}); // color 2, hears n already
    // A bystander holding color 3 inside far1's 2-hop vicinity but with no
    // real CA constraint on far1 — exactly what makes CP's vicinity rule
    // overshoot (it recodes far1 to 4 and n to 5) while Minim just moves n
    // to 4.
    const auto ghost = net.add_node({{80, 65}, 5});
    asg.set_color(n, 3);
    asg.set_color(far1, 3);
    asg.set_color(far2, 1);
    asg.set_color(near, 2);
    asg.set_color(ghost, 3);
    return n;
  };

  net::AdhocNetwork net_m;
  net::CodeAssignment asg_m;
  const auto riser_m = build(net_m, asg_m);
  net_m.set_range(riser_m, 55);  // now reaches far1/far2: conflict with far1
  core::MinimStrategy minim;
  const auto report_m = minim.on_power_change(net_m, asg_m, riser_m, 10);
  std::cout << "Minim: " << report_m.to_string() << "\n";
  show_assignment("Minim result", net_m, asg_m);

  net::AdhocNetwork net_c;
  net::CodeAssignment asg_c;
  const auto riser_c = build(net_c, asg_c);
  net_c.set_range(riser_c, 55);
  strategies::CpStrategy cp;
  const auto report_c = cp.on_power_change(net_c, asg_c, riser_c, 10);
  std::cout << "CP:    " << report_c.to_string() << "\n";
  show_assignment("CP result", net_c, asg_c);
  std::cout << "\n";
}

// ---------------------------------------------------------------- Fig 7

void fig7_power_decrease() {
  std::cout << "== Fig 7: power decrease / leave never recode ==\n\n";
  net::AdhocNetwork net;
  net::CodeAssignment asg;
  core::MinimStrategy minim;
  for (double x : {20.0, 40.0, 60.0, 80.0}) {
    const auto v = net.add_node({{x, 50}, 25});
    minim.on_join(net, asg, v);
  }
  show_assignment("before", net, asg);
  const auto report = [&] {
    const double old_range = net.config(1).range;
    net.set_range(1, old_range / 2);
    return minim.on_power_change(net, asg, 1, old_range);
  }();
  std::cout << "decrease: " << report.to_string() << "\n";
  show_assignment("after ", net, asg);
  std::cout << "\n";
}

// ---------------------------------------------------------------- Fig 9

void fig9_move() {
  std::cout << "== Fig 9: movement — RecodeOnMove equals leave+join "
               "(Thm 4.4.1) ==\n\n";
  net::AdhocNetwork net;
  net::CodeAssignment asg;
  core::MinimStrategy minim;
  std::vector<net::NodeId> ids;
  for (double x : {10.0, 30.0, 50.0, 70.0, 90.0}) {
    const auto v = net.add_node({{x, 30}, 22});
    minim.on_join(net, asg, v);
    ids.push_back(v);
  }
  show_assignment("before move", net, asg);
  net.set_position(ids[0], {60, 45});
  const auto report = minim.on_move(net, asg, ids[0]);
  std::cout << "move: " << report.to_string() << "\n";
  show_assignment("after move ", net, asg);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Paper walkthrough: Figs 1, 4, 6, 7, 9 (reconstructed) ===\n\n";
  fig1_model();
  fig4_join();
  fig6_power_increase();
  fig7_power_decrease();
  fig9_move();
  return 0;
}
