// Message-level trace of one distributed RecodeOnJoin (Section 4.1 steps
// 1, 2 and 6 made concrete): beacons, constraint queries/replies, the local
// matching, and the commit round — with the full message log and the cost
// summary.  Also verifies the distributed run produced exactly the
// centralized result, and demonstrates Theorem 4.1.10's parallel joins.
//
// Run:  ./build/examples/example_protocol_trace [--seed=11]

#include <iostream>

#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "proto/distributed_minim.hpp"
#include "proto/parallel_join.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace minim;

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  util::Rng rng(static_cast<std::uint64_t>(options.get_int("seed", 11)));

  std::cout << "=== Distributed RecodeOnJoin, message by message ===\n\n";

  // A 15-node network via sequential joins.
  net::AdhocNetwork net;
  net::CodeAssignment asg;
  core::MinimStrategy minim;
  for (int i = 0; i < 15; ++i) {
    const auto v = net.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(20, 30)});
    minim.on_join(net, asg, v);
  }

  // The joiner, executed through the message-passing runtime.
  const auto joiner = net.add_node({{50, 50}, 25});
  std::cout << "node " << joiner << " joins at (50,50); from-neighbors: ";
  for (auto u : net.heard_by(joiner)) std::cout << u << " ";
  std::cout << "\n\n";

  proto::DistributedMinim protocol;
  const auto result = protocol.join(net, asg, joiner);

  util::TextTable log("Message log");
  log.set_header({"#", "message"});
  for (std::size_t i = 0; i < result.log.size(); ++i)
    log.add_row({std::to_string(i + 1), result.log[i].to_string()});
  std::cout << log.render() << "\n";

  std::cout << "outcome: " << result.report.to_string() << "\n";
  std::cout << "cost: " << result.cost.messages << " messages, "
            << result.cost.hop_count << " radio transmissions, "
            << result.cost.payload_items << " payload items, "
            << result.cost.rounds << " rounds\n";
  std::cout << "assignment valid: " << (net::is_valid(net, asg) ? "yes" : "NO")
            << "\n\n";

  std::cout << "=== Theorem 4.1.10: simultaneous joins >= 5 hops apart ===\n\n";
  net::AdhocNetwork chain(200.0, 50.0, 12.5);
  net::CodeAssignment chain_asg;
  for (int i = 0; i < 14; ++i) {
    const auto v = chain.add_node({{static_cast<double>(i) * 14.0, 25.0}, 15.0});
    minim.on_join(chain, chain_asg, v);
  }
  const std::vector<net::NodeConfig> joiners{{{0.0, 35.0}, 15.0},
                                             {{182.0, 35.0}, 15.0}};
  const auto outcome = proto::apply_parallel_joins(chain, chain_asg, joiners);
  std::cout << "two nodes joined concurrently at opposite ends of a chain\n"
            << "pairwise hop distance: " << outcome.min_pairwise_hop_distance
            << " (>= 5 required)\n"
            << "overlapping writes: " << (outcome.overlapping_writes ? "yes" : "no")
            << "\n"
            << "assignment valid after both commits: "
            << (net::is_valid(chain, chain_asg) ? "yes" : "NO") << "\n";
  return 0;
}
