// Mobile swarm scenario — the paper's introduction cites "networks formed
// on the fly by satellite constellations, on the battlefield etc." and hard
// real-time applications where every recoding threatens deadlines.
//
// A reconnaissance swarm of units patrols waypoints in formation; units
// boost transmission power when they stray from their squad and cut it when
// they regroup.  We track, round by round, the cumulative recodings under
// Minim vs CP, then demonstrate the gossip compaction pass (the paper's
// future work) reclaiming code space during a quiet period.
//
// Run:  ./build/examples/example_mobile_swarm [--units=24] [--rounds=12] [--seed=3]

#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "net/constraints.hpp"
#include "sim/simulation.hpp"
#include "strategies/factory.hpp"
#include "strategies/gossip.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace minim;

namespace {

struct PatrolStep {
  std::size_t unit;
  util::Vec2 position;
  double range;  // 0 = unchanged
};

/// Squads orbit waypoints; every few rounds a squad relocates across the
/// field.  Deterministic given the rng, shared across strategies.
std::vector<std::vector<PatrolStep>> plan_patrol(std::size_t units,
                                                 std::size_t rounds,
                                                 util::Rng& rng) {
  const std::size_t squads = 4;
  std::vector<util::Vec2> waypoint(squads);
  for (auto& w : waypoint) w = {rng.uniform(20, 80), rng.uniform(20, 80)};

  std::vector<std::vector<PatrolStep>> plan(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round % 4 == 3)  // squad redeployment
      waypoint[rng.below(squads)] = {rng.uniform(10, 90), rng.uniform(10, 90)};
    for (std::size_t u = 0; u < units; ++u) {
      const std::size_t squad = u % squads;
      const double angle = rng.uniform(0, 2 * std::numbers::pi);
      const double orbit = rng.uniform(2, 12);
      const util::Vec2 target =
          util::clamp_to_box(waypoint[squad] + util::Vec2::from_angle(angle) * orbit,
                             100, 100);
      // Straggler far from the waypoint boosts power to stay connected.
      const double stray = util::distance(target, waypoint[squad]);
      const double range = stray > 8 ? 30.0 : 18.0;
      plan[round].push_back({u, target, range});
    }
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  const auto units = static_cast<std::size_t>(options.get_int("units", 24));
  const auto rounds = static_cast<std::size_t>(options.get_int("rounds", 12));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 3));

  util::Rng rng(seed);
  // Shared deployment and patrol plan.
  std::vector<net::NodeConfig> deployment;
  for (std::size_t u = 0; u < units; ++u)
    deployment.push_back({{rng.uniform(30, 70), rng.uniform(30, 70)}, 18.0});
  const auto plan = plan_patrol(units, rounds, rng);

  std::cout << "=== Mobile swarm: " << units << " units, " << rounds
            << " patrol rounds ===\n\n";

  util::TextTable table("Cumulative recodings by round (lower = fewer stream "
                        "interruptions)");
  table.set_header({"round", "Minim", "CP", "Minim codes", "CP codes"});

  const auto minim = strategies::make_strategy("minim");
  const auto cp = strategies::make_strategy("cp");
  sim::Simulation sim_minim(*minim);
  sim::Simulation sim_cp(*cp);
  std::vector<net::NodeId> ids_minim;
  std::vector<net::NodeId> ids_cp;
  for (const auto& config : deployment) {
    ids_minim.push_back(sim_minim.join(config));
    ids_cp.push_back(sim_cp.join(config));
  }

  for (std::size_t round = 0; round < rounds; ++round) {
    for (const auto& step : plan[round]) {
      sim_minim.move(ids_minim[step.unit], step.position);
      sim_cp.move(ids_cp[step.unit], step.position);
      if (step.range > 0) {
        if (sim_minim.network().config(ids_minim[step.unit]).range != step.range)
          sim_minim.change_power(ids_minim[step.unit], step.range);
        if (sim_cp.network().config(ids_cp[step.unit]).range != step.range)
          sim_cp.change_power(ids_cp[step.unit], step.range);
      }
    }
    table.add_row({std::to_string(round + 1),
                   std::to_string(sim_minim.totals().recodings),
                   std::to_string(sim_cp.totals().recodings),
                   std::to_string(sim_minim.max_color()),
                   std::to_string(sim_cp.max_color())});
  }
  std::cout << table.render() << "\n";

  // Quiet period: the swarm holds position; gossip compaction reclaims codes.
  auto network = sim_minim.network();
  auto assignment = sim_minim.assignment();
  const auto gossip = strategies::gossip_compact(network, assignment);
  std::cout << "Quiet-period gossip compaction (paper future work): max code "
            << gossip.max_color_before << " -> " << gossip.max_color_after << " in "
            << gossip.rounds << " rounds (" << gossip.recodings
            << " voluntary recodings)\n";
  std::cout << "assignment still valid: "
            << (net::is_valid(network, assignment) ? "yes" : "NO") << "\n";
  return 0;
}
