// Quickstart: the library in ~80 lines.
//
// Builds a small power-controlled ad-hoc network, lets Minim assign CDMA
// codes as nodes join, then exercises all four reconfiguration events and
// prints what got recoded each time.
//
// Run:  ./build/examples/example_quickstart

#include <iostream>

#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

using namespace minim;

namespace {

void print_network(const sim::Simulation& simulation) {
  util::TextTable table("Current network");
  table.set_header({"node", "position", "range", "code", "hears", "heard by"});
  const auto& net = simulation.network();
  for (net::NodeId v : net.nodes()) {
    const auto& config = net.config(v);
    table.add_row({std::to_string(v), config.position.to_string(),
                   util::fmt_fixed(config.range, 1),
                   std::to_string(simulation.assignment().color(v)),
                   std::to_string(net.heard_by(v).size()),
                   std::to_string(net.hearers_of(v).size())});
  }
  std::cout << table.render();
  std::cout << "assignment valid: "
            << (net::is_valid(net, simulation.assignment()) ? "yes" : "NO") << "\n\n";
}

}  // namespace

int main() {
  std::cout << "=== minim-cdma quickstart ===\n\n"
            << "Codes are positive integers; CA1 forbids equal codes across an\n"
               "edge, CA2 forbids them on two transmitters sharing a receiver.\n\n";

  // The paper's contribution, used as a plain library object.
  core::MinimStrategy minim;
  sim::Simulation::Params params;
  params.validate_after_each = true;  // assert CA1/CA2 after every event
  params.keep_history = true;
  sim::Simulation simulation(minim, params);

  // 1. Nodes join one by one (positions in a 100x100 field, ranges in units).
  std::cout << "--- five nodes join ---\n";
  const auto a = simulation.join({{20, 50}, 25});
  const auto b = simulation.join({{40, 50}, 25});
  [[maybe_unused]] const auto c = simulation.join({{60, 50}, 25});
  const auto d = simulation.join({{80, 50}, 25});
  const auto e = simulation.join({{50, 70}, 30});
  print_network(simulation);

  // 2. A node moves: RecodeOnMove repairs the assignment with a
  //    maximum-weight bipartite matching over the affected neighborhood.
  std::cout << "--- node " << e << " moves across the field ---\n";
  simulation.move(e, {50, 20});
  std::cout << simulation.history().back().to_string() << "\n\n";

  // 3. A node raises its transmission power: only the node itself can need
  //    a new code (RecodeOnPowIncrease), and only if a conflict appeared.
  std::cout << "--- node " << a << " doubles its range ---\n";
  simulation.change_power(a, 50);
  std::cout << simulation.history().back().to_string() << "\n\n";

  // 4. Power decrease and leave never recode anyone.
  std::cout << "--- node " << b << " halves its range, node " << d << " leaves ---\n";
  simulation.change_power(b, 12.5);
  std::cout << simulation.history()[simulation.history().size() - 1].to_string() << "\n";
  simulation.leave(d);
  std::cout << simulation.history().back().to_string() << "\n\n";

  print_network(simulation);

  const auto& totals = simulation.totals();
  std::cout << "events: " << totals.events << ", total recodings: "
            << totals.recodings << ", max code in use: " << simulation.max_color()
            << "\n";
  return 0;
}
