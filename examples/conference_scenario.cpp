// Conference scenario — the paper's introduction motivates ad-hoc networks
// "where members communicate with each other" at a conference.
//
// Simulates a day at a 100x100 m venue: attendees arrive over the morning,
// wander between sessions, save battery by lowering transmit power during
// talks and raise it during breaks, and leave in the evening.  Runs the
// identical event trace under Minim, CP and BBB, and reports the two paper
// metrics plus the per-event-type breakdown.
//
// Run:  ./build/examples/example_conference_scenario [--attendees=60] [--seed=7]

#include <iostream>
#include <vector>

#include "net/constraints.hpp"
#include "sim/simulation.hpp"
#include "strategies/factory.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace minim;

namespace {

/// One attendee's scripted day, generated once and replayed per strategy.
struct DayScript {
  std::vector<net::NodeConfig> arrivals;
  struct Action {
    enum Kind { kWander, kPowerSave, kPowerUp, kDepart } kind;
    std::size_t who;
    util::Vec2 where{};
    double range = 0.0;
  };
  std::vector<Action> actions;
};

DayScript script_day(std::size_t attendees, util::Rng& rng) {
  DayScript day;
  for (std::size_t i = 0; i < attendees; ++i)
    day.arrivals.push_back({{rng.uniform(0, 100), rng.uniform(0, 100)},
                            rng.uniform(18, 28)});

  // Three session blocks: wander in, power down for the talk, power up and
  // mingle in the break.
  std::vector<double> saved_range(attendees);
  for (int block = 0; block < 3; ++block) {
    for (std::size_t i = 0; i < attendees; ++i)
      day.actions.push_back({DayScript::Action::kWander, i,
                             {rng.uniform(0, 100), rng.uniform(0, 100)}, 0});
    for (std::size_t i = 0; i < attendees; ++i) {
      saved_range[i] = rng.uniform(8, 14);
      day.actions.push_back({DayScript::Action::kPowerSave, i, {}, saved_range[i]});
    }
    for (std::size_t i = 0; i < attendees; ++i)
      day.actions.push_back(
          {DayScript::Action::kPowerUp, i, {}, rng.uniform(18, 28)});
  }
  // A third of the attendees leave early, in random order.
  std::vector<std::size_t> order(attendees);
  for (std::size_t i = 0; i < attendees; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 0; i < attendees / 3; ++i)
    day.actions.push_back({DayScript::Action::kDepart, order[i], {}, 0});
  return day;
}

struct DayResult {
  sim::Totals totals;
  net::Color max_color = 0;
  bool valid = false;
};

DayResult run_day(const DayScript& day, core::RecodingStrategy& strategy) {
  sim::Simulation simulation(strategy);
  std::vector<net::NodeId> badge(day.arrivals.size(), graph::kInvalidNode);
  std::vector<bool> present(day.arrivals.size(), false);
  for (std::size_t i = 0; i < day.arrivals.size(); ++i) {
    badge[i] = simulation.join(day.arrivals[i]);
    present[i] = true;
  }
  for (const auto& action : day.actions) {
    if (!present[action.who]) continue;
    switch (action.kind) {
      case DayScript::Action::kWander:
        simulation.move(badge[action.who], action.where);
        break;
      case DayScript::Action::kPowerSave:
      case DayScript::Action::kPowerUp:
        simulation.change_power(badge[action.who], action.range);
        break;
      case DayScript::Action::kDepart:
        simulation.leave(badge[action.who]);
        present[action.who] = false;
        break;
    }
  }
  DayResult result;
  result.totals = simulation.totals();
  result.max_color = simulation.max_color();
  result.valid = net::is_valid(simulation.network(), simulation.assignment());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  const auto attendees =
      static_cast<std::size_t>(options.get_int("attendees", 60));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 7));

  util::Rng rng(seed);
  const DayScript day = script_day(attendees, rng);

  std::cout << "=== Conference day: " << attendees << " attendees, "
            << day.actions.size() << " reconfigurations after arrival ===\n\n"
            << "Every code change interrupts an attendee's data stream; the\n"
            << "fewer recodings, the smoother the conference network.\n\n";

  util::TextTable table("Strategy comparison (identical event trace)");
  table.set_header({"strategy", "codes used", "total recodings", "join", "move",
                    "power+", "valid"});
  for (const char* name : {"minim", "cp", "bbb"}) {
    const auto strategy = strategies::make_strategy(name);
    const DayResult result = run_day(day, *strategy);
    using core::EventType;
    table.add_row(
        {strategy->name(), std::to_string(result.max_color),
         std::to_string(result.totals.recodings),
         std::to_string(
             result.totals.recodings_by_type[static_cast<std::size_t>(EventType::kJoin)]),
         std::to_string(
             result.totals.recodings_by_type[static_cast<std::size_t>(EventType::kMove)]),
         std::to_string(result.totals.recodings_by_type[static_cast<std::size_t>(
             EventType::kPowerIncrease)]),
         result.valid ? "yes" : "NO"});
  }
  std::cout << table.render() << "\n"
            << "Expected: Minim needs a few more codes than BBB but recodes an\n"
            << "order of magnitude less; CP sits in between on recodings.\n";
  return 0;
}
