#include "core/bipartite_builder.hpp"

#include <algorithm>

#include "net/constraints.hpp"
#include "util/require.hpp"

namespace minim::core {

RecodeProblem build_recode_problem(const net::AdhocNetwork& net,
                                   const net::CodeAssignment& assignment,
                                   std::vector<net::NodeId> v1,
                                   const BipartiteWeights& weights) {
  MINIM_REQUIRE(weights.old_color_weight > 0 && weights.other_weight > 0,
                "matching weights must be positive");
  std::sort(v1.begin(), v1.end());
  v1.erase(std::unique(v1.begin(), v1.end()), v1.end());

  RecodeProblem problem;
  problem.v1 = std::move(v1);
  const auto& set = problem.v1;

  // Per-member forbidden color sets (colors of conflict partners outside V1)
  // and the pool bound `max`.  Inlined rather than routed through
  // `net::forbidden_colors`' std::function filter, with V1 membership served
  // from an epoch-stamped array: this loop runs once per conflict partner of
  // every V1 member of every join, and both the indirect call and the
  // per-partner binary search dominated the join profile.  The scratch is
  // thread_local because strategies run one per worker thread.
  thread_local std::vector<std::uint64_t> member_epoch;
  thread_local std::uint64_t epoch = 0;
  if (member_epoch.size() < net.id_bound()) member_epoch.resize(net.id_bound(), 0);
  ++epoch;
  for (net::NodeId v : set) member_epoch[v] = epoch;

  std::vector<std::vector<net::Color>> forbidden(set.size());
  net::Color max_color = net::kNoColor;
  for (std::size_t i = 0; i < set.size(); ++i) {
    std::vector<net::Color>& forb = forbidden[i];
    for (net::NodeId v : net.conflict_graph().neighbors(set[i])) {
      if (member_epoch[v] == epoch) continue;
      const net::Color c = assignment.color(v);
      if (c != net::kNoColor) forb.push_back(c);
    }
    std::sort(forb.begin(), forb.end());
    forb.erase(std::unique(forb.begin(), forb.end()), forb.end());
    if (!forb.empty()) max_color = std::max(max_color, forb.back());
    max_color = std::max(max_color, assignment.color(set[i]));
  }
  problem.max_color = max_color;

  problem.graph = matching::BipartiteGraph(static_cast<std::uint32_t>(set.size()),
                                           max_color);
  for (std::size_t i = 0; i < set.size(); ++i) {
    const net::Color old = assignment.color(set[i]);
    const auto& forb = forbidden[i];
    std::size_t f = 0;  // cursor into the sorted forbidden list
    for (net::Color c = 1; c <= max_color; ++c) {
      while (f < forb.size() && forb[f] < c) ++f;
      if (f < forb.size() && forb[f] == c) continue;  // constrained away
      const matching::Weight w =
          (c == old) ? weights.old_color_weight : weights.other_weight;
      problem.graph.add_edge(static_cast<std::uint32_t>(i), c - 1, w);
    }
  }
  return problem;
}

}  // namespace minim::core
