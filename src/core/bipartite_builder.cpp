#include "core/bipartite_builder.hpp"

#include <algorithm>

#include "net/constraints.hpp"
#include "util/require.hpp"

namespace minim::core {

RecodeProblem build_recode_problem(const net::AdhocNetwork& net,
                                   const net::CodeAssignment& assignment,
                                   std::vector<net::NodeId> v1,
                                   const BipartiteWeights& weights) {
  MINIM_REQUIRE(weights.old_color_weight > 0 && weights.other_weight > 0,
                "matching weights must be positive");
  std::sort(v1.begin(), v1.end());
  v1.erase(std::unique(v1.begin(), v1.end()), v1.end());

  RecodeProblem problem;
  problem.v1 = std::move(v1);
  const auto& set = problem.v1;

  auto in_v1 = [&set](net::NodeId v) {
    return std::binary_search(set.begin(), set.end(), v);
  };

  // Per-member forbidden color sets (colors of conflict partners outside V1)
  // and the pool bound `max`.
  std::vector<std::vector<net::Color>> forbidden(set.size());
  net::Color max_color = net::kNoColor;
  for (std::size_t i = 0; i < set.size(); ++i) {
    forbidden[i] = net::forbidden_colors(net, assignment, set[i], in_v1);
    if (!forbidden[i].empty()) max_color = std::max(max_color, forbidden[i].back());
    max_color = std::max(max_color, assignment.color(set[i]));
  }
  problem.max_color = max_color;

  problem.graph = matching::BipartiteGraph(static_cast<std::uint32_t>(set.size()),
                                           max_color);
  for (std::size_t i = 0; i < set.size(); ++i) {
    const net::Color old = assignment.color(set[i]);
    const auto& forb = forbidden[i];
    std::size_t f = 0;  // cursor into the sorted forbidden list
    for (net::Color c = 1; c <= max_color; ++c) {
      while (f < forb.size() && forb[f] < c) ++f;
      if (f < forb.size() && forb[f] == c) continue;  // constrained away
      const matching::Weight w =
          (c == old) ? weights.old_color_weight : weights.other_weight;
      problem.graph.add_edge(static_cast<std::uint32_t>(i), c - 1, w);
    }
  }
  return problem;
}

}  // namespace minim::core
