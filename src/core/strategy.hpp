#pragma once

#include <memory>
#include <string>

#include "core/recode_report.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file strategy.hpp
/// \brief Interface every recoding strategy implements.
///
/// Protocol contract: the *simulation engine* applies the physical event to
/// the network first (node inserted / removed / moved / range changed); the
/// strategy is then asked to repair the code assignment.  Handlers receive
/// the post-event network plus whatever pre-event facts the algorithms need
/// (CP's power-increase rule needs the old range to identify *new*
/// constraints).  Strategies mutate only the assignment, never the network.

namespace minim::core {

class RecodingStrategy {
 public:
  virtual ~RecodingStrategy() = default;

  /// Human-readable strategy name ("Minim", "CP", "BBB", ...).
  virtual std::string name() const = 0;

  /// Node `n` just joined (present in `net`, uncolored in `assignment`).
  virtual RecodeReport on_join(const net::AdhocNetwork& net,
                               net::CodeAssignment& assignment, net::NodeId n) = 0;

  /// Node `departed` just left (already removed from `net`; its color has
  /// been cleared by the engine).
  virtual RecodeReport on_leave(const net::AdhocNetwork& net,
                                net::CodeAssignment& assignment,
                                net::NodeId departed) = 0;

  /// Node `n` just moved (its new position is in `net`; it keeps its old
  /// color until the strategy decides otherwise).
  virtual RecodeReport on_move(const net::AdhocNetwork& net,
                               net::CodeAssignment& assignment, net::NodeId n) = 0;

  /// Node `n` changed its transmission range from `old_range` to the value
  /// now in `net` (larger or smaller).
  virtual RecodeReport on_power_change(const net::AdhocNetwork& net,
                                       net::CodeAssignment& assignment, net::NodeId n,
                                       double old_range) = 0;
};

using StrategyPtr = std::unique_ptr<RecodingStrategy>;

}  // namespace minim::core
