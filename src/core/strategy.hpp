#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "core/recode_report.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file strategy.hpp
/// \brief Interface every recoding strategy implements.
///
/// Protocol contract: the *simulation engine* applies the physical event to
/// the network first (node inserted / removed / moved / range changed); the
/// strategy is then asked to repair the code assignment.  Handlers receive
/// the post-event network plus whatever pre-event facts the algorithms need
/// (CP's power-increase rule needs the old range to identify *new*
/// constraints).  Strategies mutate only the assignment, never the network.
///
/// ## Batched repair
///
/// Strategies whose per-event result is a pure function of the current
/// graph (the BBB family: every handler replays the from-scratch greedy
/// over the current network) can repair a whole batch of events with ONE
/// pass instead of one per event.  Such a strategy overrides
/// `supports_batch()` to return true and implements `on_batch`: the engine
/// then applies ALL the batch's network mutations first and asks for a
/// single repair over the final graph.  Strategies that keep history-
/// dependent state (minim, CP, gossip — a kept color depends on the color
/// held before the event) leave the default false and the engine delivers
/// events one at a time.

namespace minim::core {

/// One already-applied event inside a batch, as the strategy sees it:
/// engine node ids (not join-order indices), mutations already in the
/// network.
struct BatchedEvent {
  EventType event = EventType::kJoin;
  net::NodeId subject = net::kInvalidNode;
  double old_range = 0.0;  ///< power events: the pre-event range
};

/// The membership facts a batch repair cannot recover from the final graph
/// alone (node ids are reused, so the final graph does not say which live
/// ids are new or reincarnated).
struct BatchRepairContext {
  /// Every event of the batch, in application order.
  std::span<const BatchedEvent> events;
  /// Ids that joined during the batch and are live at batch end, ordered by
  /// their (last) join event — the order a sequential replay would have
  /// appended them in.
  std::span<const net::NodeId> joiners;
  /// Ids that departed during the batch and are live again at batch end
  /// (the network freed the id and a later join reused it).  A strategy
  /// holding per-id snapshot state must blank these exactly as a sequential
  /// leave would have, or it would attribute the old occupant's state to
  /// the new one.  Sorted ascending; a subset of `joiners`.
  std::span<const net::NodeId> reborn;
};

class RecodingStrategy {
 public:
  virtual ~RecodingStrategy() = default;

  /// Human-readable strategy name ("Minim", "CP", "BBB", ...).
  virtual std::string name() const = 0;

  /// True when `on_batch` produces the same final assignment a sequential
  /// replay of the batch's events would — the engine then coalesces whole
  /// batches into one repair call.
  virtual bool supports_batch() const { return false; }

  /// Repairs the assignment after ALL of `context.events` have been applied
  /// to `net`.  Only called when `supports_batch()`; the default rejects.
  virtual RecodeReport on_batch(const net::AdhocNetwork& net,
                                net::CodeAssignment& assignment,
                                const BatchRepairContext& context) {
    (void)net;
    (void)assignment;
    (void)context;
    throw std::logic_error(name() + ": batched repair is not supported");
  }

  /// Node `n` just joined (present in `net`, uncolored in `assignment`).
  virtual RecodeReport on_join(const net::AdhocNetwork& net,
                               net::CodeAssignment& assignment, net::NodeId n) = 0;

  /// Node `departed` just left (already removed from `net`; its color has
  /// been cleared by the engine).
  virtual RecodeReport on_leave(const net::AdhocNetwork& net,
                                net::CodeAssignment& assignment,
                                net::NodeId departed) = 0;

  /// Node `n` just moved (its new position is in `net`; it keeps its old
  /// color until the strategy decides otherwise).
  virtual RecodeReport on_move(const net::AdhocNetwork& net,
                               net::CodeAssignment& assignment, net::NodeId n) = 0;

  /// Node `n` changed its transmission range from `old_range` to the value
  /// now in `net` (larger or smaller).
  virtual RecodeReport on_power_change(const net::AdhocNetwork& net,
                                       net::CodeAssignment& assignment, net::NodeId n,
                                       double old_range) = 0;
};

using StrategyPtr = std::unique_ptr<RecodingStrategy>;

}  // namespace minim::core
