#pragma once

#include <vector>

#include "matching/bipartite_graph.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file bipartite_builder.hpp
/// \brief Construction of the recoding graph G' of Sections 4.1 / 4.4.
///
/// Given the recoding set V1 (the event node plus its in-neighbors), build
/// the weighted bipartite graph between V1 and the color pool
/// V2 = {1..max}:
///   * `max` is the largest color among (a) old colors of V1 members and
///     (b) colors of V1 members' conflict partners *outside* V1 (the
///     "constraints"); including the event node's own old color — relevant
///     only for moves — is a faithful generalization that can only enlarge
///     the pool;
///   * edge (u, c) exists iff no conflict partner of u outside V1 holds
///     color c (members of V1 all receive mutually distinct colors from the
///     matching, which subsumes every intra-V1 constraint);
///   * the edge to a node's own old color has weight `old_color_weight`
///     (paper: 3), every other edge `other_weight` (paper: 1).
///
/// The weight 3 > 1 + 1 inequality is what makes Theorem 4.1.8 work: no
/// matching can profit from displacing an old color with two weight-1 edges.
/// The ablation bench varies these weights to demonstrate exactly that.

namespace minim::core {

/// The built matching instance plus the bookkeeping needed to apply it.
struct RecodeProblem {
  std::vector<net::NodeId> v1;       ///< recoding set, ascending
  net::Color max_color = 0;          ///< |V2|; colors are 1..max_color
  matching::BipartiteGraph graph;    ///< left = index into v1, right = color-1

  RecodeProblem() : graph(0, 0) {}
};

struct BipartiteWeights {
  matching::Weight old_color_weight = 3;
  matching::Weight other_weight = 1;
};

/// Builds G' for the given recoding set on the post-event network.
RecodeProblem build_recode_problem(const net::AdhocNetwork& net,
                                   const net::CodeAssignment& assignment,
                                   std::vector<net::NodeId> v1,
                                   const BipartiteWeights& weights = {});

}  // namespace minim::core
