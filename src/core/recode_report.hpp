#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file recode_report.hpp
/// \brief What a recoding strategy did in response to one network event.
///
/// The paper's two performance metrics are (1) the maximum color index
/// assigned in the network and (2) the number of nodes recoded — "recoded
/// with a new color different from its old one".  A node that re-selects its
/// old color therefore does NOT count (this is visible in the paper's Fig 4,
/// where CP lets node 5 re-pick its old color and reports 4, not 5,
/// recodings).  A joining node always counts: it goes from no code to a code.

namespace minim::core {

/// The paper's reconfiguration events.
enum class EventType : std::uint8_t {
  kJoin,
  kLeave,
  kMove,
  kPowerIncrease,
  kPowerDecrease,
};

std::string to_string(EventType type);

/// One node's color change.
struct Recode {
  net::NodeId node = net::kInvalidNode;
  net::Color old_color = net::kNoColor;  ///< kNoColor for a joining node
  net::Color new_color = net::kNoColor;
};

/// Result of handling one event.
struct RecodeReport {
  EventType event = EventType::kJoin;
  net::NodeId subject = net::kInvalidNode;  ///< the node the event happened to
  std::vector<Recode> changes;              ///< actual color changes only
  net::Color max_color_after = net::kNoColor;  ///< network-wide max color
  std::size_t messages = 0;  ///< protocol messages (0 for the centralized harness)

  /// The paper's "#recodings" metric for this event.
  std::size_t recodings() const { return changes.size(); }

  std::string to_string() const;
};

/// Fills `max_color_after` from the current assignment (network-wide max).
void finalize_report(const net::AdhocNetwork& net, const net::CodeAssignment& assignment,
                     RecodeReport& report);

}  // namespace minim::core
