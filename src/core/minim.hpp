#pragma once

#include "core/bipartite_builder.hpp"
#include "core/strategy.hpp"

/// \file minim.hpp
/// \brief The paper's contribution: the Minim family of recoding strategies.
///
/// * `RecodeOnJoin` (Section 4.1): recode V1 = in-neighbors(n) ∪ {n} via a
///   maximum-weight matching on G'; matched nodes take their matched color,
///   unmatched nodes take fresh colors max+1, max+2, ... — provably minimal
///   (Thm 4.1.8) and optimal among minimal one-hop strategies (Thm 4.1.9).
/// * `RecodeOnPowIncrease` (Section 4.2): every new constraint involves n
///   itself, so recode n alone — and only when its old color now conflicts —
///   with the lowest available color.  Minimal (Thm 4.2.3), not optimal.
/// * `RecodeDecreasePowOrLeave` (Section 4.3): removing edges adds no
///   constraints; do nothing.  Trivially minimal and optimal.
/// * `RecodeOnMove` (Section 4.4): identical machinery to RecodeOnJoin at
///   the new position (Thm 4.4.1: move ≡ leave; join), except the mover has
///   an old color it may keep via a weight-3 edge.
///
/// All algorithms are deterministic; "randomly assign them colors
/// max+1..max+m" in the paper fixes *which* fresh color each unmatched node
/// gets, which affects neither metric, so we assign fresh colors in node-id
/// order for reproducibility.

namespace minim::core {

class MinimStrategy final : public RecodingStrategy {
 public:
  /// Which matching algorithm powers the join/move recoding.  The paper
  /// requires the exact solver; the others exist for the ablation bench.
  enum class Matcher { kHungarian, kGreedy, kCardinality };

  struct Params {
    BipartiteWeights weights{};          ///< paper: old=3, other=1
    Matcher matcher = Matcher::kHungarian;
    /// Move semantics.  The paper states both that RecodeOnMove is "the
    /// exact sequence" of a leave followed by a join (Thm 4.4.1 — the mover
    /// rejoins uncolored) and that the mover's old color gets a weight-3
    /// edge (Fig 8 step 4 — the mover may keep its color).  The latter is
    /// strictly more minimal, so it is the default; setting this true gives
    /// the literal leave+join equivalence.
    bool move_clears_mover = false;
  };

  MinimStrategy() = default;
  explicit MinimStrategy(const Params& params) : params_(params) {}

  std::string name() const override;

  RecodeReport on_join(const net::AdhocNetwork& net, net::CodeAssignment& assignment,
                       net::NodeId n) override;
  RecodeReport on_leave(const net::AdhocNetwork& net, net::CodeAssignment& assignment,
                        net::NodeId departed) override;
  RecodeReport on_move(const net::AdhocNetwork& net, net::CodeAssignment& assignment,
                       net::NodeId n) override;
  RecodeReport on_power_change(const net::AdhocNetwork& net,
                               net::CodeAssignment& assignment, net::NodeId n,
                               double old_range) override;

  /// The shared join/move machinery, exposed for tests and the distributed
  /// runtime: recodes `v1` via the configured matching.
  RecodeReport recode_via_matching(const net::AdhocNetwork& net,
                                   net::CodeAssignment& assignment, net::NodeId n,
                                   EventType event) const;

 private:
  Params params_;
};

}  // namespace minim::core
