#include "core/recode_report.hpp"

#include <sstream>

namespace minim::core {

std::string to_string(EventType type) {
  switch (type) {
    case EventType::kJoin: return "join";
    case EventType::kLeave: return "leave";
    case EventType::kMove: return "move";
    case EventType::kPowerIncrease: return "power-increase";
    case EventType::kPowerDecrease: return "power-decrease";
  }
  return "?";
}

std::string RecodeReport::to_string() const {
  std::ostringstream os;
  os << minim::core::to_string(event) << " at node " << subject << ": "
     << changes.size() << " recodings, max color " << max_color_after;
  if (!changes.empty()) {
    os << " [";
    for (std::size_t i = 0; i < changes.size(); ++i) {
      if (i) os << ", ";
      os << changes[i].node << ":" << changes[i].old_color << "->" << changes[i].new_color;
    }
    os << "]";
  }
  return os.str();
}

void finalize_report(const net::AdhocNetwork& net, const net::CodeAssignment& assignment,
                     RecodeReport& report) {
  // Served from the assignment's color histogram in O(1): this runs once
  // per event per strategy, and any per-node scan here turns a 10⁵-node
  // join sequence quadratic.  The engine clears departed nodes' colors, so
  // the histogram max equals the live-node max.
  (void)net;
  report.max_color_after = assignment.max_color();
}

}  // namespace minim::core
