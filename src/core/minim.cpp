#include "core/minim.hpp"

#include <algorithm>

#include "matching/heuristics.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/hungarian.hpp"
#include "net/constraints.hpp"

namespace minim::core {

namespace {

matching::MatchingResult run_matcher(MinimStrategy::Matcher matcher,
                                     const matching::BipartiteGraph& g) {
  switch (matcher) {
    case MinimStrategy::Matcher::kHungarian: return matching::max_weight_matching(g);
    case MinimStrategy::Matcher::kGreedy: return matching::greedy_matching(g);
    case MinimStrategy::Matcher::kCardinality:
      return matching::max_cardinality_matching(g);
  }
  return matching::max_weight_matching(g);
}

}  // namespace

std::string MinimStrategy::name() const {
  switch (params_.matcher) {
    case Matcher::kHungarian: return "Minim";
    case Matcher::kGreedy: return "Minim/greedy";
    case Matcher::kCardinality: return "Minim/cardinality";
  }
  return "Minim";
}

RecodeReport MinimStrategy::recode_via_matching(const net::AdhocNetwork& net,
                                                net::CodeAssignment& assignment,
                                                net::NodeId n, EventType event) const {
  RecodeReport report;
  report.event = event;
  report.subject = n;

  // Steps 0-2: the recoding set and its constraints.  V1 = 1n ∪ 2n ∪ {n} =
  // in-neighbors(n) ∪ {n} on the post-event graph.
  const auto heard = net.heard_by(n);
  std::vector<net::NodeId> v1(heard.begin(), heard.end());
  v1.push_back(n);

  // Steps 3-4: color pool and weighted bipartite graph.
  const RecodeProblem problem =
      build_recode_problem(net, assignment, std::move(v1), params_.weights);

  // Step 5: matching, then application.  Matched nodes take their matched
  // color; unmatched nodes take consecutive fresh colors above the pool.
  const matching::MatchingResult match = run_matcher(params_.matcher, problem.graph);

  net::Color next_fresh = problem.max_color;
  for (std::size_t i = 0; i < problem.v1.size(); ++i) {
    const net::NodeId u = problem.v1[i];
    const net::Color old = assignment.color(u);
    net::Color fresh;
    const std::uint32_t matched = match.left_to_right[i];
    if (matched != matching::MatchingResult::kUnmatched) {
      fresh = matched + 1;  // right vertex r represents color r+1
    } else {
      fresh = ++next_fresh;
    }
    if (fresh != old) {
      assignment.set_color(u, fresh);
      report.changes.push_back(Recode{u, old, fresh});
    }
  }
  finalize_report(net, assignment, report);
  return report;
}

RecodeReport MinimStrategy::on_join(const net::AdhocNetwork& net,
                                    net::CodeAssignment& assignment, net::NodeId n) {
  return recode_via_matching(net, assignment, n, EventType::kJoin);
}

RecodeReport MinimStrategy::on_move(const net::AdhocNetwork& net,
                                    net::CodeAssignment& assignment, net::NodeId n) {
  if (!params_.move_clears_mover)
    return recode_via_matching(net, assignment, n, EventType::kMove);

  // Literal Thm 4.4.1 semantics: the mover rejoins as an uncolored node.
  // Recoding is still counted against its pre-move color.
  const net::Color pre_move = assignment.color(n);
  assignment.clear(n);
  RecodeReport report = recode_via_matching(net, assignment, n, EventType::kMove);
  for (auto it = report.changes.begin(); it != report.changes.end(); ++it) {
    if (it->node != n) continue;
    if (it->new_color == pre_move) {
      report.changes.erase(it);  // landed back on its old color: not a recode
    } else {
      it->old_color = pre_move;
    }
    break;
  }
  return report;
}

RecodeReport MinimStrategy::on_leave(const net::AdhocNetwork& net,
                                     net::CodeAssignment& assignment,
                                     net::NodeId departed) {
  // RecodeDecreasePowOrLeave: edge removals add no constraints; do nothing.
  RecodeReport report;
  report.event = EventType::kLeave;
  report.subject = departed;
  finalize_report(net, assignment, report);
  return report;
}

RecodeReport MinimStrategy::on_power_change(const net::AdhocNetwork& net,
                                            net::CodeAssignment& assignment,
                                            net::NodeId n, double old_range) {
  RecodeReport report;
  report.subject = n;
  const double new_range = net.config(n).range;
  if (new_range <= old_range) {
    // RecodeDecreasePowOrLeave applies: shrinking the disc only removes
    // edges, hence constraints; the assignment stays valid untouched.
    report.event = EventType::kPowerDecrease;
    finalize_report(net, assignment, report);
    return report;
  }

  // RecodeOnPowIncrease: every constraint added by the new edges involves n
  // (Fig 2 discussion), so only n can be in conflict.  The old assignment
  // was valid, so checking all of n's current conflict partners is
  // equivalent to checking just the new constraints.
  report.event = EventType::kPowerIncrease;
  const net::Color own = assignment.color(n);
  const std::vector<net::Color> forbidden = net::forbidden_colors(net, assignment, n);
  const bool clash = std::binary_search(forbidden.begin(), forbidden.end(), own);
  if (clash) {
    const net::Color fresh = net::lowest_free_color(forbidden);
    assignment.set_color(n, fresh);
    report.changes.push_back(Recode{n, own, fresh});
  }
  finalize_report(net, assignment, report);
  return report;
}

}  // namespace minim::core
