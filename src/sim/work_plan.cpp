#include "sim/work_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/require.hpp"

namespace minim::sim {

const char* to_string(WorkSplit split) {
  switch (split) {
    case WorkSplit::kTrials: return "trials";
    case WorkSplit::kPoints: return "points";
    case WorkSplit::kAuto: return "auto";
  }
  return "?";
}

WorkSplit work_split_from(const std::string& name) {
  if (name == "trials") return WorkSplit::kTrials;
  if (name == "points") return WorkSplit::kPoints;
  if (name == "auto") return WorkSplit::kAuto;
  throw std::invalid_argument("unknown work split '" + name +
                              "' (expected trials|points|auto)");
}

std::pair<std::size_t, std::size_t> slice_range(std::size_t total,
                                                std::size_t index,
                                                std::size_t count) {
  MINIM_REQUIRE(count > 0 && index < count, "slice index out of range");
  const std::size_t base = total / count;
  const std::size_t extra = total % count;
  const std::size_t begin = index * base + std::min(index, extra);
  return {begin, base + (index < extra ? 1 : 0)};
}

PlanShape plan_shape(std::size_t units, std::size_t total_points,
                     std::size_t total_trials, WorkSplit split) {
  MINIM_REQUIRE(total_points > 0 && total_trials > 0,
                "plan_shape: empty (point x trial) rectangle");
  units = std::max<std::size_t>(1, units);

  PlanShape shape;
  switch (split) {
    case WorkSplit::kTrials:
      shape.trial_slices = std::min(units, total_trials);
      return shape;
    case WorkSplit::kPoints:
      shape.point_slices = std::min(units, total_points);
      return shape;
    case WorkSplit::kAuto:
      break;
  }

  // Among factorizations p * t <= units (p <= points, t <= trials), keep the
  // largest product; break product ties by the smaller worst-case unit area
  // (ceil slices), then by more point slices (axis-space cuts also shrink a
  // worker's per-point setup footprint).
  units = std::min(units, total_points * total_trials);
  PlanShape best;
  std::size_t best_product = 0;
  std::size_t best_area = total_points * total_trials;
  for (std::size_t p = 1; p <= std::min(units, total_points); ++p) {
    const std::size_t t = std::min(units / p, total_trials);
    const std::size_t product = p * t;
    const std::size_t area = ((total_points + p - 1) / p) *
                             ((total_trials + t - 1) / t);
    const bool better =
        product > best_product ||
        (product == best_product &&
         (area < best_area || (area == best_area && p > best.point_slices)));
    if (better) {
      best = PlanShape{p, t};
      best_product = product;
      best_area = area;
    }
  }
  return best;
}

std::vector<WorkUnit> plan_work_units(std::size_t total_points,
                                      std::size_t total_trials,
                                      const PlanShape& shape) {
  MINIM_REQUIRE(shape.point_slices > 0 && shape.trial_slices > 0,
                "plan_work_units: empty shape");
  MINIM_REQUIRE(shape.point_slices <= total_points &&
                    shape.trial_slices <= total_trials,
                "plan_work_units: more slices than items on an axis");
  std::vector<WorkUnit> units;
  units.reserve(shape.point_slices * shape.trial_slices);
  for (std::size_t p = 0; p < shape.point_slices; ++p) {
    const auto [point_begin, point_count] =
        slice_range(total_points, p, shape.point_slices);
    for (std::size_t t = 0; t < shape.trial_slices; ++t) {
      const auto [trial_begin, trial_count] =
          slice_range(total_trials, t, shape.trial_slices);
      WorkUnit unit;
      unit.id = units.size();
      unit.point_begin = point_begin;
      unit.point_count = point_count;
      unit.trial_begin = trial_begin;
      unit.trial_count = trial_count;
      units.push_back(unit);
    }
  }
  return units;
}

std::vector<WorkUnit> plan_work_units(std::size_t units,
                                      std::size_t total_points,
                                      std::size_t total_trials,
                                      WorkSplit split) {
  return plan_work_units(total_points, total_trials,
                         plan_shape(units, total_points, total_trials, split));
}

}  // namespace minim::sim
