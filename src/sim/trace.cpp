#include "sim/trace.hpp"

#include <sstream>

#include "util/require.hpp"

namespace minim::sim {

const char* to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kJoin: return "join";
    case TraceEvent::Kind::kLeave: return "leave";
    case TraceEvent::Kind::kMove: return "move";
    case TraceEvent::Kind::kPower: return "power";
  }
  return "?";
}

std::string serialize_trace(const Trace& trace) {
  std::ostringstream os;
  os.precision(17);  // exact double round-trip
  for (const TraceEvent& event : trace) {
    switch (event.kind) {
      case TraceEvent::Kind::kJoin:
        os << "join " << event.position.x << " " << event.position.y << " "
           << event.range << "\n";
        break;
      case TraceEvent::Kind::kLeave:
        os << "leave " << event.node << "\n";
        break;
      case TraceEvent::Kind::kMove:
        os << "move " << event.node << " " << event.position.x << " "
           << event.position.y << "\n";
        break;
      case TraceEvent::Kind::kPower:
        os << "power " << event.node << " " << event.range << "\n";
        break;
    }
  }
  return os.str();
}

std::optional<TraceEvent> TraceLineParser::parse_line(std::string_view line) {
  return parse_line(line, line_number_ + 1);
}

std::optional<TraceEvent> TraceLineParser::parse_line(
    std::string_view line, std::size_t line_number) {
  // The counter advances even when the line turns out malformed: the line
  // was consumed, and the next error must not reuse its number.
  line_number_ = line_number;

  std::string text(line);
  const auto hash = text.find('#');
  if (hash != std::string::npos) text.erase(hash);
  std::istringstream fields(text);
  std::string verb;
  if (!(fields >> verb)) return std::nullopt;  // blank/comment line

  const auto fail = [line_number](const std::string& message) -> void {
    throw TraceParseError(line_number, message);
  };
  auto read_double = [&](const char* what) {
    double value;
    if (!(fields >> value)) fail(std::string("missing ") + what);
    return value;
  };
  auto read_node = [&]() {
    long long value;
    if (!(fields >> value) || value < 0) fail("missing/invalid node");
    const auto node = static_cast<std::size_t>(value);
    if (node >= joined_) fail("node has not joined yet");
    if (departed_[node]) fail("node already left");
    return node;
  };

  // Parse and validate the full line before committing any state, so a
  // throwing line leaves the parser exactly where it was.
  TraceEvent event;
  if (verb == "join") {
    event.kind = TraceEvent::Kind::kJoin;
    event.position.x = read_double("x");
    event.position.y = read_double("y");
    event.range = read_double("range");
    if (event.range < 0) fail("negative range");
  } else if (verb == "leave") {
    event.kind = TraceEvent::Kind::kLeave;
    event.node = read_node();
  } else if (verb == "move") {
    event.kind = TraceEvent::Kind::kMove;
    event.node = read_node();
    event.position.x = read_double("x");
    event.position.y = read_double("y");
  } else if (verb == "power") {
    event.kind = TraceEvent::Kind::kPower;
    event.node = read_node();
    event.range = read_double("range");
    if (event.range < 0) fail("negative range");
  } else {
    fail("unknown verb '" + verb + "'");
  }
  std::string trailing;
  if (fields >> trailing) fail("trailing tokens");

  if (event.kind == TraceEvent::Kind::kJoin) {
    ++joined_;
    departed_.push_back(0);
  } else if (event.kind == TraceEvent::Kind::kLeave) {
    departed_[event.node] = 1;
  }
  return event;
}

Trace parse_trace(const std::string& text) {
  Trace trace;
  TraceLineParser parser;
  std::istringstream input(text);
  std::string line;
  while (std::getline(input, line))
    if (const auto event = parser.parse_line(line)) trace.push_back(*event);
  return trace;
}

Trace trace_from_workload(const Workload& workload) {
  Trace trace;
  for (const auto& join : workload.joins) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kJoin;
    event.position = join.position;
    event.range = join.range;
    trace.push_back(event);
  }
  for (const auto& raise : workload.power_raises) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kPower;
    event.node = raise.join_index;
    event.range = raise.new_range;
    trace.push_back(event);
  }
  for (const auto& round : workload.move_rounds)
    for (const auto& mv : round) {
      TraceEvent event;
      event.kind = TraceEvent::Kind::kMove;
      event.node = mv.join_index;
      event.position = mv.position;
      trace.push_back(event);
    }
  return trace;
}

void apply_trace(const Trace& trace, Simulation& simulation) {
  std::vector<net::NodeId> by_join_order;
  for (const TraceEvent& event : trace) {
    switch (event.kind) {
      case TraceEvent::Kind::kJoin:
        by_join_order.push_back(
            simulation.join(net::NodeConfig{event.position, event.range}));
        break;
      case TraceEvent::Kind::kLeave:
        MINIM_REQUIRE(event.node < by_join_order.size(), "trace: unknown node");
        simulation.leave(by_join_order[event.node]);
        break;
      case TraceEvent::Kind::kMove:
        MINIM_REQUIRE(event.node < by_join_order.size(), "trace: unknown node");
        simulation.move(by_join_order[event.node], event.position);
        break;
      case TraceEvent::Kind::kPower:
        MINIM_REQUIRE(event.node < by_join_order.size(), "trace: unknown node");
        simulation.change_power(by_join_order[event.node], event.range);
        break;
    }
  }
}

}  // namespace minim::sim
