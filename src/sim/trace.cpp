#include "sim/trace.hpp"

#include <sstream>

#include "util/require.hpp"

namespace minim::sim {

std::string serialize_trace(const Trace& trace) {
  std::ostringstream os;
  os.precision(17);  // exact double round-trip
  for (const TraceEvent& event : trace) {
    switch (event.kind) {
      case TraceEvent::Kind::kJoin:
        os << "join " << event.position.x << " " << event.position.y << " "
           << event.range << "\n";
        break;
      case TraceEvent::Kind::kLeave:
        os << "leave " << event.node << "\n";
        break;
      case TraceEvent::Kind::kMove:
        os << "move " << event.node << " " << event.position.x << " "
           << event.position.y << "\n";
        break;
      case TraceEvent::Kind::kPower:
        os << "power " << event.node << " " << event.range << "\n";
        break;
    }
  }
  return os.str();
}

namespace {

[[noreturn]] void fail(std::size_t line_number, const std::string& message) {
  MINIM_REQUIRE(false,
                "trace line " + std::to_string(line_number) + ": " + message);
  throw std::logic_error("unreachable");
}

}  // namespace

Trace parse_trace(const std::string& text) {
  Trace trace;
  std::istringstream input(text);
  std::string line;
  std::size_t line_number = 0;
  std::size_t joined = 0;             // nodes seen so far
  std::vector<char> departed;         // by join index

  while (std::getline(input, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string verb;
    if (!(fields >> verb)) continue;  // blank/comment line

    auto read_double = [&](const char* what) {
      double value;
      if (!(fields >> value)) fail(line_number, std::string("missing ") + what);
      return value;
    };
    auto read_node = [&]() {
      long long value;
      if (!(fields >> value) || value < 0) fail(line_number, "missing/invalid node");
      const auto node = static_cast<std::size_t>(value);
      if (node >= joined) fail(line_number, "node has not joined yet");
      if (departed[node]) fail(line_number, "node already left");
      return node;
    };

    TraceEvent event;
    if (verb == "join") {
      event.kind = TraceEvent::Kind::kJoin;
      event.position.x = read_double("x");
      event.position.y = read_double("y");
      event.range = read_double("range");
      if (event.range < 0) fail(line_number, "negative range");
      ++joined;
      departed.push_back(0);
    } else if (verb == "leave") {
      event.kind = TraceEvent::Kind::kLeave;
      event.node = read_node();
      departed[event.node] = 1;
    } else if (verb == "move") {
      event.kind = TraceEvent::Kind::kMove;
      event.node = read_node();
      event.position.x = read_double("x");
      event.position.y = read_double("y");
    } else if (verb == "power") {
      event.kind = TraceEvent::Kind::kPower;
      event.node = read_node();
      event.range = read_double("range");
      if (event.range < 0) fail(line_number, "negative range");
    } else {
      fail(line_number, "unknown verb '" + verb + "'");
    }
    std::string trailing;
    if (fields >> trailing) fail(line_number, "trailing tokens");
    trace.push_back(event);
  }
  return trace;
}

Trace trace_from_workload(const Workload& workload) {
  Trace trace;
  for (const auto& join : workload.joins) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kJoin;
    event.position = join.position;
    event.range = join.range;
    trace.push_back(event);
  }
  for (const auto& raise : workload.power_raises) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kPower;
    event.node = raise.join_index;
    event.range = raise.new_range;
    trace.push_back(event);
  }
  for (const auto& round : workload.move_rounds)
    for (const auto& mv : round) {
      TraceEvent event;
      event.kind = TraceEvent::Kind::kMove;
      event.node = mv.join_index;
      event.position = mv.position;
      trace.push_back(event);
    }
  return trace;
}

void apply_trace(const Trace& trace, Simulation& simulation) {
  std::vector<net::NodeId> by_join_order;
  for (const TraceEvent& event : trace) {
    switch (event.kind) {
      case TraceEvent::Kind::kJoin:
        by_join_order.push_back(
            simulation.join(net::NodeConfig{event.position, event.range}));
        break;
      case TraceEvent::Kind::kLeave:
        MINIM_REQUIRE(event.node < by_join_order.size(), "trace: unknown node");
        simulation.leave(by_join_order[event.node]);
        break;
      case TraceEvent::Kind::kMove:
        MINIM_REQUIRE(event.node < by_join_order.size(), "trace: unknown node");
        simulation.move(by_join_order[event.node], event.position);
        break;
      case TraceEvent::Kind::kPower:
        MINIM_REQUIRE(event.node < by_join_order.size(), "trace: unknown node");
        simulation.change_power(by_join_order[event.node], event.range);
        break;
    }
  }
}

}  // namespace minim::sim
