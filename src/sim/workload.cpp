#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace minim::sim {

namespace {

Workload joins_only(const WorkloadParams& params, util::Rng& rng) {
  MINIM_REQUIRE(params.min_range <= params.max_range, "min_range > max_range");
  Workload w;
  w.width = params.width;
  w.height = params.height;
  w.joins.reserve(params.n);
  for (std::size_t i = 0; i < params.n; ++i) {
    net::NodeConfig config;
    config.position = {rng.uniform(0.0, params.width), rng.uniform(0.0, params.height)};
    config.range = rng.uniform(params.min_range, params.max_range);
    w.joins.push_back(config);
  }
  return w;
}

}  // namespace

Workload make_join_workload(const WorkloadParams& params, util::Rng& rng) {
  return joins_only(params, rng);
}

Workload make_power_workload(const WorkloadParams& params, double raise_factor,
                             util::Rng& rng) {
  MINIM_REQUIRE(raise_factor >= 1.0, "raise_factor must be >= 1");
  Workload w = joins_only(params, rng);
  // Half of the nodes, chosen uniformly without replacement, in random order.
  std::vector<std::size_t> indices(params.n);
  for (std::size_t i = 0; i < params.n; ++i) indices[i] = i;
  rng.shuffle(indices);
  const std::size_t raisers = params.n / 2;
  for (std::size_t i = 0; i < raisers; ++i) {
    const std::size_t idx = indices[i];
    w.power_raises.push_back(PowerRaise{idx, w.joins[idx].range * raise_factor});
  }
  return w;
}

Workload make_move_workload(const WorkloadParams& params, double max_displacement,
                            std::size_t rounds, util::Rng& rng) {
  MINIM_REQUIRE(max_displacement >= 0.0, "max_displacement must be >= 0");
  Workload w = joins_only(params, rng);
  // Track evolving positions so each round's displacement composes.
  std::vector<util::Vec2> position(params.n);
  for (std::size_t i = 0; i < params.n; ++i) position[i] = w.joins[i].position;

  w.move_rounds.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Move> round;
    round.reserve(params.n);
    for (std::size_t i = 0; i < params.n; ++i) {
      const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double displacement = rng.uniform(0.0, max_displacement);
      const util::Vec2 target = util::clamp_to_box(
          position[i] + util::Vec2::from_angle(angle) * displacement,
          params.width, params.height);
      position[i] = target;
      round.push_back(Move{i, target});
    }
    w.move_rounds.push_back(std::move(round));
  }
  return w;
}

}  // namespace minim::sim
