#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace minim::sim {

const char* to_string(Placement placement) {
  switch (placement) {
    case Placement::kUniform: return "uniform";
    case Placement::kClustered: return "clustered";
    case Placement::kPoissonDisk: return "poisson-disk";
  }
  return "?";
}

namespace {

/// Uniform positions — the paper's setup.  The draw order (x, y, range per
/// node) is frozen: every committed figure baseline depends on it.
void place_uniform(const WorkloadParams& params, util::Rng& rng, Workload& w) {
  for (std::size_t i = 0; i < params.n; ++i) {
    net::NodeConfig config;
    config.position = {rng.uniform(0.0, params.width), rng.uniform(0.0, params.height)};
    config.range = rng.uniform(params.min_range, params.max_range);
    w.joins.push_back(config);
  }
}

/// Thomas cluster process: uniform parent centers, each node picks a parent
/// uniformly and offsets by an isotropic Gaussian, clamped to the field.
void place_clustered(const WorkloadParams& params, util::Rng& rng, Workload& w) {
  MINIM_REQUIRE(params.cluster_count > 0, "clustered placement needs clusters");
  std::vector<util::Vec2> centers;
  centers.reserve(params.cluster_count);
  for (std::size_t c = 0; c < params.cluster_count; ++c)
    centers.push_back(
        {rng.uniform(0.0, params.width), rng.uniform(0.0, params.height)});
  for (std::size_t i = 0; i < params.n; ++i) {
    const util::Vec2 center = centers[rng.below(params.cluster_count)];
    net::NodeConfig config;
    config.position = util::clamp_to_box(
        center + util::Vec2{rng.normal() * params.cluster_sigma,
                            rng.normal() * params.cluster_sigma},
        params.width, params.height);
    config.range = rng.uniform(params.min_range, params.max_range);
    w.joins.push_back(config);
  }
}

/// Dart-throwing Poisson-disk (blue-noise) placement: each node retries
/// uniform candidates until one clears `min_separation` from every accepted
/// point; after `kAttempts` misses the last candidate is accepted, so the
/// generator degrades gracefully past the packing limit.  A uniform grid
/// with cell == separation bounds the distance checks to 3x3 cells.
void place_poisson_disk(const WorkloadParams& params, util::Rng& rng, Workload& w) {
  constexpr std::size_t kAttempts = 30;
  double separation = params.min_separation;
  if (separation <= 0.0) {
    const double mean_spacing =
        std::sqrt(params.width * params.height / static_cast<double>(params.n));
    separation = 0.7 * mean_spacing;
  }
  const auto cols =
      static_cast<std::size_t>(params.width / separation) + 1;
  const auto rows =
      static_cast<std::size_t>(params.height / separation) + 1;
  // One point per cell suffices: any two points in a cell of side
  // `separation` could only both be accepted past the attempt cap.
  std::vector<std::vector<util::Vec2>> cells(cols * rows);
  const double sep2 = separation * separation;
  const auto cell_of = [&](util::Vec2 p) {
    const auto cx = std::min(cols - 1, static_cast<std::size_t>(p.x / separation));
    const auto cy = std::min(rows - 1, static_cast<std::size_t>(p.y / separation));
    return cy * cols + cx;
  };
  const auto clear_of_neighbors = [&](util::Vec2 p) {
    const auto cx = static_cast<std::ptrdiff_t>(
        std::min(cols - 1, static_cast<std::size_t>(p.x / separation)));
    const auto cy = static_cast<std::ptrdiff_t>(
        std::min(rows - 1, static_cast<std::size_t>(p.y / separation)));
    for (std::ptrdiff_t dy = -1; dy <= 1; ++dy)
      for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
        const std::ptrdiff_t x = cx + dx;
        const std::ptrdiff_t y = cy + dy;
        if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(cols) ||
            y >= static_cast<std::ptrdiff_t>(rows))
          continue;
        for (const util::Vec2& q :
             cells[static_cast<std::size_t>(y) * cols + static_cast<std::size_t>(x)])
          if (util::distance_squared(p, q) < sep2) return false;
      }
    return true;
  };
  for (std::size_t i = 0; i < params.n; ++i) {
    util::Vec2 p{};
    for (std::size_t attempt = 0; attempt < kAttempts; ++attempt) {
      p = {rng.uniform(0.0, params.width), rng.uniform(0.0, params.height)};
      if (clear_of_neighbors(p)) break;
    }
    cells[cell_of(p)].push_back(p);
    net::NodeConfig config;
    config.position = p;
    config.range = rng.uniform(params.min_range, params.max_range);
    w.joins.push_back(config);
  }
}

Workload joins_only(const WorkloadParams& params, util::Rng& rng) {
  MINIM_REQUIRE(params.min_range <= params.max_range, "min_range > max_range");
  Workload w;
  w.width = params.width;
  w.height = params.height;
  w.joins.reserve(params.n);
  switch (params.placement) {
    case Placement::kUniform: place_uniform(params, rng, w); break;
    case Placement::kClustered: place_clustered(params, rng, w); break;
    case Placement::kPoissonDisk: place_poisson_disk(params, rng, w); break;
  }
  return w;
}

}  // namespace

Workload make_join_workload(const WorkloadParams& params, util::Rng& rng) {
  return joins_only(params, rng);
}

Workload make_power_workload(const WorkloadParams& params, double raise_factor,
                             util::Rng& rng) {
  MINIM_REQUIRE(raise_factor >= 1.0, "raise_factor must be >= 1");
  Workload w = joins_only(params, rng);
  // Half of the nodes, chosen uniformly without replacement, in random order.
  std::vector<std::size_t> indices(params.n);
  for (std::size_t i = 0; i < params.n; ++i) indices[i] = i;
  rng.shuffle(indices);
  const std::size_t raisers = params.n / 2;
  for (std::size_t i = 0; i < raisers; ++i) {
    const std::size_t idx = indices[i];
    w.power_raises.push_back(PowerRaise{idx, w.joins[idx].range * raise_factor});
  }
  return w;
}

Workload make_move_workload(const WorkloadParams& params, double max_displacement,
                            std::size_t rounds, util::Rng& rng) {
  MINIM_REQUIRE(max_displacement >= 0.0, "max_displacement must be >= 0");
  Workload w = joins_only(params, rng);
  // Track evolving positions so each round's displacement composes.
  std::vector<util::Vec2> position(params.n);
  for (std::size_t i = 0; i < params.n; ++i) position[i] = w.joins[i].position;

  w.move_rounds.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Move> round;
    round.reserve(params.n);
    for (std::size_t i = 0; i < params.n; ++i) {
      const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double displacement = rng.uniform(0.0, max_displacement);
      const util::Vec2 target = util::clamp_to_box(
          position[i] + util::Vec2::from_angle(angle) * displacement,
          params.width, params.height);
      position[i] = target;
      round.push_back(Move{i, target});
    }
    w.move_rounds.push_back(std::move(round));
  }
  return w;
}

WorkloadParams make_large_n_params(std::size_t n, double mean_degree,
                                   Placement placement) {
  MINIM_REQUIRE(n > 0 && mean_degree > 0.0, "large-n params: bad inputs");
  WorkloadParams params;
  params.n = n;
  params.placement = placement;
  // E[out-degree] ~ density * pi * E[r^2]; solve the field area for the
  // requested mean degree at the paper's range distribution.
  const double r_lo = params.min_range;
  const double r_hi = params.max_range;
  const double mean_r2 =
      (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo) / (3.0 * (r_hi - r_lo));
  const double area =
      static_cast<double>(n) * std::numbers::pi * mean_r2 / mean_degree;
  const double side = std::sqrt(area);
  params.width = side;
  params.height = side;
  // Clusters keep a constant expected population, and the Gaussian spread is
  // solved so the *within-cluster* density at a cluster center also yields
  // ~mean_degree (local density of an isotropic Gaussian of m points is
  // m / (2 pi sigma^2)): degree stays bounded as n grows, which is what
  // keeps the per-event hot path local at 10⁵–10⁶ nodes.
  constexpr double kClusterPopulation = 100.0;
  params.cluster_count =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(n) / kClusterPopulation));
  params.cluster_sigma =
      std::sqrt(kClusterPopulation * mean_r2 / (2.0 * mean_degree));
  return params;
}

}  // namespace minim::sim
