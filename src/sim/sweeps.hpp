#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/replay.hpp"
#include "sim/workload.hpp"
#include "strategies/factory.hpp"
#include "util/stats.hpp"

/// \file sweeps.hpp
/// \brief Parameter sweeps reproducing the evaluation of Section 5.
///
/// Every figure in the paper is a sweep: an x-axis parameter, one curve per
/// strategy, each point "the average of the metric measured over 100 runs of
/// randomly generated ad-hoc networks".  `run_sweep` fans (x, run) pairs
/// over `util::map_reduce` (item (xi, run) draws stream xi*runs+run),
/// replays each generated workload once per strategy (paired comparison —
/// all strategies see the same random networks), and reduces per-run metrics
/// deterministically.  The figure-specific sweeps below are one-axis
/// `sim::Experiment` grids with identical stream assignment, converted back
/// to `SweepPoint`s.

namespace minim::sim {

/// One (x, strategy) point of a figure.
struct SweepPoint {
  double x = 0;
  std::string strategy;
  /// Fig 10: final max color / total recodings.
  /// Fig 11/12: Δ(max color) / Δ(recodings) relative to after-setup state.
  util::RunningStats color_metric;
  util::RunningStats recoding_metric;
};

struct SweepOptions {
  std::vector<std::string> strategies{"minim", "cp", "bbb"};
  std::size_t runs = 100;     ///< paper: 100
  std::uint64_t seed = 2001;  ///< master seed; runs derive independent streams
  std::size_t threads = 0;    ///< 0 = hardware concurrency
  bool validate = false;      ///< CA1/CA2 check after every event (slow)
  /// Custom named-strategy constructor; empty = `strategies::make_strategy`.
  strategies::StrategyFactory strategy_factory;
};

/// Builds the workload for parameter value `x` using the supplied run-local
/// RNG stream.
using WorkloadFactory = std::function<Workload(double x, util::Rng& rng)>;

/// Runs the sweep.  With `delta_metrics` the Δ-versions of both metrics are
/// recorded (Figs 11 and 12), otherwise the absolute after-setup values
/// (Fig 10).  Points are ordered x-major, strategy-minor.
std::vector<SweepPoint> run_sweep(const std::vector<double>& xs,
                                  const WorkloadFactory& factory, bool delta_metrics,
                                  const SweepOptions& options);

// ---- Figure sweeps as experiment grids -----------------------------------
//
// Each figure sweep is a one-axis `ExperimentGrid`; the grid_* builders
// expose that grid so callers other than the in-process sweep_* wrappers —
// notably the multi-process orchestrator behind `--orchestrate` — can run
// it sharded and convert the merged result back to figure points.

/// `ExperimentOptions` carrying a sweep's runs/seed/threads.
ExperimentOptions experiment_options_from(const SweepOptions& options);

/// Converts a one-axis experiment result to the figure point list (x-major,
/// strategy-minor; per-run accumulation in trial order).  With
/// `delta_metrics` the Δ-versions of both metrics are recorded (Figs 11 and
/// 12), otherwise the absolute after-setup values (Fig 10).
std::vector<SweepPoint> sweep_points_from(const ExperimentResult& result,
                                          bool delta_metrics);

/// Fig 10(a-c) grid: joins vs N.
ExperimentGrid grid_join_vs_n(const std::vector<double>& ns,
                              const SweepOptions& options,
                              double min_range = 20.5, double max_range = 30.5);

/// Fig 10(d-f) grid: joins vs average range.
ExperimentGrid grid_join_vs_avg_range(const std::vector<double>& avg_ranges,
                                      const SweepOptions& options,
                                      std::size_t n = 100, double spread = 5.0);

/// Fig 11 grid: power raises vs raisefactor.
ExperimentGrid grid_power_vs_raise_factor(
    const std::vector<double>& raise_factors, const SweepOptions& options,
    std::size_t n = 100, double min_range = 20.5, double max_range = 30.5);

/// Fig 12(a) grid: one movement round vs maxdisp.
ExperimentGrid grid_move_vs_max_displacement(
    const std::vector<double>& max_displacements, const SweepOptions& options,
    std::size_t n = 40, double min_range = 20.5, double max_range = 30.5);

/// Fig 12(b-d) grid: movement rounds vs RoundNo.
ExperimentGrid grid_move_vs_rounds(const std::vector<double>& rounds,
                                   const SweepOptions& options,
                                   std::size_t n = 40,
                                   double max_displacement = 40.0,
                                   double min_range = 20.5,
                                   double max_range = 30.5);

// ---- Figure-specific sweeps (parameters default to the paper's) ----------

/// Fig 10(a-c): joins vs N, minr=20.5, maxr=30.5.
std::vector<SweepPoint> sweep_join_vs_n(const std::vector<double>& ns,
                                        const SweepOptions& options,
                                        double min_range = 20.5,
                                        double max_range = 30.5);

/// Fig 10(d-f): joins vs average range, N=100, maxr-minr=5.
std::vector<SweepPoint> sweep_join_vs_avg_range(const std::vector<double>& avg_ranges,
                                                const SweepOptions& options,
                                                std::size_t n = 100,
                                                double spread = 5.0);

/// Fig 11: power raises of half the nodes vs raisefactor, N=100.
std::vector<SweepPoint> sweep_power_vs_raise_factor(
    const std::vector<double>& raise_factors, const SweepOptions& options,
    std::size_t n = 100, double min_range = 20.5, double max_range = 30.5);

/// Fig 12(a): one movement round vs maxdisp, N=40.
std::vector<SweepPoint> sweep_move_vs_max_displacement(
    const std::vector<double>& max_displacements, const SweepOptions& options,
    std::size_t n = 40, double min_range = 20.5, double max_range = 30.5);

/// Fig 12(b-d): movement rounds vs RoundNo, maxdisp=40, N=40.
std::vector<SweepPoint> sweep_move_vs_rounds(const std::vector<double>& rounds,
                                             const SweepOptions& options,
                                             std::size_t n = 40,
                                             double max_displacement = 40.0,
                                             double min_range = 20.5,
                                             double max_range = 30.5);

// ---- Large-N scenario family (constant density; see make_large_n_params) --

/// Joins vs N at constant node density: the field scales with N so the mean
/// degree stays near `mean_degree` — the paper's join experiment carried
/// into the 10⁵–10⁶-node regime, under any placement family.
std::vector<SweepPoint> sweep_join_vs_n_constant_density(
    const std::vector<double>& ns, const SweepOptions& options,
    Placement placement = Placement::kUniform, double mean_degree = 12.0);

/// Joins vs cluster count at fixed N (clustered placement): how topology
/// concentration drives color usage and recoding churn.
std::vector<SweepPoint> sweep_join_vs_cluster_count(
    const std::vector<double>& cluster_counts, const SweepOptions& options,
    std::size_t n = 100, double cluster_sigma = 6.0);

}  // namespace minim::sim
