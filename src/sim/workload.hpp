#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

/// \file workload.hpp
/// \brief Randomized event workloads matching Section 5's experiment setup.
///
/// A `Workload` is a strategy-independent description of everything random
/// in one simulation run: the join sequence (positions + ranges), the power
/// raises, and the per-round absolute positions of movers.  Generating the
/// workload *before* replaying it per strategy guarantees every strategy
/// sees the identical event sequence — the paired comparison the paper's
/// plots rely on.
///
/// Positions are uniform on the field (paper: 100 x 100 units); ranges
/// uniform in (min_range, max_range); movement picks a uniform direction and
/// a displacement uniform in [0, max_displacement], clamped to the field.

namespace minim::sim {

/// One power-range change: the `join_index`-th joined node moves to
/// `new_range`.
struct PowerRaise {
  std::size_t join_index;
  double new_range;
};

/// One movement: the `join_index`-th joined node relocates to `position`
/// (already absolute and clamped).
struct Move {
  std::size_t join_index;
  util::Vec2 position;
};

struct Workload {
  double width = 100.0;
  double height = 100.0;
  std::vector<net::NodeConfig> joins;          ///< phase 1: consecutive joins
  std::vector<PowerRaise> power_raises;        ///< phase 2 (Fig 11)
  std::vector<std::vector<Move>> move_rounds;  ///< phase 2 (Fig 12)
};

/// How join positions are placed on the field.  `kUniform` is the paper's
/// setup; the clustered and Poisson-disk families open the non-uniform
/// topologies of the large-CDMA literature (Thomas cluster processes as in
/// Poisson-clustered ad-hoc models; blue-noise deployments as a
/// repulsive/planned-placement contrast).
enum class Placement {
  kUniform,     ///< i.i.d. uniform on the field (paper Section 5)
  kClustered,   ///< Thomas process: uniform parents, Gaussian offspring
  kPoissonDisk, ///< dart-throwing blue noise with a minimum separation
};

const char* to_string(Placement placement);

/// Experiment knobs shared by all three figures.
struct WorkloadParams {
  std::size_t n = 100;        ///< nodes joined in phase 1
  double min_range = 20.5;
  double max_range = 30.5;
  double width = 100.0;
  double height = 100.0;
  Placement placement = Placement::kUniform;
  // kClustered: number of cluster parents and the offspring spread.
  std::size_t cluster_count = 8;
  double cluster_sigma = 6.0;
  // kPoissonDisk: minimum pairwise separation; 0 derives a packing-feasible
  // default (~0.7 of the mean nearest-neighbor spacing) from the density.
  double min_separation = 0.0;
};

/// Fig 10 workload: N consecutive joins, nothing else.
Workload make_join_workload(const WorkloadParams& params, util::Rng& rng);

/// Fig 11 workload: N joins, then `n/2` distinct random nodes raise their
/// range by `raise_factor` (sequenced in random order).
Workload make_power_workload(const WorkloadParams& params, double raise_factor,
                             util::Rng& rng);

/// Fig 12 workload: N joins, then `rounds` rounds in which every node moves
/// once (ascending join order, as "one by one" in the paper) by a uniform
/// displacement in a uniform direction, clamped to the field.
Workload make_move_workload(const WorkloadParams& params, double max_displacement,
                            std::size_t rounds, util::Rng& rng);

/// Parameters for an n-node workload at *constant node density*: the paper's
/// range distribution (20.5..30.5) is kept and the field is scaled so the
/// expected out-degree stays near `mean_degree` regardless of n — the regime
/// in which per-event cost is local and 10⁵–10⁶-node runs are feasible.
/// Cluster count/spread scale with the field so clustered placements keep a
/// constant per-cluster population.
WorkloadParams make_large_n_params(std::size_t n, double mean_degree,
                                   Placement placement);

}  // namespace minim::sim
