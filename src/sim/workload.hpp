#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

/// \file workload.hpp
/// \brief Randomized event workloads matching Section 5's experiment setup.
///
/// A `Workload` is a strategy-independent description of everything random
/// in one simulation run: the join sequence (positions + ranges), the power
/// raises, and the per-round absolute positions of movers.  Generating the
/// workload *before* replaying it per strategy guarantees every strategy
/// sees the identical event sequence — the paired comparison the paper's
/// plots rely on.
///
/// Positions are uniform on the field (paper: 100 x 100 units); ranges
/// uniform in (min_range, max_range); movement picks a uniform direction and
/// a displacement uniform in [0, max_displacement], clamped to the field.

namespace minim::sim {

/// One power-range change: the `join_index`-th joined node moves to
/// `new_range`.
struct PowerRaise {
  std::size_t join_index;
  double new_range;
};

/// One movement: the `join_index`-th joined node relocates to `position`
/// (already absolute and clamped).
struct Move {
  std::size_t join_index;
  util::Vec2 position;
};

struct Workload {
  double width = 100.0;
  double height = 100.0;
  std::vector<net::NodeConfig> joins;          ///< phase 1: consecutive joins
  std::vector<PowerRaise> power_raises;        ///< phase 2 (Fig 11)
  std::vector<std::vector<Move>> move_rounds;  ///< phase 2 (Fig 12)
};

/// Experiment knobs shared by all three figures.
struct WorkloadParams {
  std::size_t n = 100;        ///< nodes joined in phase 1
  double min_range = 20.5;
  double max_range = 30.5;
  double width = 100.0;
  double height = 100.0;
};

/// Fig 10 workload: N consecutive joins, nothing else.
Workload make_join_workload(const WorkloadParams& params, util::Rng& rng);

/// Fig 11 workload: N joins, then `n/2` distinct random nodes raise their
/// range by `raise_factor` (sequenced in random order).
Workload make_power_workload(const WorkloadParams& params, double raise_factor,
                             util::Rng& rng);

/// Fig 12 workload: N joins, then `rounds` rounds in which every node moves
/// once (ascending join order, as "one by one" in the paper) by a uniform
/// displacement in a uniform direction, clamped to the field.
Workload make_move_workload(const WorkloadParams& params, double max_displacement,
                            std::size_t rounds, util::Rng& rng);

}  // namespace minim::sim
