#include "sim/simulation.hpp"

#include <stdexcept>

#include "net/constraints.hpp"

namespace minim::sim {

Simulation::Simulation(core::RecodingStrategy& strategy)
    : Simulation(strategy, Params{}) {}

Simulation::Simulation(core::RecodingStrategy& strategy, const Params& params)
    : strategy_(&strategy),
      params_(params),
      network_(params.width, params.height) {}

void account_event(Totals& totals, const core::RecodeReport& report) {
  ++totals.events;
  totals.recodings += report.recodings();
  totals.messages += report.messages;
  const auto type_index = static_cast<std::size_t>(report.event);
  ++totals.events_by_type[type_index];
  totals.recodings_by_type[type_index] += report.recodings();
}

void validate_assignment(const net::AdhocNetwork& network,
                         const net::CodeAssignment& assignment) {
  const auto violations = net::find_violations(network, assignment);
  if (!violations.empty())
    throw std::logic_error("assignment invalid after event: " +
                           violations.front().to_string());
  if (!net::all_colored(network, assignment))
    throw std::logic_error("uncolored live node after event");
}

void Simulation::account(const core::RecodeReport& report) {
  account_event(totals_, report);
  if (params_.keep_history) history_.push_back(report);
  if (params_.validate_after_each) validate();
}

void Simulation::validate() const { validate_assignment(network_, assignment_); }

net::NodeId Simulation::join(const net::NodeConfig& config) {
  const net::NodeId id = network_.add_node(config);
  account(strategy_->on_join(network_, assignment_, id));
  return id;
}

void Simulation::leave(net::NodeId v) {
  network_.remove_node(v);
  assignment_.clear(v);
  account(strategy_->on_leave(network_, assignment_, v));
}

void Simulation::move(net::NodeId v, util::Vec2 new_position) {
  network_.set_position(v, new_position);
  account(strategy_->on_move(network_, assignment_, v));
}

void Simulation::change_power(net::NodeId v, double new_range) {
  const double old_range = network_.config(v).range;
  network_.set_range(v, new_range);
  account(strategy_->on_power_change(network_, assignment_, v, old_range));
}

}  // namespace minim::sim
