#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/constraints.hpp"
#include "sim/trace.hpp"
#include "util/require.hpp"

namespace minim::sim {

Simulation::Simulation(core::RecodingStrategy& strategy)
    : Simulation(strategy, Params{}) {}

Simulation::Simulation(core::RecodingStrategy& strategy, const Params& params)
    : strategy_(&strategy),
      params_(params),
      network_(params.width, params.height) {}

void account_event(Totals& totals, const core::RecodeReport& report) {
  ++totals.events;
  totals.recodings += report.recodings();
  totals.messages += report.messages;
  const auto type_index = static_cast<std::size_t>(report.event);
  ++totals.events_by_type[type_index];
  totals.recodings_by_type[type_index] += report.recodings();
}

void validate_assignment(const net::AdhocNetwork& network,
                         const net::CodeAssignment& assignment) {
  const auto violations = net::find_violations(network, assignment);
  if (!violations.empty())
    throw std::logic_error("assignment invalid after event: " +
                           violations.front().to_string());
  if (!net::all_colored(network, assignment))
    throw std::logic_error("uncolored live node after event");
}

void Simulation::account(const core::RecodeReport& report) {
  account_event(totals_, report);
  if (params_.keep_history) history_.push_back(report);
  if (params_.validate_after_each) validate();
}

void Simulation::validate() const { validate_assignment(network_, assignment_); }

net::NodeId Simulation::join(const net::NodeConfig& config) {
  const net::NodeId id = network_.add_node(config);
  account(strategy_->on_join(network_, assignment_, id));
  return id;
}

void Simulation::leave(net::NodeId v) {
  network_.remove_node(v);
  assignment_.clear(v);
  account(strategy_->on_leave(network_, assignment_, v));
}

void Simulation::move(net::NodeId v, util::Vec2 new_position) {
  network_.set_position(v, new_position);
  account(strategy_->on_move(network_, assignment_, v));
}

void Simulation::change_power(net::NodeId v, double new_range) {
  const double old_range = network_.config(v).range;
  network_.set_range(v, new_range);
  account(strategy_->on_power_change(network_, assignment_, v, old_range));
}

void Simulation::account_batch(std::span<const core::BatchedEvent> events,
                               const core::RecodeReport& report) {
  totals_.events += events.size();
  for (const core::BatchedEvent& be : events)
    ++totals_.events_by_type[static_cast<std::size_t>(be.event)];
  totals_.recodings += report.recodings();
  totals_.messages += report.messages;
  totals_.recodings_by_type[static_cast<std::size_t>(report.event)] +=
      report.recodings();
  if (params_.keep_history) history_.push_back(report);
  if (params_.validate_after_each) validate();
}

void Simulation::apply_batch(std::span<const TraceEvent> events,
                             std::vector<net::NodeId>& by_join_order,
                             BatchResult& result) {
  result.events = events.size();
  result.recoded = 0;
  result.repairs = 0;
  result.coalesced = false;
  result.outcomes.clear();
  if (events.empty()) return;

  const auto resolve = [&](const TraceEvent& e) {
    MINIM_REQUIRE(e.node < by_join_order.size(),
                  std::string(to_string(e.kind)) + ": node has not joined yet");
    const net::NodeId v = by_join_order[e.node];
    MINIM_REQUIRE(network_.contains(v),
                  std::string(to_string(e.kind)) + ": node already left");
    return v;
  };

  const std::size_t recodings_before = totals_.recodings;

  if (!strategy_->supports_batch() || events.size() == 1) {
    // Per-event delivery: the strategy sees each event exactly as the
    // sequential API would hand it over, so the outcomes are exact.
    for (const TraceEvent& e : events) {
      const std::size_t before = totals_.recodings;
      BatchEventOutcome outcome;
      outcome.exact = true;
      switch (e.kind) {
        case TraceEvent::Kind::kJoin:
          outcome.subject = join(net::NodeConfig{e.position, e.range});
          by_join_order.push_back(outcome.subject);
          break;
        case TraceEvent::Kind::kLeave:
          outcome.subject = resolve(e);
          leave(outcome.subject);
          break;
        case TraceEvent::Kind::kMove:
          outcome.subject = resolve(e);
          move(outcome.subject, e.position);
          break;
        case TraceEvent::Kind::kPower:
          outcome.subject = resolve(e);
          change_power(outcome.subject, e.range);
          break;
      }
      outcome.recoded = totals_.recodings - before;
      outcome.max_color = assignment_.max_color();
      outcome.live_nodes = network_.node_count();
      result.outcomes.push_back(outcome);
      ++result.repairs;
    }
    result.recoded = totals_.recodings - recodings_before;
    return;
  }

  // Coalesced path: apply every network mutation, then one repair over the
  // final graph.  The strategy's `supports_batch` contract makes this
  // equivalent to the sequential loop above.
  batch_events_.clear();
  for (const TraceEvent& e : events) {
    core::BatchedEvent be;
    switch (e.kind) {
      case TraceEvent::Kind::kJoin:
        be.event = core::EventType::kJoin;
        be.subject = network_.add_node(net::NodeConfig{e.position, e.range});
        by_join_order.push_back(be.subject);
        break;
      case TraceEvent::Kind::kLeave:
        be.event = core::EventType::kLeave;
        be.subject = resolve(e);
        network_.remove_node(be.subject);
        assignment_.clear(be.subject);
        break;
      case TraceEvent::Kind::kMove:
        be.event = core::EventType::kMove;
        be.subject = resolve(e);
        network_.set_position(be.subject, e.position);
        break;
      case TraceEvent::Kind::kPower:
        be.subject = resolve(e);
        be.old_range = network_.config(be.subject).range;
        be.event = e.range > be.old_range ? core::EventType::kPowerIncrease
                                          : core::EventType::kPowerDecrease;
        network_.set_range(be.subject, e.range);
        break;
    }
    batch_events_.push_back(be);
  }

  // Joiners live at batch end, ordered by their LAST join event: the
  // network reuses freed ids, so an id can be joined, freed, and joined
  // again within one batch — only its final incarnation's order matters.
  batch_joiners_.clear();
  for (const core::BatchedEvent& be : batch_events_) {
    if (be.event != core::EventType::kJoin) continue;
    std::erase(batch_joiners_, be.subject);
    batch_joiners_.push_back(be.subject);
  }
  std::erase_if(batch_joiners_,
                [this](net::NodeId v) { return !network_.contains(v); });

  // Reborn: ids that departed within the batch and are live again at its
  // end — freed by the network and reassigned to a later joiner.
  batch_reborn_.clear();
  for (const core::BatchedEvent& be : batch_events_)
    if (be.event == core::EventType::kLeave && network_.contains(be.subject))
      batch_reborn_.push_back(be.subject);
  std::sort(batch_reborn_.begin(), batch_reborn_.end());
  batch_reborn_.erase(std::unique(batch_reborn_.begin(), batch_reborn_.end()),
                      batch_reborn_.end());

  const core::BatchRepairContext context{batch_events_, batch_joiners_,
                                         batch_reborn_};
  account_batch(batch_events_,
                strategy_->on_batch(network_, assignment_, context));

  result.repairs = 1;
  result.coalesced = true;
  result.recoded = totals_.recodings - recodings_before;
  const net::Color max_color_after = assignment_.max_color();
  const std::size_t live_after = network_.node_count();
  for (const core::BatchedEvent& be : batch_events_) {
    BatchEventOutcome outcome;
    outcome.subject = be.subject;
    outcome.recoded = result.recoded;
    outcome.max_color = max_color_after;
    outcome.live_nodes = live_after;
    outcome.exact = false;
    result.outcomes.push_back(outcome);
  }
}

}  // namespace minim::sim
