#include "sim/churn.hpp"

#include <cmath>
#include <numbers>
#include <queue>

#include "net/constraints.hpp"
#include "util/require.hpp"

namespace minim::sim {

namespace {

/// Exponential inter-arrival draw; rate 0 means "never".
double exponential(util::Rng& rng, double rate) {
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return -std::log(1.0 - rng.uniform01()) / rate;
}

enum class EventKind : std::uint8_t { kArrival, kLeave, kMove, kPower, kSample };

struct QueuedEvent {
  double time;
  std::uint64_t sequence;  // total order among simultaneous events
  EventKind kind;
  net::NodeId node = net::kInvalidNode;
  std::uint64_t generation = 0;  // guards against stale per-node events

  bool operator>(const QueuedEvent& other) const {
    if (time != other.time) return time > other.time;
    return sequence > other.sequence;
  }
};

/// Per-live-node bookkeeping.
struct NodeState {
  std::uint64_t generation = 0;
  double full_range = 0.0;
  bool power_saving = false;
  bool alive = false;
};

}  // namespace

ChurnResult run_churn(const ChurnParams& params, core::RecodingStrategy& strategy,
                      util::Rng& rng) {
  MINIM_REQUIRE(params.duration > 0, "churn duration must be positive");
  MINIM_REQUIRE(params.sample_interval > 0, "sample interval must be positive");
  MINIM_REQUIRE(params.min_range <= params.max_range, "min_range > max_range");

  Simulation::Params sim_params;
  sim_params.width = params.width;
  sim_params.height = params.height;
  sim_params.validate_after_each = params.validate;
  Simulation simulation(strategy, sim_params);

  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>> queue;
  std::uint64_t sequence = 0;
  auto push = [&queue, &sequence](double time, EventKind kind, net::NodeId node,
                                  std::uint64_t generation) {
    queue.push(QueuedEvent{time, sequence++, kind, node, generation});
  };

  std::vector<NodeState> states;
  auto state_of = [&states](net::NodeId v) -> NodeState& {
    if (v >= states.size()) states.resize(v + 1);
    return states[v];
  };

  auto schedule_node_events = [&](double now, net::NodeId v) {
    const NodeState& state = states[v];
    push(now + exponential(rng, params.move_rate), EventKind::kMove, v,
         state.generation);
    push(now + exponential(rng, params.power_rate), EventKind::kPower, v,
         state.generation);
  };

  ChurnResult result;

  // Seed population: join `initial_nodes` configurations at time 0, then
  // give every seeded node the same event schedules an arrival would get.
  if (params.initial_nodes > 0) {
    WorkloadParams seed_params;
    seed_params.n = params.initial_nodes;
    seed_params.min_range = params.min_range;
    seed_params.max_range = params.max_range;
    seed_params.width = params.width;
    seed_params.height = params.height;
    seed_params.placement = params.initial_placement;
    seed_params.cluster_count = params.initial_cluster_count;
    seed_params.cluster_sigma = params.initial_cluster_sigma;
    seed_params.min_separation = params.initial_min_separation;
    const Workload seed = make_join_workload(seed_params, rng);
    for (const net::NodeConfig& config : seed.joins) {
      if (simulation.network().node_count() >= params.max_nodes) {
        ++result.dropped_arrivals;
        continue;
      }
      const net::NodeId id = simulation.join(config);
      NodeState& state = state_of(id);
      ++state.generation;
      state.full_range = config.range;
      state.power_saving = false;
      state.alive = true;
      push(exponential(rng, 1.0 / params.mean_lifetime), EventKind::kLeave, id,
           state.generation);
      schedule_node_events(0.0, id);
    }
    result.peak_nodes = simulation.network().node_count();
  }

  push(exponential(rng, params.arrival_rate), EventKind::kArrival, net::kInvalidNode, 0);
  push(params.sample_interval, EventKind::kSample, net::kInvalidNode, 0);

  while (!queue.empty()) {
    const QueuedEvent event = queue.top();
    queue.pop();
    if (event.time > params.duration) break;
    const double now = event.time;

    switch (event.kind) {
      case EventKind::kArrival: {
        push(now + exponential(rng, params.arrival_rate), EventKind::kArrival,
             net::kInvalidNode, 0);
        if (simulation.network().node_count() >= params.max_nodes) {
          ++result.dropped_arrivals;
          break;
        }
        net::NodeConfig config;
        config.position = {rng.uniform(0, params.width), rng.uniform(0, params.height)};
        config.range = rng.uniform(params.min_range, params.max_range);
        const net::NodeId id = simulation.join(config);
        NodeState& state = state_of(id);
        ++state.generation;
        state.full_range = config.range;
        state.power_saving = false;
        state.alive = true;
        push(now + exponential(rng, 1.0 / params.mean_lifetime), EventKind::kLeave,
             id, state.generation);
        schedule_node_events(now, id);
        result.peak_nodes = std::max(result.peak_nodes,
                                     simulation.network().node_count());
        break;
      }
      case EventKind::kLeave: {
        NodeState& state = states[event.node];
        if (!state.alive || state.generation != event.generation) break;
        state.alive = false;
        simulation.leave(event.node);
        break;
      }
      case EventKind::kMove: {
        NodeState& state = states[event.node];
        if (!state.alive || state.generation != event.generation) break;
        const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
        const double displacement = rng.uniform(0.0, params.max_displacement);
        const util::Vec2 target =
            simulation.network().config(event.node).position +
            util::Vec2::from_angle(angle) * displacement;
        simulation.move(event.node, target);  // engine clamps to the field
        push(now + exponential(rng, params.move_rate), EventKind::kMove, event.node,
             state.generation);
        break;
      }
      case EventKind::kPower: {
        NodeState& state = states[event.node];
        if (!state.alive || state.generation != event.generation) break;
        state.power_saving = !state.power_saving;
        const double range = state.power_saving
                                 ? state.full_range * params.power_save_factor
                                 : state.full_range;
        simulation.change_power(event.node, range);
        push(now + exponential(rng, params.power_rate), EventKind::kPower,
             event.node, state.generation);
        break;
      }
      case EventKind::kSample: {
        result.samples.push_back(
            ChurnSample{now, simulation.network().node_count(),
                        simulation.max_color(), simulation.totals().recodings});
        push(now + params.sample_interval, EventKind::kSample, net::kInvalidNode, 0);
        break;
      }
    }
  }

  result.totals = simulation.totals();
  result.final_max_color = simulation.max_color();
  result.final_valid =
      net::is_valid(simulation.network(), simulation.assignment());
  return result;
}

}  // namespace minim::sim
