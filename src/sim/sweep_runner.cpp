#include "sim/sweep_runner.hpp"

#include <stdexcept>
#include <vector>

#include "strategies/factory.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace minim::sim {

namespace {

/// Builds the phased workload for one trial.  All randomness comes from
/// `rng`, so the trial is a pure function of its RNG stream.
Workload make_trial_workload(const ScenarioSpec& spec, util::Rng& rng) {
  switch (spec.kind) {
    case ScenarioKind::kJoin:
      return make_join_workload(spec.workload, rng);
    case ScenarioKind::kPower:
      return make_power_workload(spec.workload, spec.raise_factor, rng);
    case ScenarioKind::kMove:
      return make_move_workload(spec.workload, spec.max_displacement,
                                spec.move_rounds, rng);
    case ScenarioKind::kChurn:
      break;  // churn does not use a phased workload
  }
  throw std::logic_error("make_trial_workload: unreachable scenario kind");
}

TrialResult run_workload_trial(const ScenarioSpec& spec, util::Rng& rng) {
  const Workload workload = make_trial_workload(spec, rng);

  const auto strategy = strategies::make_strategy(spec.strategy);
  Simulation::Params params;
  params.width = workload.width;
  params.height = workload.height;
  params.validate_after_each = spec.validate;
  Simulation simulation(*strategy, params);

  std::vector<net::NodeId> ids;
  ids.reserve(workload.joins.size());
  for (const auto& config : workload.joins) ids.push_back(simulation.join(config));
  for (const auto& raise : workload.power_raises)
    simulation.change_power(ids[raise.join_index], raise.new_range);
  for (const auto& round : workload.move_rounds)
    for (const auto& mv : round) simulation.move(ids[mv.join_index], mv.position);

  TrialResult result;
  result.totals = simulation.totals();
  result.final_max_color = simulation.max_color();
  return result;
}

TrialResult run_churn_trial(const ScenarioSpec& spec, util::Rng& rng) {
  ChurnParams params = spec.churn;
  params.validate = params.validate || spec.validate;
  const auto strategy = strategies::make_strategy(spec.strategy);
  const ChurnResult churn = run_churn(params, *strategy, rng);

  TrialResult result;
  result.totals = churn.totals;
  result.final_max_color = churn.final_max_color;
  return result;
}

void accumulate(TotalsSummary& summary, const TrialResult& trial) {
  summary.events.add(static_cast<double>(trial.totals.events));
  summary.recodings.add(static_cast<double>(trial.totals.recodings));
  summary.messages.add(static_cast<double>(trial.totals.messages));
  summary.max_color.add(static_cast<double>(trial.final_max_color));
  for (std::size_t t = 0; t < trial.totals.events_by_type.size(); ++t) {
    summary.events_by_type[t].add(
        static_cast<double>(trial.totals.events_by_type[t]));
    summary.recodings_by_type[t].add(
        static_cast<double>(trial.totals.recodings_by_type[t]));
  }
}

}  // namespace

TrialResult run_scenario_trial(const ScenarioSpec& spec, util::Rng& rng) {
  if (spec.kind == ScenarioKind::kChurn) return run_churn_trial(spec, rng);
  return run_workload_trial(spec, rng);
}

SweepReport run_scenario_sweep(const ScenarioSpec& spec,
                               const SweepRunnerOptions& options) {
  // Trials land in a trial-indexed slot vector, so the reduction below walks
  // them in trial order no matter how the pool scheduled them.
  std::vector<TrialResult> results(options.trials);
  auto run_one = [&](std::size_t trial) {
    util::Rng rng = util::Rng::for_stream(options.seed, trial);
    results[trial] = run_scenario_trial(spec, rng);
  };

  if (options.threads == 1) {
    for (std::size_t i = 0; i < options.trials; ++i) run_one(i);
  } else {
    util::ThreadPool pool(options.threads);
    pool.parallel_for(options.trials, run_one);
  }

  SweepReport report;
  for (const TrialResult& trial : results) accumulate(report.summary, trial);
  if (options.keep_trials) report.trials = std::move(results);
  return report;
}

}  // namespace minim::sim
