#include "sim/sweep_runner.hpp"

#include "sim/replay.hpp"
#include "strategies/factory.hpp"
#include "util/rng.hpp"

namespace minim::sim {

TrialResult run_scenario_trial(const ScenarioSpec& spec, util::Rng& rng) {
  TrialResult result;
  if (spec.kind == ScenarioKind::kChurn) {
    ChurnParams params = spec.churn;
    params.validate = params.validate || spec.validate;
    const auto strategy = strategies::make_strategy(spec.strategy);
    const ChurnResult churn = run_churn(params, *strategy, rng);
    result.totals = churn.totals;
    result.final_max_color = churn.final_max_color;
    return result;
  }
  const Workload workload = make_scenario_workload(spec, rng);
  const auto strategy = strategies::make_strategy(spec.strategy);
  thread_local ReplayArena arena;  // reused across this worker's trials
  const RunOutcome outcome = replay(workload, *strategy, spec.validate, &arena);
  result.totals = outcome.totals;
  result.final_max_color = outcome.max_color;
  return result;
}

SweepReport run_scenario_sweep(const ScenarioSpec& spec,
                               const SweepRunnerOptions& options) {
  // A single-point, single-strategy grid: trial i's stream index is
  // 0 * trials + i = i, exactly the streams this engine always used.
  ExperimentGrid grid;
  grid.base = spec;
  grid.strategies = {spec.strategy};
  const Experiment experiment(std::move(grid));

  ExperimentOptions run;
  run.trials = options.trials;
  run.seed = options.seed;
  run.threads = options.threads;
  const ExperimentResult result = experiment.run(run);

  const ExperimentCell& cell = result.cell(0, 0);
  SweepReport report;
  report.summary = summarize(cell);
  if (options.keep_trials) {
    report.trials.reserve(cell.trials.size());
    for (const ExperimentTrial& trial : cell.trials)
      report.trials.push_back(TrialResult{trial.totals, trial.final_max_color});
  }
  return report;
}

}  // namespace minim::sim
