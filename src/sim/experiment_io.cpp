#include "sim/experiment_io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace minim::sim {

namespace {

constexpr const char* kMagic = "#minim-experiment v1";

/// Shortest-exact double rendering: 17 significant digits round-trip any
/// IEEE-754 double through strtod bit-exactly.
std::string fmt_exact(double x) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", x);
  return buffer;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string::size_type start = 0;
  while (true) {
    const auto pos = line.find(sep, start);
    if (pos == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("read_experiment_csv: " + what);
}

/// Bounds-checked field access that keeps the documented std::runtime_error
/// contract (fields.at would throw std::out_of_range instead).
const std::string& field_at(const std::vector<std::string>& fields,
                            std::size_t index) {
  if (index >= fields.size()) fail("metadata line is missing fields");
  return fields[index];
}

std::uint64_t parse_u64(const std::string& s) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') fail("bad integer '" + s + "'");
  return value;
}

double parse_double(const std::string& s) {
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') fail("bad number '" + s + "'");
  return value;
}

}  // namespace

void write_experiment_csv(const ExperimentResult& result, std::ostream& out) {
  out << kMagic << "\n";
  out << "#seed," << result.seed << "\n";
  out << "#total_trials," << result.total_trials << "\n";
  out << "#trial_begin," << result.trial_begin << "\n";
  out << "#trial_count," << result.trial_count << "\n";
  out << "#total_points," << result.total_points << "\n";
  out << "#point_begin," << result.point_begin << "\n";
  out << "#axes";
  for (const std::string& name : result.axis_names) out << "," << name;
  out << "\n";
  out << "#strategies";
  for (const std::string& name : result.strategies) out << "," << name;
  out << "\n";
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    out << "#point," << p;
    for (double coord : result.points[p]) out << "," << fmt_exact(coord);
    out << "\n";
  }

  out << "point,strategy,trial,events,recodings,messages";
  for (const char* prefix : {"events_t", "recodings_t"})
    for (int t = 0; t < 5; ++t) out << "," << prefix << t;
  out << ",final_max_color,setup_max_color,setup_recodings\n";

  for (const ExperimentCell& cell : result.cells) {
    for (const ExperimentTrial& trial : cell.trials) {
      out << cell.point_index << "," << cell.strategy_index << "," << trial.trial
          << "," << trial.totals.events << "," << trial.totals.recodings << ","
          << trial.totals.messages;
      for (std::size_t t = 0; t < 5; ++t) out << "," << trial.totals.events_by_type[t];
      for (std::size_t t = 0; t < 5; ++t)
        out << "," << trial.totals.recodings_by_type[t];
      out << "," << trial.final_max_color << "," << fmt_exact(trial.setup_max_color)
          << "," << fmt_exact(trial.setup_recodings) << "\n";
    }
  }
}

ExperimentResult read_experiment_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) fail("missing magic header");

  ExperimentResult result;
  bool saw_data_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line, ',');
    if (line[0] == '#') {
      const std::string& key = fields[0];
      if (key == "#seed") result.seed = parse_u64(field_at(fields, 1));
      else if (key == "#total_trials")
        result.total_trials = static_cast<std::size_t>(parse_u64(field_at(fields, 1)));
      else if (key == "#trial_begin")
        result.trial_begin = static_cast<std::size_t>(parse_u64(field_at(fields, 1)));
      else if (key == "#trial_count")
        result.trial_count = static_cast<std::size_t>(parse_u64(field_at(fields, 1)));
      else if (key == "#total_points")
        result.total_points = static_cast<std::size_t>(parse_u64(field_at(fields, 1)));
      else if (key == "#point_begin")
        result.point_begin = static_cast<std::size_t>(parse_u64(field_at(fields, 1)));
      else if (key == "#axes")
        result.axis_names.assign(fields.begin() + 1, fields.end());
      else if (key == "#strategies")
        result.strategies.assign(fields.begin() + 1, fields.end());
      else if (key == "#point") {
        const auto index = static_cast<std::size_t>(parse_u64(field_at(fields, 1)));
        if (index != result.points.size()) fail("points out of order");
        std::vector<double> coords;
        for (std::size_t f = 2; f < fields.size(); ++f)
          coords.push_back(parse_double(fields[f]));
        result.points.push_back(std::move(coords));
      } else {
        fail("unknown metadata line '" + key + "'");
      }
      continue;
    }
    if (!saw_data_header) {
      if (fields[0] != "point") fail("missing data header row");
      saw_data_header = true;
      if (result.strategies.empty()) fail("no strategies declared");
      if (result.trial_begin > result.total_trials ||
          result.trial_count > result.total_trials - result.trial_begin)
        fail("trial range exceeds total_trials");
      // Files written before axis-space sharding carry no point metadata:
      // they are full-grid shards.
      if (result.total_points == 0) result.total_points = result.points.size();
      if (result.point_begin > result.total_points ||
          result.points.size() > result.total_points - result.point_begin)
        fail("point range exceeds total_points");
      result.cells.resize(result.points.size() * result.strategies.size());
      for (std::size_t p = 0; p < result.points.size(); ++p)
        for (std::size_t s = 0; s < result.strategies.size(); ++s) {
          ExperimentCell& cell = result.cells[p * result.strategies.size() + s];
          cell.point_index = p;
          cell.strategy_index = s;
          // Capped: trial_count is file-supplied, so a corrupt value must
          // not turn into a std::length_error before the row checks run.
          cell.trials.reserve(std::min<std::size_t>(result.trial_count, 1 << 20));
        }
      continue;
    }

    if (fields.size() != 19) fail("data row needs 19 fields");
    const auto point = static_cast<std::size_t>(parse_u64(fields[0]));
    const auto strategy = static_cast<std::size_t>(parse_u64(fields[1]));
    if (point >= result.points.size() || strategy >= result.strategies.size())
      fail("data row indexes an undeclared point or strategy");

    ExperimentTrial trial;
    trial.trial = parse_u64(fields[2]);
    trial.totals.events = static_cast<std::size_t>(parse_u64(fields[3]));
    trial.totals.recodings = static_cast<std::size_t>(parse_u64(fields[4]));
    trial.totals.messages = static_cast<std::size_t>(parse_u64(fields[5]));
    for (std::size_t t = 0; t < 5; ++t) {
      trial.totals.events_by_type[t] =
          static_cast<std::size_t>(parse_u64(fields[6 + t]));
      trial.totals.recodings_by_type[t] =
          static_cast<std::size_t>(parse_u64(fields[11 + t]));
    }
    trial.final_max_color = static_cast<net::Color>(parse_u64(fields[16]));
    trial.setup_max_color = parse_double(fields[17]);
    trial.setup_recodings = parse_double(fields[18]);
    result.cells[point * result.strategies.size() + strategy].trials.push_back(
        trial);
  }
  if (!saw_data_header) fail("stream ended before the data header");

  // Truncation / corruption guard: every cell must hold exactly the declared
  // trial range, in order — otherwise merge_shards would silently assemble a
  // result with missing trials.
  for (const ExperimentCell& cell : result.cells) {
    if (cell.trials.size() != result.trial_count)
      fail("cell has " + std::to_string(cell.trials.size()) + " trials, expected " +
           std::to_string(result.trial_count) + " (truncated file?)");
    for (std::size_t i = 0; i < cell.trials.size(); ++i)
      if (cell.trials[i].trial != result.trial_begin + i)
        fail("trial indices do not match the declared range");
  }
  return result;
}

namespace {

constexpr const char* kManifestMagic = "#minim-manifest v1";

[[noreturn]] void fail_manifest(const std::string& what) {
  throw std::runtime_error("read_shard_manifest: " + what);
}

/// Manifest-context parse helpers: same grammar as the experiment-CSV
/// helpers, but failures name *this* parser — a corrupt manifest must not
/// point post-mortem debugging at the shard CSVs.
std::uint64_t manifest_u64(const std::string& s) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0')
    fail_manifest("bad integer '" + s + "'");
  return value;
}

const std::string& manifest_field(const std::vector<std::string>& fields,
                                  std::size_t index) {
  if (index >= fields.size()) fail_manifest("line is missing fields");
  return fields[index];
}

/// The tail of a comma-split line from `index` on, commas restored.
std::string manifest_tail(const std::vector<std::string>& fields,
                          std::size_t index) {
  std::string tail = manifest_field(fields, index);
  for (std::size_t f = index + 1; f < fields.size(); ++f)
    tail += "," + fields[f];
  return tail;
}

}  // namespace

void write_shard_manifest(const ShardManifest& manifest, std::ostream& out) {
  out << kManifestMagic << "\n";
  out << "#experiment," << manifest.experiment << "\n";
  out << "#seed," << manifest.seed << "\n";
  out << "#total_points," << manifest.total_points << "\n";
  out << "#total_trials," << manifest.total_trials << "\n";
  out << "unit,point_begin,point_count,trial_begin,trial_count,attempts,"
         "status,path\n";
  for (const ShardManifestEntry& entry : manifest.entries) {
    out << entry.unit << "," << entry.point_begin << "," << entry.point_count
        << "," << entry.trial_begin << "," << entry.trial_count << ","
        << entry.attempts << "," << entry.status << "," << entry.path << "\n";
  }
}

ShardManifest read_shard_manifest(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic)
    fail_manifest("missing magic header");

  ShardManifest manifest;
  bool saw_data_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line, ',');
    if (line[0] == '#') {
      const std::string& key = fields[0];
      if (key == "#experiment")
        manifest.experiment = manifest_tail(fields, 1);
      else if (key == "#seed")
        manifest.seed = manifest_u64(manifest_field(fields, 1));
      else if (key == "#total_points")
        manifest.total_points =
            static_cast<std::size_t>(manifest_u64(manifest_field(fields, 1)));
      else if (key == "#total_trials")
        manifest.total_trials =
            static_cast<std::size_t>(manifest_u64(manifest_field(fields, 1)));
      else
        fail_manifest("unknown metadata line '" + key + "'");
      continue;
    }
    if (!saw_data_header) {
      if (fields[0] != "unit") fail_manifest("missing data header row");
      saw_data_header = true;
      continue;
    }
    if (fields.size() < 8) fail_manifest("entry row needs 8 fields");
    ShardManifestEntry entry;
    entry.unit = static_cast<std::size_t>(manifest_u64(fields[0]));
    entry.point_begin = static_cast<std::size_t>(manifest_u64(fields[1]));
    entry.point_count = static_cast<std::size_t>(manifest_u64(fields[2]));
    entry.trial_begin = static_cast<std::size_t>(manifest_u64(fields[3]));
    entry.trial_count = static_cast<std::size_t>(manifest_u64(fields[4]));
    entry.attempts = static_cast<std::size_t>(manifest_u64(fields[5]));
    entry.status = fields[6];
    // The path is the tail so it may contain commas.
    entry.path = manifest_tail(fields, 7);
    manifest.entries.push_back(std::move(entry));
  }
  if (!saw_data_header) fail_manifest("stream ended before the data header");
  return manifest;
}

void write_shard_manifest_file(const ShardManifest& manifest,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_shard_manifest(manifest, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

ShardManifest read_shard_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_shard_manifest(in);
}

void write_experiment_csv_file(const ExperimentResult& result,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_experiment_csv(result, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

ExperimentResult read_experiment_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_experiment_csv(in);
}

}  // namespace minim::sim
