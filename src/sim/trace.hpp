#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/workload.hpp"

/// \file trace.hpp
/// \brief Plain-text event traces: record, share and replay exact scenarios.
///
/// A trace is the full reconfiguration history of a network as a line-based
/// text document — the artifact you attach to a bug report or a paper
/// appendix.  Nodes are named by their join order (0-based), independent of
/// internal id reuse, so a trace is meaningful without the engine state.
///
/// Grammar (one event per line; `#` starts a comment; blank lines ignored):
///   join <x> <y> <range>
///   leave <node>
///   move <node> <x> <y>
///   power <node> <range>
///
/// The same grammar is the request language of the serving layer
/// (serve/session.hpp): a long-lived session feeds request lines through a
/// `TraceLineParser` one at a time, so online ingestion and batch
/// `parse_trace` share a single validation path.

namespace minim::sim {

struct TraceEvent {
  enum class Kind : std::uint8_t { kJoin, kLeave, kMove, kPower };

  Kind kind = Kind::kJoin;
  std::size_t node = 0;      ///< join-order index (ignored for kJoin)
  util::Vec2 position{};     ///< kJoin / kMove
  double range = 0.0;        ///< kJoin / kPower
};

using Trace = std::vector<TraceEvent>;

/// Spelled-out verb of the trace grammar ("join", "leave", "move", "power").
const char* to_string(TraceEvent::Kind kind);

/// Malformed trace input: carries the 1-based line number and the bare
/// reason alongside the formatted "trace line <n>: <reason>" message, so a
/// serving session can render a clean protocol error without re-parsing the
/// exception text.  Derives from std::invalid_argument (the historical
/// contract of `parse_trace`).
class TraceParseError : public std::invalid_argument {
 public:
  TraceParseError(std::size_t line, const std::string& reason)
      : std::invalid_argument("trace line " + std::to_string(line) + ": " +
                              reason),
        line_(line),
        reason_(reason) {}

  std::size_t line() const { return line_; }
  const std::string& reason() const { return reason_; }

 private:
  std::size_t line_;
  std::string reason_;
};

/// Incremental line-at-a-time parser for the trace grammar.  It carries the
/// document state across calls — line numbers, the join count, which nodes
/// have departed — which is exactly the state a long-lived serving session
/// needs to validate each incoming request against everything it has
/// already applied.  `parse_trace` is a loop over it.
///
/// A line is parsed all-or-nothing: when `parse_line` throws, the parser's
/// state is untouched, so a session can report the error and keep serving
/// subsequent lines (only the line counter advances — the line was
/// consumed either way).
class TraceLineParser {
 public:
  /// Parses one line (comments stripped; blank lines yield nullopt).
  /// Throws TraceParseError on malformed input or references to nodes that
  /// have not joined or have already left.
  std::optional<TraceEvent> parse_line(std::string_view line);

  /// As above with an explicit 1-based line number — for callers whose
  /// streams interleave non-trace lines (the serving session's queries), so
  /// error messages still point at the real position in the input.
  std::optional<TraceEvent> parse_line(std::string_view line,
                                       std::size_t line_number);

  /// 1-based number of the last line consumed (0 before the first).
  std::size_t line_number() const { return line_number_; }
  /// Nodes joined so far; join-order indices are [0, joined()).
  std::size_t joined() const { return joined_; }
  /// True when `node` has joined and not yet left.
  bool is_live(std::size_t node) const {
    return node < joined_ && !departed_[node];
  }

 private:
  std::size_t line_number_ = 0;
  std::size_t joined_ = 0;
  std::vector<char> departed_;  // by join index
};

/// Renders `trace` in the text format above (stable round-trip).
std::string serialize_trace(const Trace& trace);

/// Parses the text format; throws TraceParseError (a std::invalid_argument)
/// with a line number on malformed input or references to nodes that have
/// not joined/already left.
Trace parse_trace(const std::string& text);

/// Converts a phased workload into the equivalent flat trace.
Trace trace_from_workload(const Workload& workload);

/// Applies `trace` to a fresh simulation run by `strategy`; returns the
/// engine for inspection.  Throws on references to departed nodes.
void apply_trace(const Trace& trace, Simulation& simulation);

}  // namespace minim::sim
