#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/workload.hpp"

/// \file trace.hpp
/// \brief Plain-text event traces: record, share and replay exact scenarios.
///
/// A trace is the full reconfiguration history of a network as a line-based
/// text document — the artifact you attach to a bug report or a paper
/// appendix.  Nodes are named by their join order (0-based), independent of
/// internal id reuse, so a trace is meaningful without the engine state.
///
/// Grammar (one event per line; `#` starts a comment; blank lines ignored):
///   join <x> <y> <range>
///   leave <node>
///   move <node> <x> <y>
///   power <node> <range>

namespace minim::sim {

struct TraceEvent {
  enum class Kind : std::uint8_t { kJoin, kLeave, kMove, kPower };

  Kind kind = Kind::kJoin;
  std::size_t node = 0;      ///< join-order index (ignored for kJoin)
  util::Vec2 position{};     ///< kJoin / kMove
  double range = 0.0;        ///< kJoin / kPower
};

using Trace = std::vector<TraceEvent>;

/// Renders `trace` in the text format above (stable round-trip).
std::string serialize_trace(const Trace& trace);

/// Parses the text format; throws std::invalid_argument with a line number
/// on malformed input or references to nodes that have not joined/already
/// left.
Trace parse_trace(const std::string& text);

/// Converts a phased workload into the equivalent flat trace.
Trace trace_from_workload(const Workload& workload);

/// Applies `trace` to a fresh simulation run by `strategy`; returns the
/// engine for inspection.  Throws on references to departed nodes.
void apply_trace(const Trace& trace, Simulation& simulation);

}  // namespace minim::sim
