#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "sim/churn.hpp"
#include "sim/simulation.hpp"
#include "sim/workload.hpp"
#include "strategies/factory.hpp"
#include "util/stats.hpp"

/// \file experiment.hpp
/// \brief The unified deterministic experiment API: parameter grids x
/// scenario kinds x strategies, over `util::map_reduce`.
///
/// The paper's entire Section 5 evaluation is one shape — "average a metric
/// over 100 runs of randomly generated networks" — and the follow-on
/// Monte-Carlo literature (Meshkati et al., Baccelli et al.) runs the same
/// shape over parameter *grids*.  `Experiment` expresses all of it:
///
///  * an `ExperimentGrid` names the scenario (`ScenarioSpec`), the parameter
///    axes (each axis maps a value onto the spec), and the strategy list;
///  * each (grid point, trial) generates its workload **once** and replays
///    it across every strategy — the paired comparison the paper's plots
///    rely on, without per-strategy regeneration churn;
///  * trial i of point p draws all randomness from
///    `Rng::for_stream(seed, p * trials + i)`, and results reduce in item
///    order, so a report is bit-identical for any thread count;
///  * `trial_begin`/`trial_count` and `point_begin`/`point_count` run a
///    sub-rectangle of the (grid point x trial) space with the *global*
///    streams, so k processes can each run a slice — split by trial range,
///    by grid-point subset (axis-space sharding), or both — and
///    `merge_shards` reassembles a result bit-identical to one process
///    running everything.  `work_plan.hpp` decomposes a grid into such
///    rectangles; `orchestrator.hpp` schedules them across worker processes.
///
/// `run_sweep` (figure sweeps) and `run_scenario_sweep` (scenario
/// Monte-Carlo) are thin adapters over this API; see sweeps.hpp and
/// sweep_runner.hpp.

namespace minim::sim {

/// Which scenario shape each trial runs.
enum class ScenarioKind {
  kJoin,   ///< N consecutive joins (Fig 10's setup phase)
  kPower,  ///< joins, then half the nodes raise their range (Fig 11)
  kMove,   ///< joins, then movement rounds (Fig 12)
  kChurn,  ///< continuous-time open network (sim/churn.hpp)
};

/// Everything one trial needs besides its RNG stream.
struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kJoin;
  std::string strategy = "minim";  ///< single-strategy callers (sweep_runner)
  WorkloadParams workload{};       ///< join/power/move scenarios
  double raise_factor = 2.0;       ///< kPower: range multiplier
  double max_displacement = 40.0;  ///< kMove: per-move displacement bound
  std::size_t move_rounds = 1;     ///< kMove: rounds of everyone-moves-once
  ChurnParams churn{};             ///< kChurn parameters
  bool validate = false;           ///< CA1/CA2 check after every event (slow)
};

/// Builds the phased workload for one trial of `spec` (kJoin/kPower/kMove;
/// throws std::logic_error for kChurn, which has no phased workload).
Workload make_scenario_workload(const ScenarioSpec& spec, util::Rng& rng);

/// One parameter axis of a grid: a name, the values to sweep, and how a
/// value modifies the scenario spec.
struct GridAxis {
  std::string name;
  std::vector<double> values;
  std::function<void(ScenarioSpec&, double)> apply;
};

/// The full experiment description: {parameter axes x scenario x strategies}.
struct ExperimentGrid {
  ScenarioSpec base;          ///< `base.strategy` is ignored; see `strategies`
  std::vector<GridAxis> axes; ///< empty = a single grid point
  std::vector<std::string> strategies{"minim", "cp", "bbb"};
  strategies::StrategyFactory strategy_factory;  ///< empty = `make_strategy`
};

struct ExperimentOptions {
  std::size_t trials = 100;   ///< TOTAL trials per grid point (across shards)
  std::uint64_t seed = 2001;  ///< master seed; (point, trial) derive streams
  std::size_t threads = 0;    ///< 0 = hardware concurrency, 1 = serial
  /// Sharding: this process runs global trials
  /// [trial_begin, trial_begin + trial_count) of the global grid points
  /// [point_begin, point_begin + point_count) (both clamped).  The defaults
  /// run everything.  Streams derive from *global* indices, so any tiling of
  /// the (point x trial) rectangle merges bit-identically (`merge_shards`).
  std::size_t trial_begin = 0;
  std::size_t trial_count = std::numeric_limits<std::size_t>::max();
  std::size_t point_begin = 0;
  std::size_t point_count = std::numeric_limits<std::size_t>::max();
};

/// Raw outcome of one (point, strategy, trial).
struct ExperimentTrial {
  std::uint64_t trial = 0;  ///< global trial index (shard-independent)
  Totals totals;
  net::Color final_max_color = net::kNoColor;
  /// Metrics after the setup phase (the joins); 0 for churn, which has no
  /// phased setup — its deltas equal the absolute values.
  double setup_max_color = 0.0;
  double setup_recodings = 0.0;

  /// Fig 11/12's delta(max color index assigned).
  double delta_max_color() const {
    return static_cast<double>(final_max_color) - setup_max_color;
  }
  /// Fig 11/12's delta(total number of recodings).
  double delta_recodings() const {
    return static_cast<double>(totals.recodings) - setup_recodings;
  }
};

/// All trials of one (grid point, strategy) cell, ascending by trial index.
struct ExperimentCell {
  std::size_t point_index = 0;
  std::size_t strategy_index = 0;
  std::vector<ExperimentTrial> trials;
};

/// Mean/stddev (and min/max) of every engine counter across trials.
struct TotalsSummary {
  util::RunningStats events;
  util::RunningStats recodings;
  util::RunningStats messages;
  util::RunningStats max_color;
  std::array<util::RunningStats, 5> events_by_type{};     ///< by core::EventType
  std::array<util::RunningStats, 5> recodings_by_type{};  ///< by core::EventType
};

/// Adds one trial's counters to `summary`.
void accumulate(TotalsSummary& summary, const Totals& totals,
                net::Color final_max_color);

/// Summarizes a cell by accumulating its trials in trial order (the order
/// that makes sharded-then-merged summaries bit-identical to unsharded).
TotalsSummary summarize(const ExperimentCell& cell);

/// A complete (or one shard of a) grid run.  Self-describing: carries the
/// grid coordinates, strategy names, seed, and its (point x trial)
/// sub-rectangle alongside the per-trial data, so shards can be persisted,
/// shipped, and merged.  `points` holds only the covered grid points;
/// `point_begin` is the global index of `points[0]` and cell/point indices
/// are local (0-based within this result).
struct ExperimentResult {
  std::vector<std::string> axis_names;
  std::vector<std::vector<double>> points;  ///< covered grid coordinates
  std::vector<std::string> strategies;
  std::size_t total_trials = 0;  ///< ExperimentOptions::trials
  std::size_t total_points = 0;  ///< full grid size (>= points.size())
  std::uint64_t seed = 0;
  std::size_t trial_begin = 0;   ///< this result's global trial range
  std::size_t trial_count = 0;
  std::size_t point_begin = 0;   ///< global index of points[0]
  std::vector<ExperimentCell> cells;  ///< point-major, strategy-minor

  std::size_t point_count() const { return points.size(); }
  std::size_t strategy_count() const { return strategies.size(); }
  const ExperimentCell& cell(std::size_t point, std::size_t strategy) const;
};

/// The grid engine.  Construction enumerates the grid points (axis-0-major
/// cartesian product); `run` fans (point, trial) items over
/// `util::map_reduce` and reduces them deterministically.
class Experiment {
 public:
  explicit Experiment(ExperimentGrid grid);

  const ExperimentGrid& grid() const { return grid_; }
  /// Axis-0-major cartesian product of the axis values.
  const std::vector<std::vector<double>>& points() const { return points_; }
  /// The base spec with `points()[point_index]` applied along every axis.
  ScenarioSpec spec_for_point(std::size_t point_index) const;

  ExperimentResult run(const ExperimentOptions& options) const;

 private:
  ExperimentGrid grid_;
  std::vector<std::vector<double>> points_;
};

/// Reassembles shards of one experiment into the full result.  Shards must
/// agree on grid/strategies/seed/total_trials/total_points, and their
/// (point x trial) rectangles must tile the full
/// [0, total_points) x [0, total_trials) space exactly (any order, no gaps
/// or overlaps; shards sharing a point range must tile the trial space, and
/// the point ranges must tile the grid); throws std::invalid_argument
/// otherwise.  The merged result is bit-identical to an unsharded run.
ExperimentResult merge_shards(std::vector<ExperimentResult> shards);

}  // namespace minim::sim
