#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file simulation.hpp
/// \brief Discrete-event simulation engine: applies reconfiguration events
/// to the network, invokes the recoding strategy, and accumulates the
/// paper's metrics.
///
/// Event semantics follow Section 2's model: events are sequenced (one at a
/// time); the physical change happens first, then the strategy repairs the
/// code assignment.  With `validate_after_each` the engine asserts CA1/CA2
/// validity after every event — the correctness-theorem soak used in tests.
///
/// `apply_batch` is the amortized path: when the strategy declares batched
/// repair equivalent to sequential repair (`supports_batch`), every network
/// mutation of the batch is applied first and ONE repair call covers them
/// all — one journal-coalesced dirty window, one rank-maintenance sync, one
/// propagation.  For history-dependent strategies it degrades to the exact
/// per-event loop, so callers batch unconditionally.

namespace minim::sim {

struct TraceEvent;  // sim/trace.hpp

/// Where one batched event left the network.  On the per-event delivery
/// path these are exact post-THIS-event facts; on the coalesced path every
/// event reports the post-BATCH state (`exact` says which).
struct BatchEventOutcome {
  net::NodeId subject = net::kInvalidNode;  ///< engine id the event acted on
  std::size_t recoded = 0;   ///< exact: this event's recolors; else batch net
  net::Color max_color = net::kNoColor;
  std::size_t live_nodes = 0;
  bool exact = false;
};

/// What applying one batch did.
struct BatchResult {
  std::size_t events = 0;
  std::size_t recoded = 0;   ///< net recolors across the whole batch
  std::size_t repairs = 0;   ///< strategy repair invocations (1 if coalesced)
  bool coalesced = false;    ///< one repair covered the whole batch
  std::vector<BatchEventOutcome> outcomes;  ///< one per event, in order
};

/// Accumulated metric totals across all events applied so far.
struct Totals {
  std::size_t events = 0;
  std::size_t recodings = 0;        ///< the paper's "total number of recodings"
  std::size_t messages = 0;         ///< protocol messages (proto-backed runs)
  std::array<std::size_t, 5> events_by_type{};     ///< indexed by EventType
  std::array<std::size_t, 5> recodings_by_type{};  ///< indexed by EventType
};

/// Folds one event's report into `totals` — the single accounting
/// definition shared by `Simulation` and the lockstep `replay_all` lanes
/// (whose bit-identical-to-solo contract forbids two copies drifting).
void account_event(Totals& totals, const core::RecodeReport& report);

/// Throws std::logic_error when `assignment` violates CA1/CA2 or leaves a
/// live node uncolored — the per-event validation both engines share.
void validate_assignment(const net::AdhocNetwork& network,
                         const net::CodeAssignment& assignment);

class Simulation {
 public:
  struct Params {
    double width = 100.0;
    double height = 100.0;
    /// Throw std::logic_error if the assignment is invalid after any event.
    bool validate_after_each = false;
    /// Keep every RecodeReport (tests/examples; benches leave it off).
    bool keep_history = false;
  };

  /// The strategy is borrowed; it must outlive the simulation.
  explicit Simulation(core::RecodingStrategy& strategy);
  Simulation(core::RecodingStrategy& strategy, const Params& params);

  /// Applies a join and returns the new node's id.
  net::NodeId join(const net::NodeConfig& config);

  void leave(net::NodeId v);
  void move(net::NodeId v, util::Vec2 new_position);
  void change_power(net::NodeId v, double new_range);

  /// Applies a whole trace-event batch.  `by_join_order` is the caller's
  /// join-index → engine-id table (the `sim/trace` node-naming convention):
  /// non-join events resolve through it, joins append to it.  With a
  /// batch-capable strategy all network mutations are applied first and one
  /// `on_batch` repairs the final graph (this coalesced repair is where
  /// `BbbStrategy::Params::recolor_threads` engages: the batch's independent
  /// dirty components recolor concurrently, bit-identical to serial);
  /// otherwise events are delivered one at a time, bit-identical to calling
  /// join/leave/move/change_power in
  /// sequence.  References to out-of-range or departed entries throw
  /// std::invalid_argument — callers wanting all-or-nothing semantics
  /// validate before calling (serve::AssignmentEngine does).
  void apply_batch(std::span<const TraceEvent> events,
                   std::vector<net::NodeId>& by_join_order,
                   BatchResult& result);

  const net::AdhocNetwork& network() const { return network_; }
  const net::CodeAssignment& assignment() const { return assignment_; }
  net::Color max_color() const { return assignment_.max_color(); }

  const Totals& totals() const { return totals_; }
  const std::vector<core::RecodeReport>& history() const { return history_; }
  core::RecodingStrategy& strategy() { return *strategy_; }

 private:
  void account(const core::RecodeReport& report);
  /// Batch accounting: `events` each count toward events/events_by_type;
  /// the single report's recodings count once (they are the batch's NET
  /// color changes, attributed by type to the report's event — per-type
  /// recoding attribution is inherently per-event information the
  /// coalesced path does not have).
  void account_batch(std::span<const core::BatchedEvent> events,
                     const core::RecodeReport& report);
  void validate() const;

  core::RecodingStrategy* strategy_;  // borrowed, never null
  Params params_;
  net::AdhocNetwork network_;
  net::CodeAssignment assignment_;
  Totals totals_;
  std::vector<core::RecodeReport> history_;

  // apply_batch scratch (reused across batches).
  std::vector<core::BatchedEvent> batch_events_;
  std::vector<net::NodeId> batch_joiners_;
  std::vector<net::NodeId> batch_reborn_;
};

}  // namespace minim::sim
