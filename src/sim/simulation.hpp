#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file simulation.hpp
/// \brief Discrete-event simulation engine: applies reconfiguration events
/// to the network, invokes the recoding strategy, and accumulates the
/// paper's metrics.
///
/// Event semantics follow Section 2's model: events are sequenced (one at a
/// time); the physical change happens first, then the strategy repairs the
/// code assignment.  With `validate_after_each` the engine asserts CA1/CA2
/// validity after every event — the correctness-theorem soak used in tests.

namespace minim::sim {

/// Accumulated metric totals across all events applied so far.
struct Totals {
  std::size_t events = 0;
  std::size_t recodings = 0;        ///< the paper's "total number of recodings"
  std::size_t messages = 0;         ///< protocol messages (proto-backed runs)
  std::array<std::size_t, 5> events_by_type{};     ///< indexed by EventType
  std::array<std::size_t, 5> recodings_by_type{};  ///< indexed by EventType
};

/// Folds one event's report into `totals` — the single accounting
/// definition shared by `Simulation` and the lockstep `replay_all` lanes
/// (whose bit-identical-to-solo contract forbids two copies drifting).
void account_event(Totals& totals, const core::RecodeReport& report);

/// Throws std::logic_error when `assignment` violates CA1/CA2 or leaves a
/// live node uncolored — the per-event validation both engines share.
void validate_assignment(const net::AdhocNetwork& network,
                         const net::CodeAssignment& assignment);

class Simulation {
 public:
  struct Params {
    double width = 100.0;
    double height = 100.0;
    /// Throw std::logic_error if the assignment is invalid after any event.
    bool validate_after_each = false;
    /// Keep every RecodeReport (tests/examples; benches leave it off).
    bool keep_history = false;
  };

  /// The strategy is borrowed; it must outlive the simulation.
  explicit Simulation(core::RecodingStrategy& strategy);
  Simulation(core::RecodingStrategy& strategy, const Params& params);

  /// Applies a join and returns the new node's id.
  net::NodeId join(const net::NodeConfig& config);

  void leave(net::NodeId v);
  void move(net::NodeId v, util::Vec2 new_position);
  void change_power(net::NodeId v, double new_range);

  const net::AdhocNetwork& network() const { return network_; }
  const net::CodeAssignment& assignment() const { return assignment_; }
  net::Color max_color() const { return assignment_.max_color(); }

  const Totals& totals() const { return totals_; }
  const std::vector<core::RecodeReport>& history() const { return history_; }
  core::RecodingStrategy& strategy() { return *strategy_; }

 private:
  void account(const core::RecodeReport& report);
  void validate() const;

  core::RecodingStrategy* strategy_;  // borrowed, never null
  Params params_;
  net::AdhocNetwork network_;
  net::CodeAssignment assignment_;
  Totals totals_;
  std::vector<core::RecodeReport> history_;
};

}  // namespace minim::sim
