#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file simulation.hpp
/// \brief Discrete-event simulation engine: applies reconfiguration events
/// to the network, invokes the recoding strategy, and accumulates the
/// paper's metrics.
///
/// Event semantics follow Section 2's model: events are sequenced (one at a
/// time); the physical change happens first, then the strategy repairs the
/// code assignment.  With `validate_after_each` the engine asserts CA1/CA2
/// validity after every event — the correctness-theorem soak used in tests.

namespace minim::sim {

/// Accumulated metric totals across all events applied so far.
struct Totals {
  std::size_t events = 0;
  std::size_t recodings = 0;        ///< the paper's "total number of recodings"
  std::size_t messages = 0;         ///< protocol messages (proto-backed runs)
  std::array<std::size_t, 5> events_by_type{};     ///< indexed by EventType
  std::array<std::size_t, 5> recodings_by_type{};  ///< indexed by EventType
};

class Simulation {
 public:
  struct Params {
    double width = 100.0;
    double height = 100.0;
    /// Throw std::logic_error if the assignment is invalid after any event.
    bool validate_after_each = false;
    /// Keep every RecodeReport (tests/examples; benches leave it off).
    bool keep_history = false;
  };

  /// The strategy is borrowed; it must outlive the simulation.
  explicit Simulation(core::RecodingStrategy& strategy);
  Simulation(core::RecodingStrategy& strategy, const Params& params);

  /// Rebinds to a new strategy and resets all engine state in place,
  /// retaining allocated capacity (network slots, grid cells, conflict
  /// rows, color map) — the arena path of `sim::replay`.  Behaviour after
  /// rebind is bit-identical to a freshly constructed simulation.
  void rebind(core::RecodingStrategy& strategy, const Params& params);

  /// Applies a join and returns the new node's id.
  net::NodeId join(const net::NodeConfig& config);

  void leave(net::NodeId v);
  void move(net::NodeId v, util::Vec2 new_position);
  void change_power(net::NodeId v, double new_range);

  const net::AdhocNetwork& network() const { return network_; }
  const net::CodeAssignment& assignment() const { return assignment_; }
  net::Color max_color() const { return assignment_.max_color(network_.nodes()); }

  const Totals& totals() const { return totals_; }
  const std::vector<core::RecodeReport>& history() const { return history_; }
  core::RecodingStrategy& strategy() { return *strategy_; }

 private:
  void account(const core::RecodeReport& report);
  void validate() const;

  core::RecodingStrategy* strategy_;  // borrowed, never null
  Params params_;
  net::AdhocNetwork network_;
  net::CodeAssignment assignment_;
  Totals totals_;
  std::vector<core::RecodeReport> history_;
};

}  // namespace minim::sim
