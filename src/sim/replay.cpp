#include "sim/replay.hpp"

#include <optional>
#include <stdexcept>

#include "net/constraints.hpp"

namespace minim::sim {

std::vector<RunOutcome> replay_all(const Workload& workload,
                                   std::span<core::RecodingStrategy* const> strategies,
                                   bool validate, ReplayArena* arena) {
  std::optional<ReplayArena> local;
  if (arena == nullptr) arena = &local.emplace();

  const std::size_t lanes = strategies.size();
  net::AdhocNetwork& network = arena->network_;
  network.reset(workload.width, workload.height);
  if (arena->assignments_.size() < lanes) arena->assignments_.resize(lanes);
  for (std::size_t s = 0; s < lanes; ++s) arena->assignments_[s].clear_all();

  std::vector<RunOutcome> outcomes(lanes);

  // One event application, every strategy's repair.  The strategy callbacks
  // only read the network, so each lane sees the identical topology a solo
  // replay would.
  const auto dispatch = [&](auto&& invoke) {
    for (std::size_t s = 0; s < lanes; ++s) {
      net::CodeAssignment& assignment = arena->assignments_[s];
      account_event(outcomes[s].totals, invoke(*strategies[s], assignment));
      if (validate) validate_assignment(network, assignment);
    }
  };

  std::vector<net::NodeId>& ids = arena->ids_;
  ids.clear();
  ids.reserve(workload.joins.size());
  for (const auto& config : workload.joins) {
    const net::NodeId id = network.add_node(config);
    ids.push_back(id);
    dispatch([&](core::RecodingStrategy& strategy, net::CodeAssignment& assignment) {
      return strategy.on_join(network, assignment, id);
    });
  }

  for (std::size_t s = 0; s < lanes; ++s) {
    outcomes[s].setup_max_color = arena->assignments_[s].max_color();
    outcomes[s].setup_recodings =
        static_cast<double>(outcomes[s].totals.recodings);
  }

  for (const auto& raise : workload.power_raises) {
    const net::NodeId v = ids[raise.join_index];
    const double old_range = network.config(v).range;
    network.set_range(v, raise.new_range);
    dispatch([&](core::RecodingStrategy& strategy, net::CodeAssignment& assignment) {
      return strategy.on_power_change(network, assignment, v, old_range);
    });
  }
  for (const auto& round : workload.move_rounds)
    for (const auto& mv : round) {
      const net::NodeId v = ids[mv.join_index];
      network.set_position(v, mv.position);
      dispatch([&](core::RecodingStrategy& strategy, net::CodeAssignment& assignment) {
        return strategy.on_move(network, assignment, v);
      });
    }

  for (std::size_t s = 0; s < lanes; ++s)
    outcomes[s].max_color = arena->assignments_[s].max_color();
  return outcomes;
}

RunOutcome replay(const Workload& workload, core::RecodingStrategy& strategy,
                  bool validate, ReplayArena* arena) {
  core::RecodingStrategy* const one[] = {&strategy};
  return std::move(replay_all(workload, one, validate, arena)[0]);
}

}  // namespace minim::sim
