#include "sim/replay.hpp"

#include <vector>

namespace minim::sim {

RunOutcome replay(const Workload& workload, core::RecodingStrategy& strategy,
                  bool validate) {
  Simulation::Params params;
  params.width = workload.width;
  params.height = workload.height;
  params.validate_after_each = validate;
  Simulation simulation(strategy, params);

  std::vector<net::NodeId> ids;
  ids.reserve(workload.joins.size());
  for (const auto& config : workload.joins) ids.push_back(simulation.join(config));

  RunOutcome outcome;
  outcome.setup_max_color = simulation.max_color();
  outcome.setup_recodings = static_cast<double>(simulation.totals().recodings);

  for (const auto& raise : workload.power_raises)
    simulation.change_power(ids[raise.join_index], raise.new_range);
  for (const auto& round : workload.move_rounds)
    for (const auto& mv : round) simulation.move(ids[mv.join_index], mv.position);

  outcome.totals = simulation.totals();
  outcome.max_color = simulation.max_color();
  return outcome;
}

}  // namespace minim::sim
