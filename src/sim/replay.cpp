#include "sim/replay.hpp"

#include <vector>

namespace minim::sim {

RunOutcome replay(const Workload& workload, core::RecodingStrategy& strategy,
                  bool validate, ReplayArena* arena) {
  Simulation::Params params;
  params.width = workload.width;
  params.height = workload.height;
  params.validate_after_each = validate;

  std::optional<Simulation> local;
  std::vector<net::NodeId> local_ids;
  Simulation* simulation;
  std::vector<net::NodeId>* ids;
  if (arena != nullptr) {
    if (arena->simulation_)
      arena->simulation_->rebind(strategy, params);
    else
      arena->simulation_.emplace(strategy, params);
    simulation = &*arena->simulation_;
    ids = &arena->ids_;
  } else {
    local.emplace(strategy, params);
    simulation = &*local;
    ids = &local_ids;
  }

  ids->clear();
  ids->reserve(workload.joins.size());
  for (const auto& config : workload.joins) ids->push_back(simulation->join(config));

  RunOutcome outcome;
  outcome.setup_max_color = simulation->max_color();
  outcome.setup_recodings = static_cast<double>(simulation->totals().recodings);

  for (const auto& raise : workload.power_raises)
    simulation->change_power((*ids)[raise.join_index], raise.new_range);
  for (const auto& round : workload.move_rounds)
    for (const auto& mv : round) simulation->move((*ids)[mv.join_index], mv.position);

  outcome.totals = simulation->totals();
  outcome.max_color = simulation->max_color();
  return outcome;
}

}  // namespace minim::sim
