#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

/// \file work_plan.hpp
/// \brief Decomposes an experiment's (grid point x trial) space into
/// self-describing work units.
///
/// An `ExperimentGrid` run is a rectangle: `total_points` grid points times
/// `total_trials` Monte-Carlo trials.  Because every (point, trial) item
/// draws its randomness from the *global* stream `point * total_trials +
/// trial` (see experiment.hpp), any exact tiling of that rectangle runs the
/// same trials with the same streams — so the planner is free to cut along
/// either axis:
///
///  * **trial-range sharding** slices the trial axis — every worker runs all
///    grid points over a trial sub-range (good when trials >> points);
///  * **axis-space sharding** slices the point axis — every worker runs its
///    own grid-point subset over all trials (good for wide grids, and the
///    only cut that shrinks a worker's per-point setup footprint);
///  * the **auto** split cuts both, choosing the most balanced p x t
///    factorization of the requested unit count.
///
/// The resulting `WorkUnit`s carry their global rectangle, so a unit is
/// fully described by (grid config, seed, rectangle) — exactly what a
/// worker process needs on its command line and what the shard manifest
/// records for resume.  `sim::merge_shards` reassembles any plan's outputs
/// bit-identically to the unsharded run.

namespace minim::sim {

/// One schedulable unit: a sub-rectangle of the (point x trial) space.
struct WorkUnit {
  std::size_t id = 0;           ///< plan order, dense from 0
  std::size_t point_begin = 0;  ///< global grid-point range
  std::size_t point_count = 0;
  std::size_t trial_begin = 0;  ///< global trial range
  std::size_t trial_count = 0;

  bool operator==(const WorkUnit&) const = default;
};

/// Which axes the planner may cut.
enum class WorkSplit {
  kTrials,  ///< trial ranges only (the historical --shard i/k behaviour)
  kPoints,  ///< grid-point subsets only
  kAuto,    ///< both: the most balanced p x t factorization of `units`
};

const char* to_string(WorkSplit split);
/// Parses "trials" | "points" | "auto"; throws std::invalid_argument.
WorkSplit work_split_from(const std::string& name);

/// How a unit count is realized as per-axis slice counts.
struct PlanShape {
  std::size_t point_slices = 1;
  std::size_t trial_slices = 1;
};

/// Chooses the slice counts for `units` work units over a
/// `total_points x total_trials` rectangle.  The requested count is clamped
/// to what the split mode and rectangle can express (a point axis of 3 can
/// carry at most 3 point slices); kAuto picks, among the factorizations
/// p * t <= units with the largest product, the one minimizing the largest
/// unit (ties toward more point slices).  Requires a non-empty rectangle.
PlanShape plan_shape(std::size_t units, std::size_t total_points,
                     std::size_t total_trials, WorkSplit split);

/// Near-equal contiguous range of slice `index` of `count` over [0, total):
/// the first `total % count` slices get one extra item.
std::pair<std::size_t, std::size_t> slice_range(std::size_t total,
                                                std::size_t index,
                                                std::size_t count);

/// Emits the units of `shape` in point-major, trial-minor order with dense
/// ids — the exact tiling `merge_shards` expects.
std::vector<WorkUnit> plan_work_units(std::size_t total_points,
                                      std::size_t total_trials,
                                      const PlanShape& shape);

/// Convenience: plan_shape + plan_work_units.
std::vector<WorkUnit> plan_work_units(std::size_t units,
                                      std::size_t total_points,
                                      std::size_t total_trials,
                                      WorkSplit split);

}  // namespace minim::sim
