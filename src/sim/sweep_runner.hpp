#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/churn.hpp"
#include "sim/simulation.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

/// \file sweep_runner.hpp
/// \brief Batched Monte-Carlo engine: N independent scenario trials fanned
/// over the thread pool, reduced into deterministic summary statistics.
///
/// `sweeps.hpp` reproduces the paper's figures (x-axis sweeps of the two
/// plot metrics).  This engine answers a different question — "run this one
/// scenario many times and summarize *everything* the engine counts" — which
/// is the workload shape of the large Monte-Carlo studies in the follow-on
/// power-control literature (Meshkati et al., Liu et al.).
///
/// Determinism contract: trial `i` draws all of its randomness from
/// `util::Rng::for_stream(options.seed, i)` and results are reduced in trial
/// order on the calling thread, so the report is bit-identical for any
/// thread count, including 1 (serial).

namespace minim::sim {

/// Which scenario shape each trial runs.
enum class ScenarioKind {
  kJoin,   ///< N consecutive joins (Fig 10's setup phase)
  kPower,  ///< joins, then half the nodes raise their range (Fig 11)
  kMove,   ///< joins, then movement rounds (Fig 12)
  kChurn,  ///< continuous-time open network (sim/churn.hpp)
};

/// Everything one trial needs besides its RNG stream.
struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kJoin;
  std::string strategy = "minim";  ///< a strategies::make_strategy name
  WorkloadParams workload{};       ///< join/power/move scenarios
  double raise_factor = 2.0;       ///< kPower: range multiplier
  double max_displacement = 40.0;  ///< kMove: per-move displacement bound
  std::size_t move_rounds = 1;     ///< kMove: rounds of everyone-moves-once
  ChurnParams churn{};             ///< kChurn parameters
  bool validate = false;           ///< CA1/CA2 check after every event (slow)
};

struct SweepRunnerOptions {
  std::size_t trials = 100;   ///< paper: every point averages 100 runs
  std::uint64_t seed = 2001;  ///< master seed; trials derive streams
  std::size_t threads = 0;    ///< 0 = hardware concurrency, 1 = serial
  bool keep_trials = false;   ///< retain per-trial results in the report
};

/// Raw outcome of one trial.
struct TrialResult {
  Totals totals;
  net::Color final_max_color = net::kNoColor;
};

/// Mean/stddev (and min/max) of every engine counter across trials.
struct TotalsSummary {
  util::RunningStats events;
  util::RunningStats recodings;
  util::RunningStats messages;
  util::RunningStats max_color;
  std::array<util::RunningStats, 5> events_by_type{};     ///< by core::EventType
  std::array<util::RunningStats, 5> recodings_by_type{};  ///< by core::EventType
};

struct SweepReport {
  TotalsSummary summary;
  /// Per-trial raw results, trial-ordered; empty unless `keep_trials`.
  std::vector<TrialResult> trials;
};

/// Runs one trial of `spec` on the given RNG stream (exposed for tests and
/// for callers that schedule trials themselves).
TrialResult run_scenario_trial(const ScenarioSpec& spec, util::Rng& rng);

/// Runs `options.trials` independent trials of `spec` across a thread pool
/// and reduces them in trial order.  Bit-identical for any thread count.
SweepReport run_scenario_sweep(const ScenarioSpec& spec,
                               const SweepRunnerOptions& options);

}  // namespace minim::sim
