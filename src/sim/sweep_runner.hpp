#pragma once

#include <cstdint>
#include <vector>

#include "sim/experiment.hpp"

/// \file sweep_runner.hpp
/// \brief Batched Monte-Carlo adapter: N independent trials of one scenario,
/// reduced into deterministic summary statistics.
///
/// `sweeps.hpp` reproduces the paper's figures (x-axis sweeps of the two
/// plot metrics).  This entry point answers a different question — "run this
/// one scenario many times and summarize *everything* the engine counts" —
/// the workload shape of the large Monte-Carlo studies in the follow-on
/// power-control literature (Meshkati et al., Liu et al.).
///
/// Since the experiment-API redesign this is a thin adapter over
/// `sim::Experiment` (a single-point, single-strategy grid), which itself
/// runs on `util::map_reduce`.  The determinism contract is unchanged:
/// trial `i` draws all of its randomness from
/// `util::Rng::for_stream(options.seed, i)` and results are reduced in trial
/// order, so the report is bit-identical for any thread count, including 1.
/// The scenario vocabulary (`ScenarioKind`, `ScenarioSpec`, `TotalsSummary`)
/// lives in experiment.hpp and is re-exported through this header.

namespace minim::sim {

struct SweepRunnerOptions {
  std::size_t trials = 100;   ///< paper: every point averages 100 runs
  std::uint64_t seed = 2001;  ///< master seed; trials derive streams
  std::size_t threads = 0;    ///< 0 = hardware concurrency, 1 = serial
  bool keep_trials = false;   ///< retain per-trial results in the report
};

/// Raw outcome of one trial.
struct TrialResult {
  Totals totals;
  net::Color final_max_color = net::kNoColor;
};

struct SweepReport {
  TotalsSummary summary;
  /// Per-trial raw results, trial-ordered; empty unless `keep_trials`.
  std::vector<TrialResult> trials;
};

/// Runs one trial of `spec` on the given RNG stream (exposed for tests and
/// for callers that schedule trials themselves).
TrialResult run_scenario_trial(const ScenarioSpec& spec, util::Rng& rng);

/// Runs `options.trials` independent trials of `spec` across a thread pool
/// and reduces them in trial order.  Bit-identical for any thread count.
SweepReport run_scenario_sweep(const ScenarioSpec& spec,
                               const SweepRunnerOptions& options);

}  // namespace minim::sim
