#pragma once

#include <iosfwd>
#include <string>

#include "sim/experiment.hpp"

/// \file experiment_io.hpp
/// \brief Exact persistence for experiment shards.
///
/// A sharded study runs as k processes, each producing one
/// `ExperimentResult` for its trial range; these helpers write a result as a
/// self-describing CSV (metadata preamble + one row per (cell, trial)) and
/// read it back *exactly*: integers verbatim, doubles with 17 significant
/// digits, so a write/read/merge round-trip stays bit-identical to the
/// in-memory result.  `bench/grid_study.cpp --shard i/k --out ... --merge`
/// is the end-to-end demonstration.

namespace minim::sim {

/// Writes `result` (typically one shard) to `out`.
void write_experiment_csv(const ExperimentResult& result, std::ostream& out);

/// One work unit of an orchestrated run: the (point x trial) rectangle it
/// covers, the shard CSV it produced, and how the run went.  Together with
/// the manifest's master `seed` this is full stream provenance — the unit's
/// trials draw exactly the streams `point * total_trials + trial` of
/// `Rng::for_stream(seed, .)` for its rectangle, no matter which process
/// (or how many attempts) ran it.
struct ShardManifestEntry {
  std::size_t unit = 0;         ///< work-unit id (plan order)
  std::size_t point_begin = 0;  ///< global grid-point range
  std::size_t point_count = 0;
  std::size_t trial_begin = 0;  ///< global trial range
  std::size_t trial_count = 0;
  std::size_t attempts = 0;     ///< worker attempts consumed so far
  std::string status;           ///< "pending" | "done" | "failed"
  std::string path;             ///< the unit's shard CSV
};

/// The orchestrator's on-disk ledger: written before workers launch and
/// updated as units finish, so a partial (crashed/interrupted) run can be
/// resumed — units already `done` with a readable shard CSV are not re-run.
/// `experiment` names *which* experiment the shards belong to (the driver's
/// tag plus a config fingerprint); resume refuses a manifest whose identity
/// differs, so same-shaped shards of a different study are never silently
/// adopted.
struct ShardManifest {
  std::string experiment;
  std::uint64_t seed = 0;
  std::size_t total_points = 0;
  std::size_t total_trials = 0;
  std::vector<ShardManifestEntry> entries;
};

void write_shard_manifest(const ShardManifest& manifest, std::ostream& out);

/// Parses a stream produced by `write_shard_manifest`.  Throws
/// std::runtime_error on malformed input.
ShardManifest read_shard_manifest(std::istream& in);

void write_shard_manifest_file(const ShardManifest& manifest,
                               const std::string& path);
ShardManifest read_shard_manifest_file(const std::string& path);

/// Parses a stream produced by `write_experiment_csv`.  Throws
/// std::runtime_error on malformed input.
ExperimentResult read_experiment_csv(std::istream& in);

/// File convenience wrappers; throw std::runtime_error when the file cannot
/// be opened.
void write_experiment_csv_file(const ExperimentResult& result,
                               const std::string& path);
ExperimentResult read_experiment_csv_file(const std::string& path);

}  // namespace minim::sim
