#pragma once

#include <iosfwd>
#include <string>

#include "sim/experiment.hpp"

/// \file experiment_io.hpp
/// \brief Exact persistence for experiment shards.
///
/// A sharded study runs as k processes, each producing one
/// `ExperimentResult` for its trial range; these helpers write a result as a
/// self-describing CSV (metadata preamble + one row per (cell, trial)) and
/// read it back *exactly*: integers verbatim, doubles with 17 significant
/// digits, so a write/read/merge round-trip stays bit-identical to the
/// in-memory result.  `bench/grid_study.cpp --shard i/k --out ... --merge`
/// is the end-to-end demonstration.

namespace minim::sim {

/// Writes `result` (typically one shard) to `out`.
void write_experiment_csv(const ExperimentResult& result, std::ostream& out);

/// Parses a stream produced by `write_experiment_csv`.  Throws
/// std::runtime_error on malformed input.
ExperimentResult read_experiment_csv(std::istream& in);

/// File convenience wrappers; throw std::runtime_error when the file cannot
/// be opened.
void write_experiment_csv_file(const ExperimentResult& result,
                               const std::string& path);
ExperimentResult read_experiment_csv_file(const std::string& path);

}  // namespace minim::sim
