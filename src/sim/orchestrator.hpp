#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment_io.hpp"
#include "sim/work_plan.hpp"

/// \file orchestrator.hpp
/// \brief The driver side of multi-process experiment scale-out.
///
/// `Orchestrator` turns "one process runs a grid" into a driver/worker
/// architecture: it plans the (point x trial) rectangle into `WorkUnit`s
/// (`work_plan.hpp`), schedules them over a `util::ProcessPool` of worker
/// processes — each worker is typically this very binary re-invoked with the
/// unit's rectangle on its command line — collects the per-unit shard CSVs,
/// retries failed workers within a bounded budget, and merges the shards
/// into a result bit-identical to a single-process run (`merge_shards`).
///
/// Every run keeps an on-disk ledger (`ShardManifest`) in the scratch
/// directory: unit rectangles, seed/stream provenance, attempt counts and
/// statuses.  A run that dies halfway — driver crash, machine reboot — can
/// be resumed (`OrchestratorOptions::resume`): units whose manifest entry is
/// `done` and whose shard CSV still parses and matches their rectangle are
/// not re-run.
///
/// The orchestrator does not know what experiment it is running — workers
/// do.  It only owns the rectangle geometry, the process lifecycle, and the
/// merge.  `bench/bench_util.hpp` wires it to the sweep harnesses (every
/// migrated harness gains `--orchestrate k`), and `bench/cdma_drive.cpp` is
/// the standalone front-end.

namespace minim::util {
class WorkerPool;
}

namespace minim::sim {

struct OrchestratorOptions {
  /// Identity of the experiment being sharded (the driver's tag, ideally
  /// plus a config fingerprint).  Recorded in the manifest; `resume`
  /// refuses a manifest whose identity differs, so same-shaped shards of a
  /// *different* study are never silently adopted as this one's results.
  std::string experiment;
  std::size_t workers = 2;  ///< concurrent worker processes
  std::size_t units = 0;    ///< work units to plan (0 = one per worker)
  WorkSplit split = WorkSplit::kAuto;
  std::size_t max_attempts = 3;   ///< per-unit tries (bounded shard retry)
  double worker_timeout_s = 0.0;  ///< per-attempt kill deadline (0 = none)
  /// Shard CSVs, worker logs, and the manifest live here (created if
  /// missing).  On full success the per-unit files are removed unless
  /// `keep_scratch`; after a failure everything stays for post-mortem and
  /// resume.
  std::string scratch_dir = "orchestrate-scratch";
  bool resume = false;        ///< reuse `done` units from a prior manifest
  bool keep_scratch = false;  ///< keep shard CSVs/logs after a full merge
  /// Where the units execute.  Null = an internal `util::ProcessPool` of
  /// `workers` local processes (the classic `--orchestrate` path).  A
  /// borrowed pool — e.g. `util::RemotePool` driving a TCP worker fleet —
  /// swaps the execution substrate without the orchestrator noticing:
  /// manifest, retry accounting, shard validation, and the merge are
  /// identical either way.  Not owned.
  util::WorkerPool* pool = nullptr;
  /// Live progress sink (one human-readable line per lifecycle event);
  /// empty = silent.
  std::function<void(const std::string&)> progress;
};

class Orchestrator {
 public:
  /// Builds argv for the worker process that computes `unit` and writes its
  /// shard CSV to `out_path`.  The command must exit 0 exactly when the CSV
  /// was written completely.
  using WorkerCommand = std::function<std::vector<std::string>(
      const WorkUnit& unit, const std::string& out_path)>;

  /// `total_points`/`total_trials`/`seed` describe the global experiment the
  /// workers will run slices of; they are recorded in the manifest and
  /// checked against every returned shard.
  Orchestrator(std::size_t total_points, std::size_t total_trials,
               std::uint64_t seed, OrchestratorOptions options);

  /// Plans, schedules, retries, and merges.  Throws std::runtime_error when
  /// any unit exhausts its attempt budget or returns a shard that does not
  /// match its rectangle; the manifest on disk then reflects the partial
  /// state, so a later run with `resume` continues where this one stopped.
  ExperimentResult run(const WorkerCommand& worker_command);

  const std::vector<WorkUnit>& units() const { return units_; }
  const std::string& manifest_path() const { return manifest_path_; }

 private:
  std::string unit_csv_path(const WorkUnit& unit) const;
  std::string unit_log_path(const WorkUnit& unit) const;
  void say(const std::string& line) const;

  std::size_t total_points_;
  std::size_t total_trials_;
  std::uint64_t seed_;
  OrchestratorOptions options_;
  std::vector<WorkUnit> units_;
  std::string manifest_path_;
};

}  // namespace minim::sim
