#include "sim/orchestrator.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "util/require.hpp"
#include "util/subprocess.hpp"

namespace minim::sim {

namespace fs = std::filesystem;

Orchestrator::Orchestrator(std::size_t total_points, std::size_t total_trials,
                           std::uint64_t seed, OrchestratorOptions options)
    : total_points_(total_points),
      total_trials_(total_trials),
      seed_(seed),
      options_(std::move(options)) {
  MINIM_REQUIRE(options_.workers > 0, "orchestrator needs at least one worker");
  MINIM_REQUIRE(options_.max_attempts > 0,
                "orchestrator needs at least one attempt per unit");
  const std::size_t unit_count =
      options_.units == 0 ? options_.workers : options_.units;
  units_ = plan_work_units(unit_count, total_points_, total_trials_,
                           options_.split);
  manifest_path_ =
      (fs::path(options_.scratch_dir) / "manifest.csv").string();
}

std::string Orchestrator::unit_csv_path(const WorkUnit& unit) const {
  return (fs::path(options_.scratch_dir) /
          ("unit_" + std::to_string(unit.id) + ".csv"))
      .string();
}

std::string Orchestrator::unit_log_path(const WorkUnit& unit) const {
  return (fs::path(options_.scratch_dir) /
          ("unit_" + std::to_string(unit.id) + ".log"))
      .string();
}

void Orchestrator::say(const std::string& line) const {
  if (options_.progress) options_.progress(line);
}

namespace {

/// True when `shard` is exactly the output the unit's rectangle promises.
bool shard_matches(const ExperimentResult& shard, const WorkUnit& unit,
                   std::uint64_t seed, std::size_t total_points,
                   std::size_t total_trials) {
  return shard.seed == seed && shard.total_points == total_points &&
         shard.total_trials == total_trials &&
         shard.point_begin == unit.point_begin &&
         shard.points.size() == unit.point_count &&
         shard.trial_begin == unit.trial_begin &&
         shard.trial_count == unit.trial_count;
}

std::string describe(const WorkUnit& unit) {
  std::ostringstream os;
  os << "unit " << unit.id << " (points [" << unit.point_begin << ", "
     << unit.point_begin + unit.point_count << ") x trials ["
     << unit.trial_begin << ", " << unit.trial_begin + unit.trial_count << "))";
  return os.str();
}

}  // namespace

ExperimentResult Orchestrator::run(const WorkerCommand& worker_command) {
  MINIM_REQUIRE(static_cast<bool>(worker_command),
                "orchestrator needs a worker command builder");
  fs::create_directories(options_.scratch_dir);

  // The ledger: one entry per unit, updated as workers finish.
  ShardManifest manifest;
  manifest.experiment = options_.experiment;
  manifest.seed = seed_;
  manifest.total_points = total_points_;
  manifest.total_trials = total_trials_;
  for (const WorkUnit& unit : units_) {
    ShardManifestEntry entry;
    entry.unit = unit.id;
    entry.point_begin = unit.point_begin;
    entry.point_count = unit.point_count;
    entry.trial_begin = unit.trial_begin;
    entry.trial_count = unit.trial_count;
    entry.status = "pending";
    entry.path = unit_csv_path(unit);
    manifest.entries.push_back(std::move(entry));
  }

  // Resume: a prior manifest with the same geometry marks units whose shard
  // CSV still parses as done; everything else re-runs.
  std::vector<ExperimentResult> shards(units_.size());
  std::vector<char> have_shard(units_.size(), 0);
  if (options_.resume && fs::exists(manifest_path_)) {
    const ShardManifest prior = read_shard_manifest_file(manifest_path_);
    // Identity first: geometry alone (seed + rectangle) cannot distinguish
    // two same-shaped studies, and adopting the wrong study's shards would
    // be a silent wrong answer.
    const bool same_identity = prior.experiment == manifest.experiment;
    const bool same_geometry = prior.seed == manifest.seed &&
                               prior.total_points == manifest.total_points &&
                               prior.total_trials == manifest.total_trials &&
                               prior.entries.size() == manifest.entries.size();
    if (!same_identity || !same_geometry)
      throw std::runtime_error(
          "orchestrator: cannot resume — the manifest at " + manifest_path_ +
          " describes a different experiment (clear the scratch directory)");
    for (std::size_t i = 0; i < prior.entries.size(); ++i) {
      const ShardManifestEntry& entry = prior.entries[i];
      const WorkUnit& unit = units_[i];
      const bool same_unit = entry.unit == unit.id &&
                             entry.point_begin == unit.point_begin &&
                             entry.point_count == unit.point_count &&
                             entry.trial_begin == unit.trial_begin &&
                             entry.trial_count == unit.trial_count;
      if (!same_unit)
        throw std::runtime_error(
            "orchestrator: cannot resume — the manifest at " + manifest_path_ +
            " plans different work units (clear the scratch directory)");
      if (entry.status != "done") continue;
      try {
        ExperimentResult shard = read_experiment_csv_file(entry.path);
        if (!shard_matches(shard, unit, seed_, total_points_, total_trials_))
          continue;
        shards[i] = std::move(shard);
        have_shard[i] = 1;
        manifest.entries[i].status = "done";
        manifest.entries[i].attempts = entry.attempts;
        manifest.entries[i].path = entry.path;
        say("[orchestrate] " + describe(unit) + " resumed from " + entry.path);
      } catch (const std::runtime_error&) {
        // Unreadable shard: fall through to a fresh run of this unit.
      }
    }
  }
  write_shard_manifest_file(manifest, manifest_path_);

  // Schedule the units that still need running.
  std::vector<util::WorkerJob> jobs;
  std::vector<std::size_t> job_unit;  // job index -> unit index
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (have_shard[i]) continue;
    util::WorkerJob job;
    job.args = worker_command(units_[i], unit_csv_path(units_[i]));
    MINIM_REQUIRE(!job.args.empty(), "worker command must not be empty");
    job.out_path = unit_csv_path(units_[i]);
    job.log_path = unit_log_path(units_[i]);
    job.timeout_s = options_.worker_timeout_s;
    job.max_attempts = options_.max_attempts;
    jobs.push_back(std::move(job));
    job_unit.push_back(i);
  }

  if (!jobs.empty()) {
    // Null pool = the classic local path: a process pool of `workers`
    // children on this machine.  A borrowed pool (a TCP fleet) changes
    // where the argv runs, nothing else.
    util::ProcessPool local_pool(options_.workers);
    util::WorkerPool& pool =
        options_.pool != nullptr ? *options_.pool : local_pool;
    say("[orchestrate] " + std::to_string(jobs.size()) + " work units over " +
        (options_.pool != nullptr
             ? std::string("the worker fleet")
             : std::to_string(options_.workers) + " worker processes") +
        " (split " + std::string(to_string(options_.split)) + ", " +
        std::to_string(options_.max_attempts) + " attempts each)");
    std::size_t finished = 0;
    const auto observer = [&](const util::WorkerPoolEvent& event) {
      if (event.kind == util::WorkerPoolEvent::Kind::kAgentJoin ||
          event.kind == util::WorkerPoolEvent::Kind::kAgentLost) {
        say("[orchestrate] agent " + event.detail +
            (event.kind == util::WorkerPoolEvent::Kind::kAgentJoin
                 ? " joined the fleet"
                 : " lost; its units return to the queue"));
        return;
      }
      const std::size_t i = job_unit[event.index];
      ShardManifestEntry& entry = manifest.entries[i];
      switch (event.kind) {
        case util::WorkerPoolEvent::Kind::kStart:
          entry.status = "running";
          entry.attempts = event.attempt;
          say("[orchestrate] " + describe(units_[i]) + " attempt " +
              std::to_string(event.attempt) + " started" +
              (event.detail.empty() ? "" : " on " + event.detail));
          break;
        case util::WorkerPoolEvent::Kind::kRedispatch:
          say("[orchestrate] " + describe(units_[i]) +
              " straggling; speculative copy dispatched" +
              (event.detail.empty() ? "" : " to " + event.detail));
          break;
        case util::WorkerPoolEvent::Kind::kRetry:
          entry.status = "retrying";
          say("[orchestrate] " + describe(units_[i]) + " attempt " +
              std::to_string(event.attempt) + " failed (" +
              (event.outcome->timed_out
                   ? "timeout"
                   : "exit " + std::to_string(event.outcome->exit_code)) +
              "), retrying");
          break;
        case util::WorkerPoolEvent::Kind::kFinish:
          entry.status = event.outcome->ok ? "done" : "failed";
          ++finished;
          say("[orchestrate] " + describe(units_[i]) + " " + entry.status +
              " after " + std::to_string(event.attempt) + " attempt(s) [" +
              std::to_string(finished) + "/" + std::to_string(jobs.size()) +
              "]");
          // Keep the on-disk ledger current so a driver crash mid-batch
          // still leaves a resumable manifest.
          write_shard_manifest_file(manifest, manifest_path_);
          break;
        case util::WorkerPoolEvent::Kind::kAgentJoin:
        case util::WorkerPoolEvent::Kind::kAgentLost:
          break;  // handled above
      }
    };
    const std::vector<util::WorkerOutcome> outcomes =
        pool.run_jobs(jobs, observer);

    for (std::size_t s = 0; s < outcomes.size(); ++s) {
      const std::size_t i = job_unit[s];
      if (!outcomes[s].ok) {
        write_shard_manifest_file(manifest, manifest_path_);
        throw std::runtime_error(
            "orchestrator: " + describe(units_[i]) + " failed after " +
            std::to_string(outcomes[s].attempts) + " attempt(s) (" +
            (outcomes[s].timed_out
                 ? "timeout"
                 : "exit " + std::to_string(outcomes[s].exit_code)) +
            "); worker log: " + unit_log_path(units_[i]));
      }
      ExperimentResult shard = read_experiment_csv_file(unit_csv_path(units_[i]));
      if (!shard_matches(shard, units_[i], seed_, total_points_, total_trials_)) {
        manifest.entries[i].status = "failed";
        write_shard_manifest_file(manifest, manifest_path_);
        throw std::runtime_error("orchestrator: " + describe(units_[i]) +
                                 " produced a shard that does not match its "
                                 "rectangle: " +
                                 unit_csv_path(units_[i]));
      }
      shards[i] = std::move(shard);
      have_shard[i] = 1;
    }
    write_shard_manifest_file(manifest, manifest_path_);
  }

  ExperimentResult merged = merge_shards(std::move(shards));
  say("[orchestrate] merged " + std::to_string(units_.size()) +
      " shards: " + std::to_string(merged.point_count()) + " points x " +
      std::to_string(merged.total_trials) + " trials");

  if (!options_.keep_scratch) {
    // Remove only what this run created; the scratch dir may be shared.
    std::error_code ignored;
    for (const WorkUnit& unit : units_) {
      fs::remove(unit_csv_path(unit), ignored);
      fs::remove(unit_log_path(unit), ignored);
    }
    fs::remove(manifest_path_, ignored);
    fs::remove(options_.scratch_dir, ignored);  // only succeeds when empty
  }
  return merged;
}

}  // namespace minim::sim
