#include "sim/sweeps.hpp"

#include "strategies/factory.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace minim::sim {

std::vector<SweepPoint> run_sweep(const std::vector<double>& xs,
                                  const WorkloadFactory& factory, bool delta_metrics,
                                  const SweepOptions& options) {
  MINIM_REQUIRE(!xs.empty(), "sweep needs at least one x value");
  MINIM_REQUIRE(!options.strategies.empty(), "sweep needs at least one strategy");
  MINIM_REQUIRE(options.runs > 0, "sweep needs at least one run");

  const std::size_t n_x = xs.size();
  const std::size_t n_s = options.strategies.size();
  const std::size_t runs = options.runs;

  // Per-(x, strategy, run) metric storage, filled in parallel and reduced
  // sequentially afterwards so results never depend on thread scheduling.
  std::vector<double> colors(n_x * n_s * runs, 0.0);
  std::vector<double> recodes(n_x * n_s * runs, 0.0);
  auto slot = [n_s, runs](std::size_t xi, std::size_t si, std::size_t run) {
    return (xi * n_s + si) * runs + run;
  };

  util::ThreadPool pool(options.threads);
  pool.parallel_for(n_x * runs, [&](std::size_t task) {
    const std::size_t xi = task / runs;
    const std::size_t run = task % runs;
    // One independent stream per (x, run); strategies share the workload.
    util::Rng rng = util::Rng::for_stream(options.seed, task);
    const Workload workload = factory(xs[xi], rng);
    for (std::size_t si = 0; si < n_s; ++si) {
      const auto strategy = strategies::make_strategy(options.strategies[si]);
      const RunOutcome outcome = replay(workload, *strategy, options.validate);
      const std::size_t at = slot(xi, si, run);
      if (delta_metrics) {
        colors[at] = outcome.delta_max_color();
        recodes[at] = outcome.delta_recodings();
      } else {
        colors[at] = outcome.final_max_color;
        recodes[at] = outcome.total_recodings;
      }
    }
  });

  std::vector<SweepPoint> points;
  points.reserve(n_x * n_s);
  for (std::size_t xi = 0; xi < n_x; ++xi)
    for (std::size_t si = 0; si < n_s; ++si) {
      SweepPoint point;
      point.x = xs[xi];
      point.strategy = options.strategies[si];
      for (std::size_t run = 0; run < runs; ++run) {
        point.color_metric.add(colors[slot(xi, si, run)]);
        point.recoding_metric.add(recodes[slot(xi, si, run)]);
      }
      points.push_back(std::move(point));
    }
  return points;
}

std::vector<SweepPoint> sweep_join_vs_n(const std::vector<double>& ns,
                                        const SweepOptions& options, double min_range,
                                        double max_range) {
  return run_sweep(
      ns,
      [min_range, max_range](double x, util::Rng& rng) {
        WorkloadParams params;
        params.n = static_cast<std::size_t>(x);
        params.min_range = min_range;
        params.max_range = max_range;
        return make_join_workload(params, rng);
      },
      /*delta_metrics=*/false, options);
}

std::vector<SweepPoint> sweep_join_vs_avg_range(const std::vector<double>& avg_ranges,
                                                const SweepOptions& options,
                                                std::size_t n, double spread) {
  return run_sweep(
      avg_ranges,
      [n, spread](double x, util::Rng& rng) {
        WorkloadParams params;
        params.n = n;
        params.min_range = x - spread / 2.0;
        params.max_range = x + spread / 2.0;
        return make_join_workload(params, rng);
      },
      /*delta_metrics=*/false, options);
}

std::vector<SweepPoint> sweep_power_vs_raise_factor(
    const std::vector<double>& raise_factors, const SweepOptions& options,
    std::size_t n, double min_range, double max_range) {
  return run_sweep(
      raise_factors,
      [n, min_range, max_range](double x, util::Rng& rng) {
        WorkloadParams params;
        params.n = n;
        params.min_range = min_range;
        params.max_range = max_range;
        return make_power_workload(params, x, rng);
      },
      /*delta_metrics=*/true, options);
}

std::vector<SweepPoint> sweep_move_vs_max_displacement(
    const std::vector<double>& max_displacements, const SweepOptions& options,
    std::size_t n, double min_range, double max_range) {
  return run_sweep(
      max_displacements,
      [n, min_range, max_range](double x, util::Rng& rng) {
        WorkloadParams params;
        params.n = n;
        params.min_range = min_range;
        params.max_range = max_range;
        return make_move_workload(params, x, /*rounds=*/1, rng);
      },
      /*delta_metrics=*/true, options);
}

std::vector<SweepPoint> sweep_move_vs_rounds(const std::vector<double>& rounds,
                                             const SweepOptions& options, std::size_t n,
                                             double max_displacement, double min_range,
                                             double max_range) {
  return run_sweep(
      rounds,
      [n, max_displacement, min_range, max_range](double x, util::Rng& rng) {
        WorkloadParams params;
        params.n = n;
        params.min_range = min_range;
        params.max_range = max_range;
        return make_move_workload(params, max_displacement,
                                  static_cast<std::size_t>(x), rng);
      },
      /*delta_metrics=*/true, options);
}

}  // namespace minim::sim
