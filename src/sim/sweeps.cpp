#include "sim/sweeps.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/experiment.hpp"
#include "util/map_reduce.hpp"
#include "util/require.hpp"

namespace minim::sim {

namespace {

/// One run's (color, recoding) metric per strategy, strategy-ordered.
struct RunMetrics {
  std::vector<double> colors;
  std::vector<double> recodes;
};

strategies::StrategyFactory factory_or_default(const SweepOptions& options) {
  if (options.strategy_factory) return options.strategy_factory;
  return [](const std::string& name) { return strategies::make_strategy(name); };
}

/// Assembles the one-axis grid every figure sweep shares.
ExperimentGrid make_figure_grid(GridAxis axis, ScenarioSpec base,
                                const SweepOptions& options) {
  ExperimentGrid grid;
  grid.base = std::move(base);
  grid.base.validate = options.validate;
  grid.axes.push_back(std::move(axis));
  grid.strategies = options.strategies;
  grid.strategy_factory = options.strategy_factory;
  return grid;
}

/// Runs a one-axis grid in process.
std::vector<SweepPoint> run_grid_sweep(GridAxis axis, ScenarioSpec base,
                                       bool delta_metrics,
                                       const SweepOptions& options) {
  MINIM_REQUIRE(options.runs > 0, "sweep needs at least one run");
  const Experiment experiment(
      make_figure_grid(std::move(axis), std::move(base), options));
  return sweep_points_from(experiment.run(experiment_options_from(options)),
                           delta_metrics);
}

}  // namespace

ExperimentOptions experiment_options_from(const SweepOptions& options) {
  ExperimentOptions run;
  run.trials = options.runs;
  run.seed = options.seed;
  run.threads = options.threads;
  return run;
}

std::vector<SweepPoint> sweep_points_from(const ExperimentResult& result,
                                          bool delta_metrics) {
  std::vector<SweepPoint> points;
  points.reserve(result.point_count() * result.strategy_count());
  for (std::size_t p = 0; p < result.point_count(); ++p)
    for (std::size_t s = 0; s < result.strategy_count(); ++s) {
      SweepPoint point;
      point.x = result.points[p].front();
      point.strategy = result.strategies[s];
      for (const ExperimentTrial& trial : result.cell(p, s).trials) {
        if (delta_metrics) {
          point.color_metric.add(trial.delta_max_color());
          point.recoding_metric.add(trial.delta_recodings());
        } else {
          point.color_metric.add(static_cast<double>(trial.final_max_color));
          point.recoding_metric.add(static_cast<double>(trial.totals.recodings));
        }
      }
      points.push_back(std::move(point));
    }
  return points;
}

std::vector<SweepPoint> run_sweep(const std::vector<double>& xs,
                                  const WorkloadFactory& factory, bool delta_metrics,
                                  const SweepOptions& options) {
  MINIM_REQUIRE(!xs.empty(), "sweep needs at least one x value");
  MINIM_REQUIRE(!options.strategies.empty(), "sweep needs at least one strategy");
  MINIM_REQUIRE(options.runs > 0, "sweep needs at least one run");

  const std::size_t n_x = xs.size();
  const std::size_t n_s = options.strategies.size();
  const std::size_t runs = options.runs;
  const strategies::StrategyFactory make = factory_or_default(options);

  // Points pre-built x-major, strategy-minor; map_reduce's in-order reduce
  // then appends run metrics per point in ascending run order.
  std::vector<SweepPoint> points(n_x * n_s);
  for (std::size_t xi = 0; xi < n_x; ++xi)
    for (std::size_t si = 0; si < n_s; ++si) {
      points[xi * n_s + si].x = xs[xi];
      points[xi * n_s + si].strategy = options.strategies[si];
    }

  util::MapReduceOptions mr;
  mr.seed = options.seed;
  mr.threads = options.threads;
  util::map_reduce(
      n_x * runs, mr,
      [&](std::size_t task, util::Rng& rng) {
        const std::size_t xi = task / runs;
        // One independent stream per (x, run); strategies share the workload.
        const Workload workload = factory(xs[xi], rng);
        RunMetrics metrics;
        metrics.colors.reserve(n_s);
        metrics.recodes.reserve(n_s);
        thread_local ReplayArena arena;  // reused across this worker's runs
        std::vector<std::unique_ptr<core::RecodingStrategy>> objects;
        std::vector<core::RecodingStrategy*> lanes;
        objects.reserve(n_s);
        lanes.reserve(n_s);
        for (std::size_t si = 0; si < n_s; ++si) {
          objects.push_back(make(options.strategies[si]));
          lanes.push_back(objects.back().get());
        }
        // Lockstep: one shared network evolution, one assignment per
        // strategy (bit-identical to per-strategy replays).
        const std::vector<RunOutcome> outcomes =
            replay_all(workload, lanes, options.validate, &arena);
        for (const RunOutcome& outcome : outcomes) {
          metrics.colors.push_back(delta_metrics ? outcome.delta_max_color()
                                                 : outcome.final_max_color());
          metrics.recodes.push_back(delta_metrics ? outcome.delta_recodings()
                                                  : outcome.total_recodings());
        }
        return metrics;
      },
      [&](std::size_t task, RunMetrics&& metrics) {
        const std::size_t xi = task / runs;
        for (std::size_t si = 0; si < n_s; ++si) {
          points[xi * n_s + si].color_metric.add(metrics.colors[si]);
          points[xi * n_s + si].recoding_metric.add(metrics.recodes[si]);
        }
      });
  return points;
}

ExperimentGrid grid_join_vs_n(const std::vector<double>& ns,
                              const SweepOptions& options, double min_range,
                              double max_range) {
  ScenarioSpec base;
  base.kind = ScenarioKind::kJoin;
  base.workload.min_range = min_range;
  base.workload.max_range = max_range;
  GridAxis axis{"n", ns, [](ScenarioSpec& spec, double x) {
                  spec.workload.n = static_cast<std::size_t>(x);
                }};
  return make_figure_grid(std::move(axis), std::move(base), options);
}

std::vector<SweepPoint> sweep_join_vs_n(const std::vector<double>& ns,
                                        const SweepOptions& options, double min_range,
                                        double max_range) {
  MINIM_REQUIRE(options.runs > 0, "sweep needs at least one run");
  const Experiment experiment(grid_join_vs_n(ns, options, min_range, max_range));
  return sweep_points_from(experiment.run(experiment_options_from(options)),
                           /*delta_metrics=*/false);
}

ExperimentGrid grid_join_vs_avg_range(const std::vector<double>& avg_ranges,
                                      const SweepOptions& options, std::size_t n,
                                      double spread) {
  ScenarioSpec base;
  base.kind = ScenarioKind::kJoin;
  base.workload.n = n;
  GridAxis axis{"avg_range", avg_ranges, [spread](ScenarioSpec& spec, double x) {
                  spec.workload.min_range = x - spread / 2.0;
                  spec.workload.max_range = x + spread / 2.0;
                }};
  return make_figure_grid(std::move(axis), std::move(base), options);
}

std::vector<SweepPoint> sweep_join_vs_avg_range(const std::vector<double>& avg_ranges,
                                                const SweepOptions& options,
                                                std::size_t n, double spread) {
  MINIM_REQUIRE(options.runs > 0, "sweep needs at least one run");
  const Experiment experiment(grid_join_vs_avg_range(avg_ranges, options, n, spread));
  return sweep_points_from(experiment.run(experiment_options_from(options)),
                           /*delta_metrics=*/false);
}

ExperimentGrid grid_power_vs_raise_factor(const std::vector<double>& raise_factors,
                                          const SweepOptions& options, std::size_t n,
                                          double min_range, double max_range) {
  ScenarioSpec base;
  base.kind = ScenarioKind::kPower;
  base.workload.n = n;
  base.workload.min_range = min_range;
  base.workload.max_range = max_range;
  GridAxis axis{"raise_factor", raise_factors, [](ScenarioSpec& spec, double x) {
                  spec.raise_factor = x;
                }};
  return make_figure_grid(std::move(axis), std::move(base), options);
}

std::vector<SweepPoint> sweep_power_vs_raise_factor(
    const std::vector<double>& raise_factors, const SweepOptions& options,
    std::size_t n, double min_range, double max_range) {
  MINIM_REQUIRE(options.runs > 0, "sweep needs at least one run");
  const Experiment experiment(
      grid_power_vs_raise_factor(raise_factors, options, n, min_range, max_range));
  return sweep_points_from(experiment.run(experiment_options_from(options)),
                           /*delta_metrics=*/true);
}

ExperimentGrid grid_move_vs_max_displacement(
    const std::vector<double>& max_displacements, const SweepOptions& options,
    std::size_t n, double min_range, double max_range) {
  ScenarioSpec base;
  base.kind = ScenarioKind::kMove;
  base.workload.n = n;
  base.workload.min_range = min_range;
  base.workload.max_range = max_range;
  base.move_rounds = 1;
  GridAxis axis{"max_displacement", max_displacements,
                [](ScenarioSpec& spec, double x) { spec.max_displacement = x; }};
  return make_figure_grid(std::move(axis), std::move(base), options);
}

std::vector<SweepPoint> sweep_move_vs_max_displacement(
    const std::vector<double>& max_displacements, const SweepOptions& options,
    std::size_t n, double min_range, double max_range) {
  MINIM_REQUIRE(options.runs > 0, "sweep needs at least one run");
  const Experiment experiment(grid_move_vs_max_displacement(
      max_displacements, options, n, min_range, max_range));
  return sweep_points_from(experiment.run(experiment_options_from(options)),
                           /*delta_metrics=*/true);
}

std::vector<SweepPoint> sweep_join_vs_n_constant_density(
    const std::vector<double>& ns, const SweepOptions& options,
    Placement placement, double mean_degree) {
  ScenarioSpec base;
  base.kind = ScenarioKind::kJoin;
  GridAxis axis{"n", ns, [placement, mean_degree](ScenarioSpec& spec, double x) {
                  spec.workload = make_large_n_params(
                      static_cast<std::size_t>(x), mean_degree, placement);
                }};
  return run_grid_sweep(std::move(axis), std::move(base),
                        /*delta_metrics=*/false, options);
}

std::vector<SweepPoint> sweep_join_vs_cluster_count(
    const std::vector<double>& cluster_counts, const SweepOptions& options,
    std::size_t n, double cluster_sigma) {
  ScenarioSpec base;
  base.kind = ScenarioKind::kJoin;
  base.workload.n = n;
  base.workload.placement = Placement::kClustered;
  base.workload.cluster_sigma = cluster_sigma;
  GridAxis axis{"clusters", cluster_counts, [](ScenarioSpec& spec, double x) {
                  spec.workload.cluster_count =
                      std::max<std::size_t>(1, static_cast<std::size_t>(x));
                }};
  return run_grid_sweep(std::move(axis), std::move(base),
                        /*delta_metrics=*/false, options);
}

ExperimentGrid grid_move_vs_rounds(const std::vector<double>& rounds,
                                   const SweepOptions& options, std::size_t n,
                                   double max_displacement, double min_range,
                                   double max_range) {
  ScenarioSpec base;
  base.kind = ScenarioKind::kMove;
  base.workload.n = n;
  base.workload.min_range = min_range;
  base.workload.max_range = max_range;
  base.max_displacement = max_displacement;
  GridAxis axis{"rounds", rounds, [](ScenarioSpec& spec, double x) {
                  spec.move_rounds = static_cast<std::size_t>(x);
                }};
  return make_figure_grid(std::move(axis), std::move(base), options);
}

std::vector<SweepPoint> sweep_move_vs_rounds(const std::vector<double>& rounds,
                                             const SweepOptions& options, std::size_t n,
                                             double max_displacement, double min_range,
                                             double max_range) {
  MINIM_REQUIRE(options.runs > 0, "sweep needs at least one run");
  const Experiment experiment(grid_move_vs_rounds(rounds, options, n,
                                                  max_displacement, min_range,
                                                  max_range));
  return sweep_points_from(experiment.run(experiment_options_from(options)),
                           /*delta_metrics=*/true);
}

}  // namespace minim::sim
