#include "sim/experiment.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/replay.hpp"
#include "util/map_reduce.hpp"
#include "util/require.hpp"

namespace minim::sim {

Workload make_scenario_workload(const ScenarioSpec& spec, util::Rng& rng) {
  switch (spec.kind) {
    case ScenarioKind::kJoin:
      return make_join_workload(spec.workload, rng);
    case ScenarioKind::kPower:
      return make_power_workload(spec.workload, spec.raise_factor, rng);
    case ScenarioKind::kMove:
      return make_move_workload(spec.workload, spec.max_displacement,
                                spec.move_rounds, rng);
    case ScenarioKind::kChurn:
      break;  // churn does not use a phased workload
  }
  throw std::logic_error("make_scenario_workload: no phased workload for this kind");
}

void accumulate(TotalsSummary& summary, const Totals& totals,
                net::Color final_max_color) {
  summary.events.add(static_cast<double>(totals.events));
  summary.recodings.add(static_cast<double>(totals.recodings));
  summary.messages.add(static_cast<double>(totals.messages));
  summary.max_color.add(static_cast<double>(final_max_color));
  for (std::size_t t = 0; t < totals.events_by_type.size(); ++t) {
    summary.events_by_type[t].add(static_cast<double>(totals.events_by_type[t]));
    summary.recodings_by_type[t].add(
        static_cast<double>(totals.recodings_by_type[t]));
  }
}

TotalsSummary summarize(const ExperimentCell& cell) {
  TotalsSummary summary;
  for (const ExperimentTrial& trial : cell.trials)
    accumulate(summary, trial.totals, trial.final_max_color);
  return summary;
}

const ExperimentCell& ExperimentResult::cell(std::size_t point,
                                             std::size_t strategy) const {
  MINIM_REQUIRE(point < point_count() && strategy < strategy_count(),
                "experiment cell index out of range");
  return cells[point * strategy_count() + strategy];
}

namespace {

/// Axis-0-major cartesian product of the axis values; one empty point when
/// there are no axes.
std::vector<std::vector<double>> enumerate_points(
    const std::vector<GridAxis>& axes) {
  for (const GridAxis& axis : axes) {
    MINIM_REQUIRE(!axis.values.empty(), "grid axis needs at least one value");
    MINIM_REQUIRE(static_cast<bool>(axis.apply), "grid axis needs an apply fn");
  }
  std::size_t count = 1;
  for (const GridAxis& axis : axes) count *= axis.values.size();

  std::vector<std::vector<double>> points;
  points.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    std::vector<double> coords(axes.size());
    std::size_t rem = p;
    for (std::size_t a = axes.size(); a-- > 0;) {
      coords[a] = axes[a].values[rem % axes[a].values.size()];
      rem /= axes[a].values.size();
    }
    points.push_back(std::move(coords));
  }
  return points;
}

/// Runs one (point, trial) item: generates the workload once and replays it
/// across every strategy (paired comparison).  Churn has no phased workload;
/// pairing is achieved by handing every strategy a *copy* of the same stream
/// — the event sequence is a pure function of the rng, so all strategies see
/// the identical churn.
std::vector<ExperimentTrial> run_point_trial(
    const ScenarioSpec& spec, const std::vector<std::string>& strategies,
    const strategies::StrategyFactory& factory, std::uint64_t trial,
    util::Rng& rng) {
  std::vector<ExperimentTrial> out;
  out.reserve(strategies.size());

  if (spec.kind == ScenarioKind::kChurn) {
    ChurnParams params = spec.churn;
    params.validate = params.validate || spec.validate;
    for (const std::string& name : strategies) {
      const auto strategy = factory(name);
      util::Rng stream = rng;
      const ChurnResult churn = run_churn(params, *strategy, stream);
      ExperimentTrial result;
      result.trial = trial;
      result.totals = churn.totals;
      result.final_max_color = churn.final_max_color;
      out.push_back(result);
    }
    return out;
  }

  const Workload workload = make_scenario_workload(spec, rng);
  // One arena per worker thread, and one lockstep replay per trial: the
  // shared network evolves once per event while every strategy repairs its
  // own assignment (bit-identical to per-strategy replays by replay_all's
  // contract).
  thread_local ReplayArena arena;
  std::vector<std::unique_ptr<core::RecodingStrategy>> objects;
  std::vector<core::RecodingStrategy*> lanes;
  objects.reserve(strategies.size());
  lanes.reserve(strategies.size());
  for (const std::string& name : strategies) {
    objects.push_back(factory(name));
    lanes.push_back(objects.back().get());
  }
  const std::vector<RunOutcome> outcomes =
      replay_all(workload, lanes, spec.validate, &arena);
  for (const RunOutcome& outcome : outcomes) {
    ExperimentTrial result;
    result.trial = trial;
    result.totals = outcome.totals;
    result.final_max_color = outcome.max_color;
    result.setup_max_color = outcome.setup_max_color;
    result.setup_recodings = outcome.setup_recodings;
    out.push_back(result);
  }
  return out;
}

}  // namespace

Experiment::Experiment(ExperimentGrid grid)
    : grid_(std::move(grid)), points_(enumerate_points(grid_.axes)) {
  MINIM_REQUIRE(!grid_.strategies.empty(),
                "experiment needs at least one strategy");
}

ScenarioSpec Experiment::spec_for_point(std::size_t point_index) const {
  MINIM_REQUIRE(point_index < points_.size(), "grid point index out of range");
  ScenarioSpec spec = grid_.base;
  const std::vector<double>& coords = points_[point_index];
  for (std::size_t a = 0; a < grid_.axes.size(); ++a)
    grid_.axes[a].apply(spec, coords[a]);
  return spec;
}

ExperimentResult Experiment::run(const ExperimentOptions& options) const {
  MINIM_REQUIRE(options.trial_begin <= options.trials,
                "trial_begin past the trial space");
  MINIM_REQUIRE(options.point_begin <= points_.size(),
                "point_begin past the grid");
  const std::size_t shard_trials =
      std::min(options.trial_count, options.trials - options.trial_begin);
  const std::size_t shard_points =
      std::min(options.point_count, points_.size() - options.point_begin);
  const std::size_t n_strategies = grid_.strategies.size();

  ExperimentResult result;
  result.axis_names.reserve(grid_.axes.size());
  for (const GridAxis& axis : grid_.axes) result.axis_names.push_back(axis.name);
  result.points.assign(
      points_.begin() + static_cast<std::ptrdiff_t>(options.point_begin),
      points_.begin() +
          static_cast<std::ptrdiff_t>(options.point_begin + shard_points));
  result.strategies = grid_.strategies;
  result.total_trials = options.trials;
  result.total_points = points_.size();
  result.seed = options.seed;
  result.trial_begin = options.trial_begin;
  result.trial_count = shard_trials;
  result.point_begin = options.point_begin;
  result.cells.resize(shard_points * n_strategies);
  for (std::size_t p = 0; p < shard_points; ++p)
    for (std::size_t s = 0; s < n_strategies; ++s) {
      ExperimentCell& cell = result.cells[p * n_strategies + s];
      cell.point_index = p;
      cell.strategy_index = s;
      cell.trials.reserve(shard_trials);
    }
  if (shard_trials == 0 || shard_points == 0) return result;

  // Axis application is cheap but runs once per point, not once per item.
  std::vector<ScenarioSpec> specs;
  specs.reserve(shard_points);
  for (std::size_t p = 0; p < shard_points; ++p)
    specs.push_back(spec_for_point(options.point_begin + p));

  const strategies::StrategyFactory factory =
      grid_.strategy_factory
          ? grid_.strategy_factory
          : [](const std::string& name) { return strategies::make_strategy(name); };

  util::MapReduceOptions mr;
  mr.seed = options.seed;
  mr.threads = options.threads;
  // Global stream = global point * total_trials + global trial, independent
  // of the shard's rectangle — the invariant that makes sharding bit-safe.
  mr.stream_of = [shard_trials, total = options.trials,
                  trial0 = options.trial_begin,
                  point0 = options.point_begin](std::size_t item) {
    const std::size_t point = point0 + item / shard_trials;
    const std::size_t trial = trial0 + item % shard_trials;
    return static_cast<std::uint64_t>(point) * total + trial;
  };

  util::map_reduce(
      shard_points * shard_trials, mr,
      [&](std::size_t item, util::Rng& rng) {
        const std::size_t point = item / shard_trials;
        const std::uint64_t trial = options.trial_begin + item % shard_trials;
        return run_point_trial(specs[point], grid_.strategies, factory, trial, rng);
      },
      [&](std::size_t item, std::vector<ExperimentTrial>&& per_strategy) {
        const std::size_t point = item / shard_trials;
        for (std::size_t s = 0; s < n_strategies; ++s)
          result.cells[point * n_strategies + s].trials.push_back(
              std::move(per_strategy[s]));
      });
  return result;
}

ExperimentResult merge_shards(std::vector<ExperimentResult> shards) {
  if (shards.empty())
    throw std::invalid_argument("merge_shards: no shards to merge");

  // Point-major, trial-minor: shards sharing a point range become one group
  // whose trial ranges must tile [0, total_trials); the groups' point ranges
  // must then tile [0, total_points).
  std::sort(shards.begin(), shards.end(),
            [](const ExperimentResult& a, const ExperimentResult& b) {
              if (a.point_begin != b.point_begin)
                return a.point_begin < b.point_begin;
              return a.trial_begin < b.trial_begin;
            });

  const ExperimentResult& first = shards.front();
  for (const ExperimentResult& shard : shards) {
    const bool compatible = shard.axis_names == first.axis_names &&
                            shard.strategies == first.strategies &&
                            shard.total_trials == first.total_trials &&
                            shard.total_points == first.total_points &&
                            shard.seed == first.seed;
    if (!compatible)
      throw std::invalid_argument(
          "merge_shards: shards describe different experiments");
  }

  ExperimentResult merged;
  merged.axis_names = first.axis_names;
  merged.strategies = first.strategies;
  merged.total_trials = first.total_trials;
  merged.total_points = first.total_points;
  merged.seed = first.seed;
  merged.trial_begin = 0;
  merged.trial_count = first.total_trials;
  merged.point_begin = 0;
  merged.points.reserve(first.total_points);
  merged.cells.reserve(first.total_points * first.strategies.size());

  const std::size_t n_strategies = first.strategies.size();
  std::size_t next_point = 0;
  for (std::size_t i = 0; i < shards.size();) {
    const ExperimentResult& lead = shards[i];
    if (lead.point_begin != next_point)
      throw std::invalid_argument(
          "merge_shards: point ranges leave a gap or overlap");

    // The trial-range group sharing lead's point range.
    std::size_t next_trial = 0;
    std::size_t group_end = i;
    for (; group_end < shards.size() &&
           shards[group_end].point_begin == lead.point_begin;
         ++group_end) {
      const ExperimentResult& shard = shards[group_end];
      if (shard.points != lead.points)
        throw std::invalid_argument(
            "merge_shards: point ranges leave a gap or overlap");
      if (shard.trial_begin != next_trial)
        throw std::invalid_argument(
            "merge_shards: trial ranges leave a gap or overlap");
      next_trial = shard.trial_begin + shard.trial_count;
    }
    if (next_trial != first.total_trials)
      throw std::invalid_argument(
          "merge_shards: trial ranges do not cover [0, total_trials)");

    for (std::size_t p = 0; p < lead.points.size(); ++p) {
      merged.points.push_back(lead.points[p]);
      for (std::size_t s = 0; s < n_strategies; ++s) {
        ExperimentCell cell;
        cell.point_index = next_point + p;
        cell.strategy_index = s;
        cell.trials.reserve(first.total_trials);
        for (std::size_t j = i; j < group_end; ++j) {
          const ExperimentCell& source = shards[j].cells[p * n_strategies + s];
          cell.trials.insert(cell.trials.end(), source.trials.begin(),
                             source.trials.end());
        }
        merged.cells.push_back(std::move(cell));
      }
    }
    next_point += lead.points.size();
    i = group_end;
  }
  if (next_point != first.total_points)
    throw std::invalid_argument(
        "merge_shards: point ranges do not cover [0, total_points)");
  return merged;
}

}  // namespace minim::sim
