#pragma once

#include <cstdint>
#include <vector>

#include "core/strategy.hpp"
#include "net/assignment.hpp"
#include "sim/simulation.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

/// \file churn.hpp
/// \brief Continuous-time churn: the "long sequence of events" of Section 5.
///
/// The paper's sweeps stage events in phases (all joins, then all raises,
/// then movement rounds).  This engine instead runs an open ad-hoc network
/// in continuous time, the regime the introduction motivates:
///   * nodes arrive as a Poisson process and stay an exponential lifetime;
///   * each node moves at exponential intervals by a bounded random
///     displacement (random-waypoint-style jumps);
///   * each node duty-cycles its transmitter at exponential intervals,
///     alternating between a power-save range and its full range.
/// Events are totally ordered by a (time, sequence) key, matching the
/// paper's sequenced-reconfigurations assumption; the strategy under test
/// repairs the assignment after each one.
///
/// The engine samples the two paper metrics on a fixed grid so steady-state
/// behaviour (not just end-state) is visible.

namespace minim::sim {

struct ChurnParams {
  double duration = 1000.0;        ///< simulated time horizon
  double arrival_rate = 0.25;      ///< Poisson joins per time unit
  double mean_lifetime = 240.0;    ///< exponential node lifetime
  double move_rate = 0.02;         ///< per-node movement events per time unit
  double power_rate = 0.01;        ///< per-node power toggles per time unit
  double max_displacement = 30.0;  ///< movement jump bound
  double power_save_factor = 0.6;  ///< range multiplier in power-save state
  double min_range = 20.5;
  double max_range = 30.5;
  double width = 100.0;
  double height = 100.0;
  double sample_interval = 50.0;   ///< metric sampling grid
  std::size_t max_nodes = 400;     ///< hard cap (arrivals beyond it are dropped)
  bool validate = false;           ///< CA1/CA2 check after every event

  /// Pre-populates the network before time 0: `initial_nodes` joins placed
  /// by `make_join_workload` (ranges/field from this struct, placement from
  /// the initial_* knobs), each seeded node then drawing the same
  /// lifetime/move/power schedules as an arrival.  This is how the large-N
  /// benches run leave/move/power churn *on* a 10⁴–10⁵-node network instead
  /// of waiting for arrivals to build one.  0 = start empty; the default
  /// path consumes exactly the rng draws it always did.
  std::size_t initial_nodes = 0;
  Placement initial_placement = Placement::kUniform;
  std::size_t initial_cluster_count = 8;   ///< kClustered parents
  double initial_cluster_sigma = 6.0;      ///< kClustered offspring spread
  double initial_min_separation = 0.0;     ///< kPoissonDisk spacing (0 = auto)
};

/// One point of the sampled time series.
struct ChurnSample {
  double time = 0.0;
  std::size_t nodes = 0;
  net::Color max_color = net::kNoColor;
  std::size_t cumulative_recodings = 0;
};

struct ChurnResult {
  std::vector<ChurnSample> samples;
  Totals totals;                ///< event/recoding totals from the engine
  std::size_t peak_nodes = 0;
  std::size_t dropped_arrivals = 0;  ///< arrivals rejected by the cap
  net::Color final_max_color = net::kNoColor;  ///< max color at the horizon
  bool final_valid = false;     ///< CA1/CA2 validity at the horizon
};

/// Runs one churn simulation under `strategy`.  Deterministic given `rng`.
ChurnResult run_churn(const ChurnParams& params, core::RecodingStrategy& strategy,
                      util::Rng& rng);

}  // namespace minim::sim
