#pragma once

#include <optional>
#include <vector>

#include "core/strategy.hpp"
#include "sim/simulation.hpp"
#include "sim/workload.hpp"

/// \file replay.hpp
/// \brief Replays a workload through a strategy and measures the paper's
/// metrics, separating the setup phase (joins) from the event phase
/// (power raises / movement rounds) so Δ-metrics can be computed.

namespace minim::sim {

class ReplayArena;

/// Metrics of one (workload, strategy) replay.
struct RunOutcome {
  // After phase 1 (the N joins):
  double setup_max_color = 0;
  double setup_recodings = 0;
  // After phase 2 (power raises or movement rounds; equal to setup when the
  // workload has no phase 2):
  /// Full engine counters of the replay (per-type event/recoding breakdown).
  Totals totals;
  /// Network-wide max color at the end of the replay.
  net::Color max_color = net::kNoColor;

  // The paper's plot metrics, derived from the counters above (single
  // source of truth — there is no second stored copy to drift).
  double final_max_color() const { return static_cast<double>(max_color); }
  double total_recodings() const { return static_cast<double>(totals.recodings); }
  double messages() const { return static_cast<double>(totals.messages); }

  /// Fig 11/12's Δ(max color index assigned).
  double delta_max_color() const { return final_max_color() - setup_max_color; }
  /// Fig 11/12's Δ(total number of recodings).
  double delta_recodings() const { return total_recodings() - setup_recodings; }
};

/// Replays `workload` from an empty network.  `validate` asserts CA1/CA2
/// after every event (slower; tests only).  Passing an arena reuses its
/// engine state (network slots, grid cells, conflict rows, id buffer)
/// instead of reconstructing them — the outcome is bit-identical either
/// way, so per-trial strategy replays can share one arena.
RunOutcome replay(const Workload& workload, core::RecodingStrategy& strategy,
                  bool validate = false, ReplayArena* arena = nullptr);

/// Reusable engine state for `replay`.  One arena serves any sequence of
/// replays (any workload sizes, strategies, field dimensions) from a single
/// thread; the experiment engine keeps one per worker so the per-strategy
/// replays of a trial stop rebuilding the network from scratch.
class ReplayArena {
 public:
  ReplayArena() = default;
  ReplayArena(const ReplayArena&) = delete;
  ReplayArena& operator=(const ReplayArena&) = delete;

 private:
  friend RunOutcome replay(const Workload&, core::RecodingStrategy&, bool,
                           ReplayArena*);
  std::optional<Simulation> simulation_;
  std::vector<net::NodeId> ids_;
};

}  // namespace minim::sim
