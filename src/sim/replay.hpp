#pragma once

#include <span>
#include <vector>

#include "core/strategy.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "sim/workload.hpp"

/// \file replay.hpp
/// \brief Replays a workload through one or many strategies and measures the
/// paper's metrics, separating the setup phase (joins) from the event phase
/// (power raises / movement rounds) so Δ-metrics can be computed.
///
/// ## Lockstep multi-strategy replay
///
/// The network's evolution under a workload is a pure function of the event
/// sequence — colors never influence topology.  The per-trial paired
/// comparison therefore does not need one network rebuild per strategy:
/// `replay_all` applies each event to a single shared network once and then
/// invokes every strategy on its own `CodeAssignment`.  Each strategy
/// observes exactly the (network, own-assignment) sequence a solo replay
/// would give it, so the outcomes are bit-identical to per-strategy
/// `replay` calls — the equivalence is locked down in
/// tests/sim/replay_all_test.cpp.  With k strategies this removes k-1 of
/// the k digraph/conflict-cache maintenance passes, which profiling showed
/// was the single largest cost of every figure sweep.

namespace minim::sim {

class ReplayArena;

/// Metrics of one (workload, strategy) replay.
struct RunOutcome {
  // After phase 1 (the N joins):
  double setup_max_color = 0;
  double setup_recodings = 0;
  // After phase 2 (power raises or movement rounds; equal to setup when the
  // workload has no phase 2):
  /// Full engine counters of the replay (per-type event/recoding breakdown).
  Totals totals;
  /// Network-wide max color at the end of the replay.
  net::Color max_color = net::kNoColor;

  // The paper's plot metrics, derived from the counters above (single
  // source of truth — there is no second stored copy to drift).
  double final_max_color() const { return static_cast<double>(max_color); }
  double total_recodings() const { return static_cast<double>(totals.recodings); }
  double messages() const { return static_cast<double>(totals.messages); }

  /// Fig 11/12's Δ(max color index assigned).
  double delta_max_color() const { return final_max_color() - setup_max_color; }
  /// Fig 11/12's Δ(total number of recodings).
  double delta_recodings() const { return total_recodings() - setup_recodings; }
};

/// Replays `workload` from an empty network.  `validate` asserts CA1/CA2
/// after every event (slower; tests only).  Passing an arena reuses its
/// engine state (network slots, grid cells, conflict rows, id buffer)
/// instead of reconstructing them — the outcome is bit-identical either
/// way, so per-trial strategy replays can share one arena.
RunOutcome replay(const Workload& workload, core::RecodingStrategy& strategy,
                  bool validate = false, ReplayArena* arena = nullptr);

/// Lockstep replay: one shared network evolution, every strategy repairing
/// its own assignment at each event.  `outcomes[i]` is bit-identical to
/// `replay(workload, *strategies[i], validate)`.  With `validate`, each
/// strategy's assignment is checked after every event, in strategy order.
std::vector<RunOutcome> replay_all(const Workload& workload,
                                   std::span<core::RecodingStrategy* const> strategies,
                                   bool validate = false,
                                   ReplayArena* arena = nullptr);

/// Reusable engine state for `replay`/`replay_all`.  One arena serves any
/// sequence of replays (any workload sizes, strategy counts, field
/// dimensions) from a single thread; the experiment engine keeps one per
/// worker so per-trial replays stop rebuilding the network from scratch.
class ReplayArena {
 public:
  ReplayArena() = default;
  ReplayArena(const ReplayArena&) = delete;
  ReplayArena& operator=(const ReplayArena&) = delete;

 private:
  friend std::vector<RunOutcome> replay_all(const Workload&,
                                            std::span<core::RecodingStrategy* const>,
                                            bool, ReplayArena*);
  net::AdhocNetwork network_;
  std::vector<net::CodeAssignment> assignments_;  ///< one lane per strategy
  std::vector<net::NodeId> ids_;
};

}  // namespace minim::sim
