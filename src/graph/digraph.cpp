#include "graph/digraph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace minim::graph {

NodeId Digraph::add_node() {
  NodeId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    alive_[id] = true;
    out_.clear_row(id);
    in_.clear_row(id);
  } else {
    id = static_cast<NodeId>(alive_.size());
    alive_.push_back(true);
    out_.ensure_row(id);
    in_.ensure_row(id);
  }
  ++live_count_;
  return id;
}

void Digraph::remove_node(NodeId v) {
  MINIM_REQUIRE(contains(v), "remove_node: unknown node");
  clear_edges_of(v);
  alive_[v] = false;
  --live_count_;
  // Keep free list sorted descending so the lowest id is reused first.
  const auto it = std::lower_bound(free_slots_.begin(), free_slots_.end(), v,
                                   std::greater<NodeId>());
  free_slots_.insert(it, v);
}

void Digraph::add_edge(NodeId u, NodeId v) {
  MINIM_REQUIRE(contains(u) && contains(v), "add_edge: unknown endpoint");
  MINIM_REQUIRE(u != v, "add_edge: self-loops are not allowed");
  if (out_.insert_sorted(u, v)) {
    in_.insert_sorted(v, u);
    ++edge_count_;
  }
}

void Digraph::remove_edge(NodeId u, NodeId v) {
  if (!contains(u) || !contains(v)) return;
  if (out_.erase_sorted(u, v)) {
    in_.erase_sorted(v, u);
    --edge_count_;
  }
}

void Digraph::clear_edges_of(NodeId v) {
  MINIM_REQUIRE(contains(v), "clear_edges_of: unknown node");
  // erase_sorted never relocates rows, so the spans stay valid while the
  // opposite-direction pool is edited.
  for (NodeId w : out_.row(v)) {
    in_.erase_sorted(w, v);
    --edge_count_;
  }
  out_.clear_row(v);
  for (NodeId w : in_.row(v)) {
    out_.erase_sorted(w, v);
    --edge_count_;
  }
  in_.clear_row(v);
}

void Digraph::clear() {
  const auto slots = static_cast<NodeId>(alive_.size());
  out_.clear();
  in_.clear();
  for (NodeId v = 0; v < slots; ++v) alive_[v] = false;
  free_slots_.resize(slots);
  for (NodeId v = 0; v < slots; ++v) free_slots_[v] = slots - 1 - v;
  live_count_ = 0;
  edge_count_ = 0;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  if (!contains(u) || !contains(v)) return false;
  return out_.contains(u, v);
}

std::span<const NodeId> Digraph::out_neighbors(NodeId u) const {
  MINIM_REQUIRE(contains(u), "out_neighbors: unknown node");
  return out_.row(u);
}

std::span<const NodeId> Digraph::in_neighbors(NodeId u) const {
  MINIM_REQUIRE(contains(u), "in_neighbors: unknown node");
  return in_.row(u);
}

std::vector<NodeId> Digraph::nodes() const {
  std::vector<NodeId> ids;
  nodes(ids);
  return ids;
}

void Digraph::nodes(std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(live_count_);
  for (NodeId v = 0; v < alive_.size(); ++v)
    if (alive_[v]) out.push_back(v);
}

std::size_t Digraph::memory_bytes() const {
  return out_.memory_bytes() + in_.memory_bytes() + alive_.capacity() / 8 +
         free_slots_.capacity() * sizeof(NodeId);
}

}  // namespace minim::graph
