#include "graph/digraph.hpp"

#include <algorithm>
#include <cassert>

#include "util/require.hpp"

namespace minim::graph {

bool Digraph::sorted_contains(const std::vector<NodeId>& xs, NodeId v) {
  return std::binary_search(xs.begin(), xs.end(), v);
}

bool Digraph::sorted_insert(std::vector<NodeId>& xs, NodeId v) {
  const auto it = std::lower_bound(xs.begin(), xs.end(), v);
  if (it != xs.end() && *it == v) return false;
  xs.insert(it, v);
  return true;
}

bool Digraph::sorted_erase(std::vector<NodeId>& xs, NodeId v) {
  const auto it = std::lower_bound(xs.begin(), xs.end(), v);
  if (it == xs.end() || *it != v) return false;
  xs.erase(it);
  return true;
}

NodeId Digraph::add_node() {
  NodeId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    alive_[id] = true;
    out_[id].clear();
    in_[id].clear();
  } else {
    id = static_cast<NodeId>(alive_.size());
    alive_.push_back(true);
    out_.emplace_back();
    in_.emplace_back();
  }
  ++live_count_;
  return id;
}

void Digraph::remove_node(NodeId v) {
  MINIM_REQUIRE(contains(v), "remove_node: unknown node");
  clear_edges_of(v);
  alive_[v] = false;
  --live_count_;
  // Keep free list sorted descending so the lowest id is reused first.
  const auto it = std::lower_bound(free_slots_.begin(), free_slots_.end(), v,
                                   std::greater<NodeId>());
  free_slots_.insert(it, v);
}

void Digraph::add_edge(NodeId u, NodeId v) {
  MINIM_REQUIRE(contains(u) && contains(v), "add_edge: unknown endpoint");
  MINIM_REQUIRE(u != v, "add_edge: self-loops are not allowed");
  if (sorted_insert(out_[u], v)) {
    sorted_insert(in_[v], u);
    ++edge_count_;
  }
}

void Digraph::remove_edge(NodeId u, NodeId v) {
  if (!contains(u) || !contains(v)) return;
  if (sorted_erase(out_[u], v)) {
    sorted_erase(in_[v], u);
    --edge_count_;
  }
}

void Digraph::clear_edges_of(NodeId v) {
  MINIM_REQUIRE(contains(v), "clear_edges_of: unknown node");
  for (NodeId w : out_[v]) {
    sorted_erase(in_[w], v);
    --edge_count_;
  }
  out_[v].clear();
  for (NodeId w : in_[v]) {
    sorted_erase(out_[w], v);
    --edge_count_;
  }
  in_[v].clear();
}

void Digraph::clear() {
  const auto slots = static_cast<NodeId>(alive_.size());
  for (NodeId v = 0; v < slots; ++v) {
    out_[v].clear();
    in_[v].clear();
    alive_[v] = false;
  }
  free_slots_.resize(slots);
  for (NodeId v = 0; v < slots; ++v) free_slots_[v] = slots - 1 - v;
  live_count_ = 0;
  edge_count_ = 0;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  if (!contains(u) || !contains(v)) return false;
  return sorted_contains(out_[u], v);
}

const std::vector<NodeId>& Digraph::out_neighbors(NodeId u) const {
  MINIM_REQUIRE(contains(u), "out_neighbors: unknown node");
  return out_[u];
}

const std::vector<NodeId>& Digraph::in_neighbors(NodeId u) const {
  MINIM_REQUIRE(contains(u), "in_neighbors: unknown node");
  return in_[u];
}

std::vector<NodeId> Digraph::nodes() const {
  std::vector<NodeId> ids;
  ids.reserve(live_count_);
  for (NodeId v = 0; v < alive_.size(); ++v)
    if (alive_[v]) ids.push_back(v);
  return ids;
}

}  // namespace minim::graph
