#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/row_pool.hpp"

/// \file digraph.hpp
/// \brief Dynamic directed graph with stable node identifiers.
///
/// The ad-hoc network model of the paper is a dynamic digraph G = (V, E):
/// nodes join and leave, and edges appear/disappear as nodes move or change
/// transmission range.  This container supports those mutations in O(degree)
/// while keeping node ids stable (slot reuse via a free list), because node
/// identity matters to the protocols (CP orders recoloring by identity).
///
/// Adjacency is kept as sorted rows in CSR-style pooled storage
/// (`graph::RowPool`): neighbor sets are small (the paper argues
/// expected-constant degree in planar deployments), so sorted rows beat hash
/// sets on memory and iteration and give deterministic iteration order —
/// important for reproducible simulations — while the shared pool removes
/// the per-node heap allocation that dominated the footprint at large N.
/// Neighbor accessors return spans into the pool; any mutation of the graph
/// invalidates them.

namespace minim::graph {

using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Digraph {
 public:
  Digraph() = default;

  /// Creates a node and returns its id.  Ids of removed nodes are reused
  /// (lowest free slot first) so long simulations do not grow unboundedly.
  NodeId add_node();

  /// Removes `v` and all incident edges.  Requires `contains(v)`.
  void remove_node(NodeId v);

  /// True when `v` is a live node.
  bool contains(NodeId v) const {
    return v < alive_.size() && alive_[v];
  }

  /// Adds edge u -> v.  No-op if already present.  Requires both live, u != v.
  void add_edge(NodeId u, NodeId v);

  /// Removes edge u -> v if present.
  void remove_edge(NodeId u, NodeId v);

  /// Drops every edge incident to `v` (both directions) without removing it.
  void clear_edges_of(NodeId v);

  /// Removes every node and edge while keeping slot capacity (adjacency
  /// vectors stay allocated).  After clear(), add_node() hands out ids
  /// 0, 1, 2, ... again, so a cleared graph replays a construction sequence
  /// with the same ids as a fresh one — the arena-reuse contract.
  void clear();

  bool has_edge(NodeId u, NodeId v) const;

  /// Successors of `u` (nodes that hear `u`), ascending by id.  The span
  /// points into pooled storage; any graph mutation invalidates it.
  std::span<const NodeId> out_neighbors(NodeId u) const;

  /// Predecessors of `u` (nodes that `u` hears), ascending by id.  Same
  /// invalidation rule as `out_neighbors`.
  std::span<const NodeId> in_neighbors(NodeId u) const;

  std::size_t out_degree(NodeId u) const { return out_neighbors(u).size(); }
  std::size_t in_degree(NodeId u) const { return in_neighbors(u).size(); }

  /// Number of live nodes.
  std::size_t node_count() const { return live_count_; }

  /// Number of directed edges.
  std::size_t edge_count() const { return edge_count_; }

  /// All live node ids, ascending.  O(slots).
  std::vector<NodeId> nodes() const;

  /// Allocation-free variant: replaces `out` with all live ids, ascending.
  void nodes(std::vector<NodeId>& out) const;

  /// Upper bound (exclusive) on node ids ever issued; useful for dense
  /// id-indexed side arrays.
  NodeId id_bound() const { return static_cast<NodeId>(alive_.size()); }

  /// Heap bytes held by the adjacency pools and slot bookkeeping.
  std::size_t memory_bytes() const;

 private:
  RowPool out_;
  RowPool in_;
  std::vector<bool> alive_;
  std::vector<NodeId> free_slots_;  // kept sorted descending; pop lowest last
  std::size_t live_count_ = 0;
  std::size_t edge_count_ = 0;
};

}  // namespace minim::graph
