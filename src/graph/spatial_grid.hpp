#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/geometry.hpp"

/// \file spatial_grid.hpp
/// \brief Uniform hash grid for radius queries over node positions.
///
/// The network model must answer "which nodes lie within distance r of p?"
/// on every join/move/power event.  A uniform grid over the deployment field
/// answers that in O(candidates) instead of O(n).  For the paper's field
/// (100x100 units, ranges ~20-30) a cell size near the typical range keeps
/// the candidate sets tight.  The grid stores ids only; exact squared
/// distance filtering happens in the caller against authoritative positions.

namespace minim::graph {

class SpatialGrid {
 public:
  /// Grid over [0,width] x [0,height] with square cells of `cell_size`.
  /// Points outside the box are clamped into the boundary cells, so the grid
  /// stays correct even if a caller moves a node slightly out of the field.
  SpatialGrid(double width, double height, double cell_size);

  /// Inserts `id` at `pos`.  Requires: not currently present.
  void insert(NodeId id, util::Vec2 pos);

  /// Removes `id` (requires present at `pos` as last told to the grid).
  void remove(NodeId id, util::Vec2 pos);

  /// Moves `id` from `old_pos` to `new_pos`.
  void move(NodeId id, util::Vec2 old_pos, util::Vec2 new_pos);

  /// Appends to `out` all ids whose cell intersects the disc (center,
  /// radius).  Callers must distance-filter; the result is a superset.
  void query_disc(util::Vec2 center, double radius, std::vector<NodeId>& out) const;

  /// Removes every id, keeping cell-bucket capacity (arena reuse).
  void clear();

  std::size_t size() const { return size_; }
  double cell_size() const { return cell_; }

  /// Heap bytes held by the cell buckets (capacities, not sizes).
  std::size_t memory_bytes() const {
    std::size_t bytes = cells_.capacity() * sizeof(cells_[0]);
    for (const auto& cell : cells_) bytes += cell.capacity() * sizeof(NodeId);
    return bytes;
  }

 private:
  std::size_t cell_index(util::Vec2 pos) const;

  double width_;
  double height_;
  double cell_;
  std::size_t cols_;
  std::size_t rows_;
  std::vector<std::vector<NodeId>> cells_;
  std::size_t size_ = 0;
};

}  // namespace minim::graph
