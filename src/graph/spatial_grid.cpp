#include "graph/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace minim::graph {

SpatialGrid::SpatialGrid(double width, double height, double cell_size)
    : width_(width), height_(height), cell_(cell_size) {
  MINIM_REQUIRE(width > 0 && height > 0, "grid dimensions must be positive");
  MINIM_REQUIRE(cell_size > 0, "grid cell size must be positive");
  cols_ = static_cast<std::size_t>(std::ceil(width / cell_size));
  rows_ = static_cast<std::size_t>(std::ceil(height / cell_size));
  cols_ = std::max<std::size_t>(cols_, 1);
  rows_ = std::max<std::size_t>(rows_, 1);
  cells_.resize(cols_ * rows_);
}

std::size_t SpatialGrid::cell_index(util::Vec2 pos) const {
  const util::Vec2 p = util::clamp_to_box(pos, width_, height_);
  auto cx = static_cast<std::size_t>(p.x / cell_);
  auto cy = static_cast<std::size_t>(p.y / cell_);
  cx = std::min(cx, cols_ - 1);
  cy = std::min(cy, rows_ - 1);
  return cy * cols_ + cx;
}

void SpatialGrid::insert(NodeId id, util::Vec2 pos) {
  auto& cell = cells_[cell_index(pos)];
  cell.push_back(id);
  ++size_;
}

void SpatialGrid::remove(NodeId id, util::Vec2 pos) {
  auto& cell = cells_[cell_index(pos)];
  const auto it = std::find(cell.begin(), cell.end(), id);
  MINIM_REQUIRE(it != cell.end(), "grid remove: id not in expected cell");
  cell.erase(it);
  --size_;
}

void SpatialGrid::move(NodeId id, util::Vec2 old_pos, util::Vec2 new_pos) {
  const std::size_t from = cell_index(old_pos);
  const std::size_t to = cell_index(new_pos);
  if (from == to) return;
  auto& src = cells_[from];
  const auto it = std::find(src.begin(), src.end(), id);
  MINIM_REQUIRE(it != src.end(), "grid move: id not in expected cell");
  src.erase(it);
  cells_[to].push_back(id);
}

void SpatialGrid::clear() {
  for (auto& cell : cells_) cell.clear();
  size_ = 0;
}

void SpatialGrid::query_disc(util::Vec2 center, double radius,
                             std::vector<NodeId>& out) const {
  const util::Vec2 lo = util::clamp_to_box({center.x - radius, center.y - radius},
                                           width_, height_);
  const util::Vec2 hi = util::clamp_to_box({center.x + radius, center.y + radius},
                                           width_, height_);
  auto cx0 = static_cast<std::size_t>(lo.x / cell_);
  auto cy0 = static_cast<std::size_t>(lo.y / cell_);
  auto cx1 = std::min(static_cast<std::size_t>(hi.x / cell_), cols_ - 1);
  auto cy1 = std::min(static_cast<std::size_t>(hi.y / cell_), rows_ - 1);
  for (std::size_t cy = cy0; cy <= cy1; ++cy)
    for (std::size_t cx = cx0; cx <= cx1; ++cx) {
      const auto& cell = cells_[cy * cols_ + cx];
      out.insert(out.end(), cell.begin(), cell.end());
    }
}

}  // namespace minim::graph
