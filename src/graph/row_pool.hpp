#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

/// \file row_pool.hpp
/// \brief CSR-style pooled storage for per-node adjacency rows.
///
/// The hot data structures of the engine — digraph adjacency and conflict
/// rows — used to be `vector<vector<NodeId>>`: one heap allocation plus a
/// 24-byte header per node per direction, scattered across the heap.  At
/// 10⁵–10⁶ nodes that layout dominates both the memory footprint and the
/// cache-miss profile of every neighborhood scan.
///
/// A `RowPool` keeps every row in one shared `u32` pool; a row is an
/// (offset, size, capacity) triple.  Rows stay sorted (the engine's
/// invariant) and mutate in place while they fit; a row that outgrows its
/// slot relocates to the pool tail with doubled capacity, abandoning its old
/// slot.  Abandoned space is reclaimed by compaction once it exceeds half the
/// pool.  `clear()` resets the watermark but keeps the allocation — the
/// arena-reuse contract of `sim::replay`.
///
/// Invalidation rule: any mutating call may relocate rows or compact the
/// pool, so spans returned by `row()` are invalidated by *any* subsequent
/// mutation of the same pool (erase-only sequences do not relocate, but
/// callers should not rely on that beyond the documented uses).
///
/// `CountedRowPool` is the same structure with a parallel per-element `u32`
/// payload (the conflict cache's witness multiplicities); the ids and counts
/// pools share one set of row refs, so `ids(v)` stays a contiguous span.
namespace minim::graph {

using NodeId = std::uint32_t;

namespace detail {

struct RowRef {
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
  std::uint32_t capacity = 0;
};

inline constexpr std::uint32_t kMinRowCapacity = 4;

}  // namespace detail

class RowPool {
 public:
  std::size_t row_count() const { return refs_.size(); }

  void ensure_row(std::uint32_t r) {
    if (r >= refs_.size()) refs_.resize(r + 1);
  }

  std::span<const NodeId> row(std::uint32_t r) const {
    if (r >= refs_.size()) return {};
    const detail::RowRef& ref = refs_[r];
    return {pool_.data() + ref.offset, ref.size};
  }

  std::size_t size(std::uint32_t r) const {
    return r < refs_.size() ? refs_[r].size : 0;
  }

  bool contains(std::uint32_t r, NodeId v) const {
    const auto xs = row(r);
    return std::binary_search(xs.begin(), xs.end(), v);
  }

  /// Inserts `v` into sorted row `r`; false when already present.
  bool insert_sorted(std::uint32_t r, NodeId v) {
    ensure_row(r);
    std::uint32_t at;
    {
      const detail::RowRef& ref = refs_[r];
      const NodeId* base = pool_.data() + ref.offset;
      const NodeId* end = base + ref.size;
      const NodeId* it = std::lower_bound(base, end, v);
      if (it != end && *it == v) return false;
      at = static_cast<std::uint32_t>(it - base);
    }
    // The index stays valid across grow(): relocation and compaction both
    // preserve row contents.
    if (refs_[r].size == refs_[r].capacity) grow(r);
    detail::RowRef& ref = refs_[r];
    NodeId* base = pool_.data() + ref.offset;
    std::memmove(base + at + 1, base + at, (ref.size - at) * sizeof(NodeId));
    base[at] = v;
    ++ref.size;
    return true;
  }

  /// Erases `v` from sorted row `r`; false when absent.  Never relocates.
  bool erase_sorted(std::uint32_t r, NodeId v) {
    if (r >= refs_.size()) return false;
    detail::RowRef& ref = refs_[r];
    NodeId* base = pool_.data() + ref.offset;
    NodeId* end = base + ref.size;
    NodeId* it = std::lower_bound(base, end, v);
    if (it == end || *it != v) return false;
    std::memmove(it, it + 1,
                 static_cast<std::size_t>(end - it - 1) * sizeof(NodeId));
    --ref.size;
    return true;
  }

  /// Empties row `r`, keeping its pool slot for reuse.
  void clear_row(std::uint32_t r) {
    if (r < refs_.size()) refs_[r].size = 0;
  }

  /// Empties every row and resets the pool watermark; capacity is kept.
  void clear() {
    for (detail::RowRef& ref : refs_) ref = detail::RowRef{};
    pool_.clear();
    abandoned_ = 0;
  }

  /// Heap bytes reachable from this pool (capacities, not sizes).
  std::size_t memory_bytes() const {
    return pool_.capacity() * sizeof(NodeId) +
           refs_.capacity() * sizeof(detail::RowRef);
  }

 private:
  void grow(std::uint32_t r) {
    detail::RowRef& ref = refs_[r];
    const std::uint32_t new_cap =
        std::max(detail::kMinRowCapacity, ref.capacity * 2);
    if (ref.offset + ref.capacity == pool_.size()) {
      // Row already sits at the tail: extend in place.
      pool_.resize(ref.offset + new_cap);
      ref.capacity = new_cap;
      return;
    }
    const auto new_offset = static_cast<std::uint32_t>(pool_.size());
    pool_.resize(pool_.size() + new_cap);
    std::memcpy(pool_.data() + new_offset, pool_.data() + ref.offset,
                ref.size * sizeof(NodeId));
    abandoned_ += ref.capacity;
    ref.offset = new_offset;
    ref.capacity = new_cap;
    if (abandoned_ > pool_.size() / 2 && pool_.size() > 4096) compact();
  }

  /// Rewrites the pool in row order, dropping abandoned slots.  The
  /// double-buffer is released afterwards: compaction is rare (amortized
  /// against the growth that caused it), and holding a pool-sized spare
  /// allocation would double the structure's real footprint.
  void compact() {
    std::vector<NodeId> compacted;
    compacted.reserve(pool_.size() - abandoned_);
    for (detail::RowRef& ref : refs_) {
      const auto new_offset = static_cast<std::uint32_t>(compacted.size());
      compacted.insert(compacted.end(), pool_.begin() + ref.offset,
                       pool_.begin() + ref.offset + ref.size);
      compacted.resize(new_offset + ref.capacity);
      ref.offset = new_offset;
    }
    pool_ = std::move(compacted);
    abandoned_ = 0;
  }

  std::vector<NodeId> pool_;
  std::vector<detail::RowRef> refs_;
  std::size_t abandoned_ = 0;
};

/// `RowPool` with a parallel `u32` count per element (same offsets in a
/// second pool), for the conflict cache's witness multiplicities.
class CountedRowPool {
 public:
  std::size_t row_count() const { return refs_.size(); }

  void ensure_row(std::uint32_t r) {
    if (r >= refs_.size()) refs_.resize(r + 1);
  }

  std::span<const NodeId> ids(std::uint32_t r) const {
    if (r >= refs_.size()) return {};
    const detail::RowRef& ref = refs_[r];
    return {ids_.data() + ref.offset, ref.size};
  }

  std::span<const std::uint32_t> counts(std::uint32_t r) const {
    if (r >= refs_.size()) return {};
    const detail::RowRef& ref = refs_[r];
    return {counts_.data() + ref.offset, ref.size};
  }

  std::size_t size(std::uint32_t r) const {
    return r < refs_.size() ? refs_[r].size : 0;
  }

  /// Mutable count slot for `v` in row `r`; nullptr when absent.
  std::uint32_t* find(std::uint32_t r, NodeId v) {
    if (r >= refs_.size()) return nullptr;
    const detail::RowRef& ref = refs_[r];
    const NodeId* base = ids_.data() + ref.offset;
    const NodeId* end = base + ref.size;
    const NodeId* it = std::lower_bound(base, end, v);
    if (it == end || *it != v) return nullptr;
    return counts_.data() + ref.offset + (it - base);
  }

  const std::uint32_t* find(std::uint32_t r, NodeId v) const {
    return const_cast<CountedRowPool*>(this)->find(r, v);
  }

  /// Inserts (v, count) into sorted row `r`.  Requires `v` absent.
  void insert(std::uint32_t r, NodeId v, std::uint32_t count) {
    ensure_row(r);
    std::uint32_t at;
    {
      const detail::RowRef& ref = refs_[r];
      const NodeId* base = ids_.data() + ref.offset;
      const NodeId* it = std::lower_bound(base, base + ref.size, v);
      at = static_cast<std::uint32_t>(it - base);
    }
    if (refs_[r].size == refs_[r].capacity) grow(r);
    detail::RowRef& ref = refs_[r];
    NodeId* ids = ids_.data() + ref.offset;
    std::uint32_t* cnts = counts_.data() + ref.offset;
    std::memmove(ids + at + 1, ids + at, (ref.size - at) * sizeof(NodeId));
    std::memmove(cnts + at + 1, cnts + at,
                 (ref.size - at) * sizeof(std::uint32_t));
    ids[at] = v;
    cnts[at] = count;
    ++ref.size;
  }

  /// Overwrites row `r` with the given parallel arrays (sorted ids).  Grows
  /// the row's slot when needed; prior contents are discarded, so the source
  /// spans must not alias this pool.
  void replace_row(std::uint32_t r, std::span<const NodeId> ids,
                   std::span<const std::uint32_t> counts) {
    ensure_row(r);
    if (refs_[r].capacity < ids.size()) {
      // The row is about to be overwritten wholesale — don't pay to carry
      // its old contents into the new slot.
      refs_[r].size = 0;
      grow_to(r, static_cast<std::uint32_t>(ids.size()));
    }
    detail::RowRef& ref = refs_[r];
    std::memcpy(ids_.data() + ref.offset, ids.data(), ids.size() * sizeof(NodeId));
    std::memcpy(counts_.data() + ref.offset, counts.data(),
                counts.size() * sizeof(std::uint32_t));
    ref.size = static_cast<std::uint32_t>(ids.size());
  }

  /// Erases `v` from row `r`.  Requires `v` present.  Never relocates.
  void erase(std::uint32_t r, NodeId v) {
    detail::RowRef& ref = refs_[r];
    NodeId* base = ids_.data() + ref.offset;
    NodeId* end = base + ref.size;
    NodeId* it = std::lower_bound(base, end, v);
    const auto at = static_cast<std::size_t>(it - base);
    std::memmove(it, it + 1,
                 static_cast<std::size_t>(end - it - 1) * sizeof(NodeId));
    std::uint32_t* cnts = counts_.data() + ref.offset;
    std::memmove(cnts + at, cnts + at + 1,
                 (ref.size - at - 1) * sizeof(std::uint32_t));
    --ref.size;
  }

  void clear() {
    for (detail::RowRef& ref : refs_) ref = detail::RowRef{};
    ids_.clear();
    counts_.clear();
    abandoned_ = 0;
  }

  std::size_t memory_bytes() const {
    return ids_.capacity() * sizeof(NodeId) +
           counts_.capacity() * sizeof(std::uint32_t) +
           refs_.capacity() * sizeof(detail::RowRef);
  }

 private:
  void grow(std::uint32_t r) { grow_to(r, refs_[r].capacity + 1); }

  void grow_to(std::uint32_t r, std::uint32_t min_cap) {
    detail::RowRef& ref = refs_[r];
    const std::uint32_t new_cap =
        std::max({detail::kMinRowCapacity, ref.capacity * 2, min_cap});
    if (ref.offset + ref.capacity == ids_.size()) {
      ids_.resize(ref.offset + new_cap);
      counts_.resize(ref.offset + new_cap);
      ref.capacity = new_cap;
      return;
    }
    const auto new_offset = static_cast<std::uint32_t>(ids_.size());
    ids_.resize(ids_.size() + new_cap);
    counts_.resize(counts_.size() + new_cap);
    std::memcpy(ids_.data() + new_offset, ids_.data() + ref.offset,
                ref.size * sizeof(NodeId));
    std::memcpy(counts_.data() + new_offset, counts_.data() + ref.offset,
                ref.size * sizeof(std::uint32_t));
    abandoned_ += ref.capacity;
    ref.offset = new_offset;
    ref.capacity = new_cap;
    if (abandoned_ > ids_.size() / 2 && ids_.size() > 4096) compact();
  }

  /// See RowPool::compact — the double-buffers are released afterwards so
  /// the footprint report stays honest.
  void compact() {
    std::vector<NodeId> new_ids;
    std::vector<std::uint32_t> new_counts;
    new_ids.reserve(ids_.size() - abandoned_);
    new_counts.reserve(ids_.size() - abandoned_);
    for (detail::RowRef& ref : refs_) {
      const auto new_offset = static_cast<std::uint32_t>(new_ids.size());
      new_ids.insert(new_ids.end(), ids_.begin() + ref.offset,
                     ids_.begin() + ref.offset + ref.size);
      new_counts.insert(new_counts.end(), counts_.begin() + ref.offset,
                        counts_.begin() + ref.offset + ref.size);
      new_ids.resize(new_offset + ref.capacity);
      new_counts.resize(new_offset + ref.capacity);
      ref.offset = new_offset;
    }
    ids_ = std::move(new_ids);
    counts_ = std::move(new_counts);
    abandoned_ = 0;
  }

  std::vector<NodeId> ids_;
  std::vector<std::uint32_t> counts_;
  std::vector<detail::RowRef> refs_;
  std::size_t abandoned_ = 0;
};

}  // namespace minim::graph
