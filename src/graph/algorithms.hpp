#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

/// \file algorithms.hpp
/// \brief Graph traversals and orderings used by the recoding strategies.
///
/// The protocols reason about *hop* neighborhoods on the communication graph,
/// i.e. the undirected view of the digraph (u and v are 1 hop apart if either
/// u->v or v->u).  CP's vicinity is the 2-hop ball; Theorem 4.1.10 talks
/// about joins >= 5 hops apart; BBB-style coloring heuristics need
/// degeneracy (smallest-last) orderings.

namespace minim::graph {

/// Nodes at undirected hop distance in [1, k] from `start` (excludes start).
/// Returned ascending by id.
std::vector<NodeId> k_hop_ball(const Digraph& g, NodeId start, std::size_t k);

/// Undirected hop distance from `a` to `b`; SIZE_MAX when unreachable.
std::size_t hop_distance(const Digraph& g, NodeId a, NodeId b);

/// Connected components of the undirected view; `component[v]` is a dense
/// component index, kInvalidNode-slots of dead ids hold `SIZE_MAX`.
/// Returns the number of components.
std::size_t connected_components(const Digraph& g, std::vector<std::size_t>& component);

/// Maximum of in-degree and out-degree over all nodes (the paper's `k`).
std::size_t max_degree(const Digraph& g);

/// Undirected adjacency built once for coloring; `adj[v]` ascending, only
/// live nodes populated.
std::vector<std::vector<NodeId>> undirected_adjacency(const Digraph& g);

/// Smallest-last (degeneracy) ordering of an undirected adjacency structure
/// over the given `vertices`.  Returns vertices in the order they should be
/// *colored* (reverse of elimination), which is the classic degeneracy-greedy
/// coloring order.  `adj` is indexed by node id; ids absent from `vertices`
/// are ignored.
std::vector<NodeId> smallest_last_order(const std::vector<std::vector<NodeId>>& adj,
                                        const std::vector<NodeId>& vertices);

}  // namespace minim::graph
