#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

/// \file algorithms.hpp
/// \brief Graph traversals and orderings used by the recoding strategies.
///
/// The protocols reason about *hop* neighborhoods on the communication graph,
/// i.e. the undirected view of the digraph (u and v are 1 hop apart if either
/// u->v or v->u).  CP's vicinity is the 2-hop ball; Theorem 4.1.10 talks
/// about joins >= 5 hops apart; BBB-style coloring heuristics need
/// degeneracy (smallest-last) orderings.

namespace minim::graph {

/// Nodes at undirected hop distance in [1, k] from `start` (excludes start).
/// Returned ascending by id.
std::vector<NodeId> k_hop_ball(const Digraph& g, NodeId start, std::size_t k);

/// Undirected hop distance from `a` to `b`; SIZE_MAX when unreachable.
std::size_t hop_distance(const Digraph& g, NodeId a, NodeId b);

/// Connected components of the undirected view; `component[v]` is a dense
/// component index, kInvalidNode-slots of dead ids hold `SIZE_MAX`.
/// Returns the number of components.
std::size_t connected_components(const Digraph& g, std::vector<std::size_t>& component);

/// Maximum of in-degree and out-degree over all nodes (the paper's `k`).
std::size_t max_degree(const Digraph& g);

/// Undirected adjacency built once for coloring; `adj[v]` ascending, only
/// live nodes populated.
std::vector<std::vector<NodeId>> undirected_adjacency(const Digraph& g);

/// Which vertex wins when several share the minimum remaining degree during
/// smallest-last elimination.  `kStack` is the library's historical lazy
/// bucket-stack order (most-recently-pushed first) — the default everywhere;
/// the id-canonical variants exist for ablations and for soaking the
/// maintained orderer against an implementation-independent definition.
enum class DegeneracyTieBreak {
  kStack,      ///< most-recently-pushed min-degree vertex (legacy default)
  kLowestId,   ///< lowest id among minimum remaining degree
  kHighestId,  ///< highest id among minimum remaining degree
};

/// Reusable scratch for `smallest_last_eliminate`: persistent buckets and
/// id-indexed side arrays, so a per-event caller (the BBB orderer) performs
/// no allocation after warmup.
struct EliminationArena {
  std::vector<std::size_t> degree;           ///< working copy; consumed
  std::vector<char> in_set;                  ///< 1 for members of `vertices`
  std::vector<char> removed;
  std::vector<std::vector<NodeId>> buckets;  ///< capacity kept across runs
  std::vector<NodeId> out;                   ///< the coloring order
};

/// Core smallest-last elimination over any id-indexed adjacency.  Consumes
/// `arena.degree` / `arena.in_set` (the caller fills them: degree[v] =
/// |adj[v] ∩ vertices|, in_set[v] = 1 for v ∈ vertices, both indexed up to
/// every id adj may name) and writes the *coloring* order (reverse
/// elimination) into `arena.out`.  The output is a pure function of
/// (adjacency, vertices, tie) — independent of arena history — which is the
/// invariant the maintained-orderer soaks rely on.
template <typename Adj>
void smallest_last_eliminate(const Adj& adj, const std::vector<NodeId>& vertices,
                             DegeneracyTieBreak tie, EliminationArena& arena) {
  const std::size_t bound = arena.in_set.size();
  std::size_t max_deg = 0;
  for (NodeId v : vertices) max_deg = std::max(max_deg, arena.degree[v]);

  if (arena.buckets.size() < max_deg + 1) arena.buckets.resize(max_deg + 1);
  for (auto& bucket : arena.buckets) bucket.clear();
  for (NodeId v : vertices) arena.buckets[arena.degree[v]].push_back(v);

  arena.removed.assign(bound, 0);
  std::vector<NodeId>& elimination = arena.out;
  elimination.clear();
  elimination.reserve(vertices.size());
  std::vector<std::size_t>& degree = arena.degree;
  std::vector<char>& in_set = arena.in_set;
  std::vector<char>& removed = arena.removed;
  auto& buckets = arena.buckets;

  std::size_t cursor = 0;
  while (elimination.size() < vertices.size()) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    NodeId v;
    if (tie == DegeneracyTieBreak::kStack) {
      // Entries may be stale (degree since decreased); skip them lazily.
      v = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (removed[v] || degree[v] != cursor) {
        if (!removed[v] && degree[v] < cursor) buckets[degree[v]].push_back(v);
        if (cursor > 0 && !buckets[cursor - 1].empty()) --cursor;
        continue;
      }
    } else {
      // Id-canonical: purge stale entries, then take the extreme id.  A
      // purged entry with a lower current degree is re-filed.
      auto& bucket = buckets[cursor];
      std::size_t keep = 0;
      NodeId best = kInvalidNode;
      for (NodeId w : bucket) {
        if (removed[w] || degree[w] != cursor) {
          if (!removed[w] && degree[w] < cursor) buckets[degree[w]].push_back(w);
          continue;
        }
        bucket[keep++] = w;
        const bool wins = best == kInvalidNode ||
                          (tie == DegeneracyTieBreak::kLowestId ? w < best
                                                                : w > best);
        if (wins) best = w;
      }
      bucket.resize(keep);
      if (best == kInvalidNode) {
        if (cursor > 0) --cursor;
        continue;
      }
      bucket.erase(std::find(bucket.begin(), bucket.end(), best));
      v = best;
    }
    removed[v] = 1;
    elimination.push_back(v);
    for (NodeId w : adj[v]) {
      if (w >= bound || !in_set[w] || removed[w]) continue;
      buckets[--degree[w]].push_back(w);
    }
    if (cursor > 0) --cursor;
  }
  std::reverse(elimination.begin(), elimination.end());
}

/// Smallest-last (degeneracy) ordering of an undirected adjacency structure
/// over the given `vertices`.  Returns vertices in the order they should be
/// *colored* (reverse of elimination), which is the classic degeneracy-greedy
/// coloring order.  `adj[v]` is any id-indexed neighbor range — a
/// `vector<vector<NodeId>>` or a view over `net::ConflictGraph` rows — and
/// ids absent from `vertices` are ignored.  The from-scratch reference the
/// maintained orderer (`strategies::DegeneracyOrderer`) is soaked against.
template <typename Adj>
std::vector<NodeId> smallest_last_order(
    const Adj& adj, const std::vector<NodeId>& vertices,
    DegeneracyTieBreak tie = DegeneracyTieBreak::kStack) {
  std::size_t bound = 0;
  for (NodeId v : vertices) bound = std::max<std::size_t>(bound, v + 1);

  EliminationArena arena;
  arena.in_set.assign(bound, 0);
  for (NodeId v : vertices) arena.in_set[v] = 1;
  arena.degree.assign(bound, 0);
  for (NodeId v : vertices) {
    std::size_t d = 0;
    for (NodeId w : adj[v])
      if (w < bound && arena.in_set[w]) ++d;
    arena.degree[v] = d;
  }
  smallest_last_eliminate(adj, vertices, tie, arena);
  return std::move(arena.out);
}

}  // namespace minim::graph
