#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

/// \file algorithms.hpp
/// \brief Graph traversals and orderings used by the recoding strategies.
///
/// The protocols reason about *hop* neighborhoods on the communication graph,
/// i.e. the undirected view of the digraph (u and v are 1 hop apart if either
/// u->v or v->u).  CP's vicinity is the 2-hop ball; Theorem 4.1.10 talks
/// about joins >= 5 hops apart; BBB-style coloring heuristics need
/// degeneracy (smallest-last) orderings.

namespace minim::graph {

/// Nodes at undirected hop distance in [1, k] from `start` (excludes start).
/// Returned ascending by id.
std::vector<NodeId> k_hop_ball(const Digraph& g, NodeId start, std::size_t k);

/// Undirected hop distance from `a` to `b`; SIZE_MAX when unreachable.
std::size_t hop_distance(const Digraph& g, NodeId a, NodeId b);

/// Connected components of the undirected view; `component[v]` is a dense
/// component index, kInvalidNode-slots of dead ids hold `SIZE_MAX`.
/// Returns the number of components.
std::size_t connected_components(const Digraph& g, std::vector<std::size_t>& component);

/// Maximum of in-degree and out-degree over all nodes (the paper's `k`).
std::size_t max_degree(const Digraph& g);

/// Undirected adjacency built once for coloring; `adj[v]` ascending, only
/// live nodes populated.
std::vector<std::vector<NodeId>> undirected_adjacency(const Digraph& g);

/// Smallest-last (degeneracy) ordering of an undirected adjacency structure
/// over the given `vertices`.  Returns vertices in the order they should be
/// *colored* (reverse of elimination), which is the classic degeneracy-greedy
/// coloring order.  `adj[v]` is any id-indexed neighbor range — a
/// `vector<vector<NodeId>>` or a view over `net::ConflictGraph` rows — and
/// ids absent from `vertices` are ignored.
template <typename Adj>
std::vector<NodeId> smallest_last_order(const Adj& adj,
                                        const std::vector<NodeId>& vertices) {
  // Bucketed smallest-last elimination: repeatedly remove a vertex of
  // minimum remaining degree; coloring order is the reverse removal order.
  std::size_t bound = 0;
  for (NodeId v : vertices) bound = std::max<std::size_t>(bound, v + 1);

  std::vector<char> in_set(bound, 0);
  for (NodeId v : vertices) in_set[v] = 1;

  std::vector<std::size_t> degree(bound, 0);
  std::size_t max_deg = 0;
  for (NodeId v : vertices) {
    std::size_t d = 0;
    for (NodeId w : adj[v])
      if (w < bound && in_set[w]) ++d;
    degree[v] = d;
    max_deg = std::max(max_deg, d);
  }

  std::vector<std::vector<NodeId>> buckets(max_deg + 1);
  for (NodeId v : vertices) buckets[degree[v]].push_back(v);

  std::vector<char> removed(bound, 0);
  std::vector<NodeId> elimination;
  elimination.reserve(vertices.size());
  std::size_t cursor = 0;
  while (elimination.size() < vertices.size()) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    // Entries may be stale (degree since decreased); skip them.
    NodeId v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[v] || degree[v] != cursor) {
      if (!removed[v] && degree[v] < cursor) buckets[degree[v]].push_back(v);
      if (cursor > 0 && !buckets[cursor - 1].empty()) --cursor;
      continue;
    }
    removed[v] = 1;
    elimination.push_back(v);
    for (NodeId w : adj[v]) {
      if (w >= bound || !in_set[w] || removed[w]) continue;
      buckets[--degree[w]].push_back(w);
    }
    if (cursor > 0) --cursor;
  }
  std::reverse(elimination.begin(), elimination.end());
  return elimination;
}

}  // namespace minim::graph
