#include "graph/algorithms.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/require.hpp"

namespace minim::graph {

namespace {

/// Visits undirected neighbors (out ∪ in) of `v`.
template <typename Fn>
void for_each_undirected_neighbor(const Digraph& g, NodeId v, Fn&& fn) {
  const auto& outs = g.out_neighbors(v);
  const auto& ins = g.in_neighbors(v);
  // Merge two sorted lists, deduplicating.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < outs.size() || j < ins.size()) {
    NodeId next;
    if (j >= ins.size() || (i < outs.size() && outs[i] <= ins[j])) {
      next = outs[i];
      if (j < ins.size() && ins[j] == next) ++j;
      ++i;
    } else {
      next = ins[j];
      ++j;
    }
    fn(next);
  }
}

}  // namespace

std::vector<NodeId> k_hop_ball(const Digraph& g, NodeId start, std::size_t k) {
  MINIM_REQUIRE(g.contains(start), "k_hop_ball: unknown start");
  std::vector<std::size_t> dist(g.id_bound(), std::numeric_limits<std::size_t>::max());
  dist[start] = 0;
  std::queue<NodeId> frontier;
  frontier.push(start);
  std::vector<NodeId> ball;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    if (dist[v] == k) continue;
    for_each_undirected_neighbor(g, v, [&](NodeId w) {
      if (dist[w] != std::numeric_limits<std::size_t>::max()) return;
      dist[w] = dist[v] + 1;
      ball.push_back(w);
      frontier.push(w);
    });
  }
  std::sort(ball.begin(), ball.end());
  return ball;
}

std::size_t hop_distance(const Digraph& g, NodeId a, NodeId b) {
  MINIM_REQUIRE(g.contains(a) && g.contains(b), "hop_distance: unknown node");
  if (a == b) return 0;
  std::vector<std::size_t> dist(g.id_bound(), std::numeric_limits<std::size_t>::max());
  dist[a] = 0;
  std::queue<NodeId> frontier;
  frontier.push(a);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    std::size_t found = std::numeric_limits<std::size_t>::max();
    for_each_undirected_neighbor(g, v, [&](NodeId w) {
      if (dist[w] != std::numeric_limits<std::size_t>::max()) return;
      dist[w] = dist[v] + 1;
      if (w == b) found = dist[w];
      frontier.push(w);
    });
    if (found != std::numeric_limits<std::size_t>::max()) return found;
  }
  return std::numeric_limits<std::size_t>::max();
}

std::size_t connected_components(const Digraph& g, std::vector<std::size_t>& component) {
  component.assign(g.id_bound(), std::numeric_limits<std::size_t>::max());
  std::size_t count = 0;
  for (NodeId root : g.nodes()) {
    if (component[root] != std::numeric_limits<std::size_t>::max()) continue;
    const std::size_t id = count++;
    std::queue<NodeId> frontier;
    component[root] = id;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for_each_undirected_neighbor(g, v, [&](NodeId w) {
        if (component[w] != std::numeric_limits<std::size_t>::max()) return;
        component[w] = id;
        frontier.push(w);
      });
    }
  }
  return count;
}

std::size_t max_degree(const Digraph& g) {
  std::size_t k = 0;
  for (NodeId v : g.nodes())
    k = std::max({k, g.out_degree(v), g.in_degree(v)});
  return k;
}

std::vector<std::vector<NodeId>> undirected_adjacency(const Digraph& g) {
  std::vector<std::vector<NodeId>> adj(g.id_bound());
  for (NodeId v : g.nodes()) {
    auto& row = adj[v];
    for_each_undirected_neighbor(g, v, [&row](NodeId w) { row.push_back(w); });
  }
  return adj;
}

}  // namespace minim::graph
