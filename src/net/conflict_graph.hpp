#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/row_pool.hpp"

/// \file conflict_graph.hpp
/// \brief Cached two-hop interference adjacency (CA1 ∪ CA2) with per-pair
/// multiplicity counts, maintained incrementally from digraph edge deltas.
///
/// The TOCA conflict graph is the central object of every strategy: u and v
/// conflict iff u→v, v→u (CA1), or they share an out-neighbor (CA2).  The
/// naive enumeration (`merge in/out lists, union co-senders of every
/// out-neighbor`) costs O(deg²) per node and was recomputed per *event* by
/// the global strategies — the dominant term in every wall-clock profile.
///
/// This cache keeps, for every node, the sorted list of its conflict
/// partners together with a *multiplicity* per pair:
///
///     count(u, v) = [u→v] + [v→u] + |out(u) ∩ out(v)|
///
/// i.e. the number of distinct CA1/CA2 witnesses forbidding the pair the
/// same color.  Counting witnesses makes edge deltas compose: adding the
/// directed edge u→v contributes exactly one witness to (u, v) and one to
/// (u, w) for every other sender w ∈ in(v); removing it retracts the same
/// witnesses.  A pair conflicts iff its count is positive, so existence
/// transitions (0 → 1 and 1 → 0) are detected locally, with no global
/// recount.
///
/// The owner (`AdhocNetwork`) reports deltas *before* applying them to the
/// digraph; this class never mutates the digraph it reads.
///
/// ## Dirty journal
///
/// Every existence transition — a pair gaining or losing its last witness —
/// and every node add/remove appends the touched node ids to a bounded
/// journal tagged with a monotonically increasing revision.  A consumer that
/// remembers the revision it last synchronized at can ask for "every node
/// whose conflict neighborhood changed since" and recompute only those
/// (dirty-region recoloring in `BbbStrategy`).  If the window has been
/// trimmed away — or the graph was `clear()`ed — the query fails and the
/// consumer must fall back to a full pass.
namespace minim::net {

using graph::NodeId;

class ConflictGraph {
 public:
  // ------------------------------------------------------------- queries

  /// Conflict partners of `v`, ascending by id.  Empty for dead/unknown ids.
  /// The span points into pooled storage; any conflict-graph mutation
  /// invalidates it.
  std::span<const NodeId> neighbors(NodeId v) const { return rows_.ids(v); }

  /// Number of CA1/CA2 witnesses forbidding {u, v} the same color.
  std::uint32_t multiplicity(NodeId u, NodeId v) const;

  /// True iff u and v may not share a color (count > 0).
  bool in_conflict(NodeId u, NodeId v) const { return multiplicity(u, v) > 0; }

  /// Conflict degree of `v` (number of distinct partners).
  std::size_t degree(NodeId v) const { return rows_.size(v); }

  /// Number of conflicting unordered pairs.
  std::size_t pair_count() const { return pair_count_; }

  /// Exclusive upper bound on ids with allocated rows.
  NodeId id_bound() const { return static_cast<NodeId>(rows_.row_count()); }

  /// Heap bytes held by the adjacency pools and the dirty journal.
  std::size_t memory_bytes() const {
    return rows_.memory_bytes() + journal_.capacity() * sizeof(NodeId);
  }

  // ------------------------------------------------------------- journal

  ConflictGraph();

  /// Process-unique identity of this instance.  Consumers that cache state
  /// keyed to a conflict graph (the degeneracy orderer's degree mirror)
  /// must key on the nonce, not the address: a new graph allocated where a
  /// destroyed one lived would otherwise silently serve them stale state.
  std::uint64_t nonce() const { return nonce_; }

  /// Monotonically increasing change counter; bumps on every journaled
  /// dirty mark (never resets, not even on `clear()`).
  std::uint64_t revision() const { return revision_; }

  /// Appends to `out` the ids journaled in revisions (since, revision()].
  /// Ids repeat and may reference since-removed nodes; callers dedupe and
  /// filter liveness.  Returns false when that window is no longer covered
  /// (journal trimmed, or the graph was cleared) — the caller must then
  /// treat every node as dirty.
  bool append_dirty_since(std::uint64_t since, std::vector<NodeId>& out) const;

  /// Zero-copy variant: points `out` at the journal entries of revisions
  /// (since, revision()] without materializing them.  Same failure contract
  /// as `append_dirty_since`.  The span is invalidated by any mutation —
  /// per-event consumers (the rank-maintained orderer, BBB's bounded
  /// propagation) read it once per event before touching the graph.
  bool dirty_window_since(std::uint64_t since, std::span<const NodeId>& out) const;

  // ----------------------------------------- delta protocol (AdhocNetwork)

  /// Ensures a row for `v` and journals it dirty (a joiner with no edges
  /// still needs a color).
  void on_node_added(NodeId v);

  /// Journals the removal.  Requires every incident digraph edge to have
  /// been retracted through on_edge_removed first (the row must be empty).
  void on_node_removed(NodeId v);

  /// Accounts the witnesses of the new edge u→v.  Must be called *before*
  /// `g.add_edge(u, v)` (so `g.in_neighbors(v)` lists only the other
  /// senders); requires the edge to be absent from `g`.
  void on_edge_added(const graph::Digraph& g, NodeId u, NodeId v);

  /// Retracts the witnesses of edge u→v.  Must be called *before*
  /// `g.remove_edge(u, v)`.
  void on_edge_removed(const graph::Digraph& g, NodeId u, NodeId v);

  /// Batched `on_edge_added` for a fan of edges u→v, v ∈ `targets`
  /// (ascending, deduped, each absent from `g`; must be called before any
  /// of them is applied).  Witness-equivalent to calling `on_edge_added`
  /// per target in order — a fan of u's own out-edges never changes the
  /// partner set of its later edges, so pre-state collection is exact — but
  /// the combined partner multiset merges into row u *once* for the whole
  /// fan instead of once per edge.  A join's k edges thus cost one sorted
  /// merge of u's row, not k.
  void on_out_edges_added(const graph::Digraph& g, NodeId u,
                          std::span<const NodeId> targets);

  /// Batched `on_edge_removed` for edges u→v, v ∈ `targets` (ascending,
  /// deduped, each present in `g`; call before removing any of them).
  void on_out_edges_removed(const graph::Digraph& g, NodeId u,
                            std::span<const NodeId> targets);

  /// Drops all adjacency, keeping row capacity (arena reuse).  Invalidates
  /// every outstanding journal window.
  void clear();

  // ------------------------------------------------------------- oracles

  /// Builds the conflict graph of `g` from scratch by direct enumeration —
  /// an implementation independent of the delta protocol, used as the test
  /// oracle and to measure full-rebuild cost in the microbenchmarks.
  static ConflictGraph build_from(const graph::Digraph& g);

 private:
  /// Adds one witness to the unordered pair {u, v} (both directions).
  void add_witness(NodeId u, NodeId v);
  /// Retracts one witness from {u, v}.
  void retract_witness(NodeId u, NodeId v);
  /// One direction of add_witness; returns true when the pair went 0 → 1.
  bool bump_row(NodeId u, NodeId v);
  /// One direction of retract_witness; returns true when the pair went 1 → 0.
  bool drop_row(NodeId u, NodeId v);
  void mark_dirty(NodeId v);

  /// Fills `partner_scratch_` with the sorted witness partners of edge
  /// u→v in `g` ({v} ∪ in(v) \ {u}; the edge must not be applied yet).
  void collect_edge_partners(const graph::Digraph& g, NodeId u, NodeId v);
  /// Appends the witness partners of edge u→v to `partner_scratch_`
  /// without clearing it (batch collection; the result is re-sorted and
  /// aggregated by `aggregate_partner_multiset`).
  void append_edge_partners(const graph::Digraph& g, NodeId u, NodeId v);
  /// Sorts `partner_scratch_` and aggregates duplicates into parallel
  /// (`partner_scratch_`, `partner_delta_`) arrays: unique ascending ids
  /// with per-id witness multiplicities.  A partner can witness several of
  /// a fan's edges (a co-sender to two targets), so deltas exceed 1.
  void aggregate_partner_multiset();
  /// Adds (delta=+1) or retracts (delta=-1) `partner_delta_[i]` witnesses
  /// for every pair (u, partner_scratch_[i]), as a single merge over row u
  /// plus one reciprocal touch per partner — equivalent to the same
  /// witnesses applied through add_witness/retract_witness one at a time,
  /// minus their repeated row-u searches and re-merges.
  void apply_partner_witnesses(NodeId u, int delta);

  std::uint64_t nonce_;  ///< process-unique; see nonce()
  /// Sorted pooled rows; the parallel count of `ids(v)[i]` is the witness
  /// multiplicity of the pair.
  graph::CountedRowPool rows_;
  // Edge-delta scratch (see apply_partner_witnesses).
  std::vector<NodeId> partner_scratch_;
  /// Parallel to partner_scratch_: witnesses per partner.  Left empty by
  /// the single-edge path, meaning "one witness each" — the per-event hot
  /// path pays no batch bookkeeping.
  std::vector<std::uint32_t> partner_delta_;
  std::vector<NodeId> merged_ids_;
  std::vector<std::uint32_t> merged_counts_;
  std::vector<char> partner_new_;  ///< parallel to partner_scratch_: 0 ↔ 1 transition
  /// The revision of `journal_[i]` is `journal_base_ + i` — the counter
  /// bumps exactly once per entry, so entries store only the node id.
  std::vector<NodeId> journal_;
  std::uint64_t journal_base_ = 1;  ///< revision of journal_[0]
  std::uint64_t revision_ = 0;
  /// Highest revision whose entry has been discarded; a `since` below this
  /// is no longer answerable.
  std::uint64_t trimmed_revision_ = 0;
  std::size_t pair_count_ = 0;
};

}  // namespace minim::net
