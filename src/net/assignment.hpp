#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

/// \file assignment.hpp
/// \brief The TOCA code assignment: one positive-integer code per node.
///
/// Codes and colors are the same thing throughout the paper; we follow its
/// convention that codes are positive integers, reserving 0 for "uncolored"
/// (a node that just joined and has not completed RecodeOnJoin yet).

namespace minim::net {

using Color = std::uint32_t;

/// "No code assigned" sentinel.
inline constexpr Color kNoColor = 0;

/// Dense node-id-indexed color map.
class CodeAssignment {
 public:
  /// Color of `v`; kNoColor when never assigned.
  Color color(graph::NodeId v) const {
    return v < colors_.size() ? colors_[v] : kNoColor;
  }

  bool has_color(graph::NodeId v) const { return color(v) != kNoColor; }

  /// Assigns `c` (must be a real color) to `v`.
  void set_color(graph::NodeId v, Color c);

  /// Clears v's color (used when a node leaves).
  void clear(graph::NodeId v);

  /// Clears every color, keeping the dense map's capacity (arena reuse).
  void clear_all();

  /// Maximum color over `nodes`; kNoColor when none are colored.
  Color max_color(const std::vector<graph::NodeId>& nodes) const;

  /// Number of distinct colors used over `nodes`.
  std::size_t distinct_colors(const std::vector<graph::NodeId>& nodes) const;

 private:
  std::vector<Color> colors_;
};

}  // namespace minim::net
