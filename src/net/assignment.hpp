#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

/// \file assignment.hpp
/// \brief The TOCA code assignment: one positive-integer code per node.
///
/// Codes and colors are the same thing throughout the paper; we follow its
/// convention that codes are positive integers, reserving 0 for "uncolored"
/// (a node that just joined and has not completed RecodeOnJoin yet).

namespace minim::net {

using Color = std::uint32_t;

/// "No code assigned" sentinel.
inline constexpr Color kNoColor = 0;

/// Dense node-id-indexed color map, with a color-population histogram so the
/// network-wide maximum is O(1) — the per-event report fills `max_color_after`
/// for every strategy at every event, which at 10⁵⁺ nodes must not scan.
class CodeAssignment {
 public:
  /// Color of `v`; kNoColor when never assigned.
  Color color(graph::NodeId v) const {
    return v < colors_.size() ? colors_[v] : kNoColor;
  }

  bool has_color(graph::NodeId v) const { return color(v) != kNoColor; }

  /// Assigns `c` (must be a real color) to `v`.
  void set_color(graph::NodeId v, Color c);

  /// Clears v's color (used when a node leaves).
  void clear(graph::NodeId v);

  /// Clears every color, keeping the dense map's capacity (arena reuse).
  void clear_all();

  /// Maximum color currently assigned to any node; kNoColor when none.
  /// Nodes must be cleared when they leave (the engine does), so this equals
  /// `max_color(live nodes)` at all times, in O(1) amortized.
  Color max_color() const;

  /// Maximum color over `nodes`; kNoColor when none are colored.
  Color max_color(const std::vector<graph::NodeId>& nodes) const;

  /// Number of distinct colors used over `nodes`.
  std::size_t distinct_colors(const std::vector<graph::NodeId>& nodes) const;

 private:
  std::vector<Color> colors_;
  std::vector<std::uint32_t> population_;  ///< nodes per color, indexed by color
  mutable Color max_bound_ = kNoColor;     ///< lazily-lowered histogram cursor
};

}  // namespace minim::net
