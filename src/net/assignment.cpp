#include "net/assignment.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace minim::net {

void CodeAssignment::set_color(graph::NodeId v, Color c) {
  MINIM_REQUIRE(c != kNoColor, "set_color: colors are positive integers");
  if (v >= colors_.size()) colors_.resize(v + 1, kNoColor);
  colors_[v] = c;
}

void CodeAssignment::clear(graph::NodeId v) {
  if (v < colors_.size()) colors_[v] = kNoColor;
}

void CodeAssignment::clear_all() {
  std::fill(colors_.begin(), colors_.end(), kNoColor);
}

Color CodeAssignment::max_color(const std::vector<graph::NodeId>& nodes) const {
  Color best = kNoColor;
  for (graph::NodeId v : nodes) best = std::max(best, color(v));
  return best;
}

std::size_t CodeAssignment::distinct_colors(const std::vector<graph::NodeId>& nodes) const {
  std::vector<Color> used;
  used.reserve(nodes.size());
  for (graph::NodeId v : nodes)
    if (has_color(v)) used.push_back(color(v));
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used.size();
}

}  // namespace minim::net
