#include "net/assignment.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace minim::net {

void CodeAssignment::set_color(graph::NodeId v, Color c) {
  MINIM_REQUIRE(c != kNoColor, "set_color: colors are positive integers");
  if (v >= colors_.size()) colors_.resize(v + 1, kNoColor);
  const Color old = colors_[v];
  if (old == c) return;
  if (old != kNoColor) --population_[old];
  colors_[v] = c;
  if (c >= population_.size()) population_.resize(c + 1, 0);
  ++population_[c];
  max_bound_ = std::max(max_bound_, c);
}

void CodeAssignment::clear(graph::NodeId v) {
  if (v >= colors_.size()) return;
  const Color old = colors_[v];
  if (old != kNoColor) {
    --population_[old];
    colors_[v] = kNoColor;
  }
}

void CodeAssignment::clear_all() {
  std::fill(colors_.begin(), colors_.end(), kNoColor);
  std::fill(population_.begin(), population_.end(), 0);
  max_bound_ = kNoColor;
}

Color CodeAssignment::max_color() const {
  // The cursor only rises in set_color; stale zero-population levels are
  // skipped here, amortized O(1) against the assignments that raised it.
  while (max_bound_ != kNoColor && population_[max_bound_] == 0) --max_bound_;
  return max_bound_;
}

Color CodeAssignment::max_color(const std::vector<graph::NodeId>& nodes) const {
  Color best = kNoColor;
  for (graph::NodeId v : nodes) best = std::max(best, color(v));
  return best;
}

std::size_t CodeAssignment::distinct_colors(const std::vector<graph::NodeId>& nodes) const {
  std::vector<Color> used;
  used.reserve(nodes.size());
  for (graph::NodeId v : nodes)
    if (has_color(v)) used.push_back(color(v));
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used.size();
}

}  // namespace minim::net
