#include "net/constraints.hpp"

#include <algorithm>
#include <sstream>

namespace minim::net {

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "nodes " << a << " and " << b << " share color " << color << " ("
     << (kind == ConflictKind::kPrimary ? "CA1 primary" : "CA2 hidden") << ")";
  return os.str();
}

bool in_conflict(const AdhocNetwork& net, NodeId u, NodeId v) {
  const auto& g = net.graph();
  if (g.has_edge(u, v) || g.has_edge(v, u)) return true;
  // Common out-neighbor: intersect the two sorted out-lists.
  const auto& a = g.out_neighbors(u);
  const auto& b = g.out_neighbors(v);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) ++i;
    else ++j;
  }
  return false;
}

std::vector<NodeId> conflict_partners(const AdhocNetwork& net, NodeId u) {
  const auto& g = net.graph();
  std::vector<NodeId> partners;
  const auto& outs = g.out_neighbors(u);
  const auto& ins = g.in_neighbors(u);
  partners.insert(partners.end(), outs.begin(), outs.end());
  partners.insert(partners.end(), ins.begin(), ins.end());
  for (NodeId k : outs) {
    const auto& co_senders = g.in_neighbors(k);
    partners.insert(partners.end(), co_senders.begin(), co_senders.end());
  }
  std::sort(partners.begin(), partners.end());
  partners.erase(std::unique(partners.begin(), partners.end()), partners.end());
  const auto self = std::lower_bound(partners.begin(), partners.end(), u);
  if (self != partners.end() && *self == u) partners.erase(self);
  return partners;
}

std::vector<Violation> find_violations(const AdhocNetwork& net,
                                       const CodeAssignment& assignment) {
  const auto& g = net.graph();
  std::vector<Violation> out;
  // Collect violating unordered pairs; CA1 scanned first so that a pair that
  // violates both constraints is reported as primary.
  std::vector<std::pair<NodeId, NodeId>> seen;
  auto already = [&seen](NodeId a, NodeId b) {
    return std::find(seen.begin(), seen.end(), std::make_pair(a, b)) != seen.end();
  };
  auto report = [&](NodeId x, NodeId y, ConflictKind kind) {
    const NodeId a = std::min(x, y);
    const NodeId b = std::max(x, y);
    if (already(a, b)) return;
    seen.emplace_back(a, b);
    out.push_back(Violation{a, b, kind, assignment.color(a)});
  };

  for (NodeId u : g.nodes()) {
    const Color cu = assignment.color(u);
    if (cu == kNoColor) continue;
    for (NodeId v : g.out_neighbors(u))
      if (assignment.color(v) == cu) report(u, v, ConflictKind::kPrimary);
  }
  for (NodeId k : g.nodes()) {
    const auto& senders = g.in_neighbors(k);
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const Color ci = assignment.color(senders[i]);
      if (ci == kNoColor) continue;
      for (std::size_t j = i + 1; j < senders.size(); ++j)
        if (assignment.color(senders[j]) == ci)
          report(senders[i], senders[j], ConflictKind::kHidden);
    }
  }
  return out;
}

bool all_colored(const AdhocNetwork& net, const CodeAssignment& assignment) {
  for (NodeId v : net.nodes())
    if (!assignment.has_color(v)) return false;
  return true;
}

bool is_valid(const AdhocNetwork& net, const CodeAssignment& assignment) {
  return all_colored(net, assignment) && find_violations(net, assignment).empty();
}

std::vector<Color> forbidden_colors(const AdhocNetwork& net,
                                    const CodeAssignment& assignment, NodeId u,
                                    const std::function<bool(NodeId)>& ignore) {
  std::vector<Color> forbidden;
  for (NodeId v : conflict_partners(net, u)) {
    if (ignore && ignore(v)) continue;
    const Color c = assignment.color(v);
    if (c != kNoColor) forbidden.push_back(c);
  }
  std::sort(forbidden.begin(), forbidden.end());
  forbidden.erase(std::unique(forbidden.begin(), forbidden.end()), forbidden.end());
  return forbidden;
}

Color lowest_free_color(const std::vector<Color>& forbidden) {
  Color candidate = 1;
  for (Color c : forbidden) {
    if (c > candidate) break;      // gap found below c
    if (c == candidate) ++candidate;
  }
  return candidate;
}

}  // namespace minim::net
