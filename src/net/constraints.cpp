#include "net/constraints.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace minim::net {

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "nodes " << a << " and " << b << " share color " << color << " ("
     << (kind == ConflictKind::kPrimary ? "CA1 primary" : "CA2 hidden") << ")";
  return os.str();
}

bool in_conflict(const AdhocNetwork& net, NodeId u, NodeId v) {
  return net.conflict_graph().in_conflict(u, v);
}

void conflict_partners(const AdhocNetwork& net, NodeId u, std::vector<NodeId>& out) {
  const auto partners = net.conflict_graph().neighbors(u);
  out.assign(partners.begin(), partners.end());
}

std::vector<NodeId> conflict_partners(const AdhocNetwork& net, NodeId u) {
  std::vector<NodeId> partners;
  conflict_partners(net, u, partners);
  return partners;
}

std::vector<Violation> find_violations(const AdhocNetwork& net,
                                       const CodeAssignment& assignment) {
  // Deliberately scans the raw digraph instead of the cached conflict
  // graph: the validator stays an oracle that is independent of the
  // incremental cache it would otherwise have to trust.
  const auto& g = net.graph();
  std::vector<Violation> out;
  // Collect violating unordered pairs; CA1 scanned first so that a pair that
  // violates both constraints is reported as primary.  The dedup set is
  // keyed on (min, max) with logarithmic lookup, so validation stays
  // near-linear even when violations are dense (the broken-strategy soaks).
  std::set<std::pair<NodeId, NodeId>> seen;
  auto report = [&](NodeId x, NodeId y, ConflictKind kind) {
    const NodeId a = std::min(x, y);
    const NodeId b = std::max(x, y);
    if (!seen.emplace(a, b).second) return;
    out.push_back(Violation{a, b, kind, assignment.color(a)});
  };

  for (NodeId u : g.nodes()) {
    const Color cu = assignment.color(u);
    if (cu == kNoColor) continue;
    for (NodeId v : g.out_neighbors(u))
      if (assignment.color(v) == cu) report(u, v, ConflictKind::kPrimary);
  }
  for (NodeId k : g.nodes()) {
    const auto& senders = g.in_neighbors(k);
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const Color ci = assignment.color(senders[i]);
      if (ci == kNoColor) continue;
      for (std::size_t j = i + 1; j < senders.size(); ++j)
        if (assignment.color(senders[j]) == ci)
          report(senders[i], senders[j], ConflictKind::kHidden);
    }
  }
  return out;
}

bool all_colored(const AdhocNetwork& net, const CodeAssignment& assignment) {
  for (NodeId v : net.nodes())
    if (!assignment.has_color(v)) return false;
  return true;
}

bool is_valid(const AdhocNetwork& net, const CodeAssignment& assignment) {
  return all_colored(net, assignment) && find_violations(net, assignment).empty();
}

void forbidden_colors(const AdhocNetwork& net, const CodeAssignment& assignment,
                      NodeId u, std::vector<Color>& out,
                      const std::function<bool(NodeId)>& ignore) {
  out.clear();
  for (NodeId v : net.conflict_graph().neighbors(u)) {
    if (ignore && ignore(v)) continue;
    const Color c = assignment.color(v);
    if (c != kNoColor) out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<Color> forbidden_colors(const AdhocNetwork& net,
                                    const CodeAssignment& assignment, NodeId u,
                                    const std::function<bool(NodeId)>& ignore) {
  std::vector<Color> forbidden;
  forbidden_colors(net, assignment, u, forbidden, ignore);
  return forbidden;
}

Color lowest_free_color(const std::vector<Color>& forbidden) {
  Color candidate = 1;
  for (Color c : forbidden) {
    if (c > candidate) break;      // gap found below c
    if (c == candidate) ++candidate;
  }
  return candidate;
}

}  // namespace minim::net
