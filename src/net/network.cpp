#include "net/network.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace minim::net {

AdhocNetwork::AdhocNetwork(double width, double height, double grid_cell,
                           std::shared_ptr<const PropagationModel> propagation)
    : width_(width),
      height_(height),
      propagation_(propagation ? std::move(propagation) : free_space_propagation()),
      grid_(width, height, grid_cell) {}

const NodeConfig& AdhocNetwork::config(NodeId v) const {
  MINIM_REQUIRE(contains(v), "config: unknown node");
  return configs_[v];
}

double AdhocNetwork::max_range() const {
  return ranges_sorted_.empty() ? 0.0 : ranges_sorted_.back();
}

NodeId AdhocNetwork::add_node(const NodeConfig& config) {
  MINIM_REQUIRE(config.range >= 0.0, "node range must be non-negative");
  const NodeId id = graph_.add_node();
  if (id >= configs_.size()) configs_.resize(id + 1);
  configs_[id] = config;
  configs_[id].position = util::clamp_to_box(config.position, width_, height_);
  grid_.insert(id, configs_[id].position);
  ranges_sorted_.insert(
      std::lower_bound(ranges_sorted_.begin(), ranges_sorted_.end(), config.range),
      config.range);
  refresh_out_edges(id);
  refresh_in_edges(id);
  return id;
}

void AdhocNetwork::remove_node(NodeId v) {
  MINIM_REQUIRE(contains(v), "remove_node: unknown node");
  grid_.remove(v, configs_[v].position);
  const auto it = std::lower_bound(ranges_sorted_.begin(), ranges_sorted_.end(),
                                   configs_[v].range);
  ranges_sorted_.erase(it);
  graph_.remove_node(v);
}

void AdhocNetwork::set_position(NodeId v, util::Vec2 position) {
  MINIM_REQUIRE(contains(v), "set_position: unknown node");
  const util::Vec2 clamped = util::clamp_to_box(position, width_, height_);
  grid_.move(v, configs_[v].position, clamped);
  configs_[v].position = clamped;
  refresh_out_edges(v);
  refresh_in_edges(v);
}

void AdhocNetwork::set_range(NodeId v, double range) {
  MINIM_REQUIRE(contains(v), "set_range: unknown node");
  MINIM_REQUIRE(range >= 0.0, "node range must be non-negative");
  const auto it = std::lower_bound(ranges_sorted_.begin(), ranges_sorted_.end(),
                                   configs_[v].range);
  ranges_sorted_.erase(it);
  ranges_sorted_.insert(
      std::lower_bound(ranges_sorted_.begin(), ranges_sorted_.end(), range), range);
  configs_[v].range = range;
  refresh_out_edges(v);  // only v's own reach changes
}

void AdhocNetwork::refresh_out_edges(NodeId v) {
  // Drop stale out-edges, then re-add everything inside the disc.
  const std::vector<NodeId> old_out = graph_.out_neighbors(v);  // copy
  for (NodeId w : old_out) graph_.remove_edge(v, w);

  const NodeConfig& cv = configs_[v];
  scratch_.clear();
  grid_.query_disc(cv.position, cv.range, scratch_);
  for (NodeId w : scratch_) {
    if (w == v) continue;
    if (propagation_->reaches(cv.position, cv.range, configs_[w].position))
      graph_.add_edge(v, w);
  }
}

void AdhocNetwork::refresh_in_edges(NodeId v) {
  const std::vector<NodeId> old_in = graph_.in_neighbors(v);  // copy
  for (NodeId w : old_in) graph_.remove_edge(w, v);

  const util::Vec2 p = configs_[v].position;
  scratch_.clear();
  grid_.query_disc(p, max_range(), scratch_);
  for (NodeId w : scratch_) {
    if (w == v) continue;
    const NodeConfig& cw = configs_[w];
    if (propagation_->reaches(cw.position, cw.range, p)) graph_.add_edge(w, v);
  }
}

bool AdhocNetwork::minimally_connected(NodeId v) const {
  MINIM_REQUIRE(contains(v), "minimally_connected: unknown node");
  return graph_.out_degree(v) > 0 && graph_.in_degree(v) > 0;
}

graph::Digraph AdhocNetwork::rebuild_graph_brute_force() const {
  graph::Digraph fresh;
  const auto ids = graph_.nodes();
  // Recreate the same id space: add_node() reuses lowest free slots, so
  // insert in ascending id order and fill gaps with throwaway nodes.
  std::vector<NodeId> created;
  NodeId next = 0;
  for (NodeId v : ids) {
    while (next < v) {
      created.push_back(fresh.add_node());
      ++next;
    }
    fresh.add_node();
    ++next;
  }
  for (NodeId gap : created) fresh.remove_node(gap);

  for (NodeId u : ids) {
    const NodeConfig& cu = configs_[u];
    for (NodeId w : ids) {
      if (w == u) continue;
      if (propagation_->reaches(cu.position, cu.range, configs_[w].position))
        fresh.add_edge(u, w);
    }
  }
  return fresh;
}

}  // namespace minim::net
