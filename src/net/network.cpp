#include "net/network.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace minim::net {

AdhocNetwork::AdhocNetwork(double width, double height, double grid_cell,
                           std::shared_ptr<const PropagationModel> propagation)
    : width_(width),
      height_(height),
      propagation_(propagation ? std::move(propagation) : free_space_propagation()),
      grid_(width, height, grid_cell) {}

const NodeConfig& AdhocNetwork::config(NodeId v) const {
  MINIM_REQUIRE(contains(v), "config: unknown node");
  return configs_[v];
}

double AdhocNetwork::max_range() const {
  return ranges_.empty() ? 0.0 : *ranges_.rbegin();
}

NodeId AdhocNetwork::add_node(const NodeConfig& config) {
  MINIM_REQUIRE(config.range >= 0.0, "node range must be non-negative");
  const NodeId id = graph_.add_node();
  if (id >= configs_.size()) configs_.resize(id + 1);
  configs_[id] = config;
  configs_[id].position = util::clamp_to_box(config.position, width_, height_);
  grid_.insert(id, configs_[id].position);
  ranges_.insert(config.range);
  conflict_.on_node_added(id);
  refresh_out_edges(id);
  refresh_in_edges(id);
  return id;
}

void AdhocNetwork::remove_node(NodeId v) {
  MINIM_REQUIRE(contains(v), "remove_node: unknown node");
  grid_.remove(v, configs_[v].position);
  ranges_.erase(ranges_.find(configs_[v].range));
  // The out-edges all leave v's conflict row: retract them as one batched
  // fan (a single merge over the row).  The in-edges land on distinct rows,
  // so they stay per-edge.  Spans are copied first: the unlinks mutate the
  // rows they point into.
  const auto outs = graph_.out_neighbors(v);
  stale_.assign(outs.begin(), outs.end());
  unlink_fan(v, stale_);
  const auto ins = graph_.in_neighbors(v);
  stale_.assign(ins.begin(), ins.end());
  for (NodeId w : stale_) unlink(w, v);
  conflict_.on_node_removed(v);
  graph_.remove_node(v);
}

void AdhocNetwork::reset(double width, double height) {
  MINIM_REQUIRE(width > 0 && height > 0, "reset: dimensions must be positive");
  if (width != width_ || height != height_) {
    width_ = width;
    height_ = height;
    grid_ = graph::SpatialGrid(width, height, grid_.cell_size());
  } else {
    grid_.clear();
  }
  graph_.clear();
  conflict_.clear();
  ranges_.clear();
}

void AdhocNetwork::link(NodeId u, NodeId v) {
  if (graph_.has_edge(u, v)) return;
  conflict_.on_edge_added(graph_, u, v);
  graph_.add_edge(u, v);
}

void AdhocNetwork::unlink(NodeId u, NodeId v) {
  if (!graph_.has_edge(u, v)) return;
  conflict_.on_edge_removed(graph_, u, v);
  graph_.remove_edge(u, v);
}

void AdhocNetwork::link_fan(NodeId u, const std::vector<NodeId>& targets) {
  if (targets.empty()) return;
  conflict_.on_out_edges_added(graph_, u, targets);
  for (NodeId w : targets) graph_.add_edge(u, w);
}

void AdhocNetwork::unlink_fan(NodeId u, const std::vector<NodeId>& targets) {
  if (targets.empty()) return;
  conflict_.on_out_edges_removed(graph_, u, targets);
  for (NodeId w : targets) graph_.remove_edge(u, w);
}

void AdhocNetwork::set_position(NodeId v, util::Vec2 position) {
  MINIM_REQUIRE(contains(v), "set_position: unknown node");
  const util::Vec2 clamped = util::clamp_to_box(position, width_, height_);
  grid_.move(v, configs_[v].position, clamped);
  configs_[v].position = clamped;
  refresh_out_edges(v);
  refresh_in_edges(v);
}

void AdhocNetwork::set_range(NodeId v, double range) {
  MINIM_REQUIRE(contains(v), "set_range: unknown node");
  MINIM_REQUIRE(range >= 0.0, "node range must be non-negative");
  ranges_.erase(ranges_.find(configs_[v].range));
  ranges_.insert(range);
  configs_[v].range = range;
  refresh_out_edges(v);  // only v's own reach changes
}

void AdhocNetwork::refresh_out_edges(NodeId v) {
  // Desired out-neighbor set under the current config, sorted.
  const NodeConfig& cv = configs_[v];
  scratch_.clear();
  grid_.query_disc(cv.position, cv.range, scratch_);
  desired_.clear();
  for (NodeId w : scratch_) {
    if (w == v) continue;
    if (propagation_->reaches(cv.position, cv.range, configs_[w].position))
      desired_.push_back(w);
  }
  std::sort(desired_.begin(), desired_.end());

  // Diff against the live sorted set: surviving edges generate no deltas,
  // and each fan (drops, then adds) merges into v's conflict row once.
  const std::span<const NodeId> current = graph_.out_neighbors(v);
  stale_.clear();
  std::set_difference(current.begin(), current.end(), desired_.begin(),
                      desired_.end(), std::back_inserter(stale_));
  fresh_.clear();
  std::set_difference(desired_.begin(), desired_.end(), current.begin(),
                      current.end(), std::back_inserter(fresh_));
  unlink_fan(v, stale_);
  link_fan(v, fresh_);
}

void AdhocNetwork::refresh_in_edges(NodeId v) {
  const util::Vec2 p = configs_[v].position;
  scratch_.clear();
  grid_.query_disc(p, max_range(), scratch_);
  desired_.clear();
  for (NodeId w : scratch_) {
    if (w == v) continue;
    const NodeConfig& cw = configs_[w];
    if (propagation_->reaches(cw.position, cw.range, p)) desired_.push_back(w);
  }
  std::sort(desired_.begin(), desired_.end());

  const std::span<const NodeId> current = graph_.in_neighbors(v);
  stale_.clear();
  std::set_difference(current.begin(), current.end(), desired_.begin(),
                      desired_.end(), std::back_inserter(stale_));
  for (NodeId w : stale_) unlink(w, v);
  for (NodeId w : desired_) link(w, v);
}

bool AdhocNetwork::minimally_connected(NodeId v) const {
  MINIM_REQUIRE(contains(v), "minimally_connected: unknown node");
  return graph_.out_degree(v) > 0 && graph_.in_degree(v) > 0;
}

std::size_t AdhocNetwork::memory_bytes() const {
  return graph_.memory_bytes() + conflict_.memory_bytes() +
         grid_.memory_bytes() + configs_.capacity() * sizeof(NodeConfig) +
         ranges_.size() * (sizeof(double) + 4 * sizeof(void*)) +
         (scratch_.capacity() + desired_.capacity() + stale_.capacity() +
          fresh_.capacity()) *
             sizeof(NodeId);
}

graph::Digraph AdhocNetwork::rebuild_graph_brute_force() const {
  graph::Digraph fresh;
  const auto ids = graph_.nodes();
  // Recreate the same id space: add_node() reuses lowest free slots, so
  // insert in ascending id order and fill gaps with throwaway nodes.
  std::vector<NodeId> created;
  NodeId next = 0;
  for (NodeId v : ids) {
    while (next < v) {
      created.push_back(fresh.add_node());
      ++next;
    }
    fresh.add_node();
    ++next;
  }
  for (NodeId gap : created) fresh.remove_node(gap);

  for (NodeId u : ids) {
    const NodeConfig& cu = configs_[u];
    for (NodeId w : ids) {
      if (w == u) continue;
      if (propagation_->reaches(cu.position, cu.range, configs_[w].position))
        fresh.add_edge(u, w);
    }
  }
  return fresh;
}

}  // namespace minim::net
