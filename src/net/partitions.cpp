#include "net/partitions.hpp"

#include <algorithm>
#include <map>

namespace minim::net {

JoinPartitions JoinPartitions::compute(const AdhocNetwork& net, NodeId n) {
  const auto& g = net.graph();
  const auto& ins = g.in_neighbors(n);
  const auto& outs = g.out_neighbors(n);

  JoinPartitions p;
  // ins and outs are sorted; classic three-way merge into the partitions.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ins.size() || j < outs.size()) {
    if (j >= outs.size() || (i < ins.size() && ins[i] < outs[j])) {
      p.set1.push_back(ins[i]);
      ++i;
    } else if (i >= ins.size() || outs[j] < ins[i]) {
      p.set3.push_back(outs[j]);
      ++j;
    } else {
      p.set2.push_back(ins[i]);
      ++i;
      ++j;
    }
  }
  for (NodeId v : net.nodes()) {
    if (v == n) continue;
    const bool in_1 = std::binary_search(p.set1.begin(), p.set1.end(), v);
    const bool in_2 = std::binary_search(p.set2.begin(), p.set2.end(), v);
    const bool in_3 = std::binary_search(p.set3.begin(), p.set3.end(), v);
    if (!in_1 && !in_2 && !in_3) p.set4.push_back(v);
  }
  return p;
}

std::vector<NodeId> JoinPartitions::recode_candidates() const {
  std::vector<NodeId> merged;
  merged.reserve(set1.size() + set2.size());
  std::merge(set1.begin(), set1.end(), set2.begin(), set2.end(),
             std::back_inserter(merged));
  return merged;
}

std::size_t minimal_recoding_bound(const AdhocNetwork& net,
                                   const CodeAssignment& assignment, NodeId n) {
  std::map<Color, std::size_t> histogram;
  for (NodeId u : net.heard_by(n)) {
    const Color c = assignment.color(u);
    if (c != kNoColor) ++histogram[c];
  }
  std::size_t bound = 0;
  for (const auto& [color, count] : histogram) bound += count - 1;
  return bound;
}

}  // namespace minim::net
