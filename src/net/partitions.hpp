#pragma once

#include <vector>

#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file partitions.hpp
/// \brief The join partitions 1n/2n/3n/4n of Section 4.1 (Fig 2).
///
/// When node n joins (or lands after a move), the existing vertex set splits
/// into:
///   * set1 — nodes with an edge *to* n only (n hears them),
///   * set2 — nodes with edges both ways,
///   * set3 — nodes with an edge *from* n only (they hear n),
///   * set4 — nodes with no edge to or from n.
/// The recoding set of RecodeOnJoin is set1 ∪ set2 ∪ {n}; set1 ∪ set2 is
/// exactly n's in-neighborhood ("from-neighbors").

namespace minim::net {

struct JoinPartitions {
  std::vector<NodeId> set1;  ///< u -> n only
  std::vector<NodeId> set2;  ///< u -> n and n -> u
  std::vector<NodeId> set3;  ///< n -> u only
  std::vector<NodeId> set4;  ///< no edges with n

  /// Computes the partitions of all live nodes (excluding n) around n.
  static JoinPartitions compute(const AdhocNetwork& net, NodeId n);

  /// set1 ∪ set2, ascending — the nodes that may need recoding besides n.
  std::vector<NodeId> recode_candidates() const;
};

/// Lemma 4.1.1's minimal recoding bound for a join at n: with old colors
/// {C_1..C_m} on n's in-neighbors held by {K_1..K_m} nodes, at least
/// Σ(K_i − 1) in-neighbors must change color (n itself is recoded on top of
/// this).  Uncolored in-neighbors (impossible in a valid assignment) are
/// ignored defensively.
std::size_t minimal_recoding_bound(const AdhocNetwork& net,
                                   const CodeAssignment& assignment, NodeId n);

}  // namespace minim::net
