#include "net/propagation.hpp"

#include <algorithm>

namespace minim::net {

namespace {

/// Sign of the cross product (b - a) x (c - a): orientation of the triple.
int orientation(util::Vec2 a, util::Vec2 b, util::Vec2 c) {
  const double cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  constexpr double kEps = 1e-12;
  if (cross > kEps) return 1;
  if (cross < -kEps) return -1;
  return 0;
}

/// For collinear a, b, c: is c within the bounding box of segment (a, b)?
bool on_segment(util::Vec2 a, util::Vec2 b, util::Vec2 c) {
  return std::min(a.x, b.x) <= c.x && c.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= c.y && c.y <= std::max(a.y, b.y);
}

}  // namespace

bool segments_intersect(util::Vec2 p1, util::Vec2 p2, util::Vec2 q1, util::Vec2 q2) {
  const int o1 = orientation(p1, p2, q1);
  const int o2 = orientation(p1, p2, q2);
  const int o3 = orientation(q1, q2, p1);
  const int o4 = orientation(q1, q2, p2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(p1, p2, q1)) return true;
  if (o2 == 0 && on_segment(p1, p2, q2)) return true;
  if (o3 == 0 && on_segment(q1, q2, p1)) return true;
  if (o4 == 0 && on_segment(q1, q2, p2)) return true;
  return false;
}

bool ObstructedPropagation::reaches(util::Vec2 from, double range,
                                    util::Vec2 to) const {
  if (util::distance_squared(from, to) > range * range) return false;
  for (const Wall& wall : walls_)
    if (segments_intersect(from, to, wall.a, wall.b)) return false;
  return true;
}

std::shared_ptr<const PropagationModel> free_space_propagation() {
  static const auto instance = std::make_shared<const FreeSpacePropagation>();
  return instance;
}

}  // namespace minim::net
