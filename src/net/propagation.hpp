#pragma once

#include <memory>
#include <vector>

#include "util/geometry.hpp"

/// \file propagation.hpp
/// \brief Pluggable propagation models for the edge predicate.
///
/// The paper's base model is free space: `(u, v) ∈ E  iff  d(u,v) <= r_u`.
/// Section 2 notes the generalization "for the non-free-space propagation
/// case where, due to obstacles, although d_ij <= r_i, (v_i, v_j) ∉ E".
/// A `PropagationModel` decides reachability; implementations may only
/// *remove* links relative to free space (never add them), which keeps the
/// spatial-grid candidate query (disc of radius r) a sound over-approximation.

namespace minim::net {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// True iff a transmission from `from` with maximum range `range` is
  /// received at `to`.  Must imply `distance(from, to) <= range`.
  virtual bool reaches(util::Vec2 from, double range, util::Vec2 to) const = 0;
};

/// The paper's base model: pure disc of radius `range`.
class FreeSpacePropagation final : public PropagationModel {
 public:
  bool reaches(util::Vec2 from, double range, util::Vec2 to) const override {
    return util::distance_squared(from, to) <= range * range;
  }
};

/// An opaque wall: the open segment (a, b).
struct Wall {
  util::Vec2 a;
  util::Vec2 b;
};

/// True iff segments (p1, p2) and (q1, q2) intersect (including touching
/// endpoints and collinear overlap).  Exposed for direct testing.
bool segments_intersect(util::Vec2 p1, util::Vec2 p2, util::Vec2 q1, util::Vec2 q2);

/// Free space plus opaque walls: a link exists iff the receiver is in range
/// AND the line of sight crosses no wall.
class ObstructedPropagation final : public PropagationModel {
 public:
  explicit ObstructedPropagation(std::vector<Wall> walls) : walls_(std::move(walls)) {}

  bool reaches(util::Vec2 from, double range, util::Vec2 to) const override;

  const std::vector<Wall>& walls() const { return walls_; }

 private:
  std::vector<Wall> walls_;
};

/// Shared default instance (stateless, safe to share across networks).
std::shared_ptr<const PropagationModel> free_space_propagation();

}  // namespace minim::net
