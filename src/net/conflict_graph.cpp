#include "net/conflict_graph.hpp"

#include <algorithm>
#include <atomic>

#include "util/require.hpp"

namespace minim::net {

ConflictGraph::ConflictGraph() {
  static std::atomic<std::uint64_t> next_nonce{1};
  nonce_ = next_nonce.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Journal size cap: one event's delta on paper-size networks is a few
/// hundred entries, so this covers many events of slack while bounding
/// memory on long-lived networks.  When full, the older half is discarded
/// and consumers past it fall back to a full pass.
constexpr std::size_t kJournalCap = 1 << 15;

}  // namespace

std::uint32_t ConflictGraph::multiplicity(NodeId u, NodeId v) const {
  const std::uint32_t* count = rows_.find(u, v);
  return count != nullptr ? *count : 0;
}

bool ConflictGraph::append_dirty_since(std::uint64_t since,
                                       std::vector<NodeId>& out) const {
  std::span<const NodeId> window;
  if (!dirty_window_since(since, window)) return false;
  out.insert(out.end(), window.begin(), window.end());
  return true;
}

bool ConflictGraph::dirty_window_since(std::uint64_t since,
                                       std::span<const NodeId>& out) const {
  out = {};
  if (since < trimmed_revision_) return false;
  if (since >= revision_) return true;  // nothing newer
  // Entry i holds revision journal_base_ + i; the window starts at the first
  // revision > since.
  const std::size_t first =
      since < journal_base_ ? 0
                            : static_cast<std::size_t>(since - journal_base_ + 1);
  out = std::span<const NodeId>(journal_).subspan(first);
  return true;
}

void ConflictGraph::mark_dirty(NodeId v) {
  if (journal_.size() >= kJournalCap) {
    // Drop the older half; amortized O(1) per entry.
    const std::size_t keep = kJournalCap / 2;
    const std::size_t dropped = journal_.size() - keep;
    trimmed_revision_ = journal_base_ + dropped - 1;
    journal_.erase(journal_.begin(),
                   journal_.begin() + static_cast<std::ptrdiff_t>(dropped));
    journal_base_ += dropped;
  }
  ++revision_;
  journal_.push_back(v);
}

bool ConflictGraph::bump_row(NodeId u, NodeId v) {
  rows_.ensure_row(u);
  if (std::uint32_t* count = rows_.find(u, v)) {
    ++*count;
    return false;
  }
  rows_.insert(u, v, 1);
  return true;
}

bool ConflictGraph::drop_row(NodeId u, NodeId v) {
  std::uint32_t* count = rows_.find(u, v);
  MINIM_REQUIRE(count != nullptr,
                "conflict graph: retracting an unknown witness");
  if (--*count > 0) return false;
  rows_.erase(u, v);
  return true;
}

void ConflictGraph::add_witness(NodeId u, NodeId v) {
  if (bump_row(u, v)) {
    bump_row(v, u);
    ++pair_count_;
    mark_dirty(u);
    mark_dirty(v);
  } else {
    bump_row(v, u);
  }
}

void ConflictGraph::retract_witness(NodeId u, NodeId v) {
  if (drop_row(u, v)) {
    drop_row(v, u);
    --pair_count_;
    mark_dirty(u);
    mark_dirty(v);
  } else {
    drop_row(v, u);
  }
}

void ConflictGraph::on_node_added(NodeId v) {
  rows_.ensure_row(v);
  MINIM_REQUIRE(rows_.size(v) == 0, "conflict graph: reused row not empty");
  mark_dirty(v);
}

void ConflictGraph::on_node_removed(NodeId v) {
  MINIM_REQUIRE(v < rows_.row_count() && rows_.size(v) == 0,
                "conflict graph: removing a node with live conflicts");
  mark_dirty(v);
}

void ConflictGraph::collect_edge_partners(const graph::Digraph& g, NodeId u,
                                          NodeId v) {
  // {v} (CA1) merged into in(v) \ {u} (CA2 co-senders); both inputs sorted,
  // v ∉ in(v) while the edge is unapplied, so the result is sorted unique.
  partner_scratch_.clear();
  bool placed = false;
  for (NodeId w : g.in_neighbors(v)) {
    if (w == u) continue;
    if (!placed && v < w) {
      partner_scratch_.push_back(v);
      placed = true;
    }
    partner_scratch_.push_back(w);
  }
  if (!placed) partner_scratch_.push_back(v);
  partner_delta_.clear();  // empty = every partner carries one witness
}

void ConflictGraph::append_edge_partners(const graph::Digraph& g, NodeId u,
                                         NodeId v) {
  partner_scratch_.push_back(v);
  for (NodeId w : g.in_neighbors(v))
    if (w != u) partner_scratch_.push_back(w);
}

void ConflictGraph::aggregate_partner_multiset() {
  std::sort(partner_scratch_.begin(), partner_scratch_.end());
  partner_delta_.clear();
  std::size_t unique = 0;
  for (std::size_t i = 0; i < partner_scratch_.size();) {
    std::size_t j = i;
    while (j < partner_scratch_.size() &&
           partner_scratch_[j] == partner_scratch_[i])
      ++j;
    partner_scratch_[unique] = partner_scratch_[i];
    partner_delta_.push_back(static_cast<std::uint32_t>(j - i));
    ++unique;
    i = j;
  }
  partner_scratch_.resize(unique);
}

void ConflictGraph::apply_partner_witnesses(NodeId u, int delta) {
  // Merge pass over (row u, partners) into scratch — no per-partner search
  // or shifting of the hot row.  Reciprocal rows and the journal are touched
  // only after the merged row is written back (replace_row may relocate the
  // pool, so nothing may hold a row span across it).
  const std::span<const NodeId> ids = rows_.ids(u);
  const std::span<const std::uint32_t> counts = rows_.counts(u);
  // An empty delta array means "one witness per partner" — the single-edge
  // path (whose partner lists are unique) skips filling it.
  const bool uniform = partner_delta_.empty();
  const auto delta_of = [this, uniform](std::size_t j) -> std::uint32_t {
    return uniform ? 1 : partner_delta_[j];
  };
  merged_ids_.clear();
  merged_counts_.clear();
  partner_new_.assign(partner_scratch_.size(), 0);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ids.size() || j < partner_scratch_.size()) {
    if (j >= partner_scratch_.size() ||
        (i < ids.size() && ids[i] < partner_scratch_[j])) {
      merged_ids_.push_back(ids[i]);
      merged_counts_.push_back(counts[i]);
      ++i;
    } else if (i >= ids.size() || partner_scratch_[j] < ids[i]) {
      MINIM_REQUIRE(delta > 0, "conflict graph: retracting an unknown witness");
      merged_ids_.push_back(partner_scratch_[j]);
      merged_counts_.push_back(delta_of(j));
      partner_new_[j] = 1;  // pair went 0 -> positive
      ++j;
    } else {
      std::uint32_t count = counts[i];
      if (delta > 0) {
        count += delta_of(j);
      } else {
        MINIM_REQUIRE(count >= delta_of(j),
                      "conflict graph: retracting an unknown witness");
        count -= delta_of(j);
      }
      if (count > 0) {
        merged_ids_.push_back(ids[i]);
        merged_counts_.push_back(count);
      } else {
        partner_new_[j] = 1;  // pair went positive -> 0
      }
      ++i;
      ++j;
    }
  }
  rows_.replace_row(u, merged_ids_, merged_counts_);

  for (std::size_t p = 0; p < partner_scratch_.size(); ++p) {
    const NodeId w = partner_scratch_[p];
    if (delta > 0) {
      if (partner_new_[p]) {
        rows_.insert(w, u, delta_of(p));
        ++pair_count_;
        mark_dirty(u);
        mark_dirty(w);
      } else {
        *rows_.find(w, u) += delta_of(p);
      }
    } else {
      if (partner_new_[p]) {
        rows_.erase(w, u);
        --pair_count_;
        mark_dirty(u);
        mark_dirty(w);
      } else {
        *rows_.find(w, u) -= delta_of(p);
      }
    }
  }
}

void ConflictGraph::on_edge_added(const graph::Digraph& g, NodeId u, NodeId v) {
  MINIM_REQUIRE(!g.has_edge(u, v), "conflict graph: edge delta already applied");
  rows_.ensure_row(std::max(u, v));
  collect_edge_partners(g, u, v);
  apply_partner_witnesses(u, +1);
}

void ConflictGraph::on_edge_removed(const graph::Digraph& g, NodeId u, NodeId v) {
  MINIM_REQUIRE(g.has_edge(u, v), "conflict graph: retracting an absent edge");
  collect_edge_partners(g, u, v);
  apply_partner_witnesses(u, -1);
}

void ConflictGraph::on_out_edges_added(const graph::Digraph& g, NodeId u,
                                       std::span<const NodeId> targets) {
  if (targets.empty()) return;
  MINIM_REQUIRE(std::is_sorted(targets.begin(), targets.end()) &&
                    std::adjacent_find(targets.begin(), targets.end()) ==
                        targets.end(),
                "conflict graph: edge fan must be ascending and deduped");
  NodeId max_id = u;
  partner_scratch_.clear();
  for (NodeId v : targets) {
    MINIM_REQUIRE(!g.has_edge(u, v),
                  "conflict graph: edge delta already applied");
    max_id = std::max(max_id, v);
    append_edge_partners(g, u, v);
  }
  rows_.ensure_row(max_id);
  aggregate_partner_multiset();
  apply_partner_witnesses(u, +1);
}

void ConflictGraph::on_out_edges_removed(const graph::Digraph& g, NodeId u,
                                         std::span<const NodeId> targets) {
  if (targets.empty()) return;
  MINIM_REQUIRE(std::is_sorted(targets.begin(), targets.end()) &&
                    std::adjacent_find(targets.begin(), targets.end()) ==
                        targets.end(),
                "conflict graph: edge fan must be ascending and deduped");
  partner_scratch_.clear();
  for (NodeId v : targets) {
    MINIM_REQUIRE(g.has_edge(u, v), "conflict graph: retracting an absent edge");
    append_edge_partners(g, u, v);
  }
  aggregate_partner_multiset();
  apply_partner_witnesses(u, -1);
}

void ConflictGraph::clear() {
  rows_.clear();
  pair_count_ = 0;
  journal_.clear();
  // Any consumer synchronized to a pre-clear revision must full-rebuild:
  // advance the revision and declare everything at or below it trimmed.
  trimmed_revision_ = ++revision_;
  journal_base_ = revision_ + 1;
}

ConflictGraph ConflictGraph::build_from(const graph::Digraph& g) {
  ConflictGraph cg;
  if (g.id_bound() > 0) cg.rows_.ensure_row(g.id_bound() - 1);
  const auto nodes = g.nodes();
  for (NodeId u : nodes) {
    // CA1: one witness per directed edge.
    for (NodeId v : g.out_neighbors(u)) cg.add_witness(u, v);
    // CA2: one witness per (sender pair, common receiver); enumerate each
    // receiver's sender list once, pairs ordered i < j.
    const auto senders = g.in_neighbors(u);
    for (std::size_t i = 0; i < senders.size(); ++i)
      for (std::size_t j = i + 1; j < senders.size(); ++j)
        cg.add_witness(senders[i], senders[j]);
  }
  return cg;
}

}  // namespace minim::net
