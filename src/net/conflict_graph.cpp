#include "net/conflict_graph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace minim::net {

namespace {

/// Journal size cap: one event's delta on paper-size networks is a few
/// hundred entries, so this covers many events of slack while bounding
/// memory on long-lived networks.  When full, the older half is discarded
/// and consumers past it fall back to a full pass.
constexpr std::size_t kJournalCap = 1 << 15;

}  // namespace

std::uint32_t ConflictGraph::multiplicity(NodeId u, NodeId v) const {
  if (u >= rows_.size()) return 0;
  const Row& row = rows_[u];
  const auto it = std::lower_bound(row.ids.begin(), row.ids.end(), v);
  if (it == row.ids.end() || *it != v) return 0;
  return row.counts[static_cast<std::size_t>(it - row.ids.begin())];
}

bool ConflictGraph::append_dirty_since(std::uint64_t since,
                                       std::vector<NodeId>& out) const {
  if (since < trimmed_revision_) return false;
  if (since >= revision_) return true;  // nothing newer
  // Entries are revision-ascending; binary search the window start.
  const auto first = std::upper_bound(
      journal_.begin(), journal_.end(), since,
      [](std::uint64_t rev, const JournalEntry& e) { return rev < e.revision; });
  for (auto it = first; it != journal_.end(); ++it) out.push_back(it->node);
  return true;
}

void ConflictGraph::mark_dirty(NodeId v) {
  if (journal_.size() >= kJournalCap) {
    // Drop the older half; amortized O(1) per entry.
    const std::size_t keep = kJournalCap / 2;
    trimmed_revision_ = journal_[journal_.size() - keep - 1].revision;
    journal_.erase(journal_.begin(),
                   journal_.end() - static_cast<std::ptrdiff_t>(keep));
  }
  journal_.push_back(JournalEntry{++revision_, v});
}

bool ConflictGraph::bump_row(NodeId u, NodeId v) {
  Row& row = rows_[u];
  const auto it = std::lower_bound(row.ids.begin(), row.ids.end(), v);
  const auto index = static_cast<std::size_t>(it - row.ids.begin());
  if (it != row.ids.end() && *it == v) {
    ++row.counts[index];
    return false;
  }
  row.ids.insert(it, v);
  row.counts.insert(row.counts.begin() + static_cast<std::ptrdiff_t>(index), 1);
  return true;
}

bool ConflictGraph::drop_row(NodeId u, NodeId v) {
  Row& row = rows_[u];
  const auto it = std::lower_bound(row.ids.begin(), row.ids.end(), v);
  MINIM_REQUIRE(it != row.ids.end() && *it == v,
                "conflict graph: retracting an unknown witness");
  const auto index = static_cast<std::size_t>(it - row.ids.begin());
  if (--row.counts[index] > 0) return false;
  row.ids.erase(it);
  row.counts.erase(row.counts.begin() + static_cast<std::ptrdiff_t>(index));
  return true;
}

void ConflictGraph::add_witness(NodeId u, NodeId v) {
  if (bump_row(u, v)) {
    bump_row(v, u);
    ++pair_count_;
    mark_dirty(u);
    mark_dirty(v);
  } else {
    bump_row(v, u);
  }
}

void ConflictGraph::retract_witness(NodeId u, NodeId v) {
  if (drop_row(u, v)) {
    drop_row(v, u);
    --pair_count_;
    mark_dirty(u);
    mark_dirty(v);
  } else {
    drop_row(v, u);
  }
}

void ConflictGraph::on_node_added(NodeId v) {
  if (v >= rows_.size()) rows_.resize(v + 1);
  MINIM_REQUIRE(rows_[v].ids.empty(), "conflict graph: reused row not empty");
  mark_dirty(v);
}

void ConflictGraph::on_node_removed(NodeId v) {
  MINIM_REQUIRE(v < rows_.size() && rows_[v].ids.empty(),
                "conflict graph: removing a node with live conflicts");
  mark_dirty(v);
}

void ConflictGraph::on_edge_added(const graph::Digraph& g, NodeId u, NodeId v) {
  MINIM_REQUIRE(!g.has_edge(u, v), "conflict graph: edge delta already applied");
  const NodeId bound = std::max(u, v);
  if (bound >= rows_.size()) rows_.resize(bound + 1);
  add_witness(u, v);  // CA1
  for (NodeId w : g.in_neighbors(v))
    if (w != u) add_witness(u, w);  // CA2: co-senders to receiver v
}

void ConflictGraph::on_edge_removed(const graph::Digraph& g, NodeId u, NodeId v) {
  MINIM_REQUIRE(g.has_edge(u, v), "conflict graph: retracting an absent edge");
  retract_witness(u, v);  // CA1
  for (NodeId w : g.in_neighbors(v))
    if (w != u) retract_witness(u, w);  // CA2
}

void ConflictGraph::clear() {
  for (Row& row : rows_) {
    row.ids.clear();
    row.counts.clear();
  }
  pair_count_ = 0;
  journal_.clear();
  // Any consumer synchronized to a pre-clear revision must full-rebuild:
  // advance the revision and declare everything at or below it trimmed.
  trimmed_revision_ = ++revision_;
}

ConflictGraph ConflictGraph::build_from(const graph::Digraph& g) {
  ConflictGraph cg;
  cg.rows_.resize(g.id_bound());
  const auto nodes = g.nodes();
  for (NodeId u : nodes) {
    // CA1: one witness per directed edge.
    for (NodeId v : g.out_neighbors(u)) cg.add_witness(u, v);
    // CA2: one witness per (sender pair, common receiver); enumerate each
    // receiver's sender list once, pairs ordered i < j.
    const auto& senders = g.in_neighbors(u);
    for (std::size_t i = 0; i < senders.size(); ++i)
      for (std::size_t j = i + 1; j < senders.size(); ++j)
        cg.add_witness(senders[i], senders[j]);
  }
  return cg;
}

}  // namespace minim::net
