#pragma once

#include <memory>
#include <set>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/spatial_grid.hpp"
#include "net/conflict_graph.hpp"
#include "net/propagation.hpp"
#include "util/geometry.hpp"

/// \file network.hpp
/// \brief The paper's network model: a power-controlled ad-hoc network.
///
/// Each node has a position (x, y) in a rectangular field and a maximum
/// transmission range r.  The induced communication digraph has the edge
/// u -> v iff d(u, v) <= r_u (v can hear u / is affected by u's
/// transmissions).  The digraph is maintained incrementally under the
/// paper's reconfiguration events: join, leave, move, power change.
///
/// A spatial hash grid accelerates "who is in range of p" queries; edge
/// updates after an event touch only the event's locality, mirroring the
/// paper's claim that recoding is a local affair.

namespace minim::net {

using graph::NodeId;
using graph::kInvalidNode;

/// A node's physical configuration.
struct NodeConfig {
  util::Vec2 position;
  double range = 0.0;
};

class AdhocNetwork {
 public:
  /// Field of `width` x `height` units (the paper uses 100 x 100).
  /// `grid_cell` tunes the spatial index only; any positive value is correct.
  /// `propagation` decides link existence (default: the paper's free-space
  /// disc; pass an ObstructedPropagation for the non-free-space
  /// generalization of Section 2).
  explicit AdhocNetwork(double width = 100.0, double height = 100.0,
                        double grid_cell = 12.5,
                        std::shared_ptr<const PropagationModel> propagation = nullptr);

  /// Adds a node with `config`; returns its id.  Edges in both directions
  /// are established per the range rule.
  NodeId add_node(const NodeConfig& config);

  /// Removes `v` and all its edges.
  void remove_node(NodeId v);

  /// Moves `v` to `position` (clamped to the field) and updates edges.
  void set_position(NodeId v, util::Vec2 position);

  /// Changes v's transmission range and updates v's out-edges.
  void set_range(NodeId v, double range);

  bool contains(NodeId v) const { return graph_.contains(v); }
  const NodeConfig& config(NodeId v) const;
  double width() const { return width_; }
  double height() const { return height_; }
  const PropagationModel& propagation() const { return *propagation_; }

  /// The induced communication digraph (authoritative edge set).
  const graph::Digraph& graph() const { return graph_; }

  /// The cached CA1 ∪ CA2 conflict adjacency, maintained incrementally from
  /// the digraph's edge deltas (see conflict_graph.hpp for the protocol).
  const ConflictGraph& conflict_graph() const { return conflict_; }

  /// Removes every node, retaining allocated capacity (graph slots, grid
  /// cells, conflict rows) — the arena-reuse path of `sim::replay`.  Node
  /// ids restart from 0, so a reset network replays a workload
  /// bit-identically to a freshly constructed one.  Changing the field
  /// dimensions rebuilds the spatial index.
  void reset(double width, double height);

  std::size_t node_count() const { return graph_.node_count(); }
  std::vector<NodeId> nodes() const { return graph_.nodes(); }
  /// Allocation-free variant: replaces `out` with all live ids, ascending.
  void nodes(std::vector<NodeId>& out) const { graph_.nodes(out); }
  NodeId id_bound() const { return graph_.id_bound(); }

  /// Nodes that hear `v` (v's out-neighbors; v's transmissions reach them).
  /// Spans point into pooled storage; any network mutation invalidates them.
  std::span<const NodeId> hearers_of(NodeId v) const { return graph_.out_neighbors(v); }

  /// Nodes that `v` hears (v's in-neighbors; the paper's "from-neighbors").
  std::span<const NodeId> heard_by(NodeId v) const { return graph_.in_neighbors(v); }

  /// The paper's Minimal Connectivity assumption: some node hears v and v
  /// hears some node.  The simulator can enforce this on reconfigurations.
  bool minimally_connected(NodeId v) const;

  /// Recomputes the full edge set by brute force into a fresh digraph —
  /// O(n^2) test oracle for the incremental maintenance.
  graph::Digraph rebuild_graph_brute_force() const;

  /// Heap bytes held by the engine's hot structures (digraph pools,
  /// conflict rows + journal, spatial grid, per-node config arrays) — the
  /// numerator of the large-N bytes/node report.
  std::size_t memory_bytes() const;

 private:
  /// Adds edge u -> v to the digraph, accounting the conflict-graph delta
  /// first.  No-op when present.
  void link(NodeId u, NodeId v);
  /// Removes edge u -> v, retracting the conflict-graph delta.  No-op when
  /// absent.
  void unlink(NodeId u, NodeId v);
  /// Batched link/unlink of a fan of u's out-edges (`targets` ascending,
  /// deduped, all absent/present respectively): one conflict-row merge for
  /// the whole fan (ConflictGraph::on_out_edges_*) instead of one per edge.
  void link_fan(NodeId u, const std::vector<NodeId>& targets);
  void unlink_fan(NodeId u, const std::vector<NodeId>& targets);
  /// Replaces v's out-edge set based on current config (diff against the
  /// live set, so unchanged edges generate no conflict-graph churn).
  void refresh_out_edges(NodeId v);
  /// Replaces v's in-edge set by probing nodes whose range could reach v.
  void refresh_in_edges(NodeId v);
  double max_range() const;

  double width_;
  double height_;
  std::shared_ptr<const PropagationModel> propagation_;
  graph::Digraph graph_;
  graph::SpatialGrid grid_;
  ConflictGraph conflict_;
  std::vector<NodeConfig> configs_;  // indexed by NodeId
  /// Live ranges; O(log n) updates (a sorted vector's O(n) insert made the
  /// join sequence quadratic at 10⁶ nodes).  Only the max is queried.
  std::multiset<double> ranges_;
  mutable std::vector<NodeId> scratch_;
  std::vector<NodeId> desired_;  // refresh scratch: target neighbor set
  std::vector<NodeId> stale_;    // refresh scratch: edges to drop
  std::vector<NodeId> fresh_;    // refresh scratch: edges to add
};

}  // namespace minim::net
