#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file constraints.hpp
/// \brief The TOCA coloring constraints CA1/CA2 and their validator.
///
/// CA1 (primary collision avoidance): for every edge (u, v): c_u != c_v.
/// CA2 (hidden collision avoidance): for every pair of edges (u, k), (v, k)
/// with u != v: c_u != c_v.
///
/// Two nodes are *in conflict* when some constraint forbids them the same
/// color: u->v, v->u, or a common out-neighbor.  Every strategy, the
/// validator and the bipartite builder all share these definitions, so a bug
/// here would be caught by the O(n^3) brute-force cross-check in tests.

namespace minim::net {

/// Why a pair of nodes must differ in color.
enum class ConflictKind : std::uint8_t {
  kPrimary,  ///< CA1: a direct edge between the two nodes
  kHidden,   ///< CA2: a common out-neighbor (hidden terminal)
};

/// One violated constraint in an assignment.
struct Violation {
  NodeId a = kInvalidNode;   ///< lower id of the pair
  NodeId b = kInvalidNode;   ///< higher id of the pair
  ConflictKind kind = ConflictKind::kPrimary;
  Color color = kNoColor;    ///< the shared color

  std::string to_string() const;
};

/// True iff u and v may not share a color (u != v assumed).  O(log deg)
/// against the network's cached conflict graph.
bool in_conflict(const AdhocNetwork& net, NodeId u, NodeId v);

/// All nodes that conflict with `u`, ascending, excluding `u`.
std::vector<NodeId> conflict_partners(const AdhocNetwork& net, NodeId u);

/// Allocation-free overload: replaces `out` with u's conflict partners
/// (ascending).  A straight copy out of the cached conflict graph — hot
/// loops that call this per node reuse one scratch vector.
void conflict_partners(const AdhocNetwork& net, NodeId u, std::vector<NodeId>& out);

/// All violated constraints (same color on a conflicting pair).  Each
/// unordered pair is reported once; CA1 takes precedence over CA2 as the
/// reported kind.  Uncolored nodes never conflict.
std::vector<Violation> find_violations(const AdhocNetwork& net,
                                       const CodeAssignment& assignment);

/// True iff every live node is colored.
bool all_colored(const AdhocNetwork& net, const CodeAssignment& assignment);

/// True iff all nodes are colored and no constraint is violated — the
/// paper's "correct code assignment".
bool is_valid(const AdhocNetwork& net, const CodeAssignment& assignment);

/// The colors `u` may not take, i.e. colors of its conflict partners —
/// except partners for which `ignore` returns true (the recoding set, whose
/// members will be recolored anyway).  Returned sorted and deduplicated.
std::vector<Color> forbidden_colors(
    const AdhocNetwork& net, const CodeAssignment& assignment, NodeId u,
    const std::function<bool(NodeId)>& ignore = nullptr);

/// Allocation-free overload: replaces `out` with the forbidden colors of
/// `u` (sorted, deduplicated), reusing its capacity.
void forbidden_colors(const AdhocNetwork& net, const CodeAssignment& assignment,
                      NodeId u, std::vector<Color>& out,
                      const std::function<bool(NodeId)>& ignore = nullptr);

/// Smallest positive color not present in `forbidden` (which must be sorted
/// ascending and deduplicated).
Color lowest_free_color(const std::vector<Color>& forbidden);

}  // namespace minim::net
