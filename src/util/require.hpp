#pragma once

#include <stdexcept>
#include <string>

/// \file require.hpp
/// \brief Precondition checking for public API boundaries.
///
/// `MINIM_REQUIRE(cond, msg)` throws `std::invalid_argument` when `cond` is
/// false.  It is intended for argument validation at module entry points;
/// internal invariants use `assert` so release hot paths stay branch-light.

namespace minim::util {

[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement `" + expr + "` failed: " + msg);
}

}  // namespace minim::util

#define MINIM_REQUIRE(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) ::minim::util::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
