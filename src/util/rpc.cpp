#include "util/rpc.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define MINIM_HAVE_POSIX_SOCKETS 1
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "util/fd_io.hpp"
#include "util/subprocess.hpp"

namespace minim::util {

// ----------------------------------------------------------------- encoding
//
// Explicit little-endian byte serialization: the format must not depend on
// host endianness, and writing the bytes by hand costs four shifts.

namespace {

void put_u32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xffu));
  out.push_back(static_cast<char>((value >> 8) & 0xffu));
  out.push_back(static_cast<char>((value >> 16) & 0xffu));
  out.push_back(static_cast<char>((value >> 24) & 0xffu));
}

void put_u64(std::string& out, std::uint64_t value) {
  put_u32(out, static_cast<std::uint32_t>(value & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t peek_u32(const char* at) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(at);
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

bool get_u32(const std::string& in, std::size_t& at, std::uint32_t& value) {
  if (at > in.size() || in.size() - at < 4) return false;
  value = peek_u32(in.data() + at);
  at += 4;
  return true;
}

bool get_u64(const std::string& in, std::size_t& at, std::uint64_t& value) {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (!get_u32(in, at, lo) || !get_u32(in, at, hi)) return false;
  value = static_cast<std::uint64_t>(lo) |
          (static_cast<std::uint64_t>(hi) << 32);
  return true;
}

void put_str(std::string& out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(value);
}

bool get_str(const std::string& in, std::size_t& at, std::string& value) {
  std::uint32_t size = 0;
  if (!get_u32(in, at, size)) return false;
  if (in.size() - at < size) return false;
  value.assign(in, at, size);
  at += size;
  return true;
}

}  // namespace

// ------------------------------------------------------------------ framing

bool send_frame(int fd, RpcType type, const std::string& payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(type));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  // One write_all per frame: concurrent senders (agent worker threads)
  // still need an external mutex, but a single frame is never interleaved
  // by the partial-write loop itself going through one call.
  return write_all(fd, frame.data(), frame.size());
}

RecvStatus recv_frame(int fd, RpcFrame& frame, std::size_t max_payload) {
  char header[8];
  const IoStatus head = read_exact(fd, header, sizeof header);
  if (head == IoStatus::kClosed) return RecvStatus::kClosed;
  if (head != IoStatus::kOk) return RecvStatus::kError;
  const std::uint32_t type = peek_u32(header);
  const std::uint32_t size = peek_u32(header + 4);
  if (type < static_cast<std::uint32_t>(RpcType::kHello) ||
      type > static_cast<std::uint32_t>(RpcType::kShutdown))
    return RecvStatus::kError;
  if (size > max_payload) return RecvStatus::kError;
  frame.type = static_cast<RpcType>(type);
  frame.payload.resize(size);
  if (size > 0 && read_exact(fd, frame.payload.data(), size) != IoStatus::kOk)
    return RecvStatus::kError;  // EOF mid-frame is truncation, not a close
  return RecvStatus::kFrame;
}

// ----------------------------------------------------------------- payloads

std::string encode_hello(const AgentHello& hello) {
  std::string payload;
  put_u32(payload, hello.capacity);
  put_str(payload, hello.name);
  return payload;
}

bool decode_hello(const std::string& payload, AgentHello& hello) {
  std::size_t at = 0;
  return get_u32(payload, at, hello.capacity) &&
         get_str(payload, at, hello.name) && at == payload.size();
}

std::string encode_job(const JobRequest& request) {
  std::string payload;
  put_u64(payload, request.job);
  put_u32(payload, static_cast<std::uint32_t>(request.args.size()));
  for (const std::string& arg : request.args) put_str(payload, arg);
  return payload;
}

bool decode_job(const std::string& payload, JobRequest& request) {
  std::size_t at = 0;
  std::uint32_t count = 0;
  if (!get_u64(payload, at, request.job) || !get_u32(payload, at, count))
    return false;
  request.args.clear();
  request.args.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string arg;
    if (!get_str(payload, at, arg)) return false;
    request.args.push_back(std::move(arg));
  }
  return at == payload.size();
}

std::string encode_result(const JobResult& result) {
  std::string payload;
  put_u64(payload, result.job);
  put_u32(payload, result.ok ? 1u : 0u);
  put_u32(payload, static_cast<std::uint32_t>(result.exit_code));
  put_str(payload, result.log);
  put_str(payload, result.bytes);
  return payload;
}

bool decode_result(const std::string& payload, JobResult& result) {
  std::size_t at = 0;
  std::uint32_t ok = 0;
  std::uint32_t exit_code = 0;
  if (!get_u64(payload, at, result.job) || !get_u32(payload, at, ok) ||
      !get_u32(payload, at, exit_code) || !get_str(payload, at, result.log) ||
      !get_str(payload, at, result.bytes) || at != payload.size())
    return false;
  result.ok = ok != 0;
  result.exit_code = static_cast<std::int32_t>(exit_code);
  return true;
}

#if MINIM_HAVE_POSIX_SOCKETS

// -------------------------------------------------------------- agent side

int connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &found) != 0)
    return -1;
  int fd = -1;
  for (addrinfo* at = found; at != nullptr && fd < 0; at = at->ai_next) {
    fd = ::socket(at->ai_family, at->ai_socktype, at->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, at->ai_addr, at->ai_addrlen) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ::freeaddrinfo(found);
  return fd;
}

int run_worker_agent(const AgentOptions& options, const JobRunner& runner) {
  auto say = [&options](const std::string& line) {
    if (options.log) options.log(line);
  };

  // Tolerate "agent launched a beat before the driver listens" (fleet
  // scripts start both sides concurrently): retry the connect briefly.
  int fd = -1;
  for (int attempt = 0; attempt < 100 && fd < 0; ++attempt) {
    fd = connect_tcp(options.host, options.port);
    if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (fd < 0) {
    say("agent: cannot connect to " + options.host + ":" +
        std::to_string(options.port));
    return 1;
  }

  AgentHello hello;
  hello.capacity = options.capacity != 0
                       ? options.capacity
                       : std::max(1u, std::thread::hardware_concurrency());
  if (options.name.empty()) {
    char hostname[256] = "agent";
    ::gethostname(hostname, sizeof hostname - 1);
    hello.name = std::string(hostname) + ":" + std::to_string(::getpid());
  } else {
    hello.name = options.name;
  }
  if (!send_frame(fd, RpcType::kHello, encode_hello(hello))) {
    ::close(fd);
    return 1;
  }
  say("agent " + hello.name + ": connected, capacity " +
      std::to_string(hello.capacity));

  // Worker threads share the socket for RESULT frames; `send_mutex` keeps
  // frames whole.  The main thread only reads after the HELLO, so reads
  // and writes never race on direction.
  std::mutex send_mutex;
  std::size_t results_sent = 0;  // guarded by send_mutex
  std::atomic<bool> dying{false};
  std::vector<std::thread> workers;

  int code = 1;  // connection lost unless we see a clean SHUTDOWN
  while (true) {
    RpcFrame frame;
    const RecvStatus status = recv_frame(fd, frame);
    if (status != RecvStatus::kFrame) {
      if (dying.load()) code = 0;  // the injected crash severed the socket
      break;
    }
    if (frame.type == RpcType::kShutdown) {
      code = 0;
      break;
    }
    if (frame.type != RpcType::kJob) continue;
    JobRequest request;
    if (!decode_job(frame.payload, request)) continue;
    workers.emplace_back([&, request] {
      if (options.delay_s > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.delay_s));
      JobResult result = runner(request);
      result.job = request.job;
      std::lock_guard<std::mutex> lock(send_mutex);
      if (dying.load()) return;  // mid-crash: the result dies with us
      if (send_frame(fd, RpcType::kResult, encode_result(result))) {
        ++results_sent;
        if (options.die_after != 0 && results_sent >= options.die_after) {
          // Injected crash: sever the socket.  SHUT_RDWR pops the main
          // thread out of recv_frame, which then drains the other workers
          // and exits — from the driver's side this is indistinguishable
          // from the agent process dying.
          dying.store(true);
          ::shutdown(fd, SHUT_RDWR);
        }
      }
    });
  }

  for (std::thread& worker : workers) worker.join();
  ::close(fd);
  say("agent " + hello.name +
      (code == 0 ? std::string(": done") : std::string(": connection lost")));
  return code;
}

JobRunner subprocess_job_runner(const std::string& scratch_dir) {
  std::filesystem::create_directories(scratch_dir);
  return [scratch_dir](const JobRequest& request) {
    JobResult result;
    result.job = request.job;
    const std::string self = self_exe_path();
    if (self.empty()) {
      result.log = "agent: self_exe_path() unavailable";
      return result;
    }

    const std::string stem =
        scratch_dir + "/job_" + std::to_string(request.job);
    const std::string out_path = stem + ".csv";
    const std::string log_path = stem + ".log";

    ProcessSpec spec;
    spec.args.push_back(self);
    for (const std::string& arg : request.args) {
      // The driver names its own scratch file; this worker must write (and
      // we must read back) an agent-local path instead.
      if (arg.rfind("--unit-out=", 0) == 0)
        spec.args.push_back("--unit-out=" + out_path);
      else
        spec.args.push_back(arg);
    }
    spec.stdout_path = log_path;
    spec.max_attempts = 1;  // the driver owns the retry budget

    ProcessPool pool(1);
    const ProcessOutcome outcome = pool.run_all({spec}).front();
    result.exit_code = outcome.timed_out || outcome.term_signal != 0
                           ? -1
                           : outcome.exit_code;

    {  // ship the worker's output tail back for failure diagnosis
      std::ifstream log(log_path, std::ios::binary | std::ios::ate);
      if (log) {
        const auto size = static_cast<std::size_t>(log.tellg());
        const std::size_t keep = std::min<std::size_t>(size, 8192);
        log.seekg(static_cast<std::streamoff>(size - keep));
        result.log.resize(keep);
        log.read(result.log.data(), static_cast<std::streamsize>(keep));
      }
    }

    if (outcome.ok()) {
      std::ifstream artifact(out_path, std::ios::binary);
      if (artifact) {
        result.bytes.assign(std::istreambuf_iterator<char>(artifact),
                            std::istreambuf_iterator<char>());
        result.ok = true;
      } else {
        result.log += "\nagent: worker exited 0 but produced no result file";
      }
    }
    std::remove(out_path.c_str());
    std::remove(log_path.c_str());
    return result;
  };
}

#else  // !MINIM_HAVE_POSIX_SOCKETS

int connect_tcp(const std::string&, std::uint16_t) { return -1; }

int run_worker_agent(const AgentOptions&, const JobRunner&) { return 1; }

JobRunner subprocess_job_runner(const std::string&) {
  return [](const JobRequest& request) {
    JobResult result;
    result.job = request.job;
    result.log = "agent: POSIX sockets unavailable on this platform";
    return result;
  };
}

#endif

}  // namespace minim::util
