#pragma once

#include <cstddef>

/// \file fd_io.hpp
/// \brief Robust partial-I/O primitives shared by every socket layer.
///
/// POSIX read/write/send/recv may move fewer bytes than asked (short
/// writes against a full socket buffer, short reads at segment
/// boundaries) and may be interrupted by signals (EINTR) before moving
/// anything.  Every transport in the tree — the serving layer's TCP
/// transport and the fleet RPC protocol — needs the same two loops, so
/// they live here once:
///
///   * `write_all`   — loops until every byte is delivered;
///   * `read_exact`  — loops until exactly n bytes arrived, reporting
///                     "peer closed before the first byte" separately
///                     from "closed mid-message" (a framing layer treats
///                     the first as a clean end of session and the second
///                     as a truncated frame).
///
/// Both use send/recv with MSG_NOSIGNAL on sockets, so a peer vanishing
/// mid-write surfaces as EPIPE instead of killing the process, and fall
/// back to plain read/write for non-socket descriptors (pipes, files).

namespace minim::util {

/// How a `read_exact` ended.
enum class IoStatus {
  kOk,      ///< all n bytes arrived
  kClosed,  ///< clean EOF before the first byte (peer ended the session)
  kError,   ///< EOF mid-message or a non-retryable errno
};

/// Reads exactly `n` bytes into `buffer`, retrying short reads and EINTR.
IoStatus read_exact(int fd, void* buffer, std::size_t n);

/// Writes all `n` bytes of `buffer`, retrying short writes and EINTR.
/// Returns false on a non-retryable error (e.g. the peer closed; with
/// MSG_NOSIGNAL that is EPIPE, not SIGPIPE).
bool write_all(int fd, const void* buffer, std::size_t n);

}  // namespace minim::util
