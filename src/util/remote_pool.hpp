#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/worker_pool.hpp"

/// \file remote_pool.hpp
/// \brief TCP fleet driver: the `WorkerPool` whose workers live in other
/// processes (possibly other machines) speaking the util/rpc.hpp protocol.
///
/// The driver binds a listening socket; worker agents (`cdma_drive
/// --worker-agent=host:port`, any harness binary of the same build) connect
/// and advertise a capacity.  `run_jobs` then runs a single-threaded poll
/// loop over all sockets:
///
///   * **Capacity-weighted dispatch** — each pending job goes to the
///     connected agent with the most free slots (ties broken by join
///     order), so a 16-core box naturally pulls 4x the units of a 4-core
///     one without static partitioning.
///   * **Straggler re-dispatch** — per-agent completion durations feed a
///     shared `StragglerTracker`; a unit whose elapsed time exceeds
///     `factor` x the running median while other agents sit idle gets a
///     *speculative* second copy.  First result wins; the loser's bytes
///     are discarded unread.  This is safe precisely because shards are
///     deterministic: both copies would produce identical bytes.
///   * **Disconnect recovery** — an agent that vanishes (crash, network)
///     returns its in-flight units to the queue (charging one attempt —
///     a unit that keeps killing agents must eventually fail, not loop).
///
/// Results stream back as bytes in RESULT frames; the driver writes each
/// winner to `job.out_path` via tmp+rename, so a partially-received file
/// is never visible to the shard validator.
///
/// For tests/CI (and single-machine scale-out) the pool can self-spawn
/// loopback agents: re-invocations of this binary wired to the pool's
/// ephemeral port, optionally with failure injections (die-after-N,
/// per-job delay) on selected agents.

namespace minim::util {

struct RemotePoolOptions {
  std::uint16_t port = 0;  ///< listen port; 0 = kernel-assigned ephemeral

  /// Self-spawned loopback agents (0 = none; external agents expected).
  std::size_t self_spawn = 0;
  /// Advertised capacity for self-spawned agents.  Defaults to 1 so
  /// `--fleet-agents=N` means N single-slot workers, comparable with
  /// `--orchestrate=N` on the same box.
  std::uint32_t agent_capacity = 1;
  /// Extra argv for every self-spawned agent.
  std::vector<std::string> agent_extra_args;
  /// Extra argv for the *first* self-spawned agent only — the injection
  /// hook (`--agent-die-after=K`, `--agent-delay-ms=X`).
  std::vector<std::string> first_agent_extra_args;
  /// Scratch directory for self-spawned agent logs.
  std::string scratch_dir = ".";

  double straggler_factor = 3.0;  ///< re-dispatch at factor x median
  double straggler_min_s = 0.5;   ///< never re-dispatch before this elapsed
  std::size_t straggler_min_samples = 3;

  /// How long run_jobs waits for the first agent HELLO before giving up.
  double hello_timeout_s = 30.0;

  /// Progress sink; null = silent.
  std::function<void(const std::string&)> log;
};

class RemotePool final : public WorkerPool {
 public:
  /// Binds and listens immediately, so `port()` is valid before any agent
  /// is launched.  Throws when the socket cannot be bound.
  explicit RemotePool(RemotePoolOptions options);
  ~RemotePool() override;

  RemotePool(const RemotePool&) = delete;
  RemotePool& operator=(const RemotePool&) = delete;

  /// The bound listen port (the one agents must connect to).
  std::uint16_t port() const { return port_; }

  /// Fleet-level counters for the bench harness, valid after run_jobs.
  struct Stats {
    std::size_t agents_seen = 0;      ///< HELLOs accepted over the run
    std::size_t agents_lost = 0;      ///< disconnects with jobs in flight or not
    std::size_t redispatched = 0;     ///< speculative straggler copies sent
    std::size_t results_ignored = 0;  ///< losing copies discarded
    std::vector<std::string> agent_names;
    std::vector<std::size_t> agent_completed;  ///< wins per agent (by name order)
    std::vector<double> agent_busy_s;          ///< dispatch->result time summed
  };
  const Stats& stats() const { return stats_; }

  /// Runs the batch over whatever agents connect.  Throws when no agent
  /// ever appears (hello_timeout_s) or every agent is gone with work
  /// still pending and nothing left to wait for.
  std::vector<WorkerOutcome> run_jobs(
      const std::vector<WorkerJob>& jobs,
      const Observer& observer = {}) override;

 private:
  RemotePoolOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Stats stats_;
};

}  // namespace minim::util
