#include "util/csv.hpp"

#include <sstream>

#include "util/require.hpp"

namespace minim::util {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& names) {
  MINIM_REQUIRE(!header_written_, "CSV header written twice");
  MINIM_REQUIRE(rows_ == 0, "CSV header after rows");
  MINIM_REQUIRE(!names.empty(), "CSV header must be non-empty");
  width_ = names.size();
  header_written_ = true;
  write_cells(names);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (width_ == 0) width_ = cells.size();
  MINIM_REQUIRE(cells.size() == width_, "CSV row width mismatch");
  ++rows_;
  write_cells(cells);
}

void CsvWriter::row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    formatted.push_back(os.str());
  }
  row(formatted);
}

std::ofstream open_csv(const std::string& path) {
  std::ofstream out(path);
  MINIM_REQUIRE(out.good(), "cannot open CSV output file: " + path);
  return out;
}

}  // namespace minim::util
