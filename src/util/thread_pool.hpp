#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// \brief Fixed-size thread pool used to fan out Monte-Carlo runs.
///
/// Design notes (per the HPC-parallel guides):
///  * work items are independent runs — no inter-task synchronization, so a
///    simple mutex-protected deque is contention-free in practice (tasks are
///    milliseconds to seconds long);
///  * determinism is preserved by seeding each run from its run index, never
///    from scheduling order (see `util::Rng::for_stream`);
///  * `parallel_for` is a barrier construct: it returns only when all
///    iterations finished, and rethrows the first exception it saw.

namespace minim::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means `hardware_concurrency()` (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs `body(i)` for every `i` in `[0, count)` across the pool and waits.
  /// The first exception thrown by any iteration is rethrown here.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace minim::util
