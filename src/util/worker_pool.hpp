#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

/// \file worker_pool.hpp
/// \brief The pool abstraction the experiment orchestrator schedules over.
///
/// `sim::Orchestrator` plans work units and merges shards; it does not care
/// *where* a unit runs.  `WorkerPool` is that seam: a batch of `WorkerJob`s
/// — each a worker argv plus the result file it must produce — runs to
/// completion under bounded retry, and the pool reports outcomes indexed
/// like the jobs.  Two implementations exist:
///
///   * `util::ProcessPool` (subprocess.hpp) — fork/exec workers on this
///     machine; the worker argv writes the result file directly;
///   * `util::RemotePool` (remote_pool.hpp) — a TCP driver dispatching the
///     same argv to remote worker agents (util/rpc.hpp), which re-invoke
///     their own binary and stream the result bytes back; the pool then
///     writes the file.
///
/// Either way the contract is: `outcome.ok()` implies `job.out_path` holds
/// the job's complete result.  Shard results are byte-identical by
/// construction (deterministic per-unit streams), which is what makes the
/// remote pool's speculative straggler re-dispatch safe: whichever copy
/// finishes first wins, and a late duplicate is discarded unread.

namespace minim::util {

/// One unit of work: a worker argv (args[0] is the program path) that must
/// produce `out_path` and exit 0.  Remote pools replace args[0] with the
/// agent's own binary and rewrite any `--unit-out=` argument to an
/// agent-local path, so the same job description works on both pools.
struct WorkerJob {
  std::vector<std::string> args;
  std::string out_path;  ///< the result artifact the job must produce
  std::string log_path;  ///< worker stdout+stderr capture; empty = inherit
  double timeout_s = 0.0;        ///< per-attempt deadline; 0 = none
  std::size_t max_attempts = 1;  ///< total tries (1 = no retry)
};

/// Final state of one job after its last attempt.
struct WorkerOutcome {
  bool ok = false;
  std::size_t attempts = 0;  ///< charged tries (speculative copies are free)
  double wall_s = 0.0;       ///< wall clock of the deciding attempt
  bool timed_out = false;    ///< the last attempt hit its deadline
  int exit_code = -1;        ///< worker exit status when known (-1 otherwise)
  std::string executor;      ///< who ran the deciding attempt (agent name; empty = local process)
};

/// Lifecycle notification for live progress and ledger updates.
struct WorkerPoolEvent {
  enum class Kind {
    kStart,       ///< an attempt was dispatched
    kRetry,       ///< an attempt failed; another will run
    kFinish,      ///< the job is done (see outcome->ok)
    kRedispatch,  ///< a speculative straggler copy was dispatched
    kAgentJoin,   ///< a remote agent connected (remote pools only)
    kAgentLost,   ///< a remote agent disconnected; its jobs were requeued
  };
  Kind kind = Kind::kStart;
  std::size_t index = 0;    ///< job index; 0 for agent-level events
  std::size_t attempt = 0;  ///< 1-based attempt number
  /// Per-attempt wall clock, set on kRetry/kFinish — both pools report it,
  /// so one straggler-threshold policy (StragglerTracker) serves both.
  double wall_s = 0.0;
  const WorkerOutcome* outcome = nullptr;  ///< set on kRetry/kFinish
  std::string detail;  ///< agent name / human-readable context
};

class WorkerPool {
 public:
  using Observer = std::function<void(const WorkerPoolEvent&)>;

  virtual ~WorkerPool() = default;

  /// Runs every job to completion under its retry budget; never throws on
  /// job failure (inspect outcomes).  May throw when the pool itself is
  /// unusable (no platform support, every agent gone).
  virtual std::vector<WorkerOutcome> run_jobs(
      const std::vector<WorkerJob>& jobs, const Observer& observer = {}) = 0;
};

/// The shared straggler policy: a unit is a straggler when its elapsed wall
/// clock exceeds `factor` x the running median of completed-unit durations
/// (never less than `min_seconds`, and only once `min_samples` completions
/// exist — early units must not re-dispatch off a noise median).  Both
/// pools feed it from their per-attempt durations.
class StragglerTracker {
 public:
  StragglerTracker(double factor, double min_seconds, std::size_t min_samples)
      : factor_(factor), min_seconds_(min_seconds), min_samples_(min_samples) {}

  void record(double wall_s) {
    durations_.insert(
        std::upper_bound(durations_.begin(), durations_.end(), wall_s),
        wall_s);
  }

  std::size_t samples() const { return durations_.size(); }

  /// Median of the recorded durations; 0 when none.
  double median() const {
    if (durations_.empty()) return 0.0;
    const std::size_t mid = durations_.size() / 2;
    return durations_.size() % 2 == 1
               ? durations_[mid]
               : 0.5 * (durations_[mid - 1] + durations_[mid]);
  }

  /// The current re-dispatch threshold; 0 while below `min_samples`
  /// (meaning: no unit is a straggler yet).
  double threshold() const {
    if (durations_.size() < min_samples_) return 0.0;
    return std::max(min_seconds_, factor_ * median());
  }

  bool is_straggler(double elapsed_s) const {
    const double limit = threshold();
    return limit > 0.0 && elapsed_s > limit;
  }

 private:
  double factor_;
  double min_seconds_;
  std::size_t min_samples_;
  std::vector<double> durations_;  ///< kept sorted
};

}  // namespace minim::util
