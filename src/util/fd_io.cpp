#include "util/fd_io.hpp"

#include <cerrno>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace minim::util {

#if defined(__unix__) || defined(__APPLE__)

IoStatus read_exact(int fd, void* buffer, std::size_t n) {
  char* at = static_cast<char*>(buffer);
  std::size_t got = 0;
  bool use_read = false;  // set after ENOTSOCK: fd is a pipe/file
  while (got < n) {
    ssize_t step;
    if (use_read) {
      step = ::read(fd, at + got, n - got);
    } else {
      step = ::recv(fd, at + got, n - got, 0);
      if (step < 0 && errno == ENOTSOCK) {
        use_read = true;
        continue;
      }
    }
    if (step > 0) {
      got += static_cast<std::size_t>(step);
    } else if (step == 0) {
      return got == 0 ? IoStatus::kClosed : IoStatus::kError;
    } else if (errno != EINTR) {
      return IoStatus::kError;
    }
  }
  return IoStatus::kOk;
}

bool write_all(int fd, const void* buffer, std::size_t n) {
  const char* at = static_cast<const char*>(buffer);
  std::size_t sent = 0;
  bool use_write = false;  // set after ENOTSOCK: fd is a pipe/file
  while (sent < n) {
    ssize_t step;
    if (use_write) {
      step = ::write(fd, at + sent, n - sent);
    } else {
      step = ::send(fd, at + sent, n - sent, MSG_NOSIGNAL);
      if (step < 0 && errno == ENOTSOCK) {
        use_write = true;
        continue;
      }
    }
    if (step > 0) {
      sent += static_cast<std::size_t>(step);
    } else if (step < 0 && errno != EINTR) {
      return false;
    }
    // step == 0 from write(2) on a nonzero count is retried: POSIX allows
    // it only for special files, and looping is the safe interpretation.
  }
  return true;
}

#else  // !POSIX

IoStatus read_exact(int, void*, std::size_t) { return IoStatus::kError; }
bool write_all(int, const void*, std::size_t) { return false; }

#endif

}  // namespace minim::util
