#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

/// \file rng.hpp
/// \brief Deterministic, splittable pseudo-random number generation.
///
/// All randomized components in this library take an explicit `Rng&`.
/// Monte-Carlo experiments derive one independent stream per run with
/// `Rng::for_stream(master_seed, run_index)`, so results are bit-identical
/// regardless of how runs are scheduled across threads.
///
/// The generator is xoshiro256** (Blackman & Vigna), seeded through
/// splitmix64 as its authors recommend.  It is not cryptographic; it is fast,
/// has 256 bits of state and passes BigCrush, which is what a network
/// simulator needs.

namespace minim::util {

/// One step of the splitmix64 sequence; also used as a seed mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can also be plugged
/// into `<random>` distributions, though the built-in helpers below are used
/// throughout the library for speed and reproducibility across standard
/// library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { reseed(seed); }

  /// Re-initializes the state from `seed` (all-zero state is impossible).
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent stream for `stream_index` from `master_seed`.
  ///
  /// Streams for distinct indices are seeded from well-separated points of
  /// the splitmix64 sequence; this is the standard technique for parallel
  /// Monte-Carlo reproducibility.
  static Rng for_stream(std::uint64_t master_seed, std::uint64_t stream_index) {
    std::uint64_t sm = master_seed;
    const std::uint64_t base = splitmix64(sm);
    std::uint64_t mix = base ^ (0x9E3779B97F4A7C15ULL * (stream_index + 1));
    return Rng(splitmix64(mix));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  /// Next 64 random bits.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// `bound == 0` returns 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection-free in the common case; unbiased.
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = operator()();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Bernoulli draw with probability `p` of true.
  bool chance(double p) { return uniform01() < p; }

  /// Standard normal draw (Marsaglia polar method).  One value per call —
  /// the spare is deliberately not cached so a call consumes a
  /// deterministic, state-free number of uniforms on average (no hidden
  /// carry between streams).
  double normal() {
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
  }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace minim::util
