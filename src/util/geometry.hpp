#pragma once

#include <cmath>
#include <string>

/// \file geometry.hpp
/// \brief 2-D points/vectors for the planar network model.
///
/// The paper models nodes on a 100x100 unit square.  All range tests are done
/// on squared distances to keep `sqrt` out of the hot path.

namespace minim::util {

/// A 2-D point or displacement.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double norm_squared() const { return dot(*this); }
  double norm() const { return std::sqrt(norm_squared()); }

  /// Unit vector at `angle` radians from the +x axis.
  static Vec2 from_angle(double angle) { return {std::cos(angle), std::sin(angle)}; }

  std::string to_string() const;
};

/// Squared Euclidean distance (preferred for range tests).
constexpr double distance_squared(Vec2 a, Vec2 b) { return (a - b).norm_squared(); }

/// Euclidean distance.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Clamps `p` into the axis-aligned box [0,w] x [0,h].
constexpr Vec2 clamp_to_box(Vec2 p, double w, double h) {
  auto clamp = [](double v, double lo, double hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  return {clamp(p.x, 0.0, w), clamp(p.y, 0.0, h)};
}

}  // namespace minim::util
