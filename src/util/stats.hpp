#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

/// \file stats.hpp
/// \brief Streaming and batch descriptive statistics for experiment metrics.
///
/// Every plotted point in the paper is "the average of the metric measured
/// over 100 runs"; `RunningStats` accumulates those runs with Welford's
/// algorithm (numerically stable single pass) and reports mean, sample
/// standard deviation, standard error and a normal-approximation 95%
/// confidence interval.

namespace minim::util {

/// Welford single-pass accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderror() const;
  /// Half-width of the normal-approximation 95% CI around the mean.
  double ci95_halfwidth() const { return 1.959964 * stderror(); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector (quantiles require a copy + sort).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;

  /// Computes all fields from `xs`; empty input yields an all-zero summary.
  static Summary of(std::span<const double> xs);

  /// One-line human-readable rendering, e.g. for log output.
  std::string to_string() const;
};

/// Linear interpolation quantile (type-7, the numpy/R default).
/// `q` in [0,1]; `sorted` must be ascending and non-empty.
double quantile_sorted(std::span<const double> sorted, double q);

/// Simple fixed-width bucket histogram, for exploratory output.
class Histogram {
 public:
  /// Buckets [lo, hi) split into `buckets` equal cells plus under/overflow.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t count_in_bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  /// Inclusive lower edge of bucket `i`.
  double bucket_lo(std::size_t i) const;

  /// Value at quantile `q` in [0, 1] over everything recorded: the bucket
  /// holding the ceil(q * total)-th smallest sample, linearly interpolated
  /// within the bucket.  Underflow samples count at `lo`, overflow at `hi`
  /// (the histogram does not know their real values).  Returns 0 for an
  /// empty histogram; throws std::invalid_argument for q outside [0, 1].
  double quantile(double q) const;

  /// ASCII rendering with proportional bars (for example programs).
  std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace minim::util
