#include "util/subprocess.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#if defined(__unix__) || defined(__APPLE__)
#define MINIM_HAVE_POSIX_SPAWNING 1
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace minim::util {

std::string self_exe_path() {
#if defined(__linux__)
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return {};
  buffer[n] = '\0';
  return buffer;
#else
  return {};
#endif
}

ProcessPool::ProcessPool(std::size_t max_parallel)
    : max_parallel_(max_parallel == 0
                        ? std::max(1u, std::thread::hardware_concurrency())
                        : max_parallel) {}

#if MINIM_HAVE_POSIX_SPAWNING

namespace {

using clock = std::chrono::steady_clock;

/// One live child.
struct Running {
  std::size_t index = 0;    ///< spec index
  std::size_t attempt = 0;  ///< 1-based
  clock::time_point start;
  clock::time_point deadline;  ///< clock::time_point::max() when no timeout
  bool killed = false;         ///< SIGKILL sent after the deadline passed
};

/// Forks and execs one attempt of `spec`.  Returns the child pid, or -1 when
/// the fork itself failed (counted as a failed attempt, not an exception —
/// a loaded box running out of pids must not abort the whole batch).
pid_t spawn(const ProcessSpec& spec) {
  std::vector<char*> argv;
  argv.reserve(spec.args.size() + 1);
  for (const std::string& arg : spec.args)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid != 0) return pid;

  // Child: redirect stdout+stderr into the collection file, then exec.
  if (!spec.stdout_path.empty()) {
    const int fd = ::open(spec.stdout_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
  }
  ::execv(argv[0], argv.data());
  ::_exit(127);  // exec failed; 127 matches the shell's "command not found"
}

}  // namespace

std::vector<ProcessOutcome> ProcessPool::run_all(
    const std::vector<ProcessSpec>& specs, const Observer& observer) {
  std::vector<ProcessOutcome> outcomes(specs.size());
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < specs.size(); ++i) pending.push_back(i);
  std::unordered_map<pid_t, Running> running;

  auto notify = [&observer](ProcessEvent::Kind kind, std::size_t index,
                            std::size_t attempt, double wall_s,
                            const ProcessOutcome* outcome) {
    if (observer) observer(ProcessEvent{kind, index, attempt, wall_s, outcome});
  };

  // One attempt ended (or could not start): record it, then either requeue
  // (attempts left) or finalize.
  auto settle = [&](std::size_t index, std::size_t attempt, int exit_code,
                    int term_signal, bool timed_out, double wall_s) {
    ProcessOutcome& outcome = outcomes[index];
    outcome.exit_code = exit_code;
    outcome.term_signal = term_signal;
    outcome.timed_out = timed_out;
    outcome.attempts = attempt;
    outcome.wall_s = wall_s;
    if (!outcome.ok() && attempt < specs[index].max_attempts) {
      notify(ProcessEvent::Kind::kRetry, index, attempt, wall_s, &outcome);
      pending.push_back(index);
    } else {
      notify(ProcessEvent::Kind::kFinish, index, attempt, wall_s, &outcome);
    }
  };

  while (!pending.empty() || !running.empty()) {
    // Top up the parallel slots.
    while (!pending.empty() && running.size() < max_parallel_) {
      const std::size_t index = pending.front();
      pending.pop_front();
      const std::size_t attempt = outcomes[index].attempts + 1;
      notify(ProcessEvent::Kind::kStart, index, attempt, 0.0, nullptr);
      const pid_t pid = spawn(specs[index]);
      if (pid < 0) {
        settle(index, attempt, -1, 0, false, 0.0);
        continue;
      }
      Running child;
      child.index = index;
      child.attempt = attempt;
      child.start = clock::now();
      child.deadline = specs[index].timeout_s > 0.0
                           ? child.start + std::chrono::duration_cast<clock::duration>(
                                 std::chrono::duration<double>(
                                     specs[index].timeout_s))
                           : clock::time_point::max();
      running.emplace(pid, child);
    }

    // Reap every child that has exited.
    bool reaped = false;
    for (auto it = running.begin(); it != running.end();) {
      int status = 0;
      const pid_t done = ::waitpid(it->first, &status, WNOHANG);
      if (done != it->first) {
        ++it;
        continue;
      }
      const Running child = it->second;
      it = running.erase(it);
      reaped = true;
      const double wall_s =
          std::chrono::duration<double>(clock::now() - child.start).count();
      const int exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      const int term_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
      settle(child.index, child.attempt, exit_code, term_signal, child.killed,
             wall_s);
    }
    if (reaped) continue;

    // Nothing exited: enforce deadlines, then yield briefly.
    const clock::time_point now = clock::now();
    for (auto& [pid, child] : running) {
      if (!child.killed && now >= child.deadline) {
        child.killed = true;  // reaped (and settled as timed out) above
        ::kill(pid, SIGKILL);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return outcomes;
}

#else  // !MINIM_HAVE_POSIX_SPAWNING

std::vector<ProcessOutcome> ProcessPool::run_all(
    const std::vector<ProcessSpec>&, const Observer&) {
  throw std::runtime_error(
      "util::ProcessPool requires a POSIX platform (fork/exec/waitpid)");
}

#endif

std::vector<WorkerOutcome> ProcessPool::run_jobs(
    const std::vector<WorkerJob>& jobs, const WorkerPool::Observer& observer) {
  std::vector<ProcessSpec> specs;
  specs.reserve(jobs.size());
  for (const WorkerJob& job : jobs) {
    ProcessSpec spec;
    spec.args = job.args;
    spec.stdout_path = job.log_path;
    spec.timeout_s = job.timeout_s;
    spec.max_attempts = job.max_attempts;
    specs.push_back(std::move(spec));
  }

  // Translated per-event so ledger updates (shard manifests) stay live; the
  // WorkerOutcome view is rebuilt from the ProcessOutcome each time because
  // run_all only hands out pointers into its own outcome array.
  std::vector<WorkerOutcome> outcomes(jobs.size());
  auto translate = [&](const ProcessEvent& event) {
    WorkerPoolEvent out;
    switch (event.kind) {
      case ProcessEvent::Kind::kStart:
        out.kind = WorkerPoolEvent::Kind::kStart;
        break;
      case ProcessEvent::Kind::kRetry:
        out.kind = WorkerPoolEvent::Kind::kRetry;
        break;
      case ProcessEvent::Kind::kFinish:
        out.kind = WorkerPoolEvent::Kind::kFinish;
        break;
    }
    out.index = event.index;
    out.attempt = event.attempt;
    out.wall_s = event.wall_s;
    if (event.outcome != nullptr) {
      WorkerOutcome& worker = outcomes[event.index];
      worker.ok = event.outcome->ok();
      worker.attempts = event.outcome->attempts;
      worker.wall_s = event.outcome->wall_s;
      worker.timed_out = event.outcome->timed_out;
      worker.exit_code = event.outcome->exit_code;
      out.outcome = &worker;
    }
    observer(out);
  };
  const std::vector<ProcessOutcome> raw =
      run_all(specs, observer ? Observer(translate) : Observer{});
  for (std::size_t i = 0; i < raw.size(); ++i) {
    outcomes[i].ok = raw[i].ok();
    outcomes[i].attempts = raw[i].attempts;
    outcomes[i].wall_s = raw[i].wall_s;
    outcomes[i].timed_out = raw[i].timed_out;
    outcomes[i].exit_code = raw[i].exit_code;
  }
  return outcomes;
}

}  // namespace minim::util
