#include "util/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/require.hpp"
#include "util/table.hpp"

namespace minim::util {

namespace {

/// 64 exact unit buckets + 64 sub-buckets per octave [2^6, 2^64).
constexpr std::size_t kBucketCount =
    LatencyHistogram::kSubBuckets +
    (64 - LatencyHistogram::kSubBits) * LatencyHistogram::kSubBuckets;

}  // namespace

LatencyHistogram::LatencyHistogram() : counts_(kBucketCount, 0) {}

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const unsigned exponent = 63u - static_cast<unsigned>(std::countl_zero(value));
  const std::uint64_t sub = (value - (1ull << exponent)) >> (exponent - kSubBits);
  return static_cast<std::size_t>(kSubBuckets +
                                  (exponent - kSubBits) * kSubBuckets + sub);
}

void LatencyHistogram::bucket_bounds(std::size_t index, std::uint64_t& lo,
                                     std::uint64_t& width) {
  if (index < kSubBuckets) {
    lo = index;
    width = 1;
    return;
  }
  const std::size_t k = index - kSubBuckets;
  const unsigned exponent = kSubBits + static_cast<unsigned>(k / kSubBuckets);
  const std::uint64_t sub = k % kSubBuckets;
  width = 1ull << (exponent - kSubBits);
  lo = (1ull << exponent) + sub * width;
}

void LatencyHistogram::record(std::uint64_t value) {
  ++counts_[bucket_index(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

double LatencyHistogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::quantile(double q) const {
  MINIM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile wants q in [0, 1]");
  if (count_ == 0) return 0.0;
  // The ceil(q * n)-th smallest sample, clamped to a real rank.
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(count_))),
      1, count_);
  // The extreme ranks are the tracked extremes themselves — q=0 and q=1
  // (and every quantile of a single sample) are exact.
  if (rank == 1) return static_cast<double>(min_);
  if (rank == count_) return static_cast<double>(max_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      std::uint64_t lo = 0;
      std::uint64_t width = 0;
      bucket_bounds(i, lo, width);
      // Unit buckets hold one integer value exactly; log buckets estimate
      // at the midpoint.
      const double middle =
          width == 1 ? static_cast<double>(lo)
                     : static_cast<double>(lo) + static_cast<double>(width) / 2.0;
      return std::clamp(middle, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);  // unreachable: counts_ sums to count_
}

std::string LatencyHistogram::summary(double unit, const char* suffix) const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ == 0) return os.str();
  os << " p50=" << fmt_fixed(quantile(0.50) * unit, 1) << suffix
     << " p99=" << fmt_fixed(quantile(0.99) * unit, 1) << suffix
     << " p99.9=" << fmt_fixed(quantile(0.999) * unit, 1) << suffix
     << " max=" << fmt_fixed(static_cast<double>(max_) * unit, 1) << suffix;
  return os.str();
}

}  // namespace minim::util
