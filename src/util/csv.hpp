#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

/// \file csv.hpp
/// \brief Minimal RFC-4180-ish CSV emission for benchmark series.
///
/// Every figure harness in `bench/` can dump its series as CSV (in addition
/// to the human-readable table) so plots can be regenerated offline.

namespace minim::util {

/// Streams rows of a fixed-width CSV table.  Quotes fields that contain
/// commas, quotes or newlines; doubles embedded quotes.
class CsvWriter {
 public:
  /// Writes to an externally owned stream (caller keeps it alive).
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Emits the header row.  Must be called at most once, before any row.
  void header(const std::vector<std::string>& names);

  /// Emits a row of already-formatted cells.  Row width must match the
  /// header width when a header was written.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with `precision` significant digits.
  void row_numeric(const std::vector<double>& cells, int precision = 10);

  std::size_t rows_written() const { return rows_; }

  /// Escapes a single field per CSV quoting rules.
  static std::string escape(const std::string& field);

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ostream* out_;
  std::size_t width_ = 0;  // 0 until header or first row fixes it
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Opens `path` for writing and returns the stream; throws on failure.
std::ofstream open_csv(const std::string& path);

}  // namespace minim::util
