#include "util/geometry.hpp"

#include <sstream>

namespace minim::util {

std::string Vec2::to_string() const {
  std::ostringstream os;
  os << "(" << x << ", " << y << ")";
  return os.str();
}

}  // namespace minim::util
