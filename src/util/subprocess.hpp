#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/worker_pool.hpp"

/// \file subprocess.hpp
/// \brief Self-spawning worker processes for multi-process scale-out.
///
/// The experiment layer shards deterministically (`sim::Experiment` +
/// `merge_shards`), but launching and collecting the shards used to be a
/// by-hand shell loop.  `ProcessPool` is that loop written once: it runs a
/// batch of commands — typically this very binary re-invoked with
/// per-work-unit arguments (`self_exe_path`) — at a bounded parallelism,
/// captures each worker's stdout/stderr to a file, detects nonzero exits,
/// kills workers that overrun a wall-clock deadline, retries failed workers
/// a bounded number of times, and reports lifecycle events to an observer
/// for live progress display.
///
/// The pool runs on the calling thread (no helper threads): it spawns up to
/// `max_parallel` children, then alternates between reaping exits and
/// enforcing deadlines until every spec has either succeeded or exhausted
/// its attempts.  Failure of one worker never aborts the batch — the caller
/// decides what a failed outcome means (`sim::Orchestrator` raises after
/// the retry budget is spent).
///
/// POSIX only (fork/exec/waitpid); on other platforms `run_all` throws.

namespace minim::util {

/// Absolute path of the running executable (Linux: /proc/self/exe), so a
/// driver can re-invoke itself as a worker.  Empty when undiscoverable.
std::string self_exe_path();

/// One worker to run.
struct ProcessSpec {
  std::vector<std::string> args;  ///< argv; args[0] is the program path
  /// File receiving the worker's stdout+stderr (created/truncated on every
  /// attempt).  Empty = inherit the parent's streams.
  std::string stdout_path;
  double timeout_s = 0.0;        ///< wall-clock kill deadline; 0 = none
  std::size_t max_attempts = 1;  ///< total tries (1 = no retry)
};

/// Final state of one spec after its last attempt.
struct ProcessOutcome {
  int exit_code = -1;      ///< last attempt's exit status (-1: killed/never ran)
  int term_signal = 0;     ///< signal that killed the last attempt; 0 if exited
  bool timed_out = false;  ///< last attempt hit its deadline and was killed
  std::size_t attempts = 0;
  double wall_s = 0.0;     ///< wall clock of the last attempt

  bool ok() const {
    return attempts > 0 && !timed_out && term_signal == 0 && exit_code == 0;
  }
};

/// Lifecycle notification (live progress reporting).
struct ProcessEvent {
  enum class Kind {
    kStart,    ///< an attempt just spawned
    kFinish,   ///< the spec is done (see outcome.ok())
    kRetry,    ///< an attempt failed and another one will run
  };
  Kind kind = Kind::kStart;
  std::size_t index = 0;    ///< spec index in the batch
  std::size_t attempt = 0;  ///< 1-based attempt number
  /// Per-attempt wall clock (kRetry/kFinish; 0 for kStart) — the signal a
  /// straggler policy (util::StragglerTracker) consumes, reported here so
  /// local and remote pools feed the same threshold logic.
  double wall_s = 0.0;
  /// Set for kFinish/kRetry: the outcome of the attempt that just ended.
  const ProcessOutcome* outcome = nullptr;
};

class ProcessPool final : public WorkerPool {
 public:
  using Observer = std::function<void(const ProcessEvent&)>;

  /// `max_parallel` children run concurrently (0 = hardware concurrency).
  explicit ProcessPool(std::size_t max_parallel);

  /// Runs every spec to completion, retrying failures up to each spec's
  /// `max_attempts`.  Returns outcomes indexed like `specs`.  Never throws
  /// on worker failure — inspect `ProcessOutcome::ok()`.
  std::vector<ProcessOutcome> run_all(const std::vector<ProcessSpec>& specs,
                                      const Observer& observer = {});

  /// WorkerPool face of the same machinery: each job's argv runs as a
  /// local child process (the argv writes `out_path` itself, so an ok
  /// outcome implies the file exists).
  std::vector<WorkerOutcome> run_jobs(
      const std::vector<WorkerJob>& jobs,
      const WorkerPool::Observer& observer = {}) override;

  std::size_t max_parallel() const { return max_parallel_; }

 private:
  std::size_t max_parallel_;
};

}  // namespace minim::util
