#pragma once

#include <string>
#include <vector>

/// \file table.hpp
/// \brief Aligned ASCII table rendering for bench/example console output.
///
/// The figure harnesses print the same rows the paper plots; `TextTable`
/// keeps that output readable without dragging in a formatting library.

namespace minim::util {

/// Collects rows of string cells and renders them column-aligned.
class TextTable {
 public:
  /// Optional title printed above the table.
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row (printed with a separator rule underneath).
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows; `precision` = digits after the point.
  void add_row_numeric(const std::vector<double>& cells, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with two-space column gaps.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with fixed `precision` digits after the decimal point.
std::string fmt_fixed(double v, int precision = 2);

}  // namespace minim::util
