#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace minim::util {

namespace {

std::atomic<int> g_level{-1};  // -1 = not yet initialized
std::mutex g_output_mutex;
std::ostream* g_sink = nullptr;  // nullptr = stderr; guarded by g_output_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

int init_from_env() {
  const char* env = std::getenv("MINIM_LOG");
  const LogLevel level = env ? parse_log_level(env) : LogLevel::kWarn;
  return static_cast<int>(level);
}

}  // namespace

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel log_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = init_from_env();
    int expected = -1;
    g_level.compare_exchange_strong(expected, level);
    level = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::ostream& out = g_sink ? *g_sink : std::cerr;
  out << "[" << level_name(level) << "] " << message << "\n";
}

std::ostream* set_log_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::ostream* previous = g_sink;
  g_sink = sink;
  return previous;
}

}  // namespace minim::util
