#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace minim::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderror() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double quantile_sorted(std::span<const double> sorted, double q) {
  MINIM_REQUIRE(!sorted.empty(), "quantile of empty sample");
  MINIM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary Summary::of(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double x : sorted) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " p50=" << median << " max=" << max;
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  MINIM_REQUIRE(hi > lo, "histogram range must be non-empty");
  MINIM_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge case at hi
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::quantile(double q) const {
  MINIM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile wants q in [0, 1]");
  if (total_ == 0) return 0.0;
  // The ceil(q * total)-th smallest sample, clamped to a real rank; walk
  // the cumulative counts with underflow before and overflow after the
  // in-range buckets.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  rank = std::max<std::uint64_t>(1, std::min(rank, total_));
  if (rank <= underflow_) return lo_;
  std::uint64_t seen = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (rank <= seen + counts_[i]) {
      // Interpolate at the rank's position within the bucket (sample
      // centers, so a uniformly filled bucket reports its middle).
      const double within = (static_cast<double>(rank - seen) - 0.5) /
                            static_cast<double>(counts_[i]);
      return bucket_lo(i) + width_ * within;
    }
    seen += counts_[i];
  }
  return hi_;  // the rank lands in the overflow counter
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(bar_width));
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i) + width_ << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ != 0) os << "underflow " << underflow_ << "\n";
  if (overflow_ != 0) os << "overflow " << overflow_ << "\n";
  return os.str();
}

}  // namespace minim::util
