#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace minim::util {

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(fmt_fixed(v, precision));
  add_row(std::move(formatted));
}

std::string TextTable::render() const {
  // Column widths over header and all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
      if (i + 1 < cells.size()) os << "  ";
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
      rule += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace minim::util
