#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file latency_histogram.hpp
/// \brief Log-bucketed quantile histogram for per-event latency SLOs.
///
/// The serving layer needs p50/p99/p99.9 over millions of per-event
/// latencies without storing samples.  `LatencyHistogram` is an HDR-style
/// fixed-layout histogram over non-negative integer values (nanoseconds by
/// convention): values below 2^6 get exact unit buckets, and every octave
/// above is split into 64 logarithmic sub-buckets, bounding the relative
/// quantile error at 1/64 (~1.6%) across the full uint64 range.  The layout
/// is value-independent, so two histograms merge by adding counts — the
/// same mergeability contract as `RunningStats`, letting sharded serving
/// lanes combine their tails exactly.
///
/// Exact min/max/sum ride alongside the buckets, and `quantile` clamps its
/// bucket-midpoint estimate into [min, max] — so q=0 and q=1 are exact and
/// small-sample tails (p99.9 of 100 events) report the true maximum rather
/// than a bucket edge.

namespace minim::util {

class LatencyHistogram {
 public:
  /// Exact unit buckets below 2^kSubBits; 2^kSubBits sub-buckets per octave
  /// above — the relative error bound of every quantile estimate.
  static constexpr unsigned kSubBits = 6;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;

  LatencyHistogram();

  /// Records one value.  All of uint64 is trackable; no saturation.
  void record(std::uint64_t value);

  /// Adds every count of `other` into this histogram (exact: the layouts
  /// are identical by construction).
  void merge(const LatencyHistogram& other);

  /// Drops all samples (counts, min/max/sum), keeping the bucket storage.
  void reset();

  std::uint64_t count() const { return count_; }
  /// 0 when empty.
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const;

  /// Value at quantile `q` in [0, 1] (type-1 / inverse-CDF over buckets:
  /// the bucket holding the ceil(q * count)-th smallest sample, estimated
  /// at the bucket midpoint and clamped to [min, max]).  Relative error is
  /// at most 1/kSubBuckets.  Returns 0 when empty; throws
  /// std::invalid_argument when q is outside [0, 1].
  double quantile(double q) const;

  /// One-line "n=... p50=... p99=... p99.9=... max=..." rendering with the
  /// values scaled by `unit` (e.g. 1e-3 for ns -> us) — log/table output.
  std::string summary(double unit = 1.0, const char* suffix = "") const;

 private:
  static std::size_t bucket_index(std::uint64_t value);
  /// Inclusive lower edge and width of bucket `index`.
  static void bucket_bounds(std::size_t index, std::uint64_t& lo,
                            std::uint64_t& width);

  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;  ///< double: 2^53 ns ~ 104 days of accumulated latency
};

}  // namespace minim::util
