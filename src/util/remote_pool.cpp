#include "util/remote_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define MINIM_HAVE_POSIX_FLEET 1
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "util/rpc.hpp"
#include "util/subprocess.hpp"

namespace minim::util {

#if MINIM_HAVE_POSIX_FLEET

namespace {

using clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// One connected worker agent.
struct Agent {
  int fd = -1;
  std::string name;
  std::uint32_t capacity = 1;
  std::size_t busy = 0;  ///< dispatched copies awaiting a RESULT
  bool alive = true;
  std::size_t completed = 0;
  double busy_s = 0.0;
};

/// One dispatched copy of a job (a job has >1 during speculation).
struct Copy {
  std::size_t agent = 0;  ///< index into the agents vector
  clock::time_point start;
};

struct JobState {
  std::vector<Copy> copies;  ///< live copies only
  std::size_t attempts = 0;  ///< charged dispatches (speculation is free)
  bool done = false;
  bool queued = false;  ///< sitting in the pending deque right now
};

}  // namespace

RemotePool::RemotePool(RemotePoolOptions options)
    : options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("fleet: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);  // agents may be remote hosts
  address.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("fleet: bind");
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("fleet: listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("fleet: getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

RemotePool::~RemotePool() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::vector<WorkerOutcome> RemotePool::run_jobs(
    const std::vector<WorkerJob>& jobs, const Observer& observer) {
  stats_ = Stats{};
  std::vector<WorkerOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  auto say = [this](const std::string& line) {
    if (options_.log) options_.log(line);
  };
  auto notify = [&observer](WorkerPoolEvent event) {
    if (observer) observer(event);
  };

  // ------------------------------------------------- self-spawned agents
  std::vector<pid_t> spawned;
  if (options_.self_spawn > 0) {
    const std::string self = self_exe_path();
    if (self.empty())
      throw std::runtime_error("fleet: cannot self-spawn agents without "
                               "self_exe_path()");
    std::filesystem::create_directories(options_.scratch_dir);
    for (std::size_t i = 0; i < options_.self_spawn; ++i) {
      std::vector<std::string> args;
      args.push_back(self);
      args.push_back("--worker-agent=127.0.0.1:" + std::to_string(port_));
      args.push_back("--capacity=" + std::to_string(options_.agent_capacity));
      args.push_back("--agent-scratch=" + options_.scratch_dir + "/agent_" +
                     std::to_string(i));
      for (const std::string& arg : options_.agent_extra_args)
        args.push_back(arg);
      if (i == 0)
        for (const std::string& arg : options_.first_agent_extra_args)
          args.push_back(arg);

      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const std::string& arg : args)
        argv.push_back(const_cast<char*>(arg.c_str()));
      argv.push_back(nullptr);
      const std::string log_path =
          options_.scratch_dir + "/agent_" + std::to_string(i) + ".log";

      const pid_t pid = ::fork();
      if (pid == 0) {
        const int fd =
            ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
          ::dup2(fd, STDOUT_FILENO);
          ::dup2(fd, STDERR_FILENO);
          if (fd > STDERR_FILENO) ::close(fd);
        }
        ::execv(argv[0], argv.data());
        ::_exit(127);
      }
      if (pid < 0) throw_errno("fleet: fork agent");
      spawned.push_back(pid);
    }
    say("fleet: spawned " + std::to_string(spawned.size()) +
        " loopback agent(s) on port " + std::to_string(port_));
  }

  // ---------------------------------------------------------- loop state
  std::vector<Agent> agents;
  std::vector<JobState> states(jobs.size());
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pending.push_back(i);
    states[i].queued = true;
  }
  std::size_t unfinished = jobs.size();
  StragglerTracker tracker(options_.straggler_factor, options_.straggler_min_s,
                           options_.straggler_min_samples);
  clock::time_point last_activity = clock::now();

  auto alive_agents = [&agents] {
    std::size_t count = 0;
    for (const Agent& agent : agents) count += agent.alive ? 1u : 0u;
    return count;
  };

  // Finalize a job (success or exhausted retries).
  auto finish = [&](std::size_t index, WorkerOutcome outcome) {
    outcomes[index] = std::move(outcome);
    states[index].done = true;
    --unfinished;
    WorkerPoolEvent event;
    event.kind = WorkerPoolEvent::Kind::kFinish;
    event.index = index;
    event.attempt = outcomes[index].attempts;
    event.wall_s = outcomes[index].wall_s;
    event.outcome = &outcomes[index];
    event.detail = outcomes[index].executor;
    notify(event);
  };

  // A copy of `index` ended in failure (bad result / lost agent / timeout):
  // requeue when the retry budget allows and no sibling copy is still live,
  // otherwise finalize as failed.
  auto requeue_or_fail = [&](std::size_t index, double wall_s, int exit_code,
                             bool timed_out, const std::string& who) {
    JobState& state = states[index];
    if (state.done || state.queued || !state.copies.empty()) return;
    WorkerOutcome partial;
    partial.ok = false;
    partial.attempts = state.attempts;
    partial.wall_s = wall_s;
    partial.timed_out = timed_out;
    partial.exit_code = exit_code;
    partial.executor = who;
    if (state.attempts < jobs[index].max_attempts) {
      outcomes[index] = partial;
      WorkerPoolEvent event;
      event.kind = WorkerPoolEvent::Kind::kRetry;
      event.index = index;
      event.attempt = state.attempts;
      event.wall_s = wall_s;
      event.outcome = &outcomes[index];
      event.detail = who;
      notify(event);
      pending.push_back(index);
      state.queued = true;
    } else {
      finish(index, std::move(partial));
    }
  };

  auto lose_agent = [&](std::size_t agent_index, const char* why) {
    Agent& agent = agents[agent_index];
    if (!agent.alive) return;
    agent.alive = false;
    ::close(agent.fd);
    agent.fd = -1;
    agent.busy = 0;
    ++stats_.agents_lost;
    say("fleet: agent " + agent.name + " lost (" + why + ")");
    WorkerPoolEvent event;
    event.kind = WorkerPoolEvent::Kind::kAgentLost;
    event.detail = agent.name;
    notify(event);
    // Return the agent's in-flight copies to the queue.  The dispatch
    // already charged the attempt, so a unit that keeps killing agents
    // burns through its budget rather than looping forever.
    for (std::size_t i = 0; i < states.size(); ++i) {
      JobState& state = states[i];
      if (state.done) continue;
      auto gone = std::remove_if(
          state.copies.begin(), state.copies.end(),
          [agent_index](const Copy& copy) { return copy.agent == agent_index; });
      if (gone == state.copies.end()) continue;
      state.copies.erase(gone, state.copies.end());
      requeue_or_fail(i, 0.0, -1, false, agent.name);
    }
  };

  // Dispatch one copy of `index` to `agent_index`.  Speculative copies do
  // not charge the retry budget.  Returns false when the send failed (the
  // agent is then already marked lost and the job requeued).
  auto dispatch = [&](std::size_t index, std::size_t agent_index,
                      bool speculative) {
    Agent& agent = agents[agent_index];
    JobState& state = states[index];
    JobRequest request;
    request.job = index;
    // args[0] is the driver-side program path; the agent substitutes its
    // own binary (same build), so only the tail travels.
    request.args.assign(jobs[index].args.begin() + 1, jobs[index].args.end());
    if (!speculative) ++state.attempts;
    if (!send_frame(agent.fd, RpcType::kJob, encode_job(request))) {
      if (!speculative) {
        // The job came off the queue but never left the building.
        --state.attempts;
        pending.push_front(index);
        state.queued = true;
      }
      lose_agent(agent_index, "send failed");
      return false;
    }
    state.copies.push_back(Copy{agent_index, clock::now()});
    ++agent.busy;
    WorkerPoolEvent event;
    event.kind = speculative ? WorkerPoolEvent::Kind::kRedispatch
                             : WorkerPoolEvent::Kind::kStart;
    event.index = index;
    event.attempt = state.attempts;
    event.detail = agent.name;
    notify(event);
    if (speculative) {
      ++stats_.redispatched;
      say("fleet: speculative re-dispatch of unit " + std::to_string(index) +
          " to " + agent.name);
    }
    return true;
  };

  // The agent (alive, with a free slot) best placed to take one more job:
  // most free slots first, join order as the deterministic tie-break.
  auto best_agent = [&]() -> std::size_t {
    std::size_t best = agents.size();
    std::size_t best_free = 0;
    for (std::size_t i = 0; i < agents.size(); ++i) {
      const Agent& agent = agents[i];
      if (!agent.alive || agent.busy >= agent.capacity) continue;
      const std::size_t free = agent.capacity - agent.busy;
      if (free > best_free) {
        best = i;
        best_free = free;
      }
    }
    return best;
  };

  auto handle_result = [&](std::size_t agent_index, const JobResult& result) {
    Agent& agent = agents[agent_index];
    if (agent.busy > 0) --agent.busy;
    last_activity = clock::now();
    if (result.job >= jobs.size()) return;  // corrupt index: drop
    const auto index = static_cast<std::size_t>(result.job);
    JobState& state = states[index];

    // Detach this agent's copy (it may be absent for a timed-out zombie).
    double wall_s = 0.0;
    auto copy = std::find_if(
        state.copies.begin(), state.copies.end(),
        [agent_index](const Copy& c) { return c.agent == agent_index; });
    if (copy != state.copies.end()) {
      wall_s = seconds_since(copy->start);
      state.copies.erase(copy);
    }

    if (state.done) {
      // A speculation loser (or late zombie): the job already has bytes
      // identical to these, so they are discarded unread.
      ++stats_.results_ignored;
      return;
    }

    if (result.ok) {
      // Tmp+rename so the shard validator can never observe a torn file.
      const std::string tmp =
          jobs[index].out_path + ".tmp." + std::to_string(agent_index);
      bool wrote = false;
      {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        wrote = static_cast<bool>(
            out.write(result.bytes.data(),
                      static_cast<std::streamsize>(result.bytes.size())));
      }
      if (wrote &&
          std::rename(tmp.c_str(), jobs[index].out_path.c_str()) == 0) {
        if (wall_s > 0.0) {
          tracker.record(wall_s);
          agent.busy_s += wall_s;
        }
        ++agent.completed;
        WorkerOutcome outcome;
        outcome.ok = true;
        outcome.attempts = state.attempts;
        outcome.wall_s = wall_s;
        outcome.exit_code = result.exit_code;
        outcome.executor = agent.name;
        finish(index, std::move(outcome));
        return;
      }
      std::remove(tmp.c_str());
      say("fleet: cannot write " + jobs[index].out_path);
    } else if (!result.log.empty() && options_.log) {
      say("fleet: unit " + std::to_string(index) + " failed on " + agent.name +
          " (exit " + std::to_string(result.exit_code) + ")");
    }
    requeue_or_fail(index, wall_s, result.exit_code, false, agent.name);
  };

  auto accept_agent = [&] {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    RpcFrame frame;
    AgentHello hello;
    if (recv_frame(fd, frame) != RecvStatus::kFrame ||
        frame.type != RpcType::kHello ||
        !decode_hello(frame.payload, hello) || hello.capacity == 0) {
      ::close(fd);
      return;
    }
    Agent agent;
    agent.fd = fd;
    agent.name = hello.name.empty()
                     ? "agent#" + std::to_string(agents.size())
                     : hello.name;
    agent.capacity = hello.capacity;
    agents.push_back(std::move(agent));
    ++stats_.agents_seen;
    last_activity = clock::now();
    say("fleet: agent " + agents.back().name + " joined (capacity " +
        std::to_string(agents.back().capacity) + ")");
    WorkerPoolEvent event;
    event.kind = WorkerPoolEvent::Kind::kAgentJoin;
    event.detail = agents.back().name;
    notify(event);
  };

  // ------------------------------------------------------------ main loop
  while (unfinished > 0) {
    // Reap exited self-spawned agents as we go (no zombie buildup; their
    // sockets surface the disconnect separately).
    for (pid_t& pid : spawned) {
      if (pid > 0 && ::waitpid(pid, nullptr, WNOHANG) == pid) pid = -1;
    }

    // Capacity-weighted dispatch of the queue.
    while (!pending.empty()) {
      const std::size_t agent_index = best_agent();
      if (agent_index >= agents.size()) break;
      const std::size_t index = pending.front();
      pending.pop_front();
      states[index].queued = false;
      if (states[index].done) continue;
      dispatch(index, agent_index, /*speculative=*/false);
    }

    // Straggler scan: only once the queue is drained (an idle slot with
    // queued fresh work should take fresh work, not duplicate old work).
    if (pending.empty() && tracker.threshold() > 0.0) {
      for (std::size_t i = 0; i < states.size(); ++i) {
        JobState& state = states[i];
        if (state.done || state.copies.size() != 1) continue;
        if (!tracker.is_straggler(seconds_since(state.copies[0].start)))
          continue;
        const std::size_t agent_index = best_agent();
        if (agent_index >= agents.size()) break;  // nobody idle
        if (agent_index == state.copies[0].agent) continue;
        dispatch(i, agent_index, /*speculative=*/true);
      }
    }

    // Per-copy wall-clock deadlines (the driver cannot kill a remote
    // worker, so an overrun copy becomes a zombie: dropped from the
    // books, though a late success may still win).
    for (std::size_t i = 0; i < states.size(); ++i) {
      JobState& state = states[i];
      if (state.done || jobs[i].timeout_s <= 0.0) continue;
      auto overrun = std::remove_if(
          state.copies.begin(), state.copies.end(), [&](const Copy& copy) {
            return seconds_since(copy.start) > jobs[i].timeout_s;
          });
      if (overrun == state.copies.end()) continue;
      state.copies.erase(overrun, state.copies.end());
      requeue_or_fail(i, jobs[i].timeout_s, -1, true, "timeout");
    }

    if (alive_agents() == 0) {
      if (seconds_since(last_activity) > options_.hello_timeout_s) {
        for (std::size_t i = 0; i < spawned.size(); ++i)
          if (spawned[i] > 0) ::waitpid(spawned[i], nullptr, 0);
        throw std::runtime_error(
            stats_.agents_seen == 0
                ? "fleet: no worker agent connected within " +
                      std::to_string(options_.hello_timeout_s) + "s"
                : "fleet: every worker agent disconnected with work pending");
      }
    }

    // Wait for traffic: the listener plus every live agent socket.
    std::vector<pollfd> polled;
    std::vector<std::size_t> owner;  // agent index per polled entry
    polled.push_back(pollfd{listen_fd_, POLLIN, 0});
    owner.push_back(agents.size());
    for (std::size_t i = 0; i < agents.size(); ++i) {
      if (!agents[i].alive) continue;
      polled.push_back(pollfd{agents[i].fd, POLLIN, 0});
      owner.push_back(i);
    }
    const int ready =
        ::poll(polled.data(), static_cast<nfds_t>(polled.size()), 50);
    if (ready < 0 && errno != EINTR) throw_errno("fleet: poll");
    if (ready <= 0) continue;

    for (std::size_t p = 0; p < polled.size(); ++p) {
      if (polled[p].revents == 0) continue;
      if (owner[p] >= agents.size()) {
        accept_agent();
        continue;
      }
      const std::size_t agent_index = owner[p];
      if (!agents[agent_index].alive) continue;  // lost earlier this sweep
      RpcFrame frame;
      const RecvStatus status = recv_frame(agents[agent_index].fd, frame);
      if (status != RecvStatus::kFrame) {
        lose_agent(agent_index,
                   status == RecvStatus::kClosed ? "disconnected" : "error");
        continue;
      }
      if (frame.type != RpcType::kResult) continue;
      JobResult result;
      if (decode_result(frame.payload, result))
        handle_result(agent_index, result);
    }
  }

  // ------------------------------------------------------------- teardown
  for (Agent& agent : agents) {
    if (!agent.alive) continue;
    send_frame(agent.fd, RpcType::kShutdown, {});
    ::close(agent.fd);
    agent.fd = -1;
    agent.alive = false;
  }
  for (std::size_t i = 0; i < spawned.size(); ++i)
    if (spawned[i] > 0) ::waitpid(spawned[i], nullptr, 0);

  for (const Agent& agent : agents) {
    stats_.agent_names.push_back(agent.name);
    stats_.agent_completed.push_back(agent.completed);
    stats_.agent_busy_s.push_back(agent.busy_s);
  }
  return outcomes;
}

#else  // !MINIM_HAVE_POSIX_FLEET

RemotePool::RemotePool(RemotePoolOptions options)
    : options_(std::move(options)) {
  throw std::runtime_error("util::RemotePool requires POSIX sockets");
}

RemotePool::~RemotePool() = default;

std::vector<WorkerOutcome> RemotePool::run_jobs(const std::vector<WorkerJob>&,
                                                const Observer&) {
  throw std::runtime_error("util::RemotePool requires POSIX sockets");
}

#endif

}  // namespace minim::util
