#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

/// \file options.hpp
/// \brief Tiny `--key=value` command-line parser for benches and examples.
///
/// Every bench binary must also run with *no* arguments (the CI loop executes
/// `for b in build/bench/*; do $b; done`), so options always carry defaults.

namespace minim::util {

/// Parses `--key=value`, `--key value` and bare `--flag` arguments.
/// Unknown positional arguments are collected in `positional()`.
class Options {
 public:
  Options() = default;
  Options(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  /// Raw string lookup; `fallback` when absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  /// Flags: `--x`, `--x=true/1/yes/on` are true; `--x=false/0/no/off` false.
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// All parsed key/value pairs (key order).  Lets a driver re-render its
  /// own command line when spawning itself as a worker process.
  const std::map<std::string, std::string>& values() const { return values_; }

  /// Renders all parsed key/value pairs (diagnostics).
  std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace minim::util
