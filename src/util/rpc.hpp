#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

/// \file rpc.hpp
/// \brief The fleet wire protocol: length-prefixed frames between the
/// driver (`util::RemotePool`) and worker agents.
///
/// A frame is `u32 type | u32 payload_length | payload` (little-endian on
/// every platform we build for; the codec writes bytes explicitly so the
/// format is fixed regardless).  Four frame types carry the whole protocol:
///
///     agent -> driver   HELLO   {capacity, name}        once, on connect
///     driver -> agent   JOB     {job id, argv tail}     one per dispatch
///     agent -> driver   RESULT  {job id, ok, exit code, log, result bytes}
///     driver -> agent   SHUTDOWN (empty)                end of batch
///
/// The agent is this same binary re-invoked with `--worker-agent=host:port`:
/// for each JOB it re-invokes itself *again* as a subprocess (crash
/// isolation — a worker that dies produces a failed RESULT, not a dead
/// agent), rewrites the job's `--unit-out=` argument to an agent-local
/// scratch path, and streams the produced file's bytes back in the RESULT.
/// Jobs run concurrently on agent-side threads; the driver never dispatches
/// more than the advertised capacity, so the agent needs no queue.
///
/// Framing sits on util::read_exact / util::write_all, so short reads,
/// short writes, EINTR and SIGPIPE are already handled one layer down.

namespace minim::util {

enum class RpcType : std::uint32_t {
  kHello = 1,
  kJob = 2,
  kResult = 3,
  kShutdown = 4,
};

struct RpcFrame {
  RpcType type = RpcType::kShutdown;
  std::string payload;
};

enum class RecvStatus {
  kFrame,   ///< a complete frame was read
  kClosed,  ///< clean EOF between frames (peer finished the session)
  kError,   ///< truncated frame, I/O error, or oversized payload
};

/// Writes one frame; false when the peer is gone.
bool send_frame(int fd, RpcType type, const std::string& payload);

/// Reads one frame.  `max_payload` bounds the allocation a malformed or
/// hostile length prefix could demand.
RecvStatus recv_frame(int fd, RpcFrame& frame,
                      std::size_t max_payload = std::size_t{1} << 30);

// ------------------------------------------------------------------ payloads

/// Agent self-description, sent once after connecting.
struct AgentHello {
  std::uint32_t capacity = 1;  ///< concurrent jobs the agent will accept
  std::string name;            ///< for logs/stats ("host:pid")
};

/// One dispatched job.  `args` is the argv *tail* (program path excluded —
/// the agent substitutes its own binary, which is the same build).
struct JobRequest {
  std::uint64_t job = 0;  ///< driver-side job index
  std::vector<std::string> args;
};

/// The agent's answer.  `bytes` is the produced artifact (shard CSV) when
/// ok; `log` is the tail of the worker's captured stdout+stderr (failure
/// diagnosis travels with the failure).
struct JobResult {
  std::uint64_t job = 0;
  bool ok = false;
  std::int32_t exit_code = -1;
  std::string log;
  std::string bytes;
};

std::string encode_hello(const AgentHello& hello);
bool decode_hello(const std::string& payload, AgentHello& hello);

std::string encode_job(const JobRequest& request);
bool decode_job(const std::string& payload, JobRequest& request);

std::string encode_result(const JobResult& result);
bool decode_result(const std::string& payload, JobResult& result);

// -------------------------------------------------------------- agent side

/// Connects to `host:port`; -1 on failure (caller decides whether to retry).
int connect_tcp(const std::string& host, std::uint16_t port);

struct AgentOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t capacity = 0;  ///< 0 = hardware concurrency
  std::string name;            ///< advertised identity; empty = "host:pid"
  /// Failure injection: after sending this many results, drop the
  /// connection and return (a simulated agent crash).  0 = never.
  std::size_t die_after = 0;
  double delay_s = 0.0;  ///< artificial per-job slowdown (straggler injection)
  /// Progress sink (agent stdout normally); null = silent.
  std::function<void(const std::string&)> log;
};

/// Executes one JobRequest, blocking; called on an agent worker thread.
using JobRunner = std::function<JobResult(const JobRequest&)>;

/// The agent main loop: connect, HELLO, then serve JOB frames until
/// SHUTDOWN or disconnect.  Jobs run on detached-joinable threads, at most
/// `capacity` live by protocol (the driver never over-dispatches).
/// Returns the process exit code (0 = clean shutdown).
int run_worker_agent(const AgentOptions& options, const JobRunner& runner);

/// The production JobRunner: re-invokes `self_exe_path()` with the job's
/// argv tail, rewriting any `--unit-out=` argument to a file under
/// `scratch_dir`, captures the worker's output, and reads the produced
/// file's bytes into the result.
JobRunner subprocess_job_runner(const std::string& scratch_dir);

}  // namespace minim::util
