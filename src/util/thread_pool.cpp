#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace minim::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Dynamic scheduling over a shared counter: run lengths vary wildly between
  // parameter points, so static chunking would leave workers idle.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::future<void>> futures;
  const std::size_t helpers = std::min(thread_count(), count);
  futures.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) futures.push_back(submit(drain));
  drain();  // caller participates, so the pool can never deadlock on nesting
  for (auto& f : futures) f.get();
  if (failed.load()) std::rethrow_exception(first_error);
}

}  // namespace minim::util
