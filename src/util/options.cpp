#include "util/options.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/require.hpp"

namespace minim::util {

namespace {

bool starts_with_dashes(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with_dashes(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` if the next token is not another option; else bare flag.
    if (i + 1 < argc && !starts_with_dashes(argv[i + 1])) {
      values_[arg] = argv[i + 1];
      ++i;
    } else {
      values_[arg] = "";
    }
  }
}

std::string Options::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    MINIM_REQUIRE(false, "option --" + key + " expects an integer, got '" + it->second + "'");
  }
  return fallback;  // unreachable
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    MINIM_REQUIRE(false, "option --" + key + " expects a number, got '" + it->second + "'");
  }
  return fallback;  // unreachable
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = lower(it->second);
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  MINIM_REQUIRE(false, "option --" + key + " expects a boolean, got '" + it->second + "'");
  return fallback;  // unreachable
}

std::string Options::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : values_) os << "--" << k << "=" << v << " ";
  for (const auto& p : positional_) os << p << " ";
  return os.str();
}

}  // namespace minim::util
