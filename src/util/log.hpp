#pragma once

#include <mutex>
#include <sstream>
#include <string>

/// \file log.hpp
/// \brief Leveled, thread-safe logging to stderr.
///
/// Intended for examples and long-running benches; hot simulation loops do
/// not log.  The level is process-global and can be set from the environment
/// (`MINIM_LOG=debug|info|warn|error`) or programmatically.

namespace minim::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the process-wide log level (reads `MINIM_LOG` once, lazily).
LogLevel log_level();

/// Overrides the process-wide log level.
void set_log_level(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off"; unknown strings -> kInfo.
LogLevel parse_log_level(const std::string& name);

/// Emits one line (`[level] message`) if `level` >= the global level.
void log_line(LogLevel level, const std::string& message);

/// Redirects log output to `sink` (tests, log capture); nullptr restores the
/// default, stderr.  Returns the previous sink (nullptr = stderr).  The sink
/// must outlive all logging; lines are written under the same mutex that
/// serializes stderr output, so redirection is thread-safe.
std::ostream* set_log_sink(std::ostream* sink);

namespace detail {

/// RAII line builder used by the MINIM_LOG_* macros.
class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  ~LineLogger() { log_line(level_, stream_.str()); }
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace minim::util

#define MINIM_LOG_DEBUG() ::minim::util::detail::LineLogger(::minim::util::LogLevel::kDebug)
#define MINIM_LOG_INFO() ::minim::util::detail::LineLogger(::minim::util::LogLevel::kInfo)
#define MINIM_LOG_WARN() ::minim::util::detail::LineLogger(::minim::util::LogLevel::kWarn)
#define MINIM_LOG_ERROR() ::minim::util::detail::LineLogger(::minim::util::LogLevel::kError)
