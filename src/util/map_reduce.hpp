#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

/// \file map_reduce.hpp
/// \brief Deterministic parallel map-reduce over an index space.
///
/// Every Monte-Carlo engine in this repository has the same shape: fan N
/// independent items over the thread pool, hand item i its own
/// `Rng::for_stream` stream, park results in an item-indexed slot vector,
/// and reduce them *in item order* on the calling thread.  That construction
/// makes the outcome bit-identical for any thread count (including 1) no
/// matter how the pool schedules the items.  `map_reduce` is that shape
/// written once: `sim::run_sweep` and `sim::Experiment` (and through it
/// `sim::run_scenario_sweep`) are thin layers over it.
///
/// Determinism contract:
///  * item i's randomness comes only from `Rng::for_stream(seed, stream(i))`
///    where `stream(i)` depends only on i, never on scheduling;
///  * `map` must not touch shared mutable state;
///  * `reduce` runs serially on the calling thread, in ascending item order.
///
/// Sharding: `stream_offset` (or the `stream_of` override) decouples the
/// local item index from the global stream index, so a process that runs
/// items [0, count) of a larger [0, total) space still draws the *global*
/// streams.  This is the primitive behind `sim::Experiment`'s trial-range
/// sharding: k processes each run a slice and their merged output is
/// bit-identical to one process running everything.

namespace minim::util {

struct MapReduceOptions {
  std::uint64_t seed = 0;   ///< master seed; items derive streams from it
  std::size_t threads = 0;  ///< 0 = hardware concurrency, 1 = serial (no pool)
  std::uint64_t stream_offset = 0;  ///< stream index of item 0
  /// Optional item -> stream mapping; overrides `stream_offset + i` when set
  /// (used when a shard's items are not contiguous in stream space).
  std::function<std::uint64_t(std::size_t)> stream_of;
};

/// Applies `map(i, rng)` to every item in [0, count) across a thread pool,
/// then calls `reduce(i, std::move(result_i))` serially on the calling
/// thread in ascending item order.  Bit-identical for any thread count by
/// construction.  The first exception thrown by any `map` is rethrown.
template <typename MapFn, typename ReduceFn>
void map_reduce(std::size_t count, const MapReduceOptions& options, MapFn&& map,
                ReduceFn&& reduce) {
  using R = std::invoke_result_t<MapFn&, std::size_t, Rng&>;
  static_assert(!std::is_void_v<R>, "map must return a value to reduce");

  std::vector<std::optional<R>> slots(count);
  auto run_one = [&](std::size_t i) {
    const std::uint64_t stream =
        options.stream_of ? options.stream_of(i) : options.stream_offset + i;
    Rng rng = Rng::for_stream(options.seed, stream);
    slots[i].emplace(map(i, rng));
  };

  if (options.threads == 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) run_one(i);
  } else {
    ThreadPool pool(options.threads);
    pool.parallel_for(count, run_one);
  }

  for (std::size_t i = 0; i < count; ++i) reduce(i, std::move(*slots[i]));
}

}  // namespace minim::util
