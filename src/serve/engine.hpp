#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"
#include "util/latency_histogram.hpp"

/// \file engine.hpp
/// \brief The online assignment engine: a long-lived serving session.
///
/// Everything below sim/ is batch — generate a workload, replay it, write
/// CSVs — but the paper's minimal-recoding strategies exist because
/// reconfiguration happens *online* in a live network.  `AssignmentEngine`
/// wraps `sim::Simulation` + a recoding strategy behind a session API
/// measured the way a service is measured:
///
///   * `apply(TraceEvent) -> EventReceipt`: applies one reconfiguration
///     event and reports what serving it cost — latency, how many nodes
///     were recolored, whether the bounded-recoloring path fell back to a
///     from-scratch recolor — plus the post-event population and max code;
///   * read-side queries (`code_of`, `conflicts_of`, `summary`) answer
///     code-assignment questions between events;
///   * per-event-type `util::LatencyHistogram`s accumulate the latency
///     distribution (p50/p99/p99.9) without storing samples.
///
/// Nodes are named by join order (the `sim/trace` convention), so a session
/// is meaningful to a client that never sees internal node ids.  Applying a
/// recorded trace event by event leaves the engine in a state byte-identical
/// to batch `apply_trace` — the equivalence the serving tests pin down.

namespace minim::serve {

/// What serving one event cost, and where it left the network.
struct EventReceipt {
  std::uint64_t seq = 0;       ///< 1-based event number within the session
  sim::TraceEvent::Kind kind = sim::TraceEvent::Kind::kJoin;
  std::size_t node = 0;        ///< join-order index of the subject
  std::uint64_t latency_ns = 0;  ///< wall time to apply + repair
  std::size_t recoded = 0;     ///< nodes whose color actually changed
  /// True when a rank-bounded strategy (bbb-bounded) abandoned the bounded
  /// path and recolored from scratch — the tail-latency event class.
  bool fallback = false;
  net::Color max_color = net::kNoColor;  ///< network-wide max after the event
  std::size_t live_nodes = 0;  ///< population after the event
};

/// One event's outcome inside a batch.  On the exact path (single event,
/// or a strategy without batched repair) the fields are post-THIS-event;
/// on the coalesced path they are post-batch (`exact` says which).
struct BatchEventOutcome {
  std::uint64_t seq = 0;
  sim::TraceEvent::Kind kind = sim::TraceEvent::Kind::kJoin;
  std::size_t node = 0;        ///< join-order index of the subject
  std::size_t recoded = 0;     ///< exact: this event's; else the batch net
  net::Color max_color = net::kNoColor;
  std::size_t live_nodes = 0;
  bool exact = false;
};

/// What serving one batch cost.  All-or-nothing: a batch containing any
/// invalid reference is rejected up front (std::invalid_argument) with the
/// engine untouched, so `outcomes` always covers every event.
struct BatchReceipt {
  std::size_t events = 0;
  std::uint64_t latency_ns = 0;  ///< wall time for the whole batch
  std::size_t recoded = 0;       ///< net recolors across the batch
  std::size_t repairs = 0;       ///< strategy repair invocations
  bool coalesced = false;        ///< one repair covered the whole batch
  /// A rank-bounded strategy fell back to a from-scratch recolor somewhere
  /// in the batch (batch-level: per-event attribution does not exist on
  /// the coalesced path).
  bool fallback = false;
  net::Color max_color = net::kNoColor;  ///< post-batch network-wide max
  std::size_t live_nodes = 0;            ///< post-batch population
  std::vector<BatchEventOutcome> outcomes;
};

class AssignmentEngine {
 public:
  struct Params {
    double width = 100.0;
    double height = 100.0;
    /// Validate CA1/CA2 after every event (slow; tests and debugging).
    bool validate = false;
    /// Component-parallel bounded recoloring for rank-bounded strategies
    /// (`strategies::BbbStrategy::Params::recolor_threads`): batches whose
    /// dirty regions are independent recolor them concurrently, bit-identical
    /// to serial.  1 = serial (default), 0 = one thread per hardware core.
    /// Ignored by strategies without the knob.
    std::size_t recolor_threads = 1;
  };

  /// Owns the strategy, constructed by name via `strategies::make_strategy`
  /// (throws std::invalid_argument for unknown names).
  explicit AssignmentEngine(const std::string& strategy_name)
      : AssignmentEngine(strategy_name, Params()) {}
  AssignmentEngine(const std::string& strategy_name, const Params& params);
  /// Borrows `strategy` (must outlive the engine) — for tests that need to
  /// inspect a configured strategy instance.
  explicit AssignmentEngine(core::RecodingStrategy& strategy)
      : AssignmentEngine(strategy, Params()) {}
  AssignmentEngine(core::RecodingStrategy& strategy, const Params& params);

  /// Applies one event and repairs the assignment.  Throws
  /// std::invalid_argument when the event references a node that has not
  /// joined or has already left (the engine state is untouched).
  EventReceipt apply(const sim::TraceEvent& event);

  /// Applies a whole batch — with a batch-capable strategy, one repair pass
  /// covers every event (see sim::Simulation::apply_batch).  Every node
  /// reference is validated against the projected state (joins and leaves
  /// earlier in the batch count) BEFORE any mutation; an invalid reference
  /// throws std::invalid_argument and leaves the engine untouched.  An
  /// empty batch is a no-op receipt.  Per-event latency histograms receive
  /// the batch's amortized per-event latency.
  BatchReceipt apply_batch(std::span<const sim::TraceEvent> events);

  // ------------------------------------------------------------- queries
  /// Nodes joined so far; join-order indices are [0, joined()).
  std::size_t joined() const { return by_join_order_.size(); }
  bool is_live(std::size_t node) const {
    return node < by_join_order_.size() && !departed_[node];
  }
  /// Current code of a live node (throws std::invalid_argument otherwise).
  net::Color code_of(std::size_t node) const;
  /// Join-order indices of every live node in conflict with `node`
  /// (ascending).  Throws std::invalid_argument for dead/unknown nodes.
  std::vector<std::size_t> conflicts_of(std::size_t node) const;

  struct Summary {
    std::size_t live = 0;
    std::size_t joined = 0;     ///< total joins ever (the index space)
    std::size_t events = 0;
    std::size_t recodings = 0;
    std::size_t distinct_colors = 0;
    net::Color max_color = net::kNoColor;
  };
  Summary summary() const;

  // ------------------------------------------------------- instrumentation
  /// Latency distribution of every event of `kind` served so far.
  const util::LatencyHistogram& latency(sim::TraceEvent::Kind kind) const {
    return latency_[static_cast<std::size_t>(kind)];
  }
  /// All four event-type histograms merged (allocation per call).
  util::LatencyHistogram total_latency() const;

  std::uint64_t events_served() const { return seq_; }
  const std::string& strategy_name() const { return strategy_name_; }
  const sim::Simulation& simulation() const { return *simulation_; }

  /// Ends the session and starts a fresh one on the same strategy/params:
  /// clears the network, the join-order index space, and the latency
  /// histograms.  (The strategy keeps its identity; its caches re-seed on
  /// the first event of the new session.)
  void reset();

 private:
  net::NodeId node_id_of(std::size_t node, const char* verb) const;

  Params params_;
  core::StrategyPtr owned_strategy_;        ///< null when borrowed
  core::RecodingStrategy* strategy_;        ///< never null
  std::string strategy_name_;
  std::optional<sim::Simulation> simulation_;
  std::vector<net::NodeId> by_join_order_;  ///< join index -> engine node id
  std::vector<char> departed_;              ///< by join index
  std::vector<std::size_t> join_index_of_;  ///< engine node id -> join index
  std::uint64_t seq_ = 0;
  std::array<util::LatencyHistogram, 4> latency_;  ///< by TraceEvent::Kind

  // apply_batch scratch (reused across batches).
  sim::BatchResult batch_scratch_;
  std::vector<char> departed_projection_;
};

}  // namespace minim::serve
