#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"
#include "util/latency_histogram.hpp"

/// \file engine.hpp
/// \brief The online assignment engine: a long-lived serving session.
///
/// Everything below sim/ is batch — generate a workload, replay it, write
/// CSVs — but the paper's minimal-recoding strategies exist because
/// reconfiguration happens *online* in a live network.  `AssignmentEngine`
/// wraps `sim::Simulation` + a recoding strategy behind a session API
/// measured the way a service is measured:
///
///   * `apply(TraceEvent) -> EventReceipt`: applies one reconfiguration
///     event and reports what serving it cost — latency, how many nodes
///     were recolored, whether the bounded-recoloring path fell back to a
///     from-scratch recolor — plus the post-event population and max code;
///   * read-side queries (`code_of`, `conflicts_of`, `summary`) answer
///     code-assignment questions between events;
///   * per-event-type `util::LatencyHistogram`s accumulate the latency
///     distribution (p50/p99/p99.9) without storing samples.
///
/// Nodes are named by join order (the `sim/trace` convention), so a session
/// is meaningful to a client that never sees internal node ids.  Applying a
/// recorded trace event by event leaves the engine in a state byte-identical
/// to batch `apply_trace` — the equivalence the serving tests pin down.

namespace minim::serve {

/// What serving one event cost, and where it left the network.
struct EventReceipt {
  std::uint64_t seq = 0;       ///< 1-based event number within the session
  sim::TraceEvent::Kind kind = sim::TraceEvent::Kind::kJoin;
  std::size_t node = 0;        ///< join-order index of the subject
  std::uint64_t latency_ns = 0;  ///< wall time to apply + repair
  std::size_t recoded = 0;     ///< nodes whose color actually changed
  /// True when a rank-bounded strategy (bbb-bounded) abandoned the bounded
  /// path and recolored from scratch — the tail-latency event class.
  bool fallback = false;
  net::Color max_color = net::kNoColor;  ///< network-wide max after the event
  std::size_t live_nodes = 0;  ///< population after the event
};

class AssignmentEngine {
 public:
  struct Params {
    double width = 100.0;
    double height = 100.0;
    /// Validate CA1/CA2 after every event (slow; tests and debugging).
    bool validate = false;
  };

  /// Owns the strategy, constructed by name via `strategies::make_strategy`
  /// (throws std::invalid_argument for unknown names).
  explicit AssignmentEngine(const std::string& strategy_name)
      : AssignmentEngine(strategy_name, Params()) {}
  AssignmentEngine(const std::string& strategy_name, const Params& params);
  /// Borrows `strategy` (must outlive the engine) — for tests that need to
  /// inspect a configured strategy instance.
  explicit AssignmentEngine(core::RecodingStrategy& strategy)
      : AssignmentEngine(strategy, Params()) {}
  AssignmentEngine(core::RecodingStrategy& strategy, const Params& params);

  /// Applies one event and repairs the assignment.  Throws
  /// std::invalid_argument when the event references a node that has not
  /// joined or has already left (the engine state is untouched).
  EventReceipt apply(const sim::TraceEvent& event);

  // ------------------------------------------------------------- queries
  /// Nodes joined so far; join-order indices are [0, joined()).
  std::size_t joined() const { return by_join_order_.size(); }
  bool is_live(std::size_t node) const {
    return node < by_join_order_.size() && !departed_[node];
  }
  /// Current code of a live node (throws std::invalid_argument otherwise).
  net::Color code_of(std::size_t node) const;
  /// Join-order indices of every live node in conflict with `node`
  /// (ascending).  Throws std::invalid_argument for dead/unknown nodes.
  std::vector<std::size_t> conflicts_of(std::size_t node) const;

  struct Summary {
    std::size_t live = 0;
    std::size_t joined = 0;     ///< total joins ever (the index space)
    std::size_t events = 0;
    std::size_t recodings = 0;
    std::size_t distinct_colors = 0;
    net::Color max_color = net::kNoColor;
  };
  Summary summary() const;

  // ------------------------------------------------------- instrumentation
  /// Latency distribution of every event of `kind` served so far.
  const util::LatencyHistogram& latency(sim::TraceEvent::Kind kind) const {
    return latency_[static_cast<std::size_t>(kind)];
  }
  /// All four event-type histograms merged (allocation per call).
  util::LatencyHistogram total_latency() const;

  std::uint64_t events_served() const { return seq_; }
  const std::string& strategy_name() const { return strategy_name_; }
  const sim::Simulation& simulation() const { return *simulation_; }

  /// Ends the session and starts a fresh one on the same strategy/params:
  /// clears the network, the join-order index space, and the latency
  /// histograms.  (The strategy keeps its identity; its caches re-seed on
  /// the first event of the new session.)
  void reset();

 private:
  net::NodeId node_id_of(std::size_t node, const char* verb) const;

  Params params_;
  core::StrategyPtr owned_strategy_;        ///< null when borrowed
  core::RecodingStrategy* strategy_;        ///< never null
  std::string strategy_name_;
  std::optional<sim::Simulation> simulation_;
  std::vector<net::NodeId> by_join_order_;  ///< join index -> engine node id
  std::vector<char> departed_;              ///< by join index
  std::vector<std::size_t> join_index_of_;  ///< engine node id -> join index
  std::uint64_t seq_ = 0;
  std::array<util::LatencyHistogram, 4> latency_;  ///< by TraceEvent::Kind
};

}  // namespace minim::serve
