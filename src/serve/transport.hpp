#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>

/// \file transport.hpp
/// \brief Line transports for the serving session.
///
/// A serving session is transport-agnostic: it reads request lines and
/// writes one response line per event/query (see session.hpp).  Three
/// transports cover the deployment shapes:
///
///   * `StreamTransport` — any istream/ostream pair: stdin/stdout for
///     `cdma_drive --serve --transport=stdin`, stringstreams in tests;
///   * `TraceFileTransport` — requests from a recorded trace file,
///     responses to a stream (batch ingestion through the online path);
///   * `TcpServerTransport` — a localhost TCP socket speaking the same
///     line protocol; binds eagerly (so the port is known before a client
///     exists) and accepts its single client lazily on the first read.
///
/// Transports are deliberately single-client: the engine is a sequenced
/// event log (the paper's one-at-a-time reconfiguration model), so there is
/// nothing for a second concurrent client to safely do.

namespace minim::serve {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks for the next request line (without the terminator); false on
  /// end of input / client disconnect.
  virtual bool read_line(std::string& line) = 0;

  /// Writes one response line (terminator appended).
  virtual void write_line(std::string_view line) = 0;

  /// Human-readable endpoint ("stdin", "trace:<path>", "tcp:127.0.0.1:<p>").
  virtual std::string describe() const = 0;
};

/// Requests from `in`, responses to `out`.  Borrows both streams.
class StreamTransport final : public Transport {
 public:
  StreamTransport(std::istream& in, std::ostream& out,
                  std::string name = "stream");

  bool read_line(std::string& line) override;
  void write_line(std::string_view line) override;
  std::string describe() const override { return name_; }

 private:
  std::istream* in_;
  std::ostream* out_;
  std::string name_;
};

/// Requests from a trace file, responses to `out` (borrowed).  Throws
/// std::invalid_argument when the file cannot be opened.
class TraceFileTransport final : public Transport {
 public:
  TraceFileTransport(const std::string& path, std::ostream& out);

  bool read_line(std::string& line) override;
  void write_line(std::string_view line) override;
  std::string describe() const override { return "trace:" + path_; }

 private:
  std::string path_;
  std::ifstream file_;
  std::ostream* out_;
};

/// One-shot localhost TCP server.  The constructor binds and listens on
/// 127.0.0.1 (`port` 0 = kernel-assigned, read back via `port()`); the
/// first `read_line` blocks in accept() for the single client.  Lines are
/// newline-terminated; a trailing carriage return is stripped so `telnet`
/// and `nc -C` sessions work unmodified.  Throws std::runtime_error on
/// socket errors at setup.
class TcpServerTransport final : public Transport {
 public:
  explicit TcpServerTransport(std::uint16_t port = 0);
  ~TcpServerTransport() override;

  TcpServerTransport(const TcpServerTransport&) = delete;
  TcpServerTransport& operator=(const TcpServerTransport&) = delete;

  /// The bound port (the kernel's pick when constructed with 0).
  std::uint16_t port() const { return port_; }

  /// Closes the client connection (the client sees EOF).  The server keeps
  /// listening state but accepts no replacement — one session, one client.
  void disconnect();

  bool read_line(std::string& line) override;
  void write_line(std::string_view line) override;
  std::string describe() const override;

 private:
  bool accept_client();

  int listen_fd_ = -1;
  int client_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string buffer_;  ///< received bytes not yet returned as lines
  bool eof_ = false;
};

}  // namespace minim::serve
