#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

/// \file transport.hpp
/// \brief Line transports for the serving session.
///
/// A serving session is transport-agnostic: it reads request lines and
/// writes one response line per event/query (see session.hpp).  Three
/// transports cover the deployment shapes:
///
///   * `StreamTransport` — any istream/ostream pair: stdin/stdout for
///     `cdma_drive --serve --transport=stdin`, stringstreams in tests;
///   * `TraceFileTransport` — requests from a recorded trace file,
///     responses to a stream (batch ingestion through the online path);
///   * `TcpServerTransport` — a localhost TCP socket speaking the same
///     line protocol; binds eagerly (so the port is known before a client
///     exists) and accepts its single client lazily on the first read.
///
/// Transports are deliberately single-client: the engine is a sequenced
/// event log (the paper's one-at-a-time reconfiguration model), so there is
/// nothing for a second concurrent client to safely do.

namespace minim::serve {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks for the next request line (without the terminator); false on
  /// end of input / client disconnect.
  virtual bool read_line(std::string& line) = 0;

  /// Appends up to `max` request lines that are available WITHOUT blocking
  /// (bytes the client already sent).  Pipelined sessions call it after a
  /// blocking `read_line` to drain the rest of a request burst into one
  /// batch.  The default — no lookahead — keeps a transport strictly
  /// line-at-a-time.
  virtual std::size_t read_available(std::vector<std::string>& lines,
                                     std::size_t max) {
    (void)lines;
    (void)max;
    return 0;
  }

  /// Writes one response line (terminator appended).  A transport may
  /// buffer; `flush()` delivers.
  virtual void write_line(std::string_view line) = 0;

  /// Delivers buffered response bytes to the peer.  Sessions flush once per
  /// drained input burst — the amortization pipelining exists for.
  virtual void flush() {}

  /// Human-readable endpoint ("stdin", "trace:<path>", "tcp:127.0.0.1:<p>").
  virtual std::string describe() const = 0;
};

/// Requests from `in`, responses to `out`.  Borrows both streams.
/// `read_available` serves lines out of the istream's already-buffered
/// characters (`in_avail`), so a piped burst batches without ever blocking
/// past it.  Responses buffer until `flush()`.
class StreamTransport final : public Transport {
 public:
  StreamTransport(std::istream& in, std::ostream& out,
                  std::string name = "stream");

  bool read_line(std::string& line) override;
  std::size_t read_available(std::vector<std::string>& lines,
                             std::size_t max) override;
  void write_line(std::string_view line) override;
  void flush() override;
  std::string describe() const override { return name_; }

 private:
  /// Extracts one complete line from `pending_`; false when none.
  bool take_pending_line(std::string& line);

  std::istream* in_;
  std::ostream* out_;
  std::string name_;
  /// Characters slurped ahead of the session by read_available; read_line
  /// serves from here before touching the stream again.
  std::string pending_;
};

/// Requests from a trace file, responses to `out` (borrowed).  Throws
/// std::invalid_argument when the file cannot be opened.  A file never
/// blocks, so `read_available` drains up to `max` lines of it — trace
/// replay through a pipelined session ingests in engine-sized batches.
class TraceFileTransport final : public Transport {
 public:
  TraceFileTransport(const std::string& path, std::ostream& out);

  bool read_line(std::string& line) override;
  std::size_t read_available(std::vector<std::string>& lines,
                             std::size_t max) override;
  void write_line(std::string_view line) override;
  void flush() override;
  std::string describe() const override { return "trace:" + path_; }

 private:
  std::string path_;
  std::ifstream file_;
  std::ostream* out_;
};

/// One-shot localhost TCP server.  The constructor binds and listens on
/// 127.0.0.1 (`port` 0 = kernel-assigned, read back via `port()`); the
/// first `read_line` blocks in accept() for the single client.  Lines are
/// newline-terminated; a trailing carriage return is stripped so `telnet`
/// and `nc -C` sessions work unmodified.  Throws std::runtime_error on
/// socket errors at setup.
class TcpServerTransport final : public Transport {
 public:
  explicit TcpServerTransport(std::uint16_t port = 0);
  ~TcpServerTransport() override;

  TcpServerTransport(const TcpServerTransport&) = delete;
  TcpServerTransport& operator=(const TcpServerTransport&) = delete;

  /// The bound port (the kernel's pick when constructed with 0).
  std::uint16_t port() const { return port_; }

  /// Closes the client connection (the client sees EOF).  The server keeps
  /// listening state but accepts no replacement — one session, one client.
  void disconnect();

  bool read_line(std::string& line) override;
  /// Serves lines from the receive buffer, topped up with whatever the
  /// kernel already holds (non-blocking recv) — a client that pipelined a
  /// burst of requests gets them coalesced into one batch.
  std::size_t read_available(std::vector<std::string>& lines,
                             std::size_t max) override;
  void write_line(std::string_view line) override;
  void flush() override;
  std::string describe() const override;

 private:
  bool accept_client();
  /// Extracts one buffered line; false when `buffer_` holds no complete
  /// line (and, at EOF, no unterminated tail).
  bool pop_buffered_line(std::string& line);
  void send_all(const char* data, std::size_t size);

  int listen_fd_ = -1;
  int client_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string buffer_;      ///< received bytes not yet returned as lines
  std::string out_buffer_;  ///< response bytes not yet flushed
  bool eof_ = false;
};

}  // namespace minim::serve
