#include "serve/session.hpp"

#include <exception>
#include <optional>
#include <sstream>

#include "sim/trace.hpp"

namespace minim::serve {

namespace {

/// First whitespace-delimited token of `line` with comments stripped;
/// empty for blank/comment lines.
std::string first_token(const std::string& line) {
  std::string text = line;
  const std::size_t hash = text.find('#');
  if (hash != std::string::npos) text.erase(hash);
  std::istringstream fields(text);
  std::string token;
  fields >> token;
  return token;
}

/// Parses the single `<node>` argument of a query; nullopt (with `reason`
/// set) on missing/invalid/trailing input or a dead node.
std::optional<std::size_t> query_node(const AssignmentEngine& engine,
                                      const std::string& line,
                                      const std::string& verb,
                                      std::string& reason) {
  std::string text = line;
  const std::size_t hash = text.find('#');
  if (hash != std::string::npos) text.erase(hash);
  std::istringstream fields(text);
  std::string seen_verb;
  fields >> seen_verb;
  long long value = 0;
  if (!(fields >> value) || value < 0) {
    reason = verb + ": missing/invalid node";
    return std::nullopt;
  }
  std::string trailing;
  if (fields >> trailing) {
    reason = verb + ": trailing tokens";
    return std::nullopt;
  }
  const auto node = static_cast<std::size_t>(value);
  if (node >= engine.joined()) {
    reason = verb + ": node has not joined yet";
    return std::nullopt;
  }
  if (!engine.is_live(node)) {
    reason = verb + ": node already left";
    return std::nullopt;
  }
  return node;
}

}  // namespace

std::string format_receipt(const EventReceipt& receipt) {
  std::ostringstream os;
  os << "ok " << receipt.seq << " " << sim::to_string(receipt.kind)
     << " node=" << receipt.node << " recoded=" << receipt.recoded
     << " maxc=" << receipt.max_color << " live=" << receipt.live_nodes
     << " fallback=" << (receipt.fallback ? 1 : 0);
  return os.str();
}

SessionStats serve_session(AssignmentEngine& engine, Transport& transport,
                           const SessionOptions& options) {
  sim::TraceLineParser parser;
  SessionStats stats;
  std::string line;

  const auto respond = [&](const std::string& response) {
    if (options.echo) transport.write_line(response);
  };
  const auto error = [&](const std::string& reason) {
    ++stats.errors;
    respond("err line=" + std::to_string(stats.lines) + " " + reason);
  };

  while (transport.read_line(line)) {
    ++stats.lines;
    const std::string verb = first_token(line);

    if (verb == "quit") {
      ++stats.queries;
      respond("bye");
      break;
    }
    if (verb == "stats") {
      ++stats.queries;
      const AssignmentEngine::Summary s = engine.summary();
      std::ostringstream os;
      os << "stats live=" << s.live << " joined=" << s.joined
         << " maxc=" << s.max_color << " colors=" << s.distinct_colors
         << " events=" << s.events << " recodings=" << s.recodings;
      respond(os.str());
      continue;
    }
    if (verb == "code" || verb == "conflicts") {
      ++stats.queries;
      std::string reason;
      const auto node = query_node(engine, line, verb, reason);
      if (!node) {
        error(reason);
        continue;
      }
      if (verb == "code") {
        respond("code node=" + std::to_string(*node) +
                " color=" + std::to_string(engine.code_of(*node)));
      } else {
        const std::vector<std::size_t> partners = engine.conflicts_of(*node);
        std::ostringstream os;
        os << "conflicts node=" << *node << " count=" << partners.size()
           << " partners=";
        if (partners.empty()) os << "-";
        for (std::size_t i = 0; i < partners.size(); ++i)
          os << (i ? "," : "") << partners[i];
        respond(os.str());
      }
      continue;
    }

    // Everything else is the trace grammar (or a reportable parse error).
    try {
      const std::optional<sim::TraceEvent> event =
          parser.parse_line(line, stats.lines);
      if (!event) continue;  // blank/comment: no response line
      const EventReceipt receipt = engine.apply(*event);
      ++stats.events;
      respond(format_receipt(receipt));
    } catch (const sim::TraceParseError& parse_error) {
      error(parse_error.reason());
    } catch (const std::exception& unexpected) {
      // The parser validated the reference, so the engine should never
      // throw here; surface it rather than killing the session.
      error(unexpected.what());
    }
  }
  return stats;
}

}  // namespace minim::serve
