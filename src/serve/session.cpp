#include "serve/session.hpp"

#include <exception>
#include <optional>
#include <sstream>
#include <vector>

#include "sim/trace.hpp"

namespace minim::serve {

namespace {

/// First whitespace-delimited token of `line` with comments stripped;
/// empty for blank/comment lines.
std::string first_token(const std::string& line) {
  std::string text = line;
  const std::size_t hash = text.find('#');
  if (hash != std::string::npos) text.erase(hash);
  std::istringstream fields(text);
  std::string token;
  fields >> token;
  return token;
}

/// Parses the single `<node>` argument of a query; nullopt (with `reason`
/// set) on missing/invalid/trailing input or a dead node.
std::optional<std::size_t> query_node(const AssignmentEngine& engine,
                                      const std::string& line,
                                      const std::string& verb,
                                      std::string& reason) {
  std::string text = line;
  const std::size_t hash = text.find('#');
  if (hash != std::string::npos) text.erase(hash);
  std::istringstream fields(text);
  std::string seen_verb;
  fields >> seen_verb;
  long long value = 0;
  if (!(fields >> value) || value < 0) {
    reason = verb + ": missing/invalid node";
    return std::nullopt;
  }
  std::string trailing;
  if (fields >> trailing) {
    reason = verb + ": trailing tokens";
    return std::nullopt;
  }
  const auto node = static_cast<std::size_t>(value);
  if (node >= engine.joined()) {
    reason = verb + ": node has not joined yet";
    return std::nullopt;
  }
  if (!engine.is_live(node)) {
    reason = verb + ": node already left";
    return std::nullopt;
  }
  return node;
}

}  // namespace

std::string format_receipt(const EventReceipt& receipt) {
  std::ostringstream os;
  os << "ok " << receipt.seq << " " << sim::to_string(receipt.kind)
     << " node=" << receipt.node << " recoded=" << receipt.recoded
     << " maxc=" << receipt.max_color << " live=" << receipt.live_nodes
     << " fallback=" << (receipt.fallback ? 1 : 0);
  return os.str();
}

std::string format_receipt(const BatchReceipt& receipt, std::size_t index) {
  const BatchEventOutcome& outcome = receipt.outcomes[index];
  std::ostringstream os;
  os << "ok " << outcome.seq << " " << sim::to_string(outcome.kind)
     << " node=" << outcome.node << " recoded=" << outcome.recoded
     << " maxc=" << outcome.max_color << " live=" << outcome.live_nodes
     << " fallback=" << (receipt.fallback ? 1 : 0);
  if (!outcome.exact) os << " batch=" << receipt.events;
  return os.str();
}

SessionStats serve_session(AssignmentEngine& engine, Transport& transport,
                           const SessionOptions& options) {
  sim::TraceLineParser parser;
  SessionStats stats;
  std::string line;
  std::vector<std::string> burst;
  std::vector<sim::TraceEvent> pending;       // parsed, not yet applied
  std::vector<std::size_t> pending_lines;     // their request line numbers
  bool done = false;

  const auto respond = [&](const std::string& response) {
    if (options.echo) transport.write_line(response);
  };
  const auto error_at = [&](std::size_t line_number,
                            const std::string& reason) {
    ++stats.errors;
    respond("err line=" + std::to_string(line_number) + " " + reason);
  };

  // Applies every pending event as one engine batch and answers each with
  // its receipt, in request order.  Called at every batch boundary: a
  // query/quit (which must see the preceding events applied), a parse error
  // (whose err line must follow the receipts of earlier requests), a full
  // batch, and the end of each burst.
  const auto flush_pending = [&] {
    if (pending.empty()) return;
    try {
      const BatchReceipt receipt = engine.apply_batch(pending);
      stats.events += receipt.events;
      ++stats.batches;
      if (receipt.coalesced) stats.coalesced_events += receipt.events;
      for (std::size_t i = 0; i < receipt.outcomes.size(); ++i)
        respond(format_receipt(receipt, i));
    } catch (const std::exception& unexpected) {
      // The parser pre-validates every reference with the same projection
      // the engine applies, so this is defense in depth: the engine
      // rejected the batch whole (state untouched) — answer every pending
      // request with the reason and keep serving.
      for (const std::size_t line_number : pending_lines)
        error_at(line_number, unexpected.what());
    }
    pending.clear();
    pending_lines.clear();
  };

  while (!done && transport.read_line(line)) {
    burst.clear();
    burst.push_back(line);
    if (!options.flush_each && options.max_batch > 1)
      transport.read_available(burst, options.max_batch - 1);

    for (const std::string& request : burst) {
      ++stats.lines;
      const std::string verb = first_token(request);

      if (verb == "quit") {
        ++stats.queries;
        flush_pending();
        respond("bye");
        done = true;
        break;  // drained-but-unprocessed lines die with the session
      }
      if (verb == "stats") {
        ++stats.queries;
        flush_pending();
        const AssignmentEngine::Summary s = engine.summary();
        std::ostringstream os;
        os << "stats live=" << s.live << " joined=" << s.joined
           << " maxc=" << s.max_color << " colors=" << s.distinct_colors
           << " events=" << s.events << " recodings=" << s.recodings;
        respond(os.str());
        continue;
      }
      if (verb == "code" || verb == "conflicts") {
        ++stats.queries;
        flush_pending();
        std::string reason;
        const auto node = query_node(engine, request, verb, reason);
        if (!node) {
          error_at(stats.lines, reason);
          continue;
        }
        if (verb == "code") {
          respond("code node=" + std::to_string(*node) +
                  " color=" + std::to_string(engine.code_of(*node)));
        } else {
          const std::vector<std::size_t> partners = engine.conflicts_of(*node);
          std::ostringstream os;
          os << "conflicts node=" << *node << " count=" << partners.size()
             << " partners=";
          if (partners.empty()) os << "-";
          for (std::size_t i = 0; i < partners.size(); ++i)
            os << (i ? "," : "") << partners[i];
          respond(os.str());
        }
        continue;
      }

      // Everything else is the trace grammar (or a reportable parse error).
      try {
        const std::optional<sim::TraceEvent> event =
            parser.parse_line(request, stats.lines);
        if (!event) continue;  // blank/comment: no response line
        pending.push_back(*event);
        pending_lines.push_back(stats.lines);
        if (pending.size() >= options.max_batch) flush_pending();
      } catch (const sim::TraceParseError& parse_error) {
        flush_pending();  // earlier requests answer before this line's err
        error_at(stats.lines, parse_error.reason());
      }
    }

    flush_pending();
    transport.flush();  // one delivery per burst (per line with flush_each)
  }
  return stats;
}

}  // namespace minim::serve
