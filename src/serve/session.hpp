#pragma once

#include <cstddef>
#include <string>

#include "serve/engine.hpp"
#include "serve/transport.hpp"

/// \file session.hpp
/// \brief The serving line protocol: trace grammar in, one receipt out.
///
/// A session reads request lines from a transport and answers each event or
/// query with exactly one response line.  Requests are the `sim/trace`
/// grammar (join/leave/move/power — parsed by the same `TraceLineParser`
/// as batch ingestion, so validation and error text are identical) plus
/// read-side queries:
///
///   code <node>        -> code node=<n> color=<c>
///   conflicts <node>   -> conflicts node=<n> count=<k> partners=<a>,<b>,...
///   stats              -> stats live=.. joined=.. maxc=.. colors=..
///                               events=.. recodings=..
///   quit               -> bye (and the session ends)
///
/// Events answer with a receipt line:
///
///   ok <seq> <verb> node=<n> recoded=<k> maxc=<c> live=<l> fallback=<0|1>
///
/// Malformed lines answer `err line=<n> <reason>` and the session keeps
/// serving — a live network does not go down because one client sent a
/// typo.  Latency is deliberately absent from receipt lines (they would
/// never diff against a golden transcript); it lives in the engine's
/// histograms and the `stats`-side summaries.
///
/// Blank and `#`-comment lines get no response, so a recorded trace file
/// can be piped through a session unmodified.
///
/// ## Pipelining
///
/// By default the session is pipelined: after each blocking read it drains
/// every request line the client already sent (`Transport::read_available`)
/// into one burst, coalesces consecutive events into one
/// `AssignmentEngine::apply_batch` call, answers every request in order,
/// and flushes the transport ONCE per burst.  Responses are byte-identical
/// per line to the line-at-a-time session for strategies on the exact
/// per-event path; a coalesced multi-event repair marks its receipts with a
/// trailing ` batch=<k>`.  Queries, parse errors, and `quit` are batch
/// boundaries — they apply everything pending first, so a query always sees
/// the state of every request before it.  `flush_each` restores the
/// pre-pipelining behavior: one request applied and one flush per line.

namespace minim::serve {

struct SessionOptions {
  /// Write a response line per event/query.  Off = ingest-only (benches
  /// that measure engine latency without protocol formatting).
  bool echo = true;
  /// Apply and flush per request line (no lookahead, no coalescing) — the
  /// pre-pipelining behavior, kept for golden-transcript runs and
  /// interactive debugging.
  bool flush_each = false;
  /// Most events coalesced into one engine batch (≥ 1).
  std::size_t max_batch = 512;
};

struct SessionStats {
  std::size_t lines = 0;    ///< request lines consumed (incl. blank/comment)
  std::size_t events = 0;   ///< reconfiguration events applied
  std::size_t queries = 0;  ///< read-side queries answered
  std::size_t errors = 0;   ///< err responses written
  std::size_t batches = 0;  ///< engine batch applications (≥ 1 event each)
  /// Events that went through a coalesced (single-repair) batch.
  std::size_t coalesced_events = 0;
};

/// The receipt line for one applied event (the protocol's `ok` response).
std::string format_receipt(const EventReceipt& receipt);

/// The receipt line for outcome `index` of a batch.  Byte-identical to the
/// single-event format when the outcome is exact; a coalesced outcome
/// carries a trailing ` batch=<events>` marker.
std::string format_receipt(const BatchReceipt& receipt, std::size_t index);

/// Serves `transport` until end of input or `quit`.  Returns what happened.
SessionStats serve_session(AssignmentEngine& engine, Transport& transport,
                           const SessionOptions& options = {});

}  // namespace minim::serve
