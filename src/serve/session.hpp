#pragma once

#include <cstddef>
#include <string>

#include "serve/engine.hpp"
#include "serve/transport.hpp"

/// \file session.hpp
/// \brief The serving line protocol: trace grammar in, one receipt out.
///
/// A session reads request lines from a transport and answers each event or
/// query with exactly one response line.  Requests are the `sim/trace`
/// grammar (join/leave/move/power — parsed by the same `TraceLineParser`
/// as batch ingestion, so validation and error text are identical) plus
/// read-side queries:
///
///   code <node>        -> code node=<n> color=<c>
///   conflicts <node>   -> conflicts node=<n> count=<k> partners=<a>,<b>,...
///   stats              -> stats live=.. joined=.. maxc=.. colors=..
///                               events=.. recodings=..
///   quit               -> bye (and the session ends)
///
/// Events answer with a receipt line:
///
///   ok <seq> <verb> node=<n> recoded=<k> maxc=<c> live=<l> fallback=<0|1>
///
/// Malformed lines answer `err line=<n> <reason>` and the session keeps
/// serving — a live network does not go down because one client sent a
/// typo.  Latency is deliberately absent from receipt lines (they would
/// never diff against a golden transcript); it lives in the engine's
/// histograms and the `stats`-side summaries.
///
/// Blank and `#`-comment lines get no response, so a recorded trace file
/// can be piped through a session unmodified.

namespace minim::serve {

struct SessionOptions {
  /// Write a response line per event/query.  Off = ingest-only (benches
  /// that measure engine latency without protocol formatting).
  bool echo = true;
};

struct SessionStats {
  std::size_t lines = 0;    ///< request lines consumed (incl. blank/comment)
  std::size_t events = 0;   ///< reconfiguration events applied
  std::size_t queries = 0;  ///< read-side queries answered
  std::size_t errors = 0;   ///< err responses written
};

/// The receipt line for one applied event (the protocol's `ok` response).
std::string format_receipt(const EventReceipt& receipt);

/// Serves `transport` until end of input or `quit`.  Returns what happened.
SessionStats serve_session(AssignmentEngine& engine, Transport& transport,
                           const SessionOptions& options = {});

}  // namespace minim::serve
