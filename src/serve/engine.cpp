#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>

#include "net/constraints.hpp"
#include "strategies/bbb.hpp"
#include "strategies/factory.hpp"
#include "util/require.hpp"

namespace minim::serve {

namespace {

sim::Simulation::Params simulation_params(const AssignmentEngine::Params& params) {
  sim::Simulation::Params p;
  p.width = params.width;
  p.height = params.height;
  p.validate_after_each = params.validate;
  return p;
}

/// The bounded-BBB fallback counter before an event; 0 for every other
/// strategy (their counters never move, so the delta stays 0).
std::uint64_t fallback_count(const core::RecodingStrategy& strategy) {
  if (const auto* bbb = dynamic_cast<const strategies::BbbStrategy*>(&strategy))
    return bbb->counters().full_events;
  return 0;
}

/// Applies engine-level strategy tuning where the strategy has the knob
/// (same dynamic_cast discipline as fallback_count above): today that is
/// the component-parallel recolor thread count on BbbStrategy.
void apply_strategy_tuning(core::RecodingStrategy& strategy,
                           const AssignmentEngine::Params& params) {
  if (params.recolor_threads == 1) return;
  if (auto* bbb = dynamic_cast<strategies::BbbStrategy*>(&strategy))
    bbb->set_recolor_threads(params.recolor_threads);
}

}  // namespace

AssignmentEngine::AssignmentEngine(const std::string& strategy_name,
                                   const Params& params)
    : params_(params),
      owned_strategy_(strategies::make_strategy(strategy_name)),
      strategy_(owned_strategy_.get()),
      strategy_name_(strategy_name) {
  apply_strategy_tuning(*strategy_, params_);
  simulation_.emplace(*strategy_, simulation_params(params_));
}

AssignmentEngine::AssignmentEngine(core::RecodingStrategy& strategy,
                                   const Params& params)
    : params_(params), strategy_(&strategy), strategy_name_(strategy.name()) {
  apply_strategy_tuning(*strategy_, params_);
  simulation_.emplace(*strategy_, simulation_params(params_));
}

net::NodeId AssignmentEngine::node_id_of(std::size_t node,
                                         const char* verb) const {
  MINIM_REQUIRE(node < by_join_order_.size(),
                std::string(verb) + ": node has not joined yet");
  MINIM_REQUIRE(!departed_[node], std::string(verb) + ": node already left");
  return by_join_order_[node];
}

EventReceipt AssignmentEngine::apply(const sim::TraceEvent& event) {
  using Clock = std::chrono::steady_clock;

  EventReceipt receipt;
  receipt.kind = event.kind;

  const std::size_t recodings_before = simulation_->totals().recodings;
  const std::uint64_t fallbacks_before = fallback_count(*strategy_);

  // Resolve node references (and throw) before the clock starts: a rejected
  // request is not a served event.
  net::NodeId subject = net::kInvalidNode;
  if (event.kind != sim::TraceEvent::Kind::kJoin)
    subject = node_id_of(event.node, sim::to_string(event.kind));

  const auto start = Clock::now();
  switch (event.kind) {
    case sim::TraceEvent::Kind::kJoin:
      subject = simulation_->join(net::NodeConfig{event.position, event.range});
      break;
    case sim::TraceEvent::Kind::kLeave:
      simulation_->leave(subject);
      break;
    case sim::TraceEvent::Kind::kMove:
      simulation_->move(subject, event.position);
      break;
    case sim::TraceEvent::Kind::kPower:
      simulation_->change_power(subject, event.range);
      break;
  }
  const auto stop = Clock::now();

  if (event.kind == sim::TraceEvent::Kind::kJoin) {
    receipt.node = by_join_order_.size();
    by_join_order_.push_back(subject);
    departed_.push_back(0);
    if (join_index_of_.size() <= subject) join_index_of_.resize(subject + 1, 0);
    join_index_of_[subject] = receipt.node;
  } else {
    receipt.node = event.node;
    if (event.kind == sim::TraceEvent::Kind::kLeave) departed_[event.node] = 1;
  }

  receipt.seq = ++seq_;
  receipt.latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
  receipt.recoded = simulation_->totals().recodings - recodings_before;
  receipt.fallback = fallback_count(*strategy_) > fallbacks_before;
  receipt.max_color = simulation_->max_color();
  receipt.live_nodes = simulation_->network().node_count();

  latency_[static_cast<std::size_t>(event.kind)].record(receipt.latency_ns);
  return receipt;
}

BatchReceipt AssignmentEngine::apply_batch(
    std::span<const sim::TraceEvent> events) {
  using Clock = std::chrono::steady_clock;

  BatchReceipt receipt;
  receipt.events = events.size();
  receipt.max_color = simulation_->max_color();
  receipt.live_nodes = simulation_->network().node_count();
  if (events.empty()) return receipt;

  // All-or-nothing validation against the *projected* state — joins extend
  // the index space, leaves depart, both visible to later events of the
  // same batch — before any mutation reaches the network.  A mid-batch
  // invalid reference therefore rejects the whole batch with the engine
  // untouched (the batch generalization of apply()'s "a rejected request is
  // not a served event").
  departed_projection_.assign(departed_.begin(), departed_.end());
  std::size_t projected_joined = by_join_order_.size();
  for (const sim::TraceEvent& e : events) {
    if (e.kind == sim::TraceEvent::Kind::kJoin) {
      ++projected_joined;
      departed_projection_.push_back(0);
      continue;
    }
    const char* verb = sim::to_string(e.kind);
    MINIM_REQUIRE(e.node < projected_joined,
                  std::string(verb) + ": node has not joined yet");
    MINIM_REQUIRE(!departed_projection_[e.node],
                  std::string(verb) + ": node already left");
    if (e.kind == sim::TraceEvent::Kind::kLeave)
      departed_projection_[e.node] = 1;
  }

  const std::uint64_t fallbacks_before = fallback_count(*strategy_);
  const std::size_t joined_before = by_join_order_.size();

  const auto start = Clock::now();
  simulation_->apply_batch(events, by_join_order_, batch_scratch_);
  const auto stop = Clock::now();

  // Join bookkeeping for the ids the batch appended.
  for (std::size_t i = joined_before; i < by_join_order_.size(); ++i) {
    departed_.push_back(0);
    const net::NodeId id = by_join_order_[i];
    if (join_index_of_.size() <= id) join_index_of_.resize(id + 1, 0);
    join_index_of_[id] = i;
  }

  receipt.latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
  receipt.recoded = batch_scratch_.recoded;
  receipt.repairs = batch_scratch_.repairs;
  receipt.coalesced = batch_scratch_.coalesced;
  receipt.fallback = fallback_count(*strategy_) > fallbacks_before;
  receipt.max_color = simulation_->max_color();
  receipt.live_nodes = simulation_->network().node_count();

  const std::uint64_t per_event_ns = receipt.latency_ns / events.size();
  std::size_t next_join = joined_before;
  receipt.outcomes.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const sim::TraceEvent& e = events[i];
    const sim::BatchEventOutcome& applied = batch_scratch_.outcomes[i];
    BatchEventOutcome outcome;
    outcome.seq = ++seq_;
    outcome.kind = e.kind;
    if (e.kind == sim::TraceEvent::Kind::kJoin) {
      outcome.node = next_join++;
    } else {
      outcome.node = e.node;
      if (e.kind == sim::TraceEvent::Kind::kLeave) departed_[e.node] = 1;
    }
    outcome.recoded = applied.recoded;
    outcome.max_color = applied.max_color;
    outcome.live_nodes = applied.live_nodes;
    outcome.exact = applied.exact;
    receipt.outcomes.push_back(outcome);
    latency_[static_cast<std::size_t>(e.kind)].record(per_event_ns);
  }
  return receipt;
}

net::Color AssignmentEngine::code_of(std::size_t node) const {
  return simulation_->assignment().color(node_id_of(node, "code"));
}

std::vector<std::size_t> AssignmentEngine::conflicts_of(std::size_t node) const {
  const net::NodeId id = node_id_of(node, "conflicts");
  std::vector<std::size_t> indices;
  for (net::NodeId partner : net::conflict_partners(simulation_->network(), id))
    indices.push_back(join_index_of_[partner]);
  std::sort(indices.begin(), indices.end());
  return indices;
}

AssignmentEngine::Summary AssignmentEngine::summary() const {
  Summary s;
  s.live = simulation_->network().node_count();
  s.joined = by_join_order_.size();
  s.events = simulation_->totals().events;
  s.recodings = simulation_->totals().recodings;
  const std::vector<net::NodeId> nodes = simulation_->network().nodes();
  s.distinct_colors = simulation_->assignment().distinct_colors(nodes);
  s.max_color = simulation_->max_color();
  return s;
}

util::LatencyHistogram AssignmentEngine::total_latency() const {
  util::LatencyHistogram total;
  for (const util::LatencyHistogram& h : latency_) total.merge(h);
  return total;
}

void AssignmentEngine::reset() {
  simulation_.emplace(*strategy_, simulation_params(params_));
  by_join_order_.clear();
  departed_.clear();
  join_index_of_.clear();
  seq_ = 0;
  for (util::LatencyHistogram& h : latency_) h.reset();
}

}  // namespace minim::serve
