#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>

#include "net/constraints.hpp"
#include "strategies/bbb.hpp"
#include "strategies/factory.hpp"
#include "util/require.hpp"

namespace minim::serve {

namespace {

sim::Simulation::Params simulation_params(const AssignmentEngine::Params& params) {
  sim::Simulation::Params p;
  p.width = params.width;
  p.height = params.height;
  p.validate_after_each = params.validate;
  return p;
}

/// The bounded-BBB fallback counter before an event; 0 for every other
/// strategy (their counters never move, so the delta stays 0).
std::uint64_t fallback_count(const core::RecodingStrategy& strategy) {
  if (const auto* bbb = dynamic_cast<const strategies::BbbStrategy*>(&strategy))
    return bbb->counters().full_events;
  return 0;
}

}  // namespace

AssignmentEngine::AssignmentEngine(const std::string& strategy_name,
                                   const Params& params)
    : params_(params),
      owned_strategy_(strategies::make_strategy(strategy_name)),
      strategy_(owned_strategy_.get()),
      strategy_name_(strategy_name) {
  simulation_.emplace(*strategy_, simulation_params(params_));
}

AssignmentEngine::AssignmentEngine(core::RecodingStrategy& strategy,
                                   const Params& params)
    : params_(params), strategy_(&strategy), strategy_name_(strategy.name()) {
  simulation_.emplace(*strategy_, simulation_params(params_));
}

net::NodeId AssignmentEngine::node_id_of(std::size_t node,
                                         const char* verb) const {
  MINIM_REQUIRE(node < by_join_order_.size(),
                std::string(verb) + ": node has not joined yet");
  MINIM_REQUIRE(!departed_[node], std::string(verb) + ": node already left");
  return by_join_order_[node];
}

EventReceipt AssignmentEngine::apply(const sim::TraceEvent& event) {
  using Clock = std::chrono::steady_clock;

  EventReceipt receipt;
  receipt.kind = event.kind;

  const std::size_t recodings_before = simulation_->totals().recodings;
  const std::uint64_t fallbacks_before = fallback_count(*strategy_);

  // Resolve node references (and throw) before the clock starts: a rejected
  // request is not a served event.
  net::NodeId subject = net::kInvalidNode;
  if (event.kind != sim::TraceEvent::Kind::kJoin)
    subject = node_id_of(event.node, sim::to_string(event.kind));

  const auto start = Clock::now();
  switch (event.kind) {
    case sim::TraceEvent::Kind::kJoin:
      subject = simulation_->join(net::NodeConfig{event.position, event.range});
      break;
    case sim::TraceEvent::Kind::kLeave:
      simulation_->leave(subject);
      break;
    case sim::TraceEvent::Kind::kMove:
      simulation_->move(subject, event.position);
      break;
    case sim::TraceEvent::Kind::kPower:
      simulation_->change_power(subject, event.range);
      break;
  }
  const auto stop = Clock::now();

  if (event.kind == sim::TraceEvent::Kind::kJoin) {
    receipt.node = by_join_order_.size();
    by_join_order_.push_back(subject);
    departed_.push_back(0);
    if (join_index_of_.size() <= subject) join_index_of_.resize(subject + 1, 0);
    join_index_of_[subject] = receipt.node;
  } else {
    receipt.node = event.node;
    if (event.kind == sim::TraceEvent::Kind::kLeave) departed_[event.node] = 1;
  }

  receipt.seq = ++seq_;
  receipt.latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
  receipt.recoded = simulation_->totals().recodings - recodings_before;
  receipt.fallback = fallback_count(*strategy_) > fallbacks_before;
  receipt.max_color = simulation_->max_color();
  receipt.live_nodes = simulation_->network().node_count();

  latency_[static_cast<std::size_t>(event.kind)].record(receipt.latency_ns);
  return receipt;
}

net::Color AssignmentEngine::code_of(std::size_t node) const {
  return simulation_->assignment().color(node_id_of(node, "code"));
}

std::vector<std::size_t> AssignmentEngine::conflicts_of(std::size_t node) const {
  const net::NodeId id = node_id_of(node, "conflicts");
  std::vector<std::size_t> indices;
  for (net::NodeId partner : net::conflict_partners(simulation_->network(), id))
    indices.push_back(join_index_of_[partner]);
  std::sort(indices.begin(), indices.end());
  return indices;
}

AssignmentEngine::Summary AssignmentEngine::summary() const {
  Summary s;
  s.live = simulation_->network().node_count();
  s.joined = by_join_order_.size();
  s.events = simulation_->totals().events;
  s.recodings = simulation_->totals().recodings;
  const std::vector<net::NodeId> nodes = simulation_->network().nodes();
  s.distinct_colors = simulation_->assignment().distinct_colors(nodes);
  s.max_color = simulation_->max_color();
  return s;
}

util::LatencyHistogram AssignmentEngine::total_latency() const {
  util::LatencyHistogram total;
  for (const util::LatencyHistogram& h : latency_) total.merge(h);
  return total;
}

void AssignmentEngine::reset() {
  simulation_.emplace(*strategy_, simulation_params(params_));
  by_join_order_.clear();
  departed_.clear();
  join_index_of_.clear();
  seq_ = 0;
  for (util::LatencyHistogram& h : latency_) h.reset();
}

}  // namespace minim::serve
