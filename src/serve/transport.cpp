#include "serve/transport.hpp"

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/require.hpp"

namespace minim::serve {

// ----------------------------------------------------------- StreamTransport

StreamTransport::StreamTransport(std::istream& in, std::ostream& out,
                                 std::string name)
    : in_(&in), out_(&out), name_(std::move(name)) {}

bool StreamTransport::read_line(std::string& line) {
  return static_cast<bool>(std::getline(*in_, line));
}

void StreamTransport::write_line(std::string_view line) {
  *out_ << line << "\n";
  out_->flush();  // a served client must never wait on a buffer
}

// -------------------------------------------------------- TraceFileTransport

TraceFileTransport::TraceFileTransport(const std::string& path,
                                       std::ostream& out)
    : path_(path), file_(path), out_(&out) {
  MINIM_REQUIRE(file_.good(), "cannot open trace file '" + path + "'");
}

bool TraceFileTransport::read_line(std::string& line) {
  return static_cast<bool>(std::getline(file_, line));
}

void TraceFileTransport::write_line(std::string_view line) {
  *out_ << line << "\n";
}

// -------------------------------------------------------- TcpServerTransport

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

TcpServerTransport::TcpServerTransport(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("bind 127.0.0.1");
  }
  if (::listen(listen_fd_, 1) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("listen");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpServerTransport::~TcpServerTransport() {
  if (client_fd_ >= 0) ::close(client_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpServerTransport::disconnect() {
  if (client_fd_ >= 0) {
    ::close(client_fd_);
    client_fd_ = -1;
  }
  eof_ = true;  // no replacement client: the session is over
}

bool TcpServerTransport::accept_client() {
  while (true) {
    client_fd_ = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd_ >= 0) return true;
    if (errno != EINTR) return false;
  }
}

bool TcpServerTransport::read_line(std::string& line) {
  if (client_fd_ < 0 && (eof_ || !accept_client())) return false;
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (eof_) {
      // Final unterminated line (a client that closed without a newline).
      if (buffer_.empty()) return false;
      line = std::exchange(buffer_, {});
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(client_fd_, chunk, sizeof chunk, 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
    } else if (got == 0) {
      eof_ = true;
    } else if (errno != EINTR) {
      eof_ = true;  // connection error: treat as disconnect
    }
  }
}

void TcpServerTransport::write_line(std::string_view line) {
  if (client_fd_ < 0) return;  // nothing connected; response has no reader
  std::string framed(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t wrote = ::send(client_fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
    } else if (errno != EINTR) {
      return;  // client went away mid-response; the next read sees EOF
    }
  }
}

std::string TcpServerTransport::describe() const {
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

}  // namespace minim::serve
